//! # bolt — performance contracts for software network functions
//!
//! A Rust reproduction of *"Performance Contracts for Software Network
//! Functions"* (Iyer et al., NSDI 2019). This umbrella crate re-exports
//! the whole toolchain; see the README for the architecture and
//! EXPERIMENTS.md for the paper-vs-reproduction numbers.
//!
//! The pipeline, end to end:
//!
//! ```
//! use bolt::core::{generate, ClassSpec, InputClass};
//! use bolt::expr::PcvAssignment;
//! use bolt::nfs::example_router;
//! use bolt::see::StackLevel;
//! use bolt::solver::Solver;
//! use bolt::trace::Metric;
//!
//! // 1. Symbolically execute the NF's analysis build (models linked in).
//! let (reg, ids, exploration) = example_router::explore(StackLevel::FullStack);
//! // 2. Generate the performance contract (Algorithm 2).
//! let mut contract = generate(&reg, exploration);
//! // 3. Query it: what do invalid packets cost, in instructions?
//! let invalid = InputClass::new(
//!     "invalid packets",
//!     ClassSpec::field_ne(bolt::dpdk::headers::ETHER_TYPE, 2, 0x0800),
//! );
//! let solver = Solver::default();
//! let mut env = PcvAssignment::new();
//! env.set(ids.trie.l, 32); // worst-case matched prefix length
//! let q = contract
//!     .query(&solver, &invalid, Metric::Instructions, &env)
//!     .unwrap();
//! assert!(q.value > 0);
//! ```

pub use bolt_core as core;
pub use bolt_distiller as distiller;
pub use bolt_expr as expr;
pub use bolt_hw as hw;
pub use bolt_nfs as nfs;
pub use bolt_solver as solver;
pub use bolt_trace as trace;
pub use bolt_workloads as workloads;
pub use dpdk_sim as dpdk;
pub use nf_lib as lib;

/// Re-export of the symbolic/concrete execution engine with the stack
/// level alias used throughout the examples.
pub mod see {
    pub use bolt_see::*;
    pub use dpdk_sim::StackLevel;
}
