//! # bolt — performance contracts for software network functions
//!
//! A Rust reproduction of *"Performance Contracts for Software Network
//! Functions"* (Iyer et al., NSDI 2019). This umbrella crate re-exports
//! the whole toolchain; see the README for the architecture and
//! EXPERIMENTS.md for the paper-vs-reproduction numbers.
//!
//! The pipeline, end to end, through the fluent [`Bolt`] entrypoint:
//!
//! ```
//! use bolt::core::{ClassSpec, InputClass};
//! use bolt::expr::PcvAssignment;
//! use bolt::nfs::ExampleRouter;
//! use bolt::see::StackLevel;
//! use bolt::trace::Metric;
//! use bolt::Bolt;
//!
//! // 1. Symbolically execute the NF's analysis build (models linked in)
//! //    and generate the performance contract (Algorithm 2).
//! let mut contract = Bolt::nf(ExampleRouter::default())
//!     .explore(StackLevel::FullStack)
//!     .contract();
//! // 2. Query it: what do invalid packets cost, in instructions?
//! let invalid = InputClass::new(
//!     "invalid packets",
//!     ClassSpec::field_ne(bolt::dpdk::headers::ETHER_TYPE, 2, 0x0800),
//! );
//! let mut env = PcvAssignment::new();
//! env.set(contract.ids.trie.l, 32); // worst-case matched prefix length
//! let q = contract
//!     .query(&invalid, Metric::Instructions, &env)
//!     .unwrap();
//! assert!(q.value > 0);
//! ```
//!
//! Chains compose the same way (§3.4) — a chain is a [`Pipeline`] of NF
//! descriptors:
//!
//! ```
//! use bolt::nfs::{Firewall, StaticRouter};
//! use bolt::see::StackLevel;
//! use bolt::Pipeline;
//!
//! let chain = Pipeline::new()
//!     .push(Firewall::default())
//!     .push(StaticRouter::default())
//!     .contract(StackLevel::NfOnly)
//!     .unwrap();
//! assert!(!chain.paths.is_empty());
//! ```

pub use bolt_core as core;
pub use bolt_distiller as distiller;
pub use bolt_expr as expr;
pub use bolt_fault as fault;
pub use bolt_hw as hw;
pub use bolt_nfs as nfs;
pub use bolt_obs as obs;
pub use bolt_serve as serve;
pub use bolt_solver as solver;
pub use bolt_store as store;
pub use bolt_trace as trace;
pub use bolt_workloads as workloads;
pub use dpdk_sim as dpdk;
pub use nf_lib as lib;

pub use bolt_core::nf::{AbstractNf, Bolt, NetworkFunction};
pub use bolt_core::store::{ContractStore, StoreExt};
pub use bolt_core::{ChainPlan, Composer, Pipeline};

/// Re-export of the symbolic/concrete execution engine with the stack
/// level alias used throughout the examples.
pub mod see {
    pub use bolt_see::*;
    pub use dpdk_sim::StackLevel;
}
