//! Dynamic instruction traces for BOLT.
//!
//! The paper replays each execution path under Intel Pin and logs "the x86
//! instructions along with memory locations touched along that path"
//! (§3.5). In this reproduction, network functions and the instrumented
//! data-structure library execute against a [`Tracer`]; every logical
//! machine step they take emits a [`TraceEvent`] tagged with an x86-style
//! [`InstrClass`] and, for memory operations, a simulated address from an
//! [`AddressSpace`]. The event stream plays the role of the Pin trace:
//!
//! * counting events yields the **instruction count (IC)** and **memory
//!   access (MA)** metrics directly;
//! * feeding events through the hardware models in `bolt-hw` yields the
//!   **cycles** metric (conservative bound or testbed-simulated ground
//!   truth).
//!
//! Sinks are composable: [`CountingTracer`] keeps totals, a
//! [`RecordingTracer`] keeps the full event list, [`TeeTracer`] fans out to
//! several consumers, and [`NullTracer`] discards everything (used when
//! only the functional result matters).

use std::fmt;

use bolt_expr::PcvId;

pub mod mem;

pub use mem::{AddressSpace, MemRegion};

/// x86-style instruction class. The hardware models assign per-class costs;
/// instrumented code picks the class matching the assembly a C compiler
/// would emit for the equivalent operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstrClass {
    /// Simple integer ALU op (add/sub/logic/compare/mov reg-reg).
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide / modulo.
    Div,
    /// Conditional or unconditional branch.
    Branch,
    /// Memory load (the access itself is a separate `MemRead` event).
    Load,
    /// Memory store.
    Store,
    /// Call instruction.
    Call,
    /// Return instruction.
    Ret,
    /// Hash/CRC acceleration (e.g. `crc32` used by DPDK hash tables).
    Crc,
    /// Anything else (I/O register access, fences).
    Other,
}

impl InstrClass {
    /// All classes, for table iteration.
    pub const ALL: [InstrClass; 10] = [
        InstrClass::Alu,
        InstrClass::Mul,
        InstrClass::Div,
        InstrClass::Branch,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Call,
        InstrClass::Ret,
        InstrClass::Crc,
        InstrClass::Other,
    ];

    /// Dense index for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            InstrClass::Alu => 0,
            InstrClass::Mul => 1,
            InstrClass::Div => 2,
            InstrClass::Branch => 3,
            InstrClass::Load => 4,
            InstrClass::Store => 5,
            InstrClass::Call => 6,
            InstrClass::Ret => 7,
            InstrClass::Crc => 8,
            InstrClass::Other => 9,
        }
    }
}

/// Performance metric a contract is expressed in. Contracts are
/// metric-specific (§2.2): one NF has one contract per metric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Metric {
    /// Number of executed instructions ("IC" in the paper).
    Instructions,
    /// Number of memory accesses ("MA").
    MemAccesses,
    /// Execution cycles (hardware-dependent; model-mediated).
    Cycles,
}

impl Metric {
    /// All metrics.
    pub const ALL: [Metric; 3] = [Metric::Instructions, Metric::MemAccesses, Metric::Cycles];

    /// Dense index for per-metric arrays.
    pub fn index(self) -> usize {
        match self {
            Metric::Instructions => 0,
            Metric::MemAccesses => 1,
            Metric::Cycles => 2,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Metric::Instructions => write!(f, "instructions"),
            Metric::MemAccesses => write!(f, "memory accesses"),
            Metric::Cycles => write!(f, "cycles"),
        }
    }
}

/// Identifier of a registered stateful data-structure instance. Allocation
/// and name/contract resolution live in `nf-lib`'s registry; the trace only
/// carries the id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DsId(pub u32);

/// A call into a stateful data-structure method, as recorded on a symbolic
/// path. `method` and `case` index into the instance's performance contract
/// (the *case* selects the contract branch, e.g. flow-table `get`: hit vs
/// miss — §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StatefulCall {
    /// Which data-structure instance.
    pub ds: DsId,
    /// Method index within the instance's contract.
    pub method: u16,
    /// Contract case chosen on this path.
    pub case: u16,
}

/// Trace boundary markers, used to segment per-packet work and to restrict
/// analysis to the NF-only window vs the full stack (§3.5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Marker {
    /// A packet's processing begins (sequence number).
    PacketStart(u64),
    /// A packet's processing ends.
    PacketEnd(u64),
    /// Driver receive path begins.
    RxStart,
    /// Driver receive path done; NF logic begins.
    NfStart,
    /// NF logic done.
    NfEnd,
    /// Driver transmit/drop path done.
    TxDone,
}

/// One logical machine step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// `n` instructions of the given class executed (no memory operand).
    Instr { class: InstrClass, n: u32 },
    /// A load touched `[addr, addr+bytes)`. Counts as one load instruction
    /// plus one memory access. `dep` marks a pointer-chasing load whose
    /// address was produced by a previous load (e.g. walking a linked
    /// list); such misses cannot overlap with earlier ones in the testbed
    /// model's memory-level-parallelism accounting.
    MemRead { addr: u64, bytes: u8, dep: bool },
    /// A store touched `[addr, addr+bytes)`.
    MemWrite { addr: u64, bytes: u8 },
    /// Symbolic-mode only: a modelled stateful call; its cost comes from
    /// the method's manual contract, not from surrounding events.
    Stateful(StatefulCall),
    /// A PCV took a concrete value during a concrete run (Distiller food).
    Pcv { pcv: PcvId, value: u64 },
    /// Boundary marker.
    Mark(Marker),
}

impl TraceEvent {
    /// Instructions this single event contributes to the IC metric.
    pub fn instruction_count(&self) -> u64 {
        match self {
            TraceEvent::Instr { n, .. } => *n as u64,
            TraceEvent::MemRead { .. } | TraceEvent::MemWrite { .. } => 1,
            _ => 0,
        }
    }

    /// Memory accesses this event contributes to the MA metric.
    pub fn mem_access_count(&self) -> u64 {
        match self {
            TraceEvent::MemRead { .. } | TraceEvent::MemWrite { .. } => 1,
            _ => 0,
        }
    }
}

/// Consumer of trace events. NF code and the instrumented library write
/// through the convenience methods; only [`Tracer::event`] is required.
pub trait Tracer {
    /// Consume one event.
    fn event(&mut self, ev: TraceEvent);

    /// `n` instructions of class `class`.
    fn instr(&mut self, class: InstrClass, n: u32) {
        if n > 0 {
            self.event(TraceEvent::Instr { class, n });
        }
    }

    /// ALU shortcut (the most common class).
    fn alu(&mut self, n: u32) {
        self.instr(InstrClass::Alu, n);
    }

    /// Branch shortcut.
    fn branch_instr(&mut self) {
        self.instr(InstrClass::Branch, 1);
    }

    /// An independent load of `bytes` at `addr` (address computed from
    /// indices/constants, not from a previously loaded pointer).
    fn mem_read(&mut self, addr: u64, bytes: u8) {
        self.event(TraceEvent::MemRead {
            addr,
            bytes,
            dep: false,
        });
    }

    /// A dependent (pointer-chasing) load: the address came out of a
    /// previous load, so the access serialises behind it.
    fn mem_read_dep(&mut self, addr: u64, bytes: u8) {
        self.event(TraceEvent::MemRead {
            addr,
            bytes,
            dep: true,
        });
    }

    /// A store of `bytes` at `addr`.
    fn mem_write(&mut self, addr: u64, bytes: u8) {
        self.event(TraceEvent::MemWrite { addr, bytes });
    }

    /// A modelled stateful call (symbolic mode).
    fn stateful(&mut self, call: StatefulCall) {
        self.event(TraceEvent::Stateful(call));
    }

    /// A PCV observation (concrete mode).
    fn pcv(&mut self, pcv: PcvId, value: u64) {
        self.event(TraceEvent::Pcv { pcv, value });
    }

    /// A boundary marker.
    fn mark(&mut self, m: Marker) {
        self.event(TraceEvent::Mark(m));
    }
}

/// Discards all events.
#[derive(Default, Debug, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn event(&mut self, _ev: TraceEvent) {}
}

/// Records the full event stream (use for paths and small runs; long
/// pathological runs should prefer [`CountingTracer`] or an online model).
#[derive(Default, Debug, Clone)]
pub struct RecordingTracer {
    /// The recorded events, in order.
    pub events: Vec<TraceEvent>,
}

impl RecordingTracer {
    /// New empty recording.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the recorded events, leaving the tracer empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl Tracer for RecordingTracer {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Streaming counters: IC, MA, and per-class instruction counts. O(1)
/// memory regardless of run length — this is what makes the pathological
/// mass-expiry scenarios (billions of instructions) measurable.
#[derive(Default, Debug, Clone)]
pub struct CountingTracer {
    /// Total executed instructions (IC metric).
    pub instructions: u64,
    /// Total memory accesses (MA metric).
    pub mem_accesses: u64,
    /// Memory reads only.
    pub reads: u64,
    /// Memory writes only.
    pub writes: u64,
    /// Per-[`InstrClass`] instruction counts.
    pub per_class: [u64; 10],
}

impl CountingTracer {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Tracer for CountingTracer {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Instr { class, n } => {
                self.instructions += n as u64;
                self.per_class[class.index()] += n as u64;
            }
            TraceEvent::MemRead { .. } => {
                self.instructions += 1;
                self.mem_accesses += 1;
                self.reads += 1;
                self.per_class[InstrClass::Load.index()] += 1;
            }
            TraceEvent::MemWrite { .. } => {
                self.instructions += 1;
                self.mem_accesses += 1;
                self.writes += 1;
                self.per_class[InstrClass::Store.index()] += 1;
            }
            _ => {}
        }
    }
}

/// Fans events out to multiple sinks (e.g. counters + a cache model).
pub struct TeeTracer<'a> {
    sinks: Vec<&'a mut dyn Tracer>,
}

impl<'a> TeeTracer<'a> {
    /// Build a tee over the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn Tracer>) -> Self {
        TeeTracer { sinks }
    }
}

impl Tracer for TeeTracer<'_> {
    fn event(&mut self, ev: TraceEvent) {
        for s in &mut self.sinks {
            s.event(ev);
        }
    }
}

/// Summarise a recorded event slice into `(IC, MA)`.
pub fn count_ic_ma(events: &[TraceEvent]) -> (u64, u64) {
    let mut ic = 0;
    let mut ma = 0;
    for ev in events {
        ic += ev.instruction_count();
        ma += ev.mem_access_count();
    }
    (ic, ma)
}

/// Slice a recorded stream into per-packet segments using
/// [`Marker::PacketStart`]/[`Marker::PacketEnd`] boundaries.
pub fn split_packets(events: &[TraceEvent]) -> Vec<&[TraceEvent]> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, ev) in events.iter().enumerate() {
        match ev {
            TraceEvent::Mark(Marker::PacketStart(_)) => start = Some(i + 1),
            TraceEvent::Mark(Marker::PacketEnd(_)) => {
                if let Some(s) = start.take() {
                    out.push(&events[s..i]);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_tracer_ic_ma() {
        let mut t = CountingTracer::new();
        t.alu(3);
        t.mem_read(0x1000, 8);
        t.mem_write(0x1008, 4);
        t.branch_instr();
        assert_eq!(t.instructions, 3 + 1 + 1 + 1);
        assert_eq!(t.mem_accesses, 2);
        assert_eq!(t.reads, 1);
        assert_eq!(t.writes, 1);
        assert_eq!(t.per_class[InstrClass::Alu.index()], 3);
        assert_eq!(t.per_class[InstrClass::Branch.index()], 1);
    }

    #[test]
    fn zero_count_instr_is_dropped() {
        let mut r = RecordingTracer::new();
        r.instr(InstrClass::Alu, 0);
        assert!(r.events.is_empty());
    }

    #[test]
    fn recording_and_counting_agree() {
        let mut r = RecordingTracer::new();
        r.alu(5);
        r.mem_read(0x2000, 8);
        r.instr(InstrClass::Mul, 2);
        r.mem_write(0x2000, 8);
        let (ic, ma) = count_ic_ma(&r.events);
        let mut c = CountingTracer::new();
        for ev in &r.events {
            c.event(*ev);
        }
        assert_eq!(ic, c.instructions);
        assert_eq!(ma, c.mem_accesses);
    }

    #[test]
    fn tee_fans_out() {
        let mut a = CountingTracer::new();
        let mut b = RecordingTracer::new();
        {
            let mut tee = TeeTracer::new(vec![&mut a, &mut b]);
            tee.alu(7);
            tee.mem_read(0x10, 4);
        }
        assert_eq!(a.instructions, 8);
        assert_eq!(b.events.len(), 2);
    }

    #[test]
    fn split_packets_segments() {
        let mut r = RecordingTracer::new();
        r.mark(Marker::PacketStart(0));
        r.alu(2);
        r.mark(Marker::PacketEnd(0));
        r.mark(Marker::PacketStart(1));
        r.alu(3);
        r.mem_read(0x0, 1);
        r.mark(Marker::PacketEnd(1));
        let segs = split_packets(&r.events);
        assert_eq!(segs.len(), 2);
        assert_eq!(count_ic_ma(segs[0]), (2, 0));
        assert_eq!(count_ic_ma(segs[1]), (4, 1));
    }

    #[test]
    fn stateful_and_pcv_events_carry_no_cost() {
        let call = StatefulCall {
            ds: DsId(1),
            method: 2,
            case: 0,
        };
        assert_eq!(TraceEvent::Stateful(call).instruction_count(), 0);
        let pcv = TraceEvent::Pcv {
            pcv: PcvId(0),
            value: 9,
        };
        assert_eq!(pcv.mem_access_count(), 0);
    }
}
