//! Simulated physical address space.
//!
//! Instrumented data structures do not log the host process's real pointer
//! values — that would make every cache-model result depend on the
//! allocator and ASLR. Instead, each structure reserves a [`MemRegion`]
//! from a per-run [`AddressSpace`] and reports addresses computed from its
//! own layout (`region.addr(bucket * BUCKET_SIZE + field_offset)`). The
//! resulting traces are deterministic and portable, while preserving the
//! spatial/temporal locality the hardware models care about.

/// A contiguous range of simulated addresses owned by one allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRegion {
    /// First address of the region.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl MemRegion {
    /// Address of `offset` bytes into the region.
    ///
    /// Panics in debug builds if the offset is out of bounds — an
    /// out-of-region address means the instrumentation disagrees with the
    /// declared layout, which would silently corrupt cache-model results.
    pub fn addr(&self, offset: u64) -> u64 {
        debug_assert!(
            offset < self.size,
            "offset {offset:#x} outside region of size {:#x}",
            self.size
        );
        self.base + offset
    }

    /// Address just past the end of the region.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether an address falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Bump allocator for simulated regions.
///
/// Regions are aligned and separated by a guard gap so that accidental
/// off-by-one addresses never alias a neighbouring structure in the cache
/// models.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    guard: u64,
}

impl AddressSpace {
    /// Base of the simulated heap; arbitrary but stable across runs.
    pub const HEAP_BASE: u64 = 0x1000_0000;

    /// Create a fresh address space.
    pub fn new() -> Self {
        AddressSpace {
            next: Self::HEAP_BASE,
            guard: 4096,
        }
    }

    /// Reserve `size` bytes aligned to `align` (must be a power of two).
    pub fn alloc(&mut self, size: u64, align: u64) -> MemRegion {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(size > 0, "zero-sized region");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + size + self.guard;
        MemRegion { base, size }
    }

    /// Reserve a cacheline-aligned region (the common case for tables).
    pub fn alloc_table(&mut self, size: u64) -> MemRegion {
        self.alloc(size, 64)
    }

    /// Reserve a page-aligned region.
    pub fn alloc_pages(&mut self, size: u64) -> MemRegion {
        self.alloc(size, 4096)
    }

    /// Total simulated bytes handed out so far (diagnostics).
    pub fn used(&self) -> u64 {
        self.next - Self::HEAP_BASE
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(100, 64);
        let r2 = a.alloc(8, 8);
        let r3 = a.alloc_pages(4096);
        assert_eq!(r1.base % 64, 0);
        assert_eq!(r3.base % 4096, 0);
        assert!(r1.end() <= r2.base);
        assert!(r2.end() <= r3.base);
        assert!(!r1.contains(r2.base));
        assert!(r2.contains(r2.base));
        assert!(!r2.contains(r2.end()));
    }

    #[test]
    fn addr_computes_offsets() {
        let mut a = AddressSpace::new();
        let r = a.alloc_table(64 * 16);
        assert_eq!(r.addr(0), r.base);
        assert_eq!(r.addr(65), r.base + 65);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_offset_panics_in_debug() {
        let mut a = AddressSpace::new();
        let r = a.alloc(16, 8);
        let _ = r.addr(16);
    }

    #[test]
    fn guard_gap_present() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(64, 64);
        let r2 = a.alloc(64, 64);
        assert!(r2.base - r1.end() >= 4096 - 64);
    }
}
