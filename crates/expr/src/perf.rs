//! Performance expressions: polynomials over performance-critical variables.
//!
//! A performance contract's body is a [`PerfExpr`], a multivariate
//! polynomial with unsigned integer coefficients over PCVs such as `e`
//! (expired entries), `c` (hash collisions), `t` (bucket traversals), `o`
//! (occupancy), `l` (matched prefix length), or `n` (IP option count).
//! Table 4 of the paper, for example, is the expression
//!
//! ```text
//! 245·e + 144·c + 50·t + 82·e·c + 19·e·t + 918
//! ```
//!
//! [`PerfExpr`]s form a commutative semiring: they support addition,
//! multiplication (used to build cross terms such as `e·c` when an expiry
//! loop walks a collision chain), scaling, exact evaluation under a
//! [`PcvAssignment`], and a pointwise upper-bound comparison.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a PCV within a [`PcvTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PcvId(pub u32);

/// Registry of performance-critical variable names.
///
/// PCV names are scoped by data-structure instance where necessary (e.g.
/// `flow_table.e` vs `mac_table.e`); for NFs with a single stateful
/// instance, the short paper names (`e`, `c`, `t`, `o`) are used directly.
#[derive(Default, Debug, Clone)]
pub struct PcvTable {
    names: Vec<String>,
    index: BTreeMap<String, PcvId>,
}

impl PcvTable {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a PCV name, returning its id (idempotent).
    pub fn intern(&mut self, name: &str) -> PcvId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = PcvId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Look up a PCV by name without creating it.
    pub fn lookup(&self, name: &str) -> Option<PcvId> {
        self.index.get(name).copied()
    }

    /// Name of a PCV.
    pub fn name(&self, id: PcvId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of registered PCVs.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no PCVs are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PcvId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PcvId(i as u32), n.as_str()))
    }
}

/// A product of PCVs (with multiplicity), e.g. `e·c`. The empty monomial is
/// the constant term.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub struct Monomial(Vec<PcvId>);

impl Monomial {
    /// The constant monomial (degree 0).
    pub fn one() -> Self {
        Monomial(Vec::new())
    }

    /// A single variable.
    pub fn var(id: PcvId) -> Self {
        Monomial(vec![id])
    }

    /// Serialization hook: rebuild a monomial from its variable list
    /// (sorted on entry, so decoded monomials are canonical).
    pub fn from_vars(mut vars: Vec<PcvId>) -> Monomial {
        vars.sort_unstable();
        Monomial(vars)
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        v.sort_unstable();
        Monomial(v)
    }

    /// Total degree.
    pub fn degree(&self) -> usize {
        self.0.len()
    }

    /// The variables (sorted, with multiplicity).
    pub fn vars(&self) -> &[PcvId] {
        &self.0
    }

    /// Evaluate under an assignment.
    pub fn eval(&self, env: &PcvAssignment) -> u64 {
        self.0
            .iter()
            .fold(1u64, |acc, id| acc.saturating_mul(env.get(*id)))
    }
}

/// A concrete binding of PCVs to values (e.g. produced by the Distiller).
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct PcvAssignment {
    values: BTreeMap<PcvId, u64>,
}

impl PcvAssignment {
    /// Empty assignment: every PCV reads as 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a PCV.
    pub fn set(&mut self, id: PcvId, value: u64) -> &mut Self {
        self.values.insert(id, value);
        self
    }

    /// Bind a PCV by name, interning it in `pcvs` if needed.
    pub fn set_named(&mut self, pcvs: &mut PcvTable, name: &str, value: u64) -> &mut Self {
        let id = pcvs.intern(name);
        self.set(id, value)
    }

    /// Read a PCV (unbound PCVs read as 0).
    pub fn get(&self, id: PcvId) -> u64 {
        self.values.get(&id).copied().unwrap_or(0)
    }

    /// Iterate over bound `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PcvId, u64)> + '_ {
        self.values.iter().map(|(&k, &v)| (k, v))
    }

    /// Pointwise maximum of two assignments (used when aggregating
    /// per-packet Distiller observations into a worst-case binding).
    pub fn max_with(&mut self, other: &PcvAssignment) {
        for (id, v) in other.iter() {
            let e = self.values.entry(id).or_insert(0);
            *e = (*e).max(v);
        }
    }
}

/// A polynomial over PCVs with `u64` coefficients.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PerfExpr {
    terms: BTreeMap<Monomial, u64>,
}

impl PerfExpr {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant polynomial.
    pub fn constant(c: u64) -> Self {
        let mut e = Self::zero();
        if c != 0 {
            e.terms.insert(Monomial::one(), c);
        }
        e
    }

    /// The polynomial `coeff · pcv`.
    pub fn var(pcv: PcvId, coeff: u64) -> Self {
        let mut e = Self::zero();
        if coeff != 0 {
            e.terms.insert(Monomial::var(pcv), coeff);
        }
        e
    }

    /// The polynomial `coeff · m` for an arbitrary monomial.
    pub fn term(m: Monomial, coeff: u64) -> Self {
        let mut e = Self::zero();
        if coeff != 0 {
            e.terms.insert(m, coeff);
        }
        e
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether this polynomial is a constant, and its value if so.
    pub fn as_const(&self) -> Option<u64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Monomial::one()).copied(),
            _ => None,
        }
    }

    /// The constant term.
    pub fn constant_term(&self) -> u64 {
        self.terms.get(&Monomial::one()).copied().unwrap_or(0)
    }

    /// Coefficient of a monomial (0 if absent).
    pub fn coeff(&self, m: &Monomial) -> u64 {
        self.terms.get(m).copied().unwrap_or(0)
    }

    /// Iterate over `(monomial, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, u64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Total degree of the polynomial (0 for constants).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// The set of PCVs mentioned.
    pub fn pcvs(&self) -> Vec<PcvId> {
        let mut v: Vec<PcvId> = self
            .terms
            .keys()
            .flat_map(|m| m.vars().iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &PerfExpr) {
        for (m, c) in other.iter() {
            let e = self.terms.entry(m.clone()).or_insert(0);
            *e = e.saturating_add(c);
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &PerfExpr) -> PerfExpr {
        let mut r = self.clone();
        r.add_assign(other);
        r
    }

    /// Add a constant.
    pub fn add_const(&mut self, c: u64) {
        if c != 0 {
            let e = self.terms.entry(Monomial::one()).or_insert(0);
            *e = e.saturating_add(c);
        }
    }

    /// `self · k`.
    pub fn scale(&self, k: u64) -> PerfExpr {
        if k == 0 {
            return PerfExpr::zero();
        }
        let mut r = PerfExpr::zero();
        for (m, c) in self.iter() {
            r.terms.insert(m.clone(), c.saturating_mul(k));
        }
        r
    }

    /// Polynomial product (distributes; used to build cross terms such as
    /// `e·c` when a per-expired-entry cost itself depends on collisions).
    pub fn mul(&self, other: &PerfExpr) -> PerfExpr {
        let mut r = PerfExpr::zero();
        for (ma, ca) in self.iter() {
            for (mb, cb) in other.iter() {
                let m = ma.mul(mb);
                let e = r.terms.entry(m).or_insert(0);
                *e = e.saturating_add(ca.saturating_mul(cb));
            }
        }
        r
    }

    /// Exact evaluation under an assignment (saturating).
    pub fn eval(&self, env: &PcvAssignment) -> u64 {
        self.terms.iter().fold(0u64, |acc, (m, &c)| {
            acc.saturating_add(c.saturating_mul(m.eval(env)))
        })
    }

    /// Conservative pointwise comparison: `true` if every coefficient of
    /// `self` is ≤ the corresponding coefficient of `other`, which implies
    /// `self.eval(a) ≤ other.eval(a)` for *all* assignments. (This is
    /// sufficient but not necessary; used to pick the worst path of an
    /// input class when one path dominates coefficient-wise.)
    pub fn dominated_by(&self, other: &PerfExpr) -> bool {
        self.iter().all(|(m, c)| c <= other.coeff(m))
    }

    /// Render against a PCV table, in the paper's format: degree-1 terms
    /// first (alphabetical), then higher-degree cross terms, constant last.
    /// E.g. `245·e + 144·c + 82·e·c + 882`.
    pub fn display<'a>(&'a self, pcvs: &'a PcvTable) -> PerfExprDisplay<'a> {
        PerfExprDisplay { expr: self, pcvs }
    }
}

/// Helper returned by [`PerfExpr::display`].
pub struct PerfExprDisplay<'a> {
    expr: &'a PerfExpr,
    pcvs: &'a PcvTable,
}

impl fmt::Display for PerfExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.expr.is_zero() {
            return write!(f, "0");
        }
        // Sort: by degree (1 first, then 2, ...), then by variable names;
        // the constant term is printed last, matching the paper's tables.
        let mut named: Vec<(usize, Vec<&str>, u64)> = Vec::new();
        let mut constant = 0u64;
        for (m, c) in self.expr.iter() {
            if m.degree() == 0 {
                constant = c;
            } else {
                let names: Vec<&str> = m.vars().iter().map(|&v| self.pcvs.name(v)).collect();
                named.push((m.degree(), names, c));
            }
        }
        named.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut first = true;
        for (_, names, c) in named {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{c}")?;
            for n in names {
                write!(f, "\u{b7}{n}")?;
            }
        }
        if constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{constant}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (PcvTable, PcvId, PcvId, PcvId) {
        let mut t = PcvTable::new();
        let e = t.intern("e");
        let c = t.intern("c");
        let tt = t.intern("t");
        (t, e, c, tt)
    }

    #[test]
    fn display_matches_paper_format() {
        let (tbl, e, c, t) = table();
        // 245·e + 144·c + 36·t + 82·e·c + 19·e·t + 882  (Table 4, row 1)
        let mut p = PerfExpr::constant(882);
        p.add_assign(&PerfExpr::var(e, 245));
        p.add_assign(&PerfExpr::var(c, 144));
        p.add_assign(&PerfExpr::var(t, 36));
        p.add_assign(&PerfExpr::term(Monomial::var(e).mul(&Monomial::var(c)), 82));
        p.add_assign(&PerfExpr::term(Monomial::var(e).mul(&Monomial::var(t)), 19));
        assert_eq!(
            p.display(&tbl).to_string(),
            "144\u{b7}c + 245\u{b7}e + 36\u{b7}t + 82\u{b7}e\u{b7}c + 19\u{b7}e\u{b7}t + 882"
        );
    }

    #[test]
    fn eval_exact() {
        let (_, e, c, _) = table();
        let mut p = PerfExpr::constant(10);
        p.add_assign(&PerfExpr::var(e, 3));
        p.add_assign(&PerfExpr::term(Monomial::var(e).mul(&Monomial::var(c)), 2));
        let mut env = PcvAssignment::new();
        env.set(e, 5).set(c, 7);
        assert_eq!(p.eval(&env), 10 + 3 * 5 + 2 * 5 * 7);
    }

    #[test]
    fn unbound_pcv_reads_zero() {
        let (_, e, _, _) = table();
        let p = PerfExpr::var(e, 100);
        assert_eq!(p.eval(&PcvAssignment::new()), 0);
    }

    #[test]
    fn mul_distributes() {
        let (_, e, c, _) = table();
        // (2e + 3)(c) = 2ec + 3c
        let mut a = PerfExpr::var(e, 2);
        a.add_const(3);
        let b = PerfExpr::var(c, 1);
        let p = a.mul(&b);
        assert_eq!(p.coeff(&Monomial::var(e).mul(&Monomial::var(c))), 2);
        assert_eq!(p.coeff(&Monomial::var(c)), 3);
        assert_eq!(p.constant_term(), 0);
    }

    #[test]
    fn dominated_by_is_sound() {
        let (_, e, c, _) = table();
        let mut small = PerfExpr::var(e, 3);
        small.add_const(5);
        let mut big = PerfExpr::var(e, 4);
        big.add_assign(&PerfExpr::var(c, 1));
        big.add_const(5);
        assert!(small.dominated_by(&big));
        assert!(!big.dominated_by(&small));
        // Dominance implies pointwise ≤ everywhere.
        for ev in [0u64, 1, 17, 1000] {
            for cv in [0u64, 2, 999] {
                let mut env = PcvAssignment::new();
                env.set(e, ev).set(c, cv);
                assert!(small.eval(&env) <= big.eval(&env));
            }
        }
    }

    #[test]
    fn assignment_max_with() {
        let (_, e, c, _) = table();
        let mut a = PcvAssignment::new();
        a.set(e, 3).set(c, 10);
        let mut b = PcvAssignment::new();
        b.set(e, 7);
        a.max_with(&b);
        assert_eq!(a.get(e), 7);
        assert_eq!(a.get(c), 10);
    }

    #[test]
    fn zero_and_constants() {
        assert!(PerfExpr::zero().is_zero());
        assert_eq!(PerfExpr::constant(0), PerfExpr::zero());
        assert_eq!(PerfExpr::constant(42).as_const(), Some(42));
        assert_eq!(PerfExpr::zero().as_const(), Some(0));
        let (tbl, ..) = table();
        assert_eq!(PerfExpr::zero().display(&tbl).to_string(), "0");
        assert_eq!(PerfExpr::constant(7).display(&tbl).to_string(), "7");
    }

    #[test]
    fn pcv_table_interning_is_idempotent() {
        let mut t = PcvTable::new();
        let a = t.intern("e");
        let b = t.intern("e");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
        assert_eq!(t.name(a), "e");
        assert_eq!(t.lookup("e"), Some(a));
        assert_eq!(t.lookup("zzz"), None);
    }
}
