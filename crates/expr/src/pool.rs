//! The hash-consing term pool.
//!
//! All terms of one analysis live in a single [`TermPool`]. Construction
//! methods perform aggressive constant folding and a handful of algebraic
//! simplifications; this keeps path constraints small enough for the solver
//! without a separate rewrite pass.
//!
//! Every term carries O(1) metadata computed once at intern time — its
//! [`Width`] and its deduplicated, sorted symbol support — so the solver
//! never re-walks a term to answer `width()` or `syms_of()`. The intern
//! table hashes *into the arena* (an open-addressed index table) instead
//! of keying a `HashMap` by cloned `Term`s, so each node is stored once.

use std::fmt::Write as _;
use std::hash::{Hash, Hasher as _};
use std::sync::Arc;

use crate::term::{BinOp, SymId, Term, TermRef, UnOp, Width};

/// Per-term metadata, computed once when the term is interned.
#[derive(Debug, Clone)]
struct TermMeta {
    /// Result width of the node.
    width: Width,
    /// Hash of the node (cached for intern-table rehashing).
    hash: u64,
    /// Sorted, deduplicated symbol support. Shared with child terms when
    /// the support is identical (unary wrappers, one-sided binops).
    syms: Arc<[SymId]>,
}

/// Arena + intern table for [`Term`]s, plus the symbol name registry.
#[derive(Debug)]
pub struct TermPool {
    terms: Vec<Term>,
    meta: Vec<TermMeta>,
    /// Open-addressed intern table: `slot = term index + 1`, 0 = empty.
    /// Capacity is always a power of two.
    slots: Vec<u32>,
    sym_names: Vec<String>,
    sym_widths: Vec<Width>,
    /// Process-unique pool identity (never serialized). Caches that
    /// memoize per-[`TermRef`] facts key on `(uid, index)` so entries
    /// from one pool can never be mistaken for another pool's.
    uid: u64,
}

/// Monotone source for [`TermPool::uid`].
static POOL_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Default for TermPool {
    fn default() -> Self {
        TermPool {
            terms: Vec::new(),
            meta: Vec::new(),
            slots: Vec::new(),
            sym_names: Vec::new(),
            sym_widths: Vec::new(),
            uid: POOL_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }
}

/// Deterministic node hash (stable across processes — memoised results
/// must not depend on hasher seeding).
fn hash_term(t: &Term) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Merge two sorted, deduplicated symbol lists.
fn merge_syms(a: &Arc<[SymId]>, b: &Arc<[SymId]>) -> Arc<[SymId]> {
    if a.is_empty() {
        return Arc::clone(b);
    }
    if b.is_empty() {
        return Arc::clone(a);
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    if out.len() == a.len() {
        return Arc::clone(a); // b ⊆ a
    }
    out.into()
}

impl TermPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms in the pool.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of symbols created so far.
    pub fn sym_count(&self) -> usize {
        self.sym_names.len()
    }

    /// Process-unique identity of this pool instance. Stable for the
    /// pool's lifetime, fresh for every construction (including decoded
    /// pools), never serialized — interpretations of a [`TermRef`] are
    /// only comparable between calls that observed the same `uid`.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Metadata for a new node (children are already interned, so their
    /// metadata is an O(1) lookup).
    fn meta_for(&self, t: &Term, hash: u64) -> TermMeta {
        let empty: Arc<[SymId]> = Arc::new([]);
        let (width, syms) = match *t {
            Term::Const { width, .. } => (width, empty),
            Term::Sym { id, width } => (width, Arc::from(vec![id])),
            Term::Unop { a, .. } => {
                let m = &self.meta[a.index()];
                (m.width, Arc::clone(&m.syms))
            }
            Term::Binop { op, a, b } => {
                let (ma, mb) = (&self.meta[a.index()], &self.meta[b.index()]);
                let w = if op.is_comparison() {
                    Width::W1
                } else {
                    ma.width
                };
                (w, merge_syms(&ma.syms, &mb.syms))
            }
            Term::Ite { c, t: tt, e } => {
                let (mc, mt, me) = (
                    &self.meta[c.index()],
                    &self.meta[tt.index()],
                    &self.meta[e.index()],
                );
                let ct = merge_syms(&mc.syms, &mt.syms);
                (mt.width, merge_syms(&ct, &me.syms))
            }
            Term::Zext { a, width } | Term::Trunc { a, width } => {
                (width, Arc::clone(&self.meta[a.index()].syms))
            }
        };
        TermMeta { width, hash, syms }
    }

    /// Grow the intern table to `cap` slots (a power of two) and rehash.
    fn grow_slots(&mut self, cap: usize) {
        let mut slots = vec![0u32; cap];
        let mask = cap - 1;
        for (idx, m) in self.meta.iter().enumerate() {
            let mut i = (m.hash as usize) & mask;
            while slots[i] != 0 {
                i = (i + 1) & mask;
            }
            slots[i] = idx as u32 + 1;
        }
        self.slots = slots;
    }

    fn intern(&mut self, t: Term) -> TermRef {
        // Keep load factor under ~70%.
        if (self.terms.len() + 1) * 10 >= self.slots.len() * 7 {
            self.grow_slots((self.slots.len() * 2).max(64));
        }
        let hash = hash_term(&t);
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            match self.slots[i] {
                0 => break,
                s => {
                    let idx = (s - 1) as usize;
                    if self.meta[idx].hash == hash && self.terms[idx] == t {
                        return TermRef(s - 1);
                    }
                }
            }
            i = (i + 1) & mask;
        }
        let r = TermRef(self.terms.len() as u32);
        let meta = self.meta_for(&t, hash);
        self.terms.push(t);
        self.meta.push(meta);
        self.slots[i] = r.0 + 1;
        r
    }

    /// Look up a term node.
    pub fn get(&self, r: TermRef) -> &Term {
        &self.terms[r.index()]
    }

    /// Width of a term — an O(1) metadata lookup (computed at intern
    /// time, not a recursive walk).
    pub fn width(&self, r: TermRef) -> Width {
        self.meta[r.index()].width
    }

    /// Name of a symbol.
    pub fn sym_name(&self, id: SymId) -> &str {
        &self.sym_names[id as usize]
    }

    /// Width of a symbol.
    pub fn sym_width(&self, id: SymId) -> Width {
        self.sym_widths[id as usize]
    }

    /// Constant value if the term is a constant.
    pub fn as_const(&self, r: TermRef) -> Option<u64> {
        match *self.get(r) {
            Term::Const { value, .. } => Some(value),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A constant of the given width (value is masked).
    pub fn constant(&mut self, value: u64, width: Width) -> TermRef {
        self.intern(Term::Const {
            value: value & width.mask(),
            width,
        })
    }

    /// The boolean constant `true`.
    pub fn tru(&mut self) -> TermRef {
        self.constant(1, Width::W1)
    }

    /// The boolean constant `false`.
    pub fn fls(&mut self) -> TermRef {
        self.constant(0, Width::W1)
    }

    /// A fresh symbolic variable with a human-readable name.
    pub fn fresh_sym(&mut self, name: impl Into<String>, width: Width) -> TermRef {
        let id = self.register_sym(name, width);
        self.intern(Term::Sym { id, width })
    }

    /// The term for an existing symbol (used to share input symbols
    /// across exploration runs instead of re-minting them).
    pub fn sym_ref(&mut self, id: SymId) -> TermRef {
        let width = self.sym_widths[id as usize];
        self.intern(Term::Sym { id, width })
    }

    /// Unary application with folding.
    pub fn unop(&mut self, op: UnOp, a: TermRef) -> TermRef {
        let w = self.width(a);
        if let Some(v) = self.as_const(a) {
            return self.constant(op.apply(v, w), w);
        }
        // not(not(x)) = x
        if let Term::Unop {
            op: UnOp::Not,
            a: inner,
        } = *self.get(a)
        {
            return inner;
        }
        self.intern(Term::Unop { op, a })
    }

    /// Logical/bitwise negation.
    pub fn not(&mut self, a: TermRef) -> TermRef {
        self.unop(UnOp::Not, a)
    }

    /// Binary application with folding and light algebraic simplification.
    ///
    /// Panics if operand widths differ — mixed-width arithmetic in NF code
    /// is always a bug (e.g. comparing a 16-bit port to a 32-bit address).
    pub fn binop(&mut self, op: BinOp, a: TermRef, b: TermRef) -> TermRef {
        let wa = self.width(a);
        let wb = self.width(b);
        assert_eq!(wa, wb, "width mismatch in {:?}: {:?} vs {:?}", op, wa, wb);
        let out_w = if op.is_comparison() { Width::W1 } else { wa };
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.constant(op.apply(x, y, wa), out_w);
        }
        // Identity / annihilator simplifications.
        let ca = self.as_const(a);
        let cb = self.as_const(b);
        match op {
            BinOp::Add => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
            }
            BinOp::Sub => {
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.constant(0, wa);
                }
            }
            BinOp::Mul => {
                if ca == Some(1) {
                    return b;
                }
                if cb == Some(1) {
                    return a;
                }
                if ca == Some(0) || cb == Some(0) {
                    return self.constant(0, wa);
                }
            }
            BinOp::And => {
                if ca == Some(0) || cb == Some(0) {
                    return self.constant(0, wa);
                }
                if ca == Some(wa.mask()) {
                    return b;
                }
                if cb == Some(wa.mask()) {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            BinOp::Or => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(wa.mask()) || cb == Some(wa.mask()) {
                    return self.constant(wa.mask(), wa);
                }
                if a == b {
                    return a;
                }
            }
            BinOp::Xor => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if a == b {
                    return self.constant(0, wa);
                }
            }
            BinOp::Shl | BinOp::Shr => {
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(0) {
                    return self.constant(0, wa);
                }
            }
            BinOp::Eq => {
                if a == b {
                    return self.tru();
                }
            }
            BinOp::Ne => {
                if a == b {
                    return self.fls();
                }
            }
            BinOp::Ult => {
                if a == b {
                    return self.fls();
                }
                if cb == Some(0) {
                    return self.fls();
                }
            }
            BinOp::Ule => {
                if a == b {
                    return self.tru();
                }
                if ca == Some(0) {
                    return self.tru();
                }
            }
        }
        // Canonicalise commutative operand order so interning catches
        // `a+b` vs `b+a`.
        let (a, b) = match op {
            BinOp::Add
            | BinOp::Mul
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Eq
            | BinOp::Ne
                if b < a =>
            {
                (b, a)
            }
            _ => (a, b),
        };
        self.intern(Term::Binop { op, a, b })
    }

    /// `a + b`
    pub fn add(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Add, a, b)
    }
    /// `a - b`
    pub fn sub(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Sub, a, b)
    }
    /// `a * b`
    pub fn mul(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Mul, a, b)
    }
    /// `a & b`
    pub fn and(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::And, a, b)
    }
    /// `a | b`
    pub fn or(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Or, a, b)
    }
    /// `a ^ b`
    pub fn xor(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Xor, a, b)
    }
    /// `a << b`
    pub fn shl(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Shl, a, b)
    }
    /// `a >> b`
    pub fn shr(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Shr, a, b)
    }
    /// `a == b`
    pub fn eq(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Eq, a, b)
    }
    /// `a != b`
    pub fn ne(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Ne, a, b)
    }
    /// `a < b` (unsigned)
    pub fn ult(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Ult, a, b)
    }
    /// `a <= b` (unsigned)
    pub fn ule(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Ule, a, b)
    }

    /// Zero-extend `a` to `width` (identity when widths match; widening
    /// only).
    pub fn zext(&mut self, a: TermRef, width: Width) -> TermRef {
        let wa = self.width(a);
        assert!(
            wa.bits() <= width.bits(),
            "zext must widen: {:?} -> {:?}",
            wa,
            width
        );
        if wa == width {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(v, width);
        }
        self.intern(Term::Zext { a, width })
    }

    /// Truncate `a` to `width`, keeping the low bits (narrowing only).
    pub fn trunc(&mut self, a: TermRef, width: Width) -> TermRef {
        let wa = self.width(a);
        assert!(
            wa.bits() >= width.bits(),
            "trunc must narrow: {:?} -> {:?}",
            wa,
            width
        );
        if wa == width {
            return a;
        }
        if let Some(v) = self.as_const(a) {
            return self.constant(v, width);
        }
        self.intern(Term::Trunc { a, width })
    }

    /// If-then-else. `c` must be boolean; `t` and `e` must have equal widths.
    pub fn ite(&mut self, c: TermRef, t: TermRef, e: TermRef) -> TermRef {
        assert_eq!(self.width(c), Width::W1, "ite condition must be boolean");
        assert_eq!(self.width(t), self.width(e), "ite arm width mismatch");
        if let Some(v) = self.as_const(c) {
            return if v != 0 { t } else { e };
        }
        if t == e {
            return t;
        }
        self.intern(Term::Ite { c, t, e })
    }

    // ------------------------------------------------------------------
    // Evaluation & inspection
    // ------------------------------------------------------------------

    /// Evaluate a term under a symbol assignment. Symbols missing from the
    /// assignment evaluate to 0 (useful when a model symbol is don't-care).
    pub fn eval(&self, r: TermRef, env: &dyn Fn(SymId) -> u64) -> u64 {
        match *self.get(r) {
            Term::Const { value, .. } => value,
            Term::Sym { id, width } => env(id) & width.mask(),
            Term::Unop { op, a } => {
                let w = self.width(a);
                op.apply(self.eval(a, env), w)
            }
            Term::Binop { op, a, b } => {
                let w = self.width(a);
                op.apply(self.eval(a, env), self.eval(b, env), w)
            }
            Term::Ite { c, t, e } => {
                if self.eval(c, env) != 0 {
                    self.eval(t, env)
                } else {
                    self.eval(e, env)
                }
            }
            Term::Zext { a, .. } => self.eval(a, env),
            Term::Trunc { a, width } => self.eval(a, env) & width.mask(),
        }
    }

    /// The set of symbols appearing in a term (deduplicated, sorted).
    /// An O(1) lookup of the support memoised at intern time — no
    /// traversal, no re-sort, no allocation.
    pub fn syms_of(&self, r: TermRef) -> &[SymId] {
        &self.meta[r.index()].syms
    }

    // ------------------------------------------------------------------
    // Serialization hooks (used by the contract-store codec)
    // ------------------------------------------------------------------

    /// The term arena, in intern order (children precede parents).
    pub fn nodes(&self) -> &[Term] {
        &self.terms
    }

    /// The symbol registry, in id order: `(name, width)` per symbol.
    pub fn sym_entries(&self) -> impl Iterator<Item = (&str, Width)> {
        self.sym_names
            .iter()
            .map(String::as_str)
            .zip(self.sym_widths.iter().copied())
    }

    /// Register a symbol in the name registry *without* interning its
    /// term node. Rehydration registers all symbols first, then replays
    /// the arena in order, so `Sym` nodes land at their original indices.
    pub fn register_sym(&mut self, name: impl Into<String>, width: Width) -> SymId {
        let id = self.sym_names.len() as SymId;
        self.sym_names.push(name.into());
        self.sym_widths.push(width);
        id
    }

    /// Re-intern one decoded arena node (children must already be
    /// interned). Replaying [`TermPool::nodes`] in order through this
    /// rebuilds a bit-identical pool: interning assigns sequential
    /// indices, and every stored node is distinct.
    pub fn intern_node(&mut self, t: Term) -> TermRef {
        self.intern(t)
    }

    /// Deterministically re-intern every node of `src` into `self`,
    /// returning the full remap table (`src` arena index → ref in
    /// `self`).
    ///
    /// This is the merge half of the per-thread-pool design: a worker
    /// explores against a private pool, and the committer absorbs that
    /// pool into the shared one. Nodes are replayed *through the public
    /// constructors* in arena order (children precede parents), so
    /// commutative canonicalisation is re-applied against the
    /// destination pool's ref ordering — the absorbed node is exactly
    /// the node `self` would have built had the run executed against it
    /// directly, which is what keeps multi-threaded exploration
    /// bit-identical to sequential. Folding never fires during a replay:
    /// `src` nodes are post-folding canonical forms, and the remap
    /// preserves the structural facts folding keys on (constant-ness,
    /// constant values, operand equality).
    ///
    /// `sym` resolves symbol identity across pools — given the symbol's
    /// name and width, it must return the destination pool's term for
    /// it (registering a fresh symbol on first sight). Callers that
    /// share symbols across runs pass their registry lookup here.
    pub fn absorb_with(
        &mut self,
        src: &TermPool,
        mut sym: impl FnMut(&mut TermPool, &str, Width) -> TermRef,
    ) -> Vec<TermRef> {
        let mut map: Vec<TermRef> = Vec::with_capacity(src.len());
        for node in src.nodes() {
            let m = match *node {
                Term::Const { value, width } => self.constant(value, width),
                Term::Sym { id, width } => sym(self, src.sym_name(id), width),
                Term::Unop { op, a } => self.unop(op, map[a.index()]),
                Term::Binop { op, a, b } => self.binop(op, map[a.index()], map[b.index()]),
                Term::Ite { c, t, e } => self.ite(map[c.index()], map[t.index()], map[e.index()]),
                Term::Zext { a, width } => self.zext(map[a.index()], width),
                Term::Trunc { a, width } => self.trunc(map[a.index()], width),
            };
            map.push(m);
        }
        map
    }

    /// Render a term as human-readable infix text, using symbol names.
    pub fn display(&self, r: TermRef) -> String {
        let mut s = String::new();
        self.fmt_term(r, &mut s);
        s
    }

    fn fmt_term(&self, r: TermRef, out: &mut String) {
        match *self.get(r) {
            Term::Const { value, width } => {
                if width == Width::W1 {
                    let _ = write!(out, "{}", if value != 0 { "true" } else { "false" });
                } else if value > 255 {
                    let _ = write!(out, "0x{value:x}");
                } else {
                    let _ = write!(out, "{value}");
                }
            }
            Term::Sym { id, .. } => {
                let _ = write!(out, "{}", self.sym_name(id));
            }
            Term::Unop { op: UnOp::Not, a } => {
                out.push('!');
                out.push('(');
                self.fmt_term(a, out);
                out.push(')');
            }
            Term::Binop { op, a, b } => {
                out.push('(');
                self.fmt_term(a, out);
                let _ = write!(out, " {} ", op.symbol());
                self.fmt_term(b, out);
                out.push(')');
            }
            Term::Ite { c, t, e } => {
                out.push('(');
                self.fmt_term(c, out);
                out.push_str(" ? ");
                self.fmt_term(t, out);
                out.push_str(" : ");
                self.fmt_term(e, out);
                out.push(')');
            }
            Term::Zext { a, .. } => {
                out.push_str("zext(");
                self.fmt_term(a, out);
                out.push(')');
            }
            Term::Trunc { a, .. } => {
                out.push_str("trunc(");
                self.fmt_term(a, out);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut p = TermPool::new();
        let a = p.constant(3, Width::W32);
        let b = p.constant(4, Width::W32);
        let s = p.add(a, b);
        assert_eq!(p.as_const(s), Some(7));
        let m = p.mul(a, b);
        assert_eq!(p.as_const(m), Some(12));
        let cmp = p.ult(a, b);
        assert_eq!(p.as_const(cmp), Some(1));
    }

    #[test]
    fn masking_on_construction() {
        let mut p = TermPool::new();
        let c = p.constant(0x1_FFFF, Width::W16);
        assert_eq!(p.as_const(c), Some(0xFFFF));
        let a = p.constant(0xFFFF, Width::W16);
        let one = p.constant(1, Width::W16);
        let s = p.add(a, one);
        assert_eq!(p.as_const(s), Some(0), "16-bit wrap-around");
    }

    #[test]
    fn identities() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let zero = p.constant(0, Width::W32);
        let one = p.constant(1, Width::W32);
        assert_eq!(p.add(x, zero), x);
        assert_eq!(p.mul(x, one), x);
        let mz = p.mul(x, zero);
        assert_eq!(p.as_const(mz), Some(0));
        let xx = p.xor(x, x);
        assert_eq!(p.as_const(xx), Some(0));
        let eq = p.eq(x, x);
        assert_eq!(p.as_const(eq), Some(1));
    }

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let a = p.add(x, y);
        let b = p.add(y, x); // commutative canonicalisation
        assert_eq!(a, b);
        let n = p.len();
        let _ = p.add(x, y);
        assert_eq!(p.len(), n, "re-construction allocates nothing");
    }

    #[test]
    fn eval_with_env() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let e = p.add(x, y);
        let ten = p.constant(10, Width::W32);
        let cond = p.ult(e, ten);
        let v = p.eval(cond, &|id| if id == 0 { 3 } else { 4 });
        assert_eq!(v, 1);
        let v = p.eval(cond, &|id| if id == 0 { 30 } else { 4 });
        assert_eq!(v, 0);
    }

    #[test]
    fn ite_simplification() {
        let mut p = TermPool::new();
        let c = p.fresh_sym("c", Width::W1);
        let x = p.fresh_sym("x", Width::W32);
        assert_eq!(p.ite(c, x, x), x);
        let t = p.tru();
        let y = p.fresh_sym("y", Width::W32);
        assert_eq!(p.ite(t, x, y), x);
    }

    #[test]
    fn display_is_readable() {
        let mut p = TermPool::new();
        let et = p.fresh_sym("pkt.ether_type", Width::W16);
        let c = p.constant(0x0800, Width::W16);
        let eq = p.eq(et, c);
        assert_eq!(p.display(eq), "(pkt.ether_type == 0x800)");
    }

    #[test]
    fn syms_of_collects_all() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let s = p.add(x, y);
        let s2 = p.add(s, x);
        assert_eq!(p.syms_of(s2), vec![0, 1]);
    }

    #[test]
    fn zext_trunc_are_rendered() {
        let mut p = TermPool::new();
        let b = p.fresh_sym("b", Width::W8);
        let z = p.zext(b, Width::W32);
        let one = p.constant(1, Width::W32);
        let s = p.add(z, one);
        assert_eq!(p.display(s), "(zext(b) + 1)");
        let w = p.fresh_sym("w", Width::W32);
        let t = p.trunc(w, Width::W8);
        assert_eq!(p.display(t), "trunc(w)");
    }

    #[test]
    fn sym_ref_reuses_the_interned_symbol() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W16);
        let n = p.len();
        let again = p.sym_ref(0);
        assert_eq!(x, again);
        assert_eq!(p.len(), n);
    }

    #[test]
    fn cached_metadata_matches_structure() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let s = p.add(x, y);
        let z = p.zext(s, Width::W64);
        let c = p.fresh_sym("c", Width::W1);
        let t = p.trunc(z, Width::W32);
        let e = p.ite(c, t, x);
        assert_eq!(p.width(s), Width::W32);
        assert_eq!(p.width(z), Width::W64);
        assert_eq!(p.width(e), Width::W32);
        assert_eq!(p.syms_of(z), &[0, 1]);
        assert_eq!(p.syms_of(e), &[0, 1, 2]);
        let cmp = p.ult(x, y);
        assert_eq!(p.width(cmp), Width::W1);
    }

    #[test]
    fn interning_survives_table_growth() {
        fn mk(p: &mut TermPool, x: TermRef, i: u64) -> TermRef {
            let c = p.constant(i.max(1), Width::W32);
            p.add(x, c)
        }
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let first = mk(&mut p, x, 0);
        // Force several intern-table resizes.
        for i in 0..2000u64 {
            let _ = mk(&mut p, x, i);
        }
        assert_eq!(mk(&mut p, x, 0), first, "early terms still found");
    }

    /// Symbol resolver for absorb tests: share symbols by name, minting
    /// on first sight (what the explorer's registry does).
    fn absorb_by_name(
        seen: &mut std::collections::HashMap<String, SymId>,
    ) -> impl FnMut(&mut TermPool, &str, Width) -> TermRef + '_ {
        move |dst, name, w| match seen.get(name) {
            Some(&id) => dst.sym_ref(id),
            None => {
                let t = dst.fresh_sym(name, w);
                if let Term::Sym { id, .. } = *dst.get(t) {
                    seen.insert(name.to_string(), id);
                }
                t
            }
        }
    }

    #[test]
    fn absorb_reproduces_direct_construction() {
        // Build the same run twice: once directly against the master
        // pool, once against a private pool absorbed afterwards. The
        // master must end bit-identical either way.
        fn run(p: &mut TermPool, x: TermRef, y: TermRef) -> TermRef {
            let s = p.add(x, y);
            let z = p.zext(s, Width::W64);
            let k = p.constant(0x1000, Width::W64);
            let c = p.ult(z, k);
            let t = p.trunc(z, Width::W16);
            let e = p.constant(7, Width::W16);
            let i = p.ite(c, t, e);
            let n = p.not(c);
            p.ite(n, e, i)
        }
        let mut direct = TermPool::new();
        let dx = direct.fresh_sym("x", Width::W32);
        let dy = direct.fresh_sym("y", Width::W32);
        let dr = run(&mut direct, dx, dy);

        let mut local = TermPool::new();
        let lx = local.fresh_sym("x", Width::W32);
        let ly = local.fresh_sym("y", Width::W32);
        let lr = run(&mut local, lx, ly);

        let mut master = TermPool::new();
        let mut seen = std::collections::HashMap::new();
        let map = master.absorb_with(&local, absorb_by_name(&mut seen));
        assert_eq!(master.len(), direct.len());
        assert_eq!(map[lr.index()], dr);
        assert_eq!(master.display(map[lr.index()]), direct.display(dr));
        assert_eq!(master.nodes(), direct.nodes());
    }

    #[test]
    fn absorb_recanonicalises_commutative_operands() {
        // In the private pool, `a` was created before `b`; in the master,
        // `b` already exists (from an earlier run) while `a` is new, so
        // the ref order reverses. The absorbed commutative node must be
        // re-canonicalised against *master* refs, matching what a direct
        // build would intern.
        let mut local = TermPool::new();
        let la = local.fresh_sym("a", Width::W32);
        let lb = local.fresh_sym("b", Width::W32);
        let lsum = local.add(la, lb);

        let mut master = TermPool::new();
        // Pre-populate: "b" and some unrelated terms exist, "a" doesn't.
        let mb = master.fresh_sym("b", Width::W32);
        let pad = master.constant(99, Width::W32);
        let _ = master.add(mb, pad);

        let mut seen = std::collections::HashMap::new();
        if let Term::Sym { id, .. } = *master.get(mb) {
            seen.insert("b".to_string(), id);
        }
        let map = master.absorb_with(&local, absorb_by_name(&mut seen));
        let ma = map[la.index()];
        let msum = map[lsum.index()];
        // Direct construction must dedup against the absorbed node.
        assert_eq!(master.add(mb, ma), msum);
        assert_eq!(master.add(ma, mb), msum);
    }

    #[test]
    fn absorb_is_idempotent_on_shared_structure() {
        let mut local = TermPool::new();
        let x = local.fresh_sym("x", Width::W16);
        let k = local.constant(3, Width::W16);
        let e = local.eq(x, k);
        let mut master = TermPool::new();
        let mut seen = std::collections::HashMap::new();
        let m1 = master.absorb_with(&local, absorb_by_name(&mut seen));
        let n = master.len();
        let m2 = master.absorb_with(&local, absorb_by_name(&mut seen));
        assert_eq!(master.len(), n, "second absorb interns nothing new");
        assert_eq!(m1[e.index()], m2[e.index()]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut p = TermPool::new();
        let a = p.fresh_sym("a", Width::W16);
        let b = p.fresh_sym("b", Width::W32);
        let _ = p.add(a, b);
    }
}
