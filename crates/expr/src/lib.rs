//! Symbolic expressions and performance polynomials for BOLT.
//!
//! This crate provides the two expression languages the BOLT pipeline is
//! built on:
//!
//! * [`Term`]s — hash-consed symbolic *bit-vector* expressions used by the
//!   symbolic execution engine (`bolt-see`) to describe packet contents,
//!   data-structure model outputs, and path constraints. Terms live in a
//!   [`TermPool`] and are referenced by copyable [`TermRef`] handles.
//! * [`PerfExpr`]s — multivariate polynomials over *performance-critical
//!   variables* (PCVs, see [`PcvTable`]). These are the bodies of
//!   performance contracts: expressions like `245·e + 82·e·c + 882` from
//!   Table 4 of the paper. They support exact evaluation, addition and
//!   multiplication, and render in the paper's human-legible format.
//!
//! The split mirrors the paper: terms describe *which inputs take which
//! path*; performance expressions describe *what that path costs*.

pub mod perf;
pub mod pool;
pub mod term;

pub use perf::{Monomial, PcvAssignment, PcvId, PcvTable, PerfExpr};
pub use pool::TermPool;
pub use term::{BinOp, SymId, Term, TermRef, UnOp, Width};
