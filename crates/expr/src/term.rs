//! Bit-vector term representation.
//!
//! Terms are immutable, hash-consed nodes owned by a
//! [`TermPool`](crate::TermPool). Every term has a bit width; boolean terms
//! are 1-bit vectors, which keeps the algebra uniform (comparisons produce
//! width-1 terms that can be branched on or combined with `And`/`Or`).

use std::fmt;

/// Identifier of a symbolic variable within a [`TermPool`](crate::TermPool).
///
/// Symbols are created with [`TermPool::fresh_sym`](crate::TermPool::fresh_sym)
/// and carry a human-readable name (e.g. `pkt.ether_type` or
/// `flow_table.get#0.hit`) used when printing path constraints.
pub type SymId = u32;

/// Bit width of a term. Only the widths that occur in packet processing are
/// representable; this keeps width arithmetic trivial and catches mistakes
/// (e.g. comparing a MAC address against a port number) at construction time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Width {
    /// Boolean (1 bit).
    W1,
    /// Byte.
    W8,
    /// 16-bit field (ports, EtherType).
    W16,
    /// 32-bit field (IPv4 addresses).
    W32,
    /// 48-bit field (MAC addresses).
    W48,
    /// 64-bit field (timestamps, counters).
    W64,
}

impl Width {
    /// Number of bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W1 => 1,
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W48 => 48,
            Width::W64 => 64,
        }
    }

    /// Mask with the low `bits()` bits set.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// The width needed for a byte count (1, 2, 4, 6, 8), used when loading
    /// packet fields.
    pub fn from_bytes(bytes: usize) -> Width {
        match bytes {
            1 => Width::W8,
            2 => Width::W16,
            4 => Width::W32,
            6 => Width::W48,
            8 => Width::W64,
            _ => panic!("unsupported field size: {bytes} bytes"),
        }
    }
}

/// Reference to a term inside a [`TermPool`](crate::TermPool).
///
/// `TermRef`s are only meaningful together with the pool that created them;
/// mixing pools is a logic error (caught by debug assertions on width
/// queries where possible).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermRef(pub(crate) u32);

impl TermRef {
    /// Raw index of the term inside its pool (stable for the pool lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Serialization hook: rebuild a reference from a raw arena index.
    ///
    /// Only meaningful for indices obtained from [`TermRef::index`] against
    /// the same (or a bit-identically rehydrated) pool; the store codec
    /// validates indices against the pool length before use.
    pub fn from_raw(index: u32) -> TermRef {
        TermRef(index)
    }
}

impl fmt::Debug for TermRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Binary operators over equal-width terms.
///
/// Comparison operators (`Eq`, `Ne`, `Ult`, `Ule`) take equal-width operands
/// and produce a [`Width::W1`] result; all others preserve the operand width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo width).
    Shl,
    /// Logical shift right (shift amount taken modulo width).
    Shr,
    /// Equality (produces a boolean).
    Eq,
    /// Disequality (produces a boolean).
    Ne,
    /// Unsigned less-than (produces a boolean).
    Ult,
    /// Unsigned less-or-equal (produces a boolean).
    Ule,
}

impl BinOp {
    /// Whether this operator produces a 1-bit (boolean) result.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Ult | BinOp::Ule)
    }

    /// Concrete semantics of the operator on `width`-bit values.
    pub fn apply(self, a: u64, b: u64, width: Width) -> u64 {
        let m = width.mask();
        let (a, b) = (a & m, b & m);
        let r = match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                if b >= width.bits() as u64 {
                    0
                } else {
                    a << b
                }
            }
            BinOp::Shr => {
                if b >= width.bits() as u64 {
                    0
                } else {
                    a >> b
                }
            }
            BinOp::Eq => (a == b) as u64,
            BinOp::Ne => (a != b) as u64,
            BinOp::Ult => (a < b) as u64,
            BinOp::Ule => (a <= b) as u64,
        };
        if self.is_comparison() {
            r
        } else {
            r & m
        }
    }

    /// Symbol used when pretty-printing.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Ult => "<",
            BinOp::Ule => "<=",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Bitwise complement (on booleans this is logical negation).
    Not,
}

impl UnOp {
    /// Concrete semantics on a `width`-bit value.
    pub fn apply(self, a: u64, width: Width) -> u64 {
        match self {
            UnOp::Not => !a & width.mask(),
        }
    }
}

/// A term node. Construct via [`TermPool`](crate::TermPool) methods, which
/// hash-cons and constant-fold.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A constant, already masked to `width`.
    Const { value: u64, width: Width },
    /// A free symbolic variable.
    Sym { id: SymId, width: Width },
    /// Unary application.
    Unop { op: UnOp, a: TermRef },
    /// Binary application.
    Binop { op: BinOp, a: TermRef, b: TermRef },
    /// If-then-else: `c` must be boolean, `t`/`e` equal widths.
    Ite { c: TermRef, t: TermRef, e: TermRef },
    /// Zero-extension of `a` to a wider `width`.
    Zext { a: TermRef, width: Width },
    /// Truncation of `a` to a narrower `width` (keeps the low bits).
    Trunc { a: TermRef, width: Width },
}
