//! Property-based tests: the term pool's constant folding and algebraic
//! simplification must never change a term's value, and the performance
//! polynomial algebra must satisfy the semiring laws.

use bolt_expr::{BinOp, Monomial, PcvAssignment, PcvId, PerfExpr, TermPool, TermRef, UnOp, Width};
use proptest::prelude::*;

/// A recipe for building a random term over two symbols.
#[derive(Debug, Clone)]
enum Recipe {
    SymA,
    SymB,
    Const(u64),
    Un(UnOp, Box<Recipe>),
    Bin(BinOp, Box<Recipe>, Box<Recipe>),
    Ite(Box<Recipe>, Box<Recipe>, Box<Recipe>),
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        Just(Recipe::SymA),
        Just(Recipe::SymB),
        any::<u64>().prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone()).prop_map(|a| Recipe::Un(UnOp::Not, Box::new(a))),
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Recipe::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Recipe::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// Build through the (simplifying) pool.
fn build(pool: &mut TermPool, r: &Recipe, a: TermRef, b: TermRef) -> TermRef {
    match r {
        Recipe::SymA => a,
        Recipe::SymB => b,
        Recipe::Const(v) => pool.constant(*v, Width::W32),
        Recipe::Un(op, x) => {
            let x = build(pool, x, a, b);
            pool.unop(*op, x)
        }
        Recipe::Bin(op, x, y) => {
            let x = build(pool, x, a, b);
            let y = build(pool, y, a, b);
            pool.binop(*op, x, y)
        }
        Recipe::Ite(c, x, y) => {
            let c = build(pool, c, a, b);
            let zero = pool.constant(0, Width::W32);
            let cb = pool.ne(c, zero);
            let x = build(pool, x, a, b);
            let y = build(pool, y, a, b);
            pool.ite(cb, x, y)
        }
    }
}

/// Reference semantics: evaluate the recipe directly (no simplification).
fn eval_ref(r: &Recipe, va: u64, vb: u64) -> u64 {
    let m = Width::W32.mask();
    match r {
        Recipe::SymA => va & m,
        Recipe::SymB => vb & m,
        Recipe::Const(v) => v & m,
        Recipe::Un(op, x) => op.apply(eval_ref(x, va, vb), Width::W32),
        Recipe::Bin(op, x, y) => op.apply(eval_ref(x, va, vb), eval_ref(y, va, vb), Width::W32),
        Recipe::Ite(c, x, y) => {
            if eval_ref(c, va, vb) != 0 {
                eval_ref(x, va, vb)
            } else {
                eval_ref(y, va, vb)
            }
        }
    }
}

proptest! {
    /// Simplification must be semantics-preserving for every input.
    #[test]
    fn simplifier_preserves_evaluation(r in arb_recipe(), va: u64, vb: u64) {
        let mut pool = TermPool::new();
        let a = pool.fresh_sym("a", Width::W32);
        let b = pool.fresh_sym("b", Width::W32);
        let t = build(&mut pool, &r, a, b);
        let got = pool.eval(t, &|id| if id == 0 { va } else { vb });
        let want = eval_ref(&r, va, vb);
        prop_assert_eq!(got, want);
    }

    /// zext(trunc-free value) then eval keeps the value; trunc masks.
    #[test]
    fn zext_trunc_semantics(v: u64) {
        let mut pool = TermPool::new();
        let s = pool.fresh_sym("s", Width::W16);
        let z = pool.zext(s, Width::W64);
        prop_assert_eq!(pool.eval(z, &|_| v), v & 0xFFFF);
        let s64 = pool.fresh_sym("w", Width::W64);
        let tr = pool.trunc(s64, Width::W8);
        prop_assert_eq!(pool.eval(tr, &|id| if id == 1 { v } else { 0 }), v & 0xFF);
    }

    /// PerfExpr addition and multiplication agree with pointwise
    /// evaluation (semiring homomorphism).
    #[test]
    fn perf_expr_semiring(
        c1 in 0u64..1000, c2 in 0u64..1000,
        k1 in 0u64..100, k2 in 0u64..100,
        e in 0u64..1000, t in 0u64..1000,
    ) {
        let pe = PcvId(0);
        let pt = PcvId(1);
        let mut x = PerfExpr::constant(c1);
        x.add_assign(&PerfExpr::var(pe, k1));
        let mut y = PerfExpr::constant(c2);
        y.add_assign(&PerfExpr::var(pt, k2));
        let mut env = PcvAssignment::new();
        env.set(pe, e).set(pt, t);
        let xv = c1 + k1 * e;
        let yv = c2 + k2 * t;
        prop_assert_eq!(x.add(&y).eval(&env), xv + yv);
        prop_assert_eq!(x.mul(&y).eval(&env), xv * yv);
        prop_assert_eq!(x.scale(3).eval(&env), 3 * xv);
        // Monomial product commutes.
        let m1 = Monomial::var(pe).mul(&Monomial::var(pt));
        let m2 = Monomial::var(pt).mul(&Monomial::var(pe));
        prop_assert_eq!(m1, m2);
    }

    /// dominated_by implies pointwise ≤ at arbitrary assignments.
    #[test]
    fn dominance_is_sound(
        c in 0u64..100, k in 0u64..50, extra_c in 0u64..100, extra_k in 0u64..50,
        e in 0u64..10_000,
    ) {
        let pe = PcvId(0);
        let mut small = PerfExpr::constant(c);
        small.add_assign(&PerfExpr::var(pe, k));
        let mut big = PerfExpr::constant(c + extra_c);
        big.add_assign(&PerfExpr::var(pe, k + extra_k));
        prop_assert!(small.dominated_by(&big));
        let mut env = PcvAssignment::new();
        env.set(pe, e);
        prop_assert!(small.eval(&env) <= big.eval(&env));
    }
}
