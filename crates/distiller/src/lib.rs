//! The BOLT Distiller (§4).
//!
//! A performance contract has hundreds of paths with their own
//! assumptions; the Distiller tells the user *which assumptions hold in
//! practice*. It consumes the trace of a concrete run (the production
//! build processing a packet sample) and logs, per packet, the values
//! every PCV took — then aggregates them into the reports the paper's
//! use cases are built on: the expired-flow PDFs of Tables 7/8, the
//! bucket-traversal CCDF of Figure 2, and worst-case PCV bindings for
//! conservative class queries.
//!
//! The Distiller is a [`Tracer`]: tee it alongside the counting sink and
//! the hardware model when running a workload. It never affects the
//! contract (§4: "the distiller does not affect the generated performance
//! contract in any way").

pub mod runner;

pub use runner::NfRunner;

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bolt_expr::{PcvAssignment, PcvId, PcvTable};
use bolt_trace::{Marker, TraceEvent, Tracer};

/// Per-packet PCV observations. Within one packet, repeated observations
/// of the same PCV keep the maximum (the conservative per-packet binding)
/// and the sum (useful for totals like "collisions seen while expiring").
#[derive(Debug, Clone, Default)]
pub struct PacketObs {
    /// Packet sequence number.
    pub seq: u64,
    /// Max-combined per-PCV values.
    pub max: PcvAssignment,
    /// Sum-combined per-PCV values.
    pub sum: BTreeMap<PcvId, u64>,
}

/// The Distiller sink.
#[derive(Debug, Default)]
pub struct Distiller {
    packets: Vec<PacketObs>,
    current: Option<PacketObs>,
}

impl Distiller {
    /// New empty distiller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-packet observations, in arrival order.
    pub fn packets(&self) -> &[PacketObs] {
        &self.packets
    }

    /// Histogram of a PCV's per-packet (max) values.
    pub fn histogram(&self, pcv: PcvId) -> BTreeMap<u64, u64> {
        let mut h = BTreeMap::new();
        for p in &self.packets {
            *h.entry(p.max.get(pcv)).or_insert(0u64) += 1;
        }
        h
    }

    /// Probability density (value, fraction) of a PCV.
    pub fn pdf(&self, pcv: PcvId) -> Vec<(u64, f64)> {
        let n = self.packets.len().max(1) as f64;
        self.histogram(pcv)
            .into_iter()
            .map(|(v, c)| (v, c as f64 / n))
            .collect()
    }

    /// Complementary CDF of a PCV: `(value, P[X > value])`.
    pub fn ccdf(&self, pcv: PcvId) -> Vec<(u64, f64)> {
        let n = self.packets.len().max(1) as f64;
        let h = self.histogram(pcv);
        let mut above = self.packets.len() as u64;
        let mut out = Vec::with_capacity(h.len());
        for (v, c) in h {
            above -= c;
            out.push((v, above as f64 / n));
        }
        out
    }

    /// The worst observed value of a PCV.
    pub fn worst(&self, pcv: PcvId) -> u64 {
        self.packets
            .iter()
            .map(|p| p.max.get(pcv))
            .max()
            .unwrap_or(0)
    }

    /// The pointwise-worst PCV binding over the whole trace — the binding
    /// the conservative class queries use.
    pub fn worst_assignment(&self) -> PcvAssignment {
        self.worst_assignment_from(0)
    }

    /// The pointwise-worst PCV binding over packets with `seq ≥ from`
    /// (scoping a query to the measurement phase of a run, past any
    /// state-preparation traffic).
    pub fn worst_assignment_from(&self, from: u64) -> PcvAssignment {
        let mut out = PcvAssignment::new();
        for p in self.packets.iter().filter(|p| p.seq >= from) {
            out.max_with(&p.max);
        }
        out
    }

    /// Render a Table 7/8-style report: the PDF of one PCV, bucketing
    /// values above `tail_from` into a `N+` row.
    pub fn report(&self, pcvs: &PcvTable, pcv: PcvId, tail_from: u64) -> String {
        let mut s = String::new();
        let name = pcvs.name(pcv);
        let _ = writeln!(s, "{:<24} probability density (%)", name);
        let n = self.packets.len().max(1) as f64;
        let mut tail = 0u64;
        for (v, c) in self.histogram(pcv) {
            if v >= tail_from {
                tail += c;
            } else {
                let _ = writeln!(s, "{:<24} {:.4}", v, c as f64 / n * 100.0);
            }
        }
        if tail > 0 {
            let _ = writeln!(
                s,
                "{:<24} {:.4}",
                format!("{tail_from}+"),
                tail as f64 / n * 100.0
            );
        }
        s
    }
}

impl Tracer for Distiller {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Mark(Marker::PacketStart(seq)) => {
                // Burst runs emit all PacketStart markers before the NF
                // body (see `DpdkEnv::process_burst`): close out the
                // packet in flight instead of silently merging it, so
                // `packets` stays one observation per packet. Within a
                // burst, the body's observations land on the burst's
                // last packet — coarse (and conservative for max-style
                // queries), exactly the attribution the burst trades
                // away.
                if let Some(p) = self.current.take() {
                    self.packets.push(p);
                }
                self.current = Some(PacketObs {
                    seq,
                    ..Default::default()
                });
            }
            TraceEvent::Mark(Marker::PacketEnd(_)) => {
                if let Some(p) = self.current.take() {
                    self.packets.push(p);
                }
            }
            TraceEvent::Pcv { pcv, value } => {
                if let Some(cur) = &mut self.current {
                    let old = cur.max.get(pcv);
                    cur.max.set(pcv, old.max(value));
                    *cur.sum.entry(pcv).or_insert(0) += value;
                }
            }
            _ => {}
        }
    }
}

/// CCDF over arbitrary float samples (for latency plots — Figures 2/4).
pub fn ccdf_samples(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len().max(1) as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, 1.0 - (i + 1) as f64 / n))
        .collect()
}

/// CDF over float samples (Figures 6/7).
pub fn cdf_samples(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len().max(1) as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Percentile of float samples (0.0 ≤ q ≤ 1.0).
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::PcvTable;

    fn feed(distiller: &mut Distiller, per_packet: &[&[(u32, u64)]]) {
        for (seq, obs) in per_packet.iter().enumerate() {
            distiller.event(TraceEvent::Mark(Marker::PacketStart(seq as u64)));
            for &(pcv, v) in obs.iter() {
                distiller.event(TraceEvent::Pcv {
                    pcv: PcvId(pcv),
                    value: v,
                });
            }
            distiller.event(TraceEvent::Mark(Marker::PacketEnd(seq as u64)));
        }
    }

    #[test]
    fn per_packet_max_and_sum() {
        let mut d = Distiller::new();
        feed(&mut d, &[&[(0, 3), (0, 7), (0, 2)]]);
        assert_eq!(d.packets().len(), 1);
        assert_eq!(d.packets()[0].max.get(PcvId(0)), 7);
        assert_eq!(d.packets()[0].sum[&PcvId(0)], 12);
    }

    #[test]
    fn histogram_and_pdf() {
        let mut d = Distiller::new();
        feed(&mut d, &[&[(0, 1)], &[(0, 1)], &[(0, 3)], &[]]);
        let h = d.histogram(PcvId(0));
        assert_eq!(h[&1], 2);
        assert_eq!(h[&3], 1);
        assert_eq!(h[&0], 1, "packets without observations read 0");
        let pdf = d.pdf(PcvId(0));
        let total: f64 = pdf.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let mut d = Distiller::new();
        feed(&mut d, &[&[(0, 1)], &[(0, 2)], &[(0, 2)], &[(0, 5)]]);
        let ccdf = d.ccdf(PcvId(0));
        for w in ccdf.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(ccdf.last().unwrap().1, 0.0);
    }

    #[test]
    fn worst_assignment_is_pointwise_max() {
        let mut d = Distiller::new();
        feed(&mut d, &[&[(0, 5), (1, 1)], &[(0, 2), (1, 9)]]);
        let w = d.worst_assignment();
        assert_eq!(w.get(PcvId(0)), 5);
        assert_eq!(w.get(PcvId(1)), 9);
        assert_eq!(d.worst(PcvId(1)), 9);
    }

    #[test]
    fn report_buckets_tail() {
        let mut t = PcvTable::new();
        let e = t.intern("e");
        let mut d = Distiller::new();
        feed(&mut d, &[&[(0, 0)], &[(0, 64)], &[(0, 65)], &[(0, 70)]]);
        let rep = d.report(&t, e, 66);
        assert!(rep.contains("66+"));
        assert!(rep.contains("64"));
    }

    #[test]
    fn float_cdf_helpers() {
        let samples = [4.0, 1.0, 3.0, 2.0];
        let cdf = cdf_samples(&samples);
        assert_eq!(cdf[0], (1.0, 0.25));
        assert_eq!(cdf[3], (4.0, 1.0));
        let ccdf = ccdf_samples(&samples);
        assert_eq!(ccdf[3].1, 0.0);
        assert_eq!(percentile(&samples, 0.5), 3.0); // round-half-up convention
        assert_eq!(percentile(&samples, 1.0), 4.0);
    }
}
