//! Concrete-run harness: plays a workload through an NF's production
//! build with every measurement sink attached.
//!
//! Per packet the runner advances the simulated clock, then tees the
//! event stream into (a) streaming IC/MA counters, (b) the warm
//! [`TestbedModel`] for measured cycles (the paper's per-packet TSC
//! readings), and (c) the [`Distiller`]. It records per-packet IC/MA/
//! cycle samples and verdicts, which is everything the evaluation's
//! tables and figures consume.

use bolt_hw::{PerPacketCycles, TestbedModel};
use bolt_see::{ConcreteCtx, NfVerdict};
use bolt_trace::{CountingTracer, TeeTracer};
use bolt_workloads::TimedPacket;
use dpdk_sim::{DpdkEnv, Mbuf, StackLevel};
use nf_lib::clock::{Clock, Granularity};

use crate::Distiller;

/// Per-packet measurement record.
#[derive(Debug, Clone, Copy)]
pub struct PacketSample {
    /// Packet sequence number.
    pub seq: u64,
    /// Executed instructions.
    pub ic: u64,
    /// Memory accesses.
    pub ma: u64,
    /// Simulated testbed cycles.
    pub cycles: f64,
    /// The NF's verdict.
    pub verdict: NfVerdict,
}

/// The harness.
pub struct NfRunner {
    env: DpdkEnv,
    /// The simulated clock the NF reads (advanced to each packet's
    /// arrival time before processing).
    pub clock: Clock,
    counting: CountingTracer,
    cycles: PerPacketCycles<TestbedModel>,
    /// The distiller capturing PCV observations.
    pub distiller: Distiller,
    /// Per-packet samples, in arrival order.
    pub samples: Vec<PacketSample>,
}

impl NfRunner {
    /// New harness at the given stack level and clock granularity.
    pub fn new(level: StackLevel, granularity: Granularity) -> Self {
        NfRunner {
            env: DpdkEnv::new(level, 512, 2048),
            clock: Clock::new(granularity),
            counting: CountingTracer::new(),
            cycles: PerPacketCycles::testbed(TestbedModel::new()),
            distiller: Distiller::new(),
            samples: Vec::new(),
        }
    }

    /// Play a workload: `body` receives the context, the mbuf, and the
    /// clock (already advanced to the packet's arrival time) and runs the
    /// NF's `process`. NFs that keep no time-stamped state simply ignore
    /// the clock — reading it is the NF's own (costed) decision, exactly
    /// as in the analysis build.
    pub fn play<F>(&mut self, packets: &[TimedPacket], mut body: F)
    where
        F: FnMut(&mut ConcreteCtx<'_>, Mbuf, &Clock),
    {
        for p in packets {
            self.clock.advance_to(p.t_ns.max(self.clock.t_ns));
            let seq = self.env.packets_seen();
            let ic0 = self.counting.instructions;
            let ma0 = self.counting.mem_accesses;
            let cyc_idx = self.cycles.samples.len();
            let clock = self.clock.clone();
            let verdict = {
                let mut tee = TeeTracer::new(vec![
                    &mut self.counting,
                    &mut self.cycles,
                    &mut self.distiller,
                ]);
                let mut ctx = ConcreteCtx::new(&mut tee);
                self.env
                    .process_packet(&mut ctx, &p.frame, p.port, |ctx, mbuf| {
                        body(ctx, mbuf, &clock);
                    })
            };
            let cycles = self
                .cycles
                .samples
                .get(cyc_idx)
                .map(|&(_, c)| c)
                .unwrap_or(0.0);
            self.samples.push(PacketSample {
                seq,
                ic: self.counting.instructions - ic0,
                ma: self.counting.mem_accesses - ma0,
                cycles,
                verdict,
            });
        }
    }

    /// Total instructions so far.
    pub fn total_ic(&self) -> u64 {
        self.counting.instructions
    }

    /// Total memory accesses so far.
    pub fn total_ma(&self) -> u64 {
        self.counting.mem_accesses
    }

    /// Per-packet cycle samples as floats (for CDF/CCDF plots).
    pub fn cycle_samples(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.cycles).collect()
    }

    /// The worst per-packet sample by a selector.
    pub fn worst_by<K: Ord>(&self, f: impl Fn(&PacketSample) -> K) -> Option<&PacketSample> {
        self.samples.iter().max_by_key(|s| f(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_nfs::bridge;
    use bolt_trace::AddressSpace;
    use bolt_workloads::generators::bridge_traffic;
    use nf_lib::registry::DsRegistry;

    #[test]
    fn runner_collects_per_packet_samples() {
        let mut reg = DsRegistry::new();
        let cfg = bridge::BridgeConfig {
            capacity: 256,
            ..Default::default()
        };
        let ids = bridge::register(&mut reg, &cfg);
        let mut aspace = AddressSpace::new();
        let mut b = bridge::Bridge::new(ids, &cfg, &mut aspace);
        let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
        let pkts = bridge_traffic(1, 200, 64, false, 1000);
        runner.play(&pkts, |ctx, mbuf, clock| {
            let now = clock.now(ctx);
            bridge::process(ctx, &mut b.table, now, mbuf);
        });
        assert_eq!(runner.samples.len(), 200);
        assert!(runner.total_ic() > 200 * 50);
        for s in &runner.samples {
            assert!(s.ic > 0);
            assert!(s.cycles > 0.0);
        }
        // The distiller saw per-packet observations.
        assert_eq!(runner.distiller.packets().len(), 200);
        // PCV `t` was observed at least once under collisions.
        let _ = runner.distiller.worst_assignment();
    }
}
