//! Concrete-run harness: plays a workload through an NF's production
//! build with every measurement sink attached.
//!
//! Per packet the runner advances the simulated clock, then tees the
//! event stream into (a) streaming IC/MA counters, (b) the warm
//! [`TestbedModel`] for measured cycles (the paper's per-packet TSC
//! readings), and (c) the [`Distiller`]. It records per-packet IC/MA/
//! cycle samples and verdicts, which is everything the evaluation's
//! tables and figures consume.

use bolt_core::nf::NetworkFunction;
use bolt_hw::{PerPacketCycles, TestbedModel};
use bolt_see::{ConcreteCtx, NfVerdict};
use bolt_trace::{CountingTracer, TeeTracer};
use bolt_workloads::TimedPacket;
use dpdk_sim::{DpdkEnv, Mbuf, StackLevel};
use nf_lib::clock::{Clock, Granularity};

use crate::Distiller;

/// Per-packet measurement record.
#[derive(Debug, Clone, Copy)]
pub struct PacketSample {
    /// Packet sequence number.
    pub seq: u64,
    /// Executed instructions.
    pub ic: u64,
    /// Memory accesses.
    pub ma: u64,
    /// Simulated testbed cycles.
    pub cycles: f64,
    /// The NF's verdict.
    pub verdict: NfVerdict,
}

/// Per-burst measurement record (see [`NfRunner::play_nf_bursts`]).
#[derive(Debug, Clone)]
pub struct BurstSample {
    /// Sequence number of the burst's first packet.
    pub first_seq: u64,
    /// Packets in the burst.
    pub len: usize,
    /// Executed instructions across the burst.
    pub ic: u64,
    /// Memory accesses across the burst.
    pub ma: u64,
    /// Simulated testbed cycles across the burst.
    pub cycles: f64,
    /// Per-packet verdicts, in mbuf order.
    pub verdicts: Vec<NfVerdict>,
}

/// The harness.
pub struct NfRunner {
    env: DpdkEnv,
    /// The simulated clock the NF reads (advanced to each packet's
    /// arrival time before processing).
    pub clock: Clock,
    counting: CountingTracer,
    cycles: PerPacketCycles<TestbedModel>,
    /// The distiller capturing PCV observations.
    pub distiller: Distiller,
    /// Per-packet samples, in arrival order.
    pub samples: Vec<PacketSample>,
    /// Per-burst samples, in arrival order (burst-driven runs only).
    pub burst_samples: Vec<BurstSample>,
}

impl NfRunner {
    /// New harness at the given stack level and clock granularity.
    pub fn new(level: StackLevel, granularity: Granularity) -> Self {
        NfRunner {
            env: DpdkEnv::new(level, 512, 2048),
            clock: Clock::new(granularity),
            counting: CountingTracer::new(),
            cycles: PerPacketCycles::testbed(TestbedModel::new()),
            distiller: Distiller::new(),
            samples: Vec::new(),
            burst_samples: Vec::new(),
        }
    }

    /// Play a workload: `body` receives the context, the mbuf, and the
    /// clock (already advanced to the packet's arrival time) and runs the
    /// NF's `process`. NFs that keep no time-stamped state simply ignore
    /// the clock — reading it is the NF's own (costed) decision, exactly
    /// as in the analysis build.
    pub fn play<F>(&mut self, packets: &[TimedPacket], mut body: F)
    where
        F: FnMut(&mut ConcreteCtx<'_>, Mbuf, &Clock),
    {
        for p in packets {
            self.clock.advance_to(p.t_ns.max(self.clock.t_ns));
            let seq = self.env.packets_seen();
            let ic0 = self.counting.instructions;
            let ma0 = self.counting.mem_accesses;
            let cyc_idx = self.cycles.samples.len();
            let clock = self.clock.clone();
            let verdict = {
                let mut tee = TeeTracer::new(vec![
                    &mut self.counting,
                    &mut self.cycles,
                    &mut self.distiller,
                ]);
                let mut ctx = ConcreteCtx::new(&mut tee);
                self.env
                    .process_packet(&mut ctx, &p.frame, p.port, |ctx, mbuf| {
                        body(ctx, mbuf, &clock);
                    })
            };
            let cycles = self
                .cycles
                .samples
                .get(cyc_idx)
                .map(|&(_, c)| c)
                .unwrap_or(0.0);
            self.samples.push(PacketSample {
                seq,
                ic: self.counting.instructions - ic0,
                ma: self.counting.mem_accesses - ma0,
                cycles,
                verdict,
            });
        }
    }

    /// Play a workload through a [`NetworkFunction`]'s production build:
    /// the trait-driven equivalent of [`NfRunner::play`], packet at a
    /// time (full per-packet samples and distillation).
    pub fn play_nf<N: NetworkFunction>(
        &mut self,
        nf: &N,
        state: &mut N::State,
        packets: &[TimedPacket],
    ) {
        self.play(packets, |ctx, mbuf, clock| {
            nf.process(ctx, state, clock, mbuf);
        });
    }

    /// Play a workload in bursts of `burst` packets through
    /// [`NetworkFunction::process_batch`] — the device-loop shape. Each
    /// burst is delivered when its last packet has arrived (one poll per
    /// burst); measurements are recorded per burst in
    /// [`NfRunner::burst_samples`], since the NF body is bracketed once
    /// per burst.
    pub fn play_nf_bursts<N: NetworkFunction>(
        &mut self,
        nf: &N,
        state: &mut N::State,
        packets: &[TimedPacket],
        burst: usize,
    ) {
        assert!(burst > 0, "burst size must be positive");
        for chunk in packets.chunks(burst) {
            let t_last = chunk.iter().map(|p| p.t_ns).max().unwrap_or(0);
            self.clock.advance_to(t_last.max(self.clock.t_ns));
            let first_seq = self.env.packets_seen();
            let ic0 = self.counting.instructions;
            let ma0 = self.counting.mem_accesses;
            // Per-packet cycle attribution is impossible inside a burst
            // (the interleaved markers defeat `PerPacketCycles`), so the
            // burst's cycles are read directly off the testbed model.
            let cyc0 = self.cycles.model.cycles_f64();
            let clock = self.clock.clone();
            let frames: Vec<(&[u8], u16)> =
                chunk.iter().map(|p| (p.frame.as_slice(), p.port)).collect();
            let verdicts = {
                let mut tee = TeeTracer::new(vec![
                    &mut self.counting,
                    &mut self.cycles,
                    &mut self.distiller,
                ]);
                let mut ctx = ConcreteCtx::new(&mut tee);
                self.env.process_burst(&mut ctx, &frames, |ctx, mbufs| {
                    nf.process_batch(ctx, state, &clock, mbufs);
                })
            };
            let cycles = self.cycles.model.cycles_f64() - cyc0;
            self.burst_samples.push(BurstSample {
                first_seq,
                len: chunk.len(),
                ic: self.counting.instructions - ic0,
                ma: self.counting.mem_accesses - ma0,
                cycles,
                verdicts,
            });
        }
    }

    /// Total instructions so far.
    pub fn total_ic(&self) -> u64 {
        self.counting.instructions
    }

    /// Total memory accesses so far.
    pub fn total_ma(&self) -> u64 {
        self.counting.mem_accesses
    }

    /// Per-packet cycle samples as floats (for CDF/CCDF plots).
    pub fn cycle_samples(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.cycles).collect()
    }

    /// The worst per-packet sample by a selector.
    pub fn worst_by<K: Ord>(&self, f: impl Fn(&PacketSample) -> K) -> Option<&PacketSample> {
        self.samples.iter().max_by_key(|s| f(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_nfs::bridge::{self, Bridge, BridgeConfig};
    use bolt_trace::AddressSpace;
    use bolt_workloads::generators::bridge_traffic;
    use nf_lib::registry::DsRegistry;

    fn test_bridge() -> (Bridge, bridge::BridgeState) {
        let nf = Bridge::with(BridgeConfig {
            capacity: 256,
            ..Default::default()
        });
        let mut reg = DsRegistry::new();
        let ids = nf.register(&mut reg);
        let mut aspace = AddressSpace::new();
        let state = nf.state(ids, &mut aspace);
        (nf, state)
    }

    #[test]
    fn runner_collects_per_packet_samples() {
        let (nf, mut state) = test_bridge();
        let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
        let pkts = bridge_traffic(1, 200, 64, false, 1000);
        runner.play_nf(&nf, &mut state, &pkts);
        assert_eq!(runner.samples.len(), 200);
        assert!(runner.total_ic() > 200 * 50);
        for s in &runner.samples {
            assert!(s.ic > 0);
            assert!(s.cycles > 0.0);
        }
        // The distiller saw per-packet observations.
        assert_eq!(runner.distiller.packets().len(), 200);
        // PCV `t` was observed at least once under collisions.
        let _ = runner.distiller.worst_assignment();
    }

    #[test]
    fn burst_runs_match_per_packet_totals() {
        let pkts = bridge_traffic(7, 192, 64, false, 1000);

        let (nf, mut state) = test_bridge();
        let mut per_packet = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
        per_packet.play_nf(&nf, &mut state, &pkts);

        let (nf2, mut state2) = test_bridge();
        let mut bursty = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
        bursty.play_nf_bursts(&nf2, &mut state2, &pkts, 32);

        assert_eq!(bursty.burst_samples.len(), 192 / 32);
        assert!(bursty.samples.is_empty(), "burst runs record burst samples");
        // The distiller still sees one observation per packet (burst
        // marker ordering must not merge or drop packets).
        assert_eq!(bursty.distiller.packets().len(), 192);
        let burst_pkts: usize = bursty.burst_samples.iter().map(|b| b.len).sum();
        assert_eq!(burst_pkts, 192);
        for b in &bursty.burst_samples {
            assert!(b.ic > 0);
            assert!(b.cycles > 0.0);
            assert_eq!(b.verdicts.len(), b.len);
        }
        // Identical work, identical totals — except the clock: a burst is
        // delivered at its last packet's arrival, so timestamps (and thus
        // expiry sweeps on this idle-table workload) can only coarsen.
        // With an effectively-infinite TTL here the totals are exact.
        assert_eq!(bursty.total_ic(), per_packet.total_ic());
        assert_eq!(bursty.total_ma(), per_packet.total_ma());
        // Verdicts agree packet for packet.
        let flat: Vec<NfVerdict> = bursty
            .burst_samples
            .iter()
            .flat_map(|b| b.verdicts.iter().copied())
            .collect();
        let single: Vec<NfVerdict> = per_packet.samples.iter().map(|s| s.verdict).collect();
        assert_eq!(flat, single);
    }
}
