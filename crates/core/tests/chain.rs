//! Chain-composition behaviour (§3.4) against real NFs, driven through
//! the [`Pipeline`] abstraction.

use bolt_core::nf::NetworkFunction;
use bolt_core::{naive_add, Composer, NfContract, Pipeline};
use bolt_expr::PcvAssignment;
use bolt_nfs::{Firewall, StaticRouter};
use bolt_see::NfVerdict;
use bolt_solver::Solver;
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

fn chain() -> (NfContract, NfContract, NfContract) {
    let fw = Firewall::default()
        .contract(StackLevel::NfOnly)
        .into_inner();
    let rt = StaticRouter::default()
        .contract(StackLevel::NfOnly)
        .into_inner();
    let composed = Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default())
        .contract(StackLevel::NfOnly)
        .unwrap();
    (fw, rt, composed)
}

#[test]
fn pipeline_reports_its_shape() {
    let p = Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default());
    assert_eq!(p.len(), 2);
    assert!(!p.is_empty());
    assert_eq!(p.names(), vec!["firewall", "static_router"]);
    assert!(Pipeline::new().contract(StackLevel::NfOnly).is_none());
    // The generalised naive-add agrees with the 2-NF free function,
    // both through the explore-per-call form and over pre-built
    // contracts.
    let env = PcvAssignment::new();
    let contracts = p.contracts(StackLevel::NfOnly);
    let two_nf = naive_add(&contracts[0], &contracts[1], Metric::Instructions, &env);
    assert_eq!(
        Pipeline::naive_add_of(&contracts, Metric::Instructions, &env),
        two_nf
    );
    assert_eq!(
        p.naive_add(StackLevel::NfOnly, Metric::Instructions, &env),
        two_nf
    );
}

#[test]
fn firewall_masks_router_option_paths() {
    let (_, rt, composed) = chain();
    // The router alone has expensive option paths…
    let env = PcvAssignment::new();
    let rt_worst = rt
        .paths
        .iter()
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    // …but no composed path pairs a forwarded firewall packet with a
    // router option path: packets with options died at the firewall.
    for p in &composed.paths {
        assert!(
            !(p.has_tag("no-options") && p.has_tag("ip-options")),
            "firewall-accepted traffic must not reach router option paths"
        );
    }
    let composed_worst = composed
        .paths
        .iter()
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    let naive = naive_add(&chain().0, &rt, Metric::Instructions, &env);
    assert!(
        composed_worst < naive,
        "composition must beat naive addition: {composed_worst} vs {naive}"
    );
    let _ = rt_worst;
}

#[test]
fn dropped_upstream_paths_stand_alone() {
    let (fw, _, composed) = chain();
    // Firewall option-drop path appears in the chain unpaired, with
    // the firewall-only cost.
    let env = PcvAssignment::new();
    let fw_drop = fw
        .tagged("ip-options")
        .next()
        .unwrap()
        .expr(Metric::Instructions)
        .eval(&env);
    let chain_drop = composed
        .tagged("ip-options")
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    assert_eq!(fw_drop, chain_drop, "drop path cost is firewall-only");
}

#[test]
fn longer_chains_compose_pairwise() {
    // §3.4: longer chains are pieced together one NF at a time. A
    // firewall → router → router chain composes associatively enough
    // for provisioning: the three-NF contract still masks the option
    // paths and still beats naive addition. The three-stage Pipeline
    // composes left-to-right, i.e. (fw ∘ rt) ∘ rt.
    let (fw, rt, fw_rt) = chain();
    let solver = Solver::default();
    let three = Composer::new(&solver).compose(&fw_rt, &rt);
    let env = PcvAssignment::new();
    assert!(!three.paths.is_empty());
    for p in &three.paths {
        assert!(
            !(p.has_tag("no-options") && p.has_tag("ip-options")),
            "masking must survive a second composition"
        );
    }
    let worst3 = three
        .paths
        .iter()
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    let naive3 = naive_add(&fw_rt, &rt, Metric::Instructions, &env).max(naive_add(
        &fw,
        &rt,
        Metric::Instructions,
        &env,
    ));
    assert!(worst3 < naive3 + naive_add(&fw, &rt, Metric::Instructions, &env));
    // The three-NF worst case is the two-NF worst case plus one more
    // clean router pass.
    let worst2 = fw_rt
        .paths
        .iter()
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    let rt_clean = rt
        .tagged("no-options")
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    assert_eq!(worst3, worst2 + rt_clean);

    // The same three-stage chain through Pipeline gives the same worst
    // case (Pipeline::contract is exactly this left fold).
    let three_pipeline = Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default())
        .push(StaticRouter::default())
        .contract(StackLevel::NfOnly)
        .unwrap();
    let worst3p = three_pipeline
        .paths
        .iter()
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .max()
        .unwrap();
    assert_eq!(worst3, worst3p);
}

#[test]
fn composed_pairs_sum_costs() {
    let (fw, rt, composed) = chain();
    let env = PcvAssignment::new();
    // Any composed forwarding path costs at least the cheapest
    // upstream forward plus the cheapest downstream path.
    let fw_min = fw
        .paths
        .iter()
        .filter(|p| matches!(p.verdict, Some(NfVerdict::Forward(_))))
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .min()
        .unwrap();
    let rt_min = rt
        .paths
        .iter()
        .map(|p| p.expr(Metric::Instructions).eval(&env))
        .min()
        .unwrap();
    for p in &composed.paths {
        if matches!(p.verdict, Some(NfVerdict::Forward(_))) {
            assert!(p.expr(Metric::Instructions).eval(&env) >= fw_min + rt_min);
        }
    }
}
