//! BOLT's contract generator — the paper's primary contribution.
//!
//! [`generate`] implements Algorithm 2: it takes the feasible paths the
//! symbolic engine found through the model-linked NF build, walks each
//! path's instruction trace, charges constant costs for stateless events
//! (with the conservative hardware model supplying the cycles metric),
//! and substitutes each recorded stateful call with the contract case the
//! path's constraints selected. The result is an [`NfContract`]: one
//! [`PathContract`] per feasible path, each carrying a [`bolt_expr::PerfExpr`] per
//! metric over the library's PCVs.
//!
//! [`InputClass`] describes packet classes ("all valid IPv4 packets",
//! "broadcast frames", "packets from the internal network") as
//! constraints over packet fields and path tags; querying a contract for
//! a class returns the *worst* compatible path's prediction under a PCV
//! binding (§5.1's methodology: "BOLT reports the predicted performance
//! value of the execution path with the worst predicted performance").
//!
//! [`chain`] composes contracts of chained NFs (§3.4) by pairing paths,
//! conjoining their constraints with equality links between the upstream
//! NF's output packet expressions and the downstream NF's input symbols,
//! and keeping only solver-feasible pairs. [`composer`] is the unified
//! front door ([`Composer`]): one builder for caches, worker threads,
//! stores, and the chain parallelization planner, which proves adjacent
//! stages order-independent and turns the chain's cycle contract from a
//! sum into per-group `max + merge` ([`ChainPlan`]).
//!
//! [`nf`] is the unified NF abstraction: the [`NetworkFunction`] trait
//! gives every NF the explore→generate→query pipeline for free, the
//! fluent [`Bolt`] entrypoint chains it
//! (`Bolt::nf(...).explore(level).contract().query(...)`), and
//! [`Pipeline`] composes heterogeneous NFs into chain contracts via
//! trait objects.

//! [`store`] is the persistence layer: exploration is deterministic per
//! (NF config, stack level), so [`store::StoreExt::get_or_explore`]
//! turns contract extraction into a compile-once/query-forever artifact
//! — warm runs decode stored paths instead of re-running the explorer
//! and solver ([`codec`] holds the contract codec itself).

pub mod chain;
pub mod classes;
pub mod codec;
pub mod composer;
pub mod contract;
pub mod nf;
pub mod store;

#[allow(deprecated)]
pub use chain::{compose, compose_with};
pub use chain::{naive_add, stages_commute, ChainPlan, ChainReport, CommuteWitness, Pipeline};
pub use classes::{ClassSpec, InputClass};
pub use codec::{decode_contract, decode_plan, encode_contract, encode_plan};
pub use composer::Composer;
pub use contract::{generate, NfContract, PathContract, QueryResult};
pub use nf::{
    ambient_threads, AbstractNf, Bolt, Contract, Exploration, NetworkFunction, THREADS_ENV,
};
pub use store::{
    compose_key, env_store, level_name, plan_key, store_key, ContractStore, Fingerprint,
    Fingerprinter, StoreExt,
};
