//! The unified front door for chain composition: [`Composer`].
//!
//! Composition used to be four free-standing entry points
//! (`compose`, `compose_with`, `compose_all`, `compose_all_with`) whose
//! argument lists grew with every capability (shared caches, worker
//! threads, stores). `Composer` folds them into one builder:
//!
//! ```ignore
//! let solver = Solver::default();
//! let mut composer = Composer::new(&solver)
//!     .threads(8)
//!     .store(&store)
//!     .parallelize(true);
//! let report = composer.chain(&pipeline, StackLevel::FullStack).unwrap();
//! println!("{report}");
//! ```
//!
//! One `Composer` can serve many compositions: its solver cache (owned
//! by default, or borrowed via [`Composer::cache`]) carries feasibility
//! memos across calls, and [`ChainReport::solver`] always reports the
//! *delta* this run added, so reuse never inflates a report.
//!
//! Every composition is fed through the `bolt_obs` registry of the
//! attached store (or the process-global registry when composing
//! storeless): `compose.pairs` / `compose.steps` / `compose.steps_cached`
//! / `compose.stages_explored` / `compose.stages_cached` counters, the
//! `compose.wall` latency histogram, and — when planning —
//! `compose.plans`, `compose.plans_cached`, `compose.pairs_checked`,
//! `compose.pairs_commuting`, plus a `chain.plan` trace event under
//! `BOLT_TRACE`.

use std::sync::Arc;

use bolt_expr::{PcvAssignment, PerfExpr};
use bolt_hw::CostTable;
use bolt_obs::{trace, Registry, Value};
use bolt_solver::{Solver, SolverCache, SolverStats};
use bolt_store::ContractStore;
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

use crate::chain::{
    compose_pair, stages_commute, ChainPlan, ChainReport, CommuteWitness, Pipeline,
};
use crate::contract::NfContract;
use crate::store::{compose_key, level_name, plan_key, Fingerprint, StoreExt};

/// A solver cache the composer either owns or borrows: owning keeps the
/// builder chainable with zero ceremony; borrowing lets a caller share
/// one memo table between a composer and other solver clients.
enum CacheSlot<'a> {
    Owned(Box<SolverCache>),
    Borrowed(&'a mut SolverCache),
}

impl CacheSlot<'_> {
    fn get_mut(&mut self) -> &mut SolverCache {
        match self {
            CacheSlot::Owned(c) => c,
            CacheSlot::Borrowed(c) => c,
        }
    }

    fn stats(&self) -> SolverStats {
        match self {
            CacheSlot::Owned(c) => c.stats,
            CacheSlot::Borrowed(c) => c.stats,
        }
    }
}

/// Builder-style composition engine — see the module docs. All
/// configuration is optional: `Composer::new(&solver)` composes
/// sequentially with a fresh owned cache and no store.
pub struct Composer<'a> {
    solver: &'a Solver,
    cache: CacheSlot<'a>,
    threads: Option<usize>,
    store: Option<&'a ContractStore>,
    parallelize: bool,
}

impl<'a> Composer<'a> {
    /// A composer over `solver` with an owned, empty feasibility cache.
    pub fn new(solver: &'a Solver) -> Self {
        Composer {
            solver,
            cache: CacheSlot::Owned(Box::new(SolverCache::new())),
            threads: None,
            store: None,
            parallelize: false,
        }
    }

    /// Share an external solver cache (feasibility memos, witness
    /// models, and the stats counters) instead of the owned one.
    pub fn cache(mut self, cache: &'a mut SolverCache) -> Self {
        self.cache = CacheSlot::Borrowed(cache);
        self
    }

    /// Compose path pairs (and explore stages) on `n` worker threads.
    /// Overrides a pipeline's own setting and the ambient
    /// `BOLT_THREADS`; output is bit-identical at any count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Attach a persistent contract store consulted for stage
    /// explorations, composed fold steps, and chain plans. Overrides a
    /// pipeline's own store and the ambient `BOLT_STORE_DIR`.
    pub fn store(mut self, store: &'a ContractStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Enable the chain parallelization planner: [`Composer::chain`]
    /// will attach a [`ChainPlan`] to its report.
    pub fn parallelize(mut self, on: bool) -> Self {
        self.parallelize = on;
        self
    }

    /// The cache's accumulated solver counters (across everything this
    /// composer — and, for a borrowed cache, anyone sharing it — has
    /// done).
    pub fn stats(&self) -> SolverStats {
        self.cache.stats()
    }

    fn registry(&self) -> Arc<Registry> {
        match self.store {
            Some(s) => s.metrics().clone(),
            None => bolt_obs::global().clone(),
        }
    }

    fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(crate::nf::ambient_threads)
    }

    /// Compose two contracts into the contract of `first → second`
    /// (replaces the deprecated `compose`/`compose_with`).
    pub fn compose(&mut self, first: &NfContract, second: &NfContract) -> NfContract {
        let threads = self.resolved_threads();
        let registry = self.registry();
        let solver = self.solver;
        registry.counter("compose.pairs").inc();
        let _span = registry.histogram("compose.wall").span();
        compose_pair(first, second, solver, self.cache.get_mut(), threads)
    }

    /// Fold pre-built stage contracts left to right through this
    /// composer's cache (replaces the deprecated
    /// `Pipeline::compose_all`/`compose_all_with`). No store
    /// involvement — the contracts are already in hand; use
    /// [`Composer::chain`] for the memoized path.
    pub fn compose_all(&mut self, contracts: Vec<NfContract>) -> Option<NfContract> {
        let mut it = contracts.into_iter();
        let mut acc = it.next()?;
        for next in it {
            acc = self.compose(&acc, &next);
        }
        Some(acc)
    }

    /// Compose a [`Pipeline`] at `level`, reporting what the run did —
    /// the store-aware, provenance-counting chain fold (and, with
    /// [`Composer::parallelize`] enabled, the plan). `None` for an
    /// empty chain.
    ///
    /// Configuration precedence is composer-over-pipeline-over-ambient:
    /// an explicit [`Composer::threads`]/[`Composer::store`] wins,
    /// otherwise the pipeline's own settings, otherwise
    /// `BOLT_THREADS`/`BOLT_STORE_DIR`.
    pub fn chain(&mut self, pipeline: &Pipeline<'_>, level: StackLevel) -> Option<ChainReport> {
        if pipeline.stages.is_empty() {
            return None;
        }
        let threads = self
            .threads
            .or(pipeline.threads)
            .unwrap_or_else(crate::nf::ambient_threads);
        let ambient;
        let store = match self.store.or(pipeline.store) {
            Some(s) => Some(s),
            None => {
                ambient = crate::store::env_store();
                ambient.as_ref()
            }
        };
        let registry: Arc<Registry> = match store {
            Some(s) => s.metrics().clone(),
            None => bolt_obs::global().clone(),
        };
        let solver = self.solver;
        let cache = self.cache.get_mut();
        let stats_before = cache.stats;
        let (mut stages_explored, mut stages_cached) = (0usize, 0usize);
        let (mut steps_composed, mut steps_cached) = (0usize, 0usize);
        let keys: Vec<Fingerprint> = pipeline.stages.iter().map(|s| s.store_key(level)).collect();
        let names = pipeline.names();
        let chain_label = names.join("+");

        // The parallelization plan, when asked for. A store hit skips
        // every commutativity probe; a miss materialises all stage
        // contracts up front (the planner needs each stage's worst-case
        // cycles anyway) and hands them to the fold below so no stage is
        // built — or counted — twice.
        let mut plan: Option<ChainPlan> = None;
        let mut plan_cached = false;
        let mut prebuilt: Option<Vec<Option<NfContract>>> = None;
        if self.parallelize {
            let pkey = plan_key(&keys, level);
            if let Some(st) = store {
                if let Some(p) = st.get_plan(pkey) {
                    registry.counter("compose.plans_cached").inc();
                    plan = Some(p);
                    plan_cached = true;
                }
            }
            if plan.is_none() {
                let contracts: Vec<NfContract> = pipeline
                    .stages
                    .iter()
                    .map(|s| {
                        stage_contract(
                            s.as_ref(),
                            level,
                            store,
                            threads,
                            &mut stages_explored,
                            &mut stages_cached,
                        )
                    })
                    .collect();
                let p = build_plan(
                    &contracts, &keys, &names, level, solver, cache, threads, &registry,
                );
                if let Some(st) = store {
                    // A failed write costs only the next run's warm plan.
                    let _ = st.put_plan(pkey, &chain_label, level, &p);
                }
                registry.counter("compose.plans").inc();
                plan = Some(p);
                prebuilt = Some(contracts.into_iter().map(Some).collect());
            }
            if let Some(p) = &plan {
                let groups = p.groups_display();
                trace::emit(
                    "chain.plan",
                    &[
                        ("chain", Value::Str(&chain_label)),
                        ("level", Value::Str(level_name(level))),
                        ("groups", Value::Str(&groups)),
                        ("widest", Value::from(p.widest_group())),
                        ("speedup", Value::from(p.predicted_speedup())),
                        ("cached", Value::from(plan_cached)),
                    ],
                );
            }
        }

        let mut take_stage = |i: usize, explored: &mut usize, cached: &mut usize| -> NfContract {
            if let Some(v) = &mut prebuilt {
                if let Some(c) = v[i].take() {
                    return c;
                }
            }
            stage_contract(
                pipeline.stages[i].as_ref(),
                level,
                store,
                threads,
                explored,
                cached,
            )
        };

        // `cks[i]` addresses the composed contract of stages `0..=i`
        // (`cks[0]` is stage 0's own key; nothing composed is stored
        // under it).
        let mut cks: Vec<Fingerprint> = Vec::with_capacity(keys.len());
        cks.push(keys[0]);
        for i in 1..keys.len() {
            cks.push(compose_key(cks[i - 1], keys[i], level));
        }
        // Resume after the deepest stored composed prefix: a fully warm
        // run decodes exactly one record (the whole chain's) and a
        // partially warm one re-uses the longest memoized prefix.
        // `acc == None` means "the accumulator is still stage 0,
        // unmaterialised" — a warm fold never materialises it at all.
        let mut acc: Option<NfContract> = None;
        let mut start = 1;
        if let Some(st) = store {
            for i in (1..pipeline.stages.len()).rev() {
                if let Some(c) = st.get_composed(cks[i]) {
                    steps_cached += 1;
                    acc = Some(c);
                    start = i + 1;
                    break;
                }
            }
        }
        for i in start..pipeline.stages.len() {
            let left = match acc.take() {
                Some(c) => c,
                None => take_stage(0, &mut stages_explored, &mut stages_cached),
            };
            let right = take_stage(i, &mut stages_explored, &mut stages_cached);
            registry.counter("compose.pairs").inc();
            let composed = {
                let _span = registry.histogram("compose.wall").span();
                compose_pair(&left, &right, solver, cache, threads)
            };
            if let Some(st) = store {
                // A failed write costs only the next run's warm start.
                let _ = st.put_composed(cks[i], &names[..=i].join("+"), level, &composed);
            }
            steps_composed += 1;
            acc = Some(composed);
        }
        let contract = match acc {
            Some(c) => c,
            // Single-stage chain: the contract is the stage contract.
            None => take_stage(0, &mut stages_explored, &mut stages_cached),
        };
        registry.counter("compose.steps").add(steps_composed as u64);
        registry
            .counter("compose.steps_cached")
            .add(steps_cached as u64);
        registry
            .counter("compose.stages_explored")
            .add(stages_explored as u64);
        registry
            .counter("compose.stages_cached")
            .add(stages_cached as u64);
        Some(ChainReport {
            names: names.iter().map(|n| n.to_string()).collect(),
            level,
            key: *cks.last().expect("non-empty chain"),
            contract,
            solver: stats_delta(&cache.stats, &stats_before),
            steps_composed,
            steps_cached,
            stages_explored,
            stages_cached,
            plan,
            plan_cached,
        })
    }
}

/// Materialise one stage contract, through the store when one is
/// configured, bumping the matching provenance counter.
fn stage_contract(
    stage: &dyn crate::nf::AbstractNf,
    level: StackLevel,
    store: Option<&ContractStore>,
    threads: usize,
    explored: &mut usize,
    cached: &mut usize,
) -> NfContract {
    match store {
        Some(st) => {
            let (c, was_cached) = stage.explore_contract_via_store(level, st, threads);
            if was_cached {
                *cached += 1;
            } else {
                *explored += 1;
            }
            c
        }
        None => {
            *explored += 1;
            stage.explore_contract_threads(level, threads)
        }
    }
}

/// Greedy commutativity partition: stage `i` joins the current group iff
/// it provably commutes with *every* member (pairwise proofs compose:
/// any execution order inside the group rewrites to the original by
/// adjacent swaps, each justified by one witness). Stages with identical
/// store keys — same NF, same config — commute trivially and skip the
/// probe.
#[allow(clippy::too_many_arguments)]
fn build_plan(
    contracts: &[NfContract],
    keys: &[Fingerprint],
    names: &[&'static str],
    level: StackLevel,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
    registry: &Registry,
) -> ChainPlan {
    let n = contracts.len();
    let labels: Vec<String> = names
        .iter()
        .zip(keys)
        .map(|(name, key)| format!("{name}#{key}"))
        .collect();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut witnesses: Vec<CommuteWitness> = Vec::new();
    let mut current: Vec<u32> = vec![0];
    for i in 1..n {
        let mut joins = true;
        for &m in &current {
            let mu = m as usize;
            let identical = keys[mu] == keys[i];
            let commutes = identical || {
                registry.counter("compose.pairs_checked").inc();
                stages_commute(
                    &contracts[mu],
                    &contracts[i],
                    &labels[mu],
                    &labels[i],
                    solver,
                    cache,
                    threads,
                )
            };
            if commutes {
                registry.counter("compose.pairs_commuting").inc();
            }
            witnesses.push(CommuteWitness {
                left: m,
                right: i as u32,
                commutes,
                identical,
            });
            if !commutes {
                joins = false;
                break;
            }
        }
        if joins {
            current.push(i as u32);
        } else {
            groups.push(std::mem::take(&mut current));
            current = vec![i as u32];
        }
    }
    groups.push(current);
    let env = PcvAssignment::new();
    let stage_cycles: Vec<PerfExpr> = contracts
        .iter()
        .map(|c| {
            c.paths
                .iter()
                .map(|p| p.expr(Metric::Cycles))
                .max_by_key(|e| e.eval(&env))
                .cloned()
                .unwrap_or_default()
        })
        .collect();
    let table = CostTable::conservative();
    let merge_cycles: Vec<u64> = groups
        .iter()
        .map(|g| table.parallel_merge_cycles(g.len()))
        .collect();
    ChainPlan {
        names: names.iter().map(|n| n.to_string()).collect(),
        level,
        groups,
        witnesses,
        stage_cycles,
        merge_cycles,
    }
}

/// Per-run solver counters: what the cache accumulated beyond its
/// pre-run snapshot (a composer's cache outlives single calls).
fn stats_delta(after: &SolverStats, before: &SolverStats) -> SolverStats {
    SolverStats {
        checks_requested: after.checks_requested - before.checks_requested,
        solver_queries: after.solver_queries - before.solver_queries,
        completion_searches: after.completion_searches - before.completion_searches,
        unsat_by_propagation: after.unsat_by_propagation - before.unsat_by_propagation,
        memo_hits: after.memo_hits - before.memo_hits,
        witness_reuse_hits: after.witness_reuse_hits - before.witness_reuse_hits,
        model_evictions: after.model_evictions - before.model_evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_delta_subtracts_fieldwise() {
        let a = SolverStats {
            checks_requested: 10,
            solver_queries: 4,
            memo_hits: 6,
            ..Default::default()
        };
        let b = SolverStats {
            checks_requested: 3,
            solver_queries: 4,
            memo_hits: 1,
            ..Default::default()
        };
        let d = stats_delta(&a, &b);
        assert_eq!(d.checks_requested, 7);
        assert_eq!(d.solver_queries, 0);
        assert_eq!(d.memo_hits, 5);
        assert_eq!(stats_delta(&a, &a), SolverStats::default());
    }
}
