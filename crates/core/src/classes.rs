//! Input classes: specifications of which packets a contract row covers.
//!
//! §2.2: "Input class i is a specification that describes which inputs
//! belong to that class, such as a symbolic expression for 'all valid
//! IPv4 packets without IP options'." Classes here are built from packet
//! field predicates (instantiated against each path's own input symbols)
//! and path tags (the labels NF code attaches, standing in for the
//! human-readable class names of the paper's tables).

use bolt_expr::{TermPool, TermRef, Width};
use bolt_see::symbolic::PacketField;

use crate::contract::PathContract;

/// A class specification.
#[derive(Debug, Clone)]
pub enum ClassSpec {
    /// Any input.
    Unconstrained,
    /// Paths carrying this tag.
    Tag(&'static str),
    /// Paths *not* carrying this tag.
    NotTag(&'static str),
    /// A packet field equals a value.
    FieldEq {
        /// Byte offset in the frame.
        offset: u64,
        /// Field width in bytes.
        bytes: u8,
        /// Required value.
        value: u64,
    },
    /// A packet field differs from a value.
    FieldNe {
        /// Byte offset in the frame.
        offset: u64,
        /// Field width in bytes.
        bytes: u8,
        /// Excluded value.
        value: u64,
    },
    /// A packet field is bounded above.
    FieldUle {
        /// Byte offset in the frame.
        offset: u64,
        /// Field width in bytes.
        bytes: u8,
        /// Inclusive upper bound.
        value: u64,
    },
    /// Conjunction.
    All(Vec<ClassSpec>),
}

impl ClassSpec {
    /// `field == value` helper.
    pub fn field_eq(offset: u64, bytes: u8, value: u64) -> Self {
        ClassSpec::FieldEq {
            offset,
            bytes,
            value,
        }
    }

    /// `field != value` helper.
    pub fn field_ne(offset: u64, bytes: u8, value: u64) -> Self {
        ClassSpec::FieldNe {
            offset,
            bytes,
            value,
        }
    }

    /// Conjunction helper.
    pub fn all(specs: impl IntoIterator<Item = ClassSpec>) -> Self {
        ClassSpec::All(specs.into_iter().collect())
    }

    /// Tag-level filter (fast path before the solver).
    pub fn tags_match(&self, path: &PathContract) -> bool {
        match self {
            ClassSpec::Tag(t) => path.has_tag(t),
            ClassSpec::NotTag(t) => !path.has_tag(t),
            ClassSpec::All(specs) => specs.iter().all(|s| s.tags_match(path)),
            _ => true,
        }
    }

    /// Instantiate the field predicates against a path's input symbols.
    /// Fields the path never read stay unconstrained (any value of that
    /// field is consistent with the path, so the class constraint cannot
    /// exclude it).
    pub fn instantiate(&self, pool: &mut TermPool, fields: &[PacketField]) -> Vec<TermRef> {
        let mut out = Vec::new();
        self.collect(pool, fields, &mut out);
        out
    }

    fn collect(&self, pool: &mut TermPool, fields: &[PacketField], out: &mut Vec<TermRef>) {
        let find = |offset: u64, bytes: u8| {
            fields
                .iter()
                .find(|f| f.offset == offset && f.bytes == bytes)
                .map(|f| f.term)
        };
        match *self {
            ClassSpec::FieldEq {
                offset,
                bytes,
                value,
            } => {
                if let Some(t) = find(offset, bytes) {
                    let c = pool.constant(value, Width::from_bytes(bytes as usize));
                    out.push(pool.eq(t, c));
                }
            }
            ClassSpec::FieldNe {
                offset,
                bytes,
                value,
            } => {
                if let Some(t) = find(offset, bytes) {
                    let c = pool.constant(value, Width::from_bytes(bytes as usize));
                    out.push(pool.ne(t, c));
                }
            }
            ClassSpec::FieldUle {
                offset,
                bytes,
                value,
            } => {
                if let Some(t) = find(offset, bytes) {
                    let c = pool.constant(value, Width::from_bytes(bytes as usize));
                    out.push(pool.ule(t, c));
                }
            }
            ClassSpec::All(ref specs) => {
                for s in specs {
                    s.collect(pool, fields, out);
                }
            }
            ClassSpec::Unconstrained | ClassSpec::Tag(_) | ClassSpec::NotTag(_) => {}
        }
    }
}

/// A named input class (the row label of a contract table).
#[derive(Debug, Clone)]
pub struct InputClass {
    /// Human-readable name ("Valid packets", "broadcast traffic", …).
    pub name: String,
    /// The specification.
    pub spec: ClassSpec,
}

impl InputClass {
    /// Build a class.
    pub fn new(name: impl Into<String>, spec: ClassSpec) -> Self {
        InputClass {
            name: name.into(),
            spec,
        }
    }

    /// The unconstrained class (WCET-style query; the paper's `*1`
    /// scenarios).
    pub fn unconstrained() -> Self {
        InputClass::new("unconstrained traffic", ClassSpec::Unconstrained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::Width as W;

    fn fields(pool: &mut TermPool) -> Vec<PacketField> {
        let t = pool.fresh_sym("pkt@12:2", W::W16);
        let id = match *pool.get(t) {
            bolt_expr::Term::Sym { id, .. } => id,
            _ => unreachable!(),
        };
        vec![PacketField {
            offset: 12,
            bytes: 2,
            sym: id,
            term: t,
        }]
    }

    #[test]
    fn instantiates_only_tracked_fields() {
        let mut pool = TermPool::new();
        let fs = fields(&mut pool);
        let spec = ClassSpec::all([
            ClassSpec::field_eq(12, 2, 0x0800),
            ClassSpec::field_eq(30, 4, 0x0A000001), // never read by the path
        ]);
        let cs = spec.instantiate(&mut pool, &fs);
        assert_eq!(cs.len(), 1, "untracked fields add no constraints");
    }

    #[test]
    fn ule_and_ne_build_terms() {
        let mut pool = TermPool::new();
        let fs = fields(&mut pool);
        let spec = ClassSpec::all([
            ClassSpec::FieldUle {
                offset: 12,
                bytes: 2,
                value: 100,
            },
            ClassSpec::field_ne(12, 2, 7),
        ]);
        let cs = spec.instantiate(&mut pool, &fs);
        assert_eq!(cs.len(), 2);
    }
}
