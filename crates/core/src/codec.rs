//! Binary codec for [`NfContract`]s (the contract store's contract
//! records) and [`ChainPlan`]s (its plan records).
//!
//! A contract record is self-contained: the term pool the constraints
//! live in, then one entry per path — constraints, tags, verdict, the
//! three per-metric cost polynomials, packet fields, and the final
//! packet overlay. Decoding rehydrates the pool by re-interning (see
//! `bolt_store::codec`), so a decoded contract answers `query(...)`
//! bit-identically to the one that was encoded, and remains a *live*
//! contract: class queries can keep interning instantiated constraints
//! into its pool.
//!
//! A plan record carries no terms — group indices, witnesses, and
//! evaluated-form cost polynomials only — and encoding is a pure
//! function of the plan's fields, so the same chain encodes to the same
//! bytes at any worker-thread count (the chain-determinism CI gate
//! diffs exactly these bytes).

use bolt_store::codec::{
    read_perf, read_pool, read_term_ref, write_perf, write_pool, write_term_ref, MAX_COUNT,
};
use bolt_store::{ByteReader, ByteWriter, DecodeError};

use bolt_expr::PerfExpr;
use bolt_see::codec as see_codec;

use crate::chain::{ChainPlan, CommuteWitness};
use crate::contract::{NfContract, PathContract};
use crate::store::{level_from_tag, level_tag};

/// Encode a contract.
pub fn encode_contract(c: &NfContract) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_pool(&mut w, &c.pool);
    w.varint(c.paths.len() as u64);
    for p in &c.paths {
        w.varint(p.constraints.len() as u64);
        for &t in &p.constraints {
            write_term_ref(&mut w, t);
        }
        see_codec::write_tags(&mut w, &p.tags);
        see_codec::write_verdict(&mut w, p.verdict);
        for perf in &p.perf {
            write_perf(&mut w, perf);
        }
        w.varint(p.packet_fields.len() as u64);
        for f in &p.packet_fields {
            see_codec::write_packet_field(&mut w, f);
        }
        see_codec::write_final_packet(&mut w, &p.final_packet);
    }
    w.into_bytes()
}

/// Decode a contract. Fails (never panics) on corrupt input.
pub fn decode_contract(bytes: &[u8]) -> Result<NfContract, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let pool = read_pool(&mut r)?;
    let n_paths = r.count(MAX_COUNT)?;
    let mut paths = Vec::with_capacity(n_paths);
    for index in 0..n_paths {
        let n_cs = r.count(MAX_COUNT)?;
        let mut constraints = Vec::with_capacity(n_cs);
        for _ in 0..n_cs {
            constraints.push(read_term_ref(&mut r, &pool)?);
        }
        let tags = see_codec::read_tags(&mut r)?;
        let verdict = see_codec::read_verdict(&mut r)?;
        let perf: [PerfExpr; 3] = [read_perf(&mut r)?, read_perf(&mut r)?, read_perf(&mut r)?];
        let n_pf = r.count(MAX_COUNT)?;
        let mut packet_fields = Vec::with_capacity(n_pf);
        for _ in 0..n_pf {
            packet_fields.push(see_codec::read_packet_field(&mut r, &pool)?);
        }
        let final_packet = see_codec::read_final_packet(&mut r, &pool)?;
        paths.push(PathContract {
            index,
            constraints,
            tags,
            verdict,
            perf,
            packet_fields,
            final_packet,
        });
    }
    r.expect_end()?;
    Ok(NfContract { pool, paths })
}

/// Encode a chain-parallelization plan.
pub fn encode_plan(p: &ChainPlan) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(level_tag(p.level));
    w.varint(p.names.len() as u64);
    for n in &p.names {
        w.str(n);
    }
    w.varint(p.groups.len() as u64);
    for g in &p.groups {
        w.varint(g.len() as u64);
        for &i in g {
            w.varint(i as u64);
        }
    }
    w.varint(p.witnesses.len() as u64);
    for wit in &p.witnesses {
        w.varint(wit.left as u64);
        w.varint(wit.right as u64);
        w.bool(wit.commutes);
        w.bool(wit.identical);
    }
    for e in &p.stage_cycles {
        write_perf(&mut w, e);
    }
    for &m in &p.merge_cycles {
        w.varint(m);
    }
    w.into_bytes()
}

/// Decode a chain-parallelization plan. Fails (never panics) on corrupt
/// input.
pub fn decode_plan(bytes: &[u8]) -> Result<ChainPlan, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let level = level_from_tag(r.u8()?).ok_or(DecodeError::Malformed("unknown stack-level tag"))?;
    let n_stages = r.count(MAX_COUNT)?;
    let mut names = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        names.push(r.str()?.to_string());
    }
    let n_groups = r.count(MAX_COUNT)?;
    if n_groups > n_stages {
        return Err(DecodeError::Malformed("more groups than stages"));
    }
    let mut groups = Vec::with_capacity(n_groups);
    let mut covered = 0usize;
    for _ in 0..n_groups {
        let n = r.count(MAX_COUNT)?;
        let mut g = Vec::with_capacity(n);
        for _ in 0..n {
            let i = r.varint()?;
            if i >= n_stages as u64 {
                return Err(DecodeError::Malformed("group index out of range"));
            }
            g.push(i as u32);
        }
        covered += n;
        groups.push(g);
    }
    if covered != n_stages {
        return Err(DecodeError::Malformed("groups must partition the chain"));
    }
    let n_wit = r.count(MAX_COUNT)?;
    let mut witnesses = Vec::with_capacity(n_wit);
    for _ in 0..n_wit {
        let left = r.varint()?;
        let right = r.varint()?;
        if left >= n_stages as u64 || right >= n_stages as u64 {
            return Err(DecodeError::Malformed("witness index out of range"));
        }
        witnesses.push(CommuteWitness {
            left: left as u32,
            right: right as u32,
            commutes: r.bool()?,
            identical: r.bool()?,
        });
    }
    let mut stage_cycles = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        stage_cycles.push(read_perf(&mut r)?);
    }
    let mut merge_cycles = Vec::with_capacity(groups.len());
    for _ in 0..groups.len() {
        merge_cycles.push(r.varint()?);
    }
    r.expect_end()?;
    Ok(ChainPlan {
        names,
        level,
        groups,
        witnesses,
        stage_cycles,
        merge_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{ClassSpec, InputClass};
    use crate::contract::generate;
    use bolt_expr::PcvAssignment;
    use bolt_see::{Explorer, NfCtx, NfVerdict};
    use bolt_solver::Solver;
    use bolt_trace::Metric;
    use nf_lib::flow_table::{FlowTableModel, FlowTableOps, FlowTableParams};

    fn toy_contract() -> NfContract {
        let mut reg = nf_lib::registry::DsRegistry::new();
        let params = FlowTableParams {
            capacity: 256,
            ttl_ns: 1000,
        };
        let ids = nf_lib::flow_table::register::<1>(&mut reg, "t", "", params);
        let result = Explorer::new().explore(|ctx| {
            let mut model = FlowTableModel::new(ids, params);
            let pkt = ctx.packet(64);
            let et = ctx.load(pkt, 12, 2);
            if ctx.branch_eq_imm(et, 0x0800, bolt_expr::Width::W16) {
                ctx.tag("valid");
                let f = ctx.load(pkt, 26, 4);
                let f64v = ctx.zext(f, bolt_expr::Width::W64);
                let now = ctx.lit(0, bolt_expr::Width::W64);
                match FlowTableOps::<_, 1>::get(&mut model, ctx, &[f64v], now) {
                    Some(_) => ctx.tag("hit"),
                    None => ctx.tag("miss"),
                }
                ctx.verdict(NfVerdict::Forward(0));
            } else {
                ctx.tag("invalid");
                ctx.verdict(NfVerdict::Drop);
            }
        });
        generate(&reg, result)
    }

    #[test]
    fn contract_round_trip_is_bit_identical() {
        let fresh = toy_contract();
        let bytes = encode_contract(&fresh);
        let decoded = decode_contract(&bytes).expect("round trip");
        assert_eq!(decoded.pool.nodes(), fresh.pool.nodes());
        assert_eq!(decoded.paths.len(), fresh.paths.len());
        for (d, f) in decoded.paths.iter().zip(&fresh.paths) {
            assert_eq!(d.index, f.index);
            assert_eq!(d.constraints, f.constraints);
            assert_eq!(d.tags, f.tags);
            assert_eq!(d.verdict, f.verdict);
            assert_eq!(d.perf, f.perf);
            assert_eq!(d.packet_fields, f.packet_fields);
            assert_eq!(d.final_packet, f.final_packet);
        }
        assert_eq!(encode_contract(&decoded), bytes);
    }

    #[test]
    fn decoded_contracts_answer_queries_identically() {
        let mut fresh = toy_contract();
        let bytes = encode_contract(&fresh);
        let mut decoded = decode_contract(&bytes).unwrap();
        let solver = Solver::default();
        let env = PcvAssignment::new();
        let classes = [
            InputClass::new("valid", ClassSpec::field_eq(12, 2, 0x0800)),
            InputClass::new("invalid", ClassSpec::field_ne(12, 2, 0x0800)),
            InputClass::new("hits", ClassSpec::Tag("hit")),
            InputClass::unconstrained(),
        ];
        for class in &classes {
            for metric in Metric::ALL {
                let a = fresh.query(&solver, class, metric, &env);
                let b = decoded.query(&solver, class, metric, &env);
                match (a, b) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.path_index, y.path_index, "{}/{metric}", class.name);
                        assert_eq!(x.value, y.value, "{}/{metric}", class.name);
                        assert_eq!(x.expr, y.expr, "{}/{metric}", class.name);
                    }
                    (x, y) => panic!("{}/{metric}: {x:?} vs {y:?}", class.name),
                }
            }
            assert_eq!(
                fresh.compatible_paths(&solver, class),
                decoded.compatible_paths(&solver, class)
            );
        }
    }

    #[test]
    fn corrupt_contract_bytes_are_rejected() {
        let bytes = encode_contract(&toy_contract());
        for cut in [0, 3, bytes.len() / 3, bytes.len() - 1] {
            assert!(decode_contract(&bytes[..cut]).is_err());
        }
        let mut padded = bytes;
        padded.push(7);
        assert!(decode_contract(&padded).is_err());
    }

    fn toy_plan() -> ChainPlan {
        ChainPlan {
            names: vec!["firewall".into(), "firewall".into(), "router".into()],
            level: dpdk_sim::StackLevel::FullStack,
            groups: vec![vec![0, 1], vec![2]],
            witnesses: vec![
                CommuteWitness {
                    left: 0,
                    right: 1,
                    commutes: true,
                    identical: true,
                },
                CommuteWitness {
                    left: 1,
                    right: 2,
                    commutes: false,
                    identical: false,
                },
            ],
            stage_cycles: vec![
                PerfExpr::constant(410),
                PerfExpr::constant(410),
                PerfExpr::constant(620),
            ],
            merge_cycles: vec![208, 0],
        }
    }

    #[test]
    fn plan_round_trip_is_bit_identical() {
        let plan = toy_plan();
        let bytes = encode_plan(&plan);
        let decoded = decode_plan(&bytes).expect("round trip");
        assert_eq!(decoded, plan);
        assert_eq!(encode_plan(&decoded), bytes);
    }

    #[test]
    fn corrupt_plan_bytes_are_rejected() {
        let bytes = encode_plan(&toy_plan());
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_plan(&bytes[..cut]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(9);
        assert!(decode_plan(&padded).is_err());
        // A plan whose groups do not partition the chain must not decode.
        let mut mutilated = toy_plan();
        mutilated.groups = vec![vec![0, 1]];
        mutilated.merge_cycles = vec![208];
        assert!(decode_plan(&encode_plan(&mutilated)).is_err());
    }
}
