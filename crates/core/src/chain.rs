//! NF-chain composition (§3.4) and contract-proven parallelization.
//!
//! Two contracts compose by pairing execution paths: an upstream path
//! that forwards is paired with every downstream path whose constraints
//! are compatible once the upstream NF's *output* packet expressions are
//! equated with the downstream NF's *input* symbols. Incompatible pairs
//! are discarded — which is exactly how the firewall masks the router's
//! expensive IP-options path in §5.2 (Figure 3 / Table 5c). Upstream
//! paths that drop the packet appear in the composed contract on their
//! own.
//!
//! Both contracts keep their own term pools; composition migrates terms
//! into a joint pool, remapping every symbol to a fresh one prefixed by
//! the NF's name.
//!
//! The public front door is [`crate::composer::Composer`]; the free
//! functions [`compose`]/[`compose_with`] and the associated
//! [`Pipeline::compose_all`]/[`Pipeline::compose_all_with`] remain as
//! deprecated parity shims.
//!
//! # Parallel composition
//!
//! With `threads > 1`, composition fans the upstream×downstream
//! cross-product out over a worker pool in the same
//! speculate-then-commit shape as the parallel path explorer: each
//! worker composes one upstream path against every downstream candidate
//! using a *private* [`TermPool`] and private solver state, and a
//! sequential committer absorbs each private pool into the shared one
//! (deterministic re-intern via [`TermPool::absorb_with`], symbols
//! resolved by name) and *replays* the worker's assert/probe schedule
//! against the shared [`SolverCache`]. Composed path order, constraint
//! terms, verdicts, metrics, and [`SolverStats`] counters are therefore
//! byte-equal at any thread count (speculative feasibility verdicts are
//! classification-identical to the replay — `Unsat` comes only from the
//! deterministic propagation/enumeration half of the solver — and the
//! committer hard-asserts the agreement).
//!
//! # Memoized composition
//!
//! Composed contracts are content-addressed store records: each fold
//! step of a [`Pipeline`] is keyed by
//! [`crate::store::compose_key`] over the two operand fingerprints and
//! the stack level, so a warm chain run decodes the final composed
//! contract straight from disk — zero stage explorations, zero compose
//! solver queries ([`ChainReport`] counts both).
//!
//! # Proving order-independence
//!
//! Many service-chain stages are order-independent, and for those the
//! chain's cycle contract need not be a *sum*: stages that provably
//! commute can run side by side, making the group's latency the *max*
//! of its members plus a merge cost. The proof obligation is
//! `compose(A,B) ≡ compose(B,A)` on paths, verdicts, and metrics, and
//! [`stages_commute`] discharges it by comparing *canonical signatures*
//! of the two composed contracts: per-path, the verdict, the sorted
//! tags, the three cost polynomials, and every constraint and packet
//! field rendered with symbols renamed by stage identity (not by
//! compose position) and commutative operands sorted — so the two
//! operand orders, which intern different `nf1.`/`nf2.` symbol spaces
//! in different orders, become literally comparable strings. The check
//! is conservative: a `true` is a proof that the composed behaviour is
//! identical either way; a `false` merely keeps the pair sequential.
//!
//! [`Pipeline::parallelize`] runs that check pair-by-pair to partition
//! a chain into sequential groups of provably-parallel stages, emitting
//! a [`ChainPlan`] whose predicted cycle contract per group is
//! `max(members) + merge_cost` (merge cost from
//! [`bolt_hw::CostTable::parallel_merge_cycles`]).

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use bolt_expr::{BinOp, PcvAssignment, PerfExpr, Term, TermPool, TermRef, UnOp};
use bolt_see::symbolic::PacketField;
use bolt_see::NfVerdict;
use bolt_solver::{Solver, SolverCache, SolverCtx, SolverStats};
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

use crate::composer::Composer;
use crate::contract::{NfContract, PathContract};
use crate::nf::AbstractNf;
use crate::store::{compose_key, level_name, Fingerprint};

/// Rebuild a [`PacketField`] around a migrated symbol term.
fn field_of(pool: &TermPool, offset: u64, bytes: u8, term: TermRef) -> Option<PacketField> {
    match *pool.get(term) {
        Term::Sym { id, .. } => Some(PacketField {
            offset,
            bytes,
            sym: id,
            term,
        }),
        _ => None,
    }
}

/// Migrates terms between pools, remapping symbols.
struct Migrator<'a> {
    src: &'a TermPool,
    prefix: &'a str,
    memo: HashMap<TermRef, TermRef>,
    sym_map: HashMap<u32, TermRef>,
}

impl<'a> Migrator<'a> {
    fn new(src: &'a TermPool, prefix: &'a str) -> Self {
        Migrator {
            src,
            prefix,
            memo: HashMap::new(),
            sym_map: HashMap::new(),
        }
    }

    fn migrate(&mut self, dst: &mut TermPool, t: TermRef) -> TermRef {
        if let Some(&m) = self.memo.get(&t) {
            return m;
        }
        let out = match *self.src.get(t) {
            Term::Const { value, width } => dst.constant(value, width),
            Term::Sym { id, width } => *self.sym_map.entry(id).or_insert_with(|| {
                dst.fresh_sym(format!("{}.{}", self.prefix, self.src.sym_name(id)), width)
            }),
            Term::Unop { op, a } => {
                let a = self.migrate(dst, a);
                dst.unop(op, a)
            }
            Term::Binop { op, a, b } => {
                let a = self.migrate(dst, a);
                let b = self.migrate(dst, b);
                dst.binop(op, a, b)
            }
            Term::Ite { c, t: tt, e } => {
                let c = self.migrate(dst, c);
                let tt = self.migrate(dst, tt);
                let e = self.migrate(dst, e);
                dst.ite(c, tt, e)
            }
            Term::Zext { a, width } => {
                let a = self.migrate(dst, a);
                dst.zext(a, width)
            }
            Term::Trunc { a, width } => {
                let a = self.migrate(dst, a);
                dst.trunc(a, width)
            }
        };
        self.memo.insert(t, out);
        out
    }
}

fn add_perf(a: &[PerfExpr; 3], b: &[PerfExpr; 3]) -> [PerfExpr; 3] {
    [a[0].add(&b[0]), a[1].add(&b[1]), a[2].add(&b[2])]
}

/// Everything composing one upstream path produces, expressed in the
/// refs of whichever pool [`compose_one`] ran against (the shared pool
/// in the sequential fold, a worker-private pool under speculation).
enum PaBody {
    /// The upstream path ends the packet: the pair is the path alone.
    Terminal {
        constraints: Vec<TermRef>,
        packet_fields: Vec<(u64, u8, TermRef)>,
    },
    /// The upstream path forwards: one entry per downstream candidate.
    Forwarding {
        ca: Vec<TermRef>,
        pairs: Vec<PairSpec>,
    },
}

/// One upstream×downstream candidate pair.
struct PairSpec {
    /// Downstream path index.
    bi: usize,
    /// Constraints beyond `ca`: the migrated downstream constraints plus
    /// the input/output link equalities (`cs = ca ++ tail`).
    tail: Vec<TermRef>,
    /// Feasibility verdict. Speculative when produced by a worker; the
    /// committer's shared-cache replay re-derives it and hard-asserts
    /// agreement.
    feasible: bool,
    /// Composed-path fields, recorded only for feasible pairs (the
    /// sequential fold migrates them only then, and term-intern order
    /// must match exactly).
    packet_fields: Vec<(u64, u8, TermRef)>,
    final_packet: Vec<(u64, u8, TermRef)>,
}

/// Compose one upstream path against every downstream path. This single
/// body serves both engines — the sequential fold calls it against the
/// shared pool/migrators/cache, speculation workers against private ones
/// — so the operation (and term-intern) order cannot drift between them.
///
/// The upstream constraints are asserted once into an incremental
/// [`SolverCtx`]; every downstream candidate extends that saved state
/// under a push/pop checkpoint, with verdicts and models memoised in the
/// given [`SolverCache`].
fn compose_one(
    pool: &mut TermPool,
    mig_a: &mut Migrator<'_>,
    mig_b: &mut Migrator<'_>,
    pa: &PathContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
) -> PaBody {
    let ca: Vec<TermRef> = pa
        .constraints
        .iter()
        .map(|&t| mig_a.migrate(pool, t))
        .collect();
    let forwards = matches!(
        pa.verdict,
        Some(NfVerdict::Forward(_)) | Some(NfVerdict::Flood)
    );
    if !forwards {
        // The packet dies here: the pair is the upstream path alone.
        let packet_fields = pa
            .packet_fields
            .iter()
            .map(|f| (f.offset, f.bytes, mig_a.migrate(pool, f.term)))
            .collect();
        return PaBody::Terminal {
            constraints: ca,
            packet_fields,
        };
    }
    // Output packet state of the upstream path, migrated.
    let out_fields: Vec<(u64, u8, TermRef)> = pa
        .final_packet
        .iter()
        .map(|&(o, b, t)| (o, b, mig_a.migrate(pool, t)))
        .collect();
    let in_fields: Vec<(u64, u8, TermRef)> = pa
        .packet_fields
        .iter()
        .map(|f| (f.offset, f.bytes, mig_a.migrate(pool, f.term)))
        .collect();
    // The upstream constraints are asserted once; every downstream
    // candidate extends this saved state under a checkpoint.
    let mut upstream = SolverCtx::new(solver);
    for &c in &ca {
        upstream.assert_term(pool, c);
    }
    let mut pairs = Vec::new();
    for (bi, pb) in second.paths.iter().enumerate() {
        let mut tail: Vec<TermRef> = pb
            .constraints
            .iter()
            .map(|&t| mig_b.migrate(pool, t))
            .collect();
        // Link: the downstream NF's input fields equal the upstream
        // NF's output (written value if any, else the pass-through
        // input symbol).
        for f in &pb.packet_fields {
            let downstream = mig_b.migrate(pool, f.term);
            let up = out_fields
                .iter()
                .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                .or_else(|| {
                    in_fields
                        .iter()
                        .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                })
                .map(|&(_, _, t)| t);
            if let Some(u) = up {
                tail.push(pool.eq(downstream, u));
            }
        }
        upstream.push();
        for &c in &tail {
            upstream.assert_term(pool, c);
        }
        let feasible = upstream.current_feasible(pool, cache);
        upstream.pop();
        let (packet_fields, final_packet) = if feasible {
            // The chain's input fields are the first NF's inputs, plus
            // any field the second NF reads that passed through the
            // first NF untouched (it is still free chain input).
            let mut pf: Vec<(u64, u8, TermRef)> = pa
                .packet_fields
                .iter()
                .map(|f| (f.offset, f.bytes, mig_a.migrate(pool, f.term)))
                .collect();
            for f in &pb.packet_fields {
                let nf1_touched = out_fields
                    .iter()
                    .any(|&(o, b, _)| o == f.offset && b == f.bytes)
                    || in_fields
                        .iter()
                        .any(|&(o, b, _)| o == f.offset && b == f.bytes);
                if !nf1_touched {
                    pf.push((f.offset, f.bytes, mig_b.migrate(pool, f.term)));
                }
            }
            // The chain's final packet: the second NF's writes overlay
            // the first NF's final state.
            let mut fpk: Vec<(u64, u8, TermRef)> = out_fields.clone();
            for &(o, b, t) in &pb.final_packet {
                let t = mig_b.migrate(pool, t);
                if let Some(slot) = fpk.iter_mut().find(|(fo, fb, _)| *fo == o && *fb == b) {
                    slot.2 = t;
                } else {
                    fpk.push((o, b, t));
                }
            }
            (pf, fpk)
        } else {
            (Vec::new(), Vec::new())
        };
        pairs.push(PairSpec {
            bi,
            tail,
            feasible,
            packet_fields,
            final_packet,
        });
    }
    PaBody::Forwarding { ca, pairs }
}

/// Turn one upstream path's composed body into [`PathContract`]s.
/// Shared by the sequential fold and the parallel committer (which calls
/// it after remapping the body into the shared pool), so composed path
/// order and content are engine-independent.
fn push_paths(
    paths: &mut Vec<PathContract>,
    pool: &TermPool,
    pa: &PathContract,
    second: &NfContract,
    body: PaBody,
) {
    match body {
        PaBody::Terminal {
            constraints,
            packet_fields,
        } => {
            paths.push(PathContract {
                index: paths.len(),
                constraints,
                tags: pa.tags.clone(),
                verdict: pa.verdict,
                perf: pa.perf.clone(),
                packet_fields: packet_fields
                    .iter()
                    .filter_map(|&(o, b, t)| field_of(pool, o, b, t))
                    .collect(),
                final_packet: Vec::new(),
            });
        }
        PaBody::Forwarding { ca, pairs } => {
            for pair in pairs {
                if !pair.feasible {
                    continue;
                }
                let pb = &second.paths[pair.bi];
                let mut constraints = ca.clone();
                constraints.extend(pair.tail.iter().copied());
                let mut tags = pa.tags.clone();
                tags.extend(pb.tags.iter().copied());
                paths.push(PathContract {
                    index: paths.len(),
                    constraints,
                    tags,
                    verdict: pb.verdict,
                    perf: add_perf(&pa.perf, &pb.perf),
                    packet_fields: pair
                        .packet_fields
                        .iter()
                        .filter_map(|&(o, b, t)| field_of(pool, o, b, t))
                        .collect(),
                    final_packet: pair.final_packet,
                });
            }
        }
    }
}

/// Remap every term ref in a body through an absorb table.
fn remap_body(body: PaBody, map: &[TermRef]) -> PaBody {
    let r = |t: TermRef| map[t.index()];
    let rv = |v: Vec<TermRef>| v.into_iter().map(r).collect();
    let rf = |v: Vec<(u64, u8, TermRef)>| v.into_iter().map(|(o, b, t)| (o, b, r(t))).collect();
    match body {
        PaBody::Terminal {
            constraints,
            packet_fields,
        } => PaBody::Terminal {
            constraints: rv(constraints),
            packet_fields: rf(packet_fields),
        },
        PaBody::Forwarding { ca, pairs } => PaBody::Forwarding {
            ca: rv(ca),
            pairs: pairs
                .into_iter()
                .map(|p| PairSpec {
                    bi: p.bi,
                    tail: rv(p.tail),
                    feasible: p.feasible,
                    packet_fields: rf(p.packet_fields),
                    final_packet: rf(p.final_packet),
                })
                .collect(),
        },
    }
}

/// Compose two contracts into the contract of `first → second`.
///
/// Both NFs must have been registered against the *same*
/// [`nf_lib::registry::DsRegistry`]
/// (or be stateless) so that PCV ids agree in the summed expressions.
#[deprecated(
    since = "0.1.0",
    note = "use `Composer::new(&solver).compose(first, second)`"
)]
pub fn compose(first: &NfContract, second: &NfContract, solver: &Solver) -> NfContract {
    let mut cache = SolverCache::new();
    compose_pair(first, second, solver, &mut cache, 1)
}

/// [`compose`] with an explicit feasibility cache and worker-thread
/// count.
#[deprecated(
    since = "0.1.0",
    note = "use `Composer::new(&solver).cache(cache).threads(n).compose(first, second)`"
)]
pub fn compose_with(
    first: &NfContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
) -> NfContract {
    compose_pair(first, second, solver, cache, threads)
}

/// The one true pairwise composition: shared by the [`Composer`] front
/// door and the deprecated [`compose`]/[`compose_with`] shims, so shim
/// parity is by construction. Output — composed path order, constraint
/// terms, verdicts, metrics, and the cache's stats counters — is
/// bit-identical at any thread count.
pub(crate) fn compose_pair(
    first: &NfContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
) -> NfContract {
    if threads <= 1 {
        return compose_seq(first, second, solver, cache);
    }
    compose_par(first, second, solver, cache, threads)
}

/// The sequential cross-product fold: one shared pool, shared migrators,
/// pair-compatibility checks on an incremental [`SolverCtx`] against the
/// shared cache.
fn compose_seq(
    first: &NfContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
) -> NfContract {
    let mut pool = TermPool::new();
    let mut paths = Vec::new();
    let mut mig_a = Migrator::new(&first.pool, "nf1");
    let mut mig_b = Migrator::new(&second.pool, "nf2");
    for pa in &first.paths {
        let body = compose_one(&mut pool, &mut mig_a, &mut mig_b, pa, second, solver, cache);
        push_paths(&mut paths, &pool, pa, second, body);
    }
    NfContract { pool, paths }
}

/// Hard ceiling on compose speculation workers, whatever the caller
/// says (mirrors the explorer's clamp: a runaway `BOLT_THREADS` must
/// degrade to oversubscription, never exhaust OS threads).
const MAX_COMPOSE_WORKERS: usize = 256;

/// One speculation slot of the parallel cross-product.
enum Slot {
    Pending,
    Done(Box<(TermPool, PaBody)>),
    /// The worker panicked; the committer re-runs the path inline so
    /// the panic surfaces on its thread.
    Panicked,
}

/// The parallel engine: workers speculate upstream paths in claim order
/// against private pools/solver state; the committer absorbs and replays
/// them in exact upstream-path order (see the module docs).
fn compose_par(
    first: &NfContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
) -> NfContract {
    let n = first.paths.len();
    let mut pool = TermPool::new();
    let mut paths = Vec::new();
    // (symbol name, width bits) → shared-pool term: the cross-worker
    // symbol identity the committer resolves private pools through.
    // Names are unique per identity (each side's exploration pool
    // dedupes names; the nf1./nf2. prefixes keep the sides disjoint).
    let mut symtab: HashMap<(String, u32), TermRef> = HashMap::new();
    let slots: Vec<Mutex<Slot>> = (0..n).map(|_| Mutex::new(Slot::Pending)).collect();
    let next = AtomicUsize::new(0);
    let cv = Condvar::new();
    // One mutex guards the "a slot changed" wakeup; per-slot mutexes
    // hold the payloads so workers never serialise on the committer.
    let wake = Mutex::new(());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(MAX_COMPOSE_WORKERS).min(n) {
            scope.spawn(|| loop {
                let ai = next.fetch_add(1, Ordering::Relaxed);
                if ai >= n {
                    return;
                }
                let spec =
                    catch_unwind(AssertUnwindSafe(|| speculate_pa(first, second, ai, solver)));
                *slots[ai].lock().unwrap() = match spec {
                    Ok(s) => Slot::Done(Box::new(s)),
                    Err(_) => Slot::Panicked,
                };
                let _g = wake.lock().unwrap();
                cv.notify_all();
            });
        }
        for (ai, slot) in slots.iter().enumerate() {
            let spec = loop {
                // Take the slot under its own lock and release it before
                // any wait: holding it across the wait would block the
                // worker's write forever.
                let taken = {
                    let mut g = slot.lock().unwrap();
                    std::mem::replace(&mut *g, Slot::Pending)
                };
                match taken {
                    Slot::Done(s) => break Some(*s),
                    Slot::Panicked => break None,
                    Slot::Pending => {
                        let g = wake.lock().unwrap();
                        // Re-check under the wake lock: the worker may
                        // have filled the slot (and notified) between
                        // the take above and acquiring the wake lock.
                        let filled = !matches!(*slot.lock().unwrap(), Slot::Pending);
                        if !filled {
                            drop(cv.wait(g).unwrap());
                        }
                    }
                }
            };
            let (lp, body) = spec.unwrap_or_else(|| speculate_pa(first, second, ai, solver));
            // Absorb the worker's private pool: deterministic re-intern
            // through the public constructors in arena order, symbols
            // resolved by (name, width) through the shared table — the
            // shared arena gains exactly the nodes the sequential fold
            // would have interned at this upstream path, in the same
            // order.
            let tmap = pool.absorb_with(&lp, |p, name, w| {
                let key = (name.to_string(), w.bits());
                if let Some(&t) = symtab.get(&key) {
                    t
                } else {
                    let t = p.fresh_sym(name, w);
                    symtab.insert(key, t);
                    t
                }
            });
            let body = remap_body(body, &tmap);
            // Replay the worker's solver schedule against the shared
            // cache so memo/model state and every counter evolve
            // exactly as sequentially — and hard-assert that the
            // speculative verdicts agree (a divergence would mean a
            // solver fast path stopped being classification-identical).
            if let PaBody::Forwarding { ca, pairs } = &body {
                let mut upstream = SolverCtx::new(solver);
                for &c in ca {
                    upstream.assert_term(&pool, c);
                }
                for pair in pairs {
                    upstream.push();
                    for &c in &pair.tail {
                        upstream.assert_term(&pool, c);
                    }
                    let feasible = upstream.current_feasible(&pool, cache);
                    upstream.pop();
                    assert_eq!(
                        feasible, pair.feasible,
                        "speculative pair verdict diverged from the shared-cache \
                         replay (solver fast path not classification-identical?)"
                    );
                }
            }
            push_paths(&mut paths, &pool, &first.paths[ai], second, body);
        }
    });
    NfContract { pool, paths }
}

/// Execute one upstream path against fresh private state. Valid at any
/// time, in any order: the body depends only on the two (immutable)
/// operand contracts, never on sibling speculation. Feasibility verdicts
/// computed here are classification-identical to the committer's
/// shared-cache replay — `Unsat` comes only from the deterministic,
/// ref-index-independent propagation/enumeration half of the solver.
fn speculate_pa(
    first: &NfContract,
    second: &NfContract,
    ai: usize,
    solver: &Solver,
) -> (TermPool, PaBody) {
    let mut pool = TermPool::new();
    let mut cache = SolverCache::new();
    let mut mig_a = Migrator::new(&first.pool, "nf1");
    let mut mig_b = Migrator::new(&second.pool, "nf2");
    let body = compose_one(
        &mut pool,
        &mut mig_a,
        &mut mig_b,
        &first.paths[ai],
        second,
        solver,
        &mut cache,
    );
    (pool, body)
}

// ---------------------------------------------------------------------------
// Commutativity: canonical signatures of composed contracts.
// ---------------------------------------------------------------------------

/// Whether swapping a binary operator's operands preserves its value.
fn op_is_commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
    )
}

/// Render a term into a canonical string: symbols pass through `rename`
/// (mapping the compose-position `nf1.`/`nf2.` prefixes back to stable
/// stage identities) and commutative operands are emitted in sorted
/// order, so two pools that interned the same expression from different
/// directions produce identical strings.
fn canon_term(pool: &TermPool, t: TermRef, rename: &dyn Fn(&str) -> String) -> String {
    match *pool.get(t) {
        Term::Const { value, width } => format!("{value}:w{}", width.bits()),
        Term::Sym { id, width } => format!("{}:w{}", rename(pool.sym_name(id)), width.bits()),
        Term::Unop { op: UnOp::Not, a } => format!("(! {})", canon_term(pool, a, rename)),
        Term::Binop { op, a, b } => {
            let mut x = canon_term(pool, a, rename);
            let mut y = canon_term(pool, b, rename);
            if op_is_commutative(op) && y < x {
                std::mem::swap(&mut x, &mut y);
            }
            format!("({x} {} {y})", op.symbol())
        }
        Term::Ite { c, t: tt, e } => format!(
            "(ite {} {} {})",
            canon_term(pool, c, rename),
            canon_term(pool, tt, rename),
            canon_term(pool, e, rename)
        ),
        Term::Zext { a, width } => {
            format!("(zext{} {})", width.bits(), canon_term(pool, a, rename))
        }
        Term::Trunc { a, width } => {
            format!("(trunc{} {})", width.bits(), canon_term(pool, a, rename))
        }
    }
}

/// Canonical rendering of a cost polynomial (monomials are already kept
/// sorted internally, so this is deterministic).
fn canon_perf(p: &PerfExpr) -> String {
    p.iter()
        .map(|(m, c)| {
            let vars: Vec<u32> = m.vars().iter().map(|v| v.0).collect();
            format!("{c}x{vars:?}")
        })
        .collect::<Vec<_>>()
        .join("+")
}

/// Canonical signature of one composed path: verdict, sorted tags, the
/// three cost polynomials, and the sorted canonical constraint / packet
/// field / final-packet renderings. Path order and term-intern order do
/// not participate.
fn path_signature(pool: &TermPool, p: &PathContract, rename: &dyn Fn(&str) -> String) -> String {
    let mut tags: Vec<&str> = p.tags.clone();
    tags.sort_unstable();
    let mut cs: Vec<String> = p
        .constraints
        .iter()
        .map(|&t| canon_term(pool, t, rename))
        .collect();
    cs.sort();
    let mut pf: Vec<String> = p
        .packet_fields
        .iter()
        .map(|f| {
            format!(
                "{}+{}={}",
                f.offset,
                f.bytes,
                canon_term(pool, f.term, rename)
            )
        })
        .collect();
    pf.sort();
    let mut fpk: Vec<String> = p
        .final_packet
        .iter()
        .map(|&(o, b, t)| format!("{o}+{b}={}", canon_term(pool, t, rename)))
        .collect();
    fpk.sort();
    format!(
        "v={:?} tags={tags:?} ic={} ma={} cy={} cs={cs:?} pf={pf:?} fp={fpk:?}",
        p.verdict,
        canon_perf(&p.perf[Metric::Instructions.index()]),
        canon_perf(&p.perf[Metric::MemAccesses.index()]),
        canon_perf(&p.perf[Metric::Cycles.index()]),
    )
}

/// The canonical signature of a composed contract: the sorted multiset
/// of its path signatures, with the compose-position symbol prefixes
/// (`nf1.`, `nf2.`) renamed to the given stage identity labels. Two
/// compositions of the same two stages in opposite orders commute iff
/// their signatures are equal.
pub(crate) fn contract_signature(
    c: &NfContract,
    first_label: &str,
    second_label: &str,
) -> Vec<String> {
    let rename = |name: &str| -> String {
        if let Some(rest) = name.strip_prefix("nf1.") {
            format!("{first_label}.{rest}")
        } else if let Some(rest) = name.strip_prefix("nf2.") {
            format!("{second_label}.{rest}")
        } else {
            name.to_string()
        }
    };
    let mut sigs: Vec<String> = c
        .paths
        .iter()
        .map(|p| path_signature(&c.pool, p, &rename))
        .collect();
    sigs.sort();
    sigs
}

/// Prove (or fail to prove) that two stages are order-independent:
/// compose them both ways and compare canonical signatures (see the
/// module docs). `label_a`/`label_b` are stable stage identities — they
/// must be equal exactly when the two stages are interchangeable (same
/// name *and* same configuration), which is what lets a pair of
/// identical stages commute trivially while two same-named stages with
/// different configs stay distinguishable.
///
/// The check is conservative and the contract is one-sided: `true`
/// proves `compose(a,b)` and `compose(b,a)` describe identical
/// behaviour (paths, verdicts, metrics, packet effects); `false` only
/// means the proof failed and the pair must stay sequential. Drops
/// break commutativity with any non-identical neighbour by
/// construction — an upstream drop path stands alone, while the same
/// drop downstream is crossed with every upstream path — which is the
/// conservative answer: reordering around a dropper changes what the
/// other stage observes.
pub fn stages_commute(
    a: &NfContract,
    b: &NfContract,
    label_a: &str,
    label_b: &str,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
) -> bool {
    let ab = compose_pair(a, b, solver, cache, threads);
    let ba = compose_pair(b, a, solver, cache, threads);
    contract_signature(&ab, label_a, label_b) == contract_signature(&ba, label_b, label_a)
}

// ---------------------------------------------------------------------------
// Chain plans.
// ---------------------------------------------------------------------------

/// The outcome of one pairwise commutativity check the planner ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommuteWitness {
    /// Chain index of the earlier stage.
    pub left: u32,
    /// Chain index of the later stage.
    pub right: u32,
    /// Whether `compose(left,right) ≡ compose(right,left)` was proven.
    pub commutes: bool,
    /// The two stages had identical store keys (same NF, same config):
    /// commutativity holds trivially, no composition probe was run.
    pub identical: bool,
}

/// A contract-proven parallelization plan for one chain: consecutive
/// groups of stages whose members provably commute pairwise, so each
/// group can execute side by side and the chain's cycle contract drops
/// from the *sum* of stage worst cases to, per group,
/// `max(members) + merge_cost`.
///
/// The semantic contract of the chain is untouched — groups are proven
/// order-independent, so the sequential composed contract (which the
/// speculate/commit worker pool already produces bit-identically at any
/// thread count) remains the truth for paths/verdicts/metrics; the plan
/// re-interprets *latency* only.
///
/// Plans are store-cacheable ([`crate::store::plan_key`] over every
/// stage fingerprint, so any stage-config change invalidates) and
/// byte-stable: [`crate::codec::encode_plan`] of the same chain is
/// identical at any worker-thread count.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainPlan {
    /// Stage names, upstream first.
    pub names: Vec<String>,
    /// Stack level the plan was proven at.
    pub level: StackLevel,
    /// Consecutive groups of chain indices; members of one group
    /// provably commute pairwise. Singleton groups are stages kept
    /// sequential.
    pub groups: Vec<Vec<u32>>,
    /// Every pairwise check the planner ran, in check order.
    pub witnesses: Vec<CommuteWitness>,
    /// Per-stage worst-case cycle polynomial (the stage's worst path at
    /// all-zero PCVs; evaluation-based, since `max` of polynomials is
    /// not a polynomial).
    pub stage_cycles: Vec<PerfExpr>,
    /// Per-group merge cost in cycles
    /// ([`bolt_hw::CostTable::parallel_merge_cycles`] of the group
    /// width; 0 for singletons).
    pub merge_cycles: Vec<u64>,
}

impl ChainPlan {
    /// Number of stages the plan covers.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the plan covers no stages.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Whether any group actually runs stages side by side.
    pub fn is_parallel(&self) -> bool {
        self.groups.iter().any(|g| g.len() > 1)
    }

    /// Width of the widest group.
    pub fn widest_group(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The sequential cycle contract: the sum of stage worst cases
    /// under `env` (the naive chain latency the plan improves on).
    pub fn sequential_cycles(&self, env: &PcvAssignment) -> u64 {
        self.stage_cycles.iter().map(|e| e.eval(env)).sum()
    }

    /// The parallelized cycle contract: per group, the max of its
    /// members' worst cases plus the group's merge cost, summed across
    /// groups.
    pub fn parallel_cycles(&self, env: &PcvAssignment) -> u64 {
        self.groups
            .iter()
            .zip(&self.merge_cycles)
            .map(|(g, &merge)| {
                let worst = g
                    .iter()
                    .map(|&i| self.stage_cycles[i as usize].eval(env))
                    .max()
                    .unwrap_or(0);
                worst + merge
            })
            .sum()
    }

    /// Predicted sequential/parallel speedup at all-zero PCVs. 1.0 when
    /// nothing parallelizes (or the chain predicts zero cycles).
    pub fn predicted_speedup(&self) -> f64 {
        let env = PcvAssignment::new();
        let seq = self.sequential_cycles(&env);
        let par = self.parallel_cycles(&env);
        if par == 0 {
            1.0
        } else {
            seq as f64 / par as f64
        }
    }

    /// Render the group structure, e.g.
    /// `[firewall | firewall] -> [static_router]`.
    pub fn groups_display(&self) -> String {
        self.groups
            .iter()
            .map(|g| {
                let members: Vec<&str> =
                    g.iter().map(|&i| self.names[i as usize].as_str()).collect();
                format!("[{}]", members.join(" | "))
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Human rendering of one witness, with stage names resolved.
    pub fn describe_witness(&self, w: &CommuteWitness) -> String {
        let verdict = if w.identical {
            "commute (identical configs)"
        } else if w.commutes {
            "commute (signatures equal both orders)"
        } else {
            "order-dependent (kept sequential)"
        };
        format!(
            "{}[{}] x {}[{}] — {verdict}",
            self.names[w.left as usize], w.left, self.names[w.right as usize], w.right
        )
    }
}

impl fmt::Display for ChainPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let env = PcvAssignment::new();
        writeln!(f, "plan       : {}", self.groups_display())?;
        write!(
            f,
            "predicted  : {}cy sequential -> {}cy parallel ({:.2}x, widest group {}, merge {}cy)",
            self.sequential_cycles(&env),
            self.parallel_cycles(&env),
            self.predicted_speedup(),
            self.widest_group(),
            self.merge_cycles.iter().sum::<u64>(),
        )
    }
}

/// What one [`Pipeline`] chain run did: the composed contract plus the
/// work provenance the warm-chain CI gate asserts on.
#[derive(Debug)]
pub struct ChainReport {
    /// Stage names, upstream first.
    pub names: Vec<String>,
    /// Stack level the chain was composed at.
    pub level: StackLevel,
    /// The chain's composed-contract store key (the left fold of
    /// [`crate::store::compose_key`] over the stage keys).
    pub key: Fingerprint,
    /// The composed contract of the whole chain.
    pub contract: NfContract,
    /// Compose-side solver counters, accumulated across every fold step
    /// (and, when planning ran, every commutativity probe) that composed
    /// fresh this run. All-zero on a fully warm run.
    pub solver: SolverStats,
    /// Fold steps composed fresh (pairwise cross-product solves ran).
    pub steps_composed: usize,
    /// Stored composed records decoded. The fold resumes after the
    /// *deepest* stored prefix, so this is at most 1 per run — a fully
    /// warm chain decodes exactly the final record, a partially warm one
    /// the longest memoized prefix.
    pub steps_cached: usize,
    /// Stage contracts explored fresh this run.
    pub stages_explored: usize,
    /// Stage contracts decoded from stored explorations.
    pub stages_cached: usize,
    /// The parallelization plan, when the run was asked to plan
    /// ([`Pipeline::parallelize`] or
    /// [`crate::composer::Composer::parallelize`]).
    pub plan: Option<ChainPlan>,
    /// Whether the plan was decoded from a stored plan record (no
    /// commutativity probes ran).
    pub plan_cached: bool,
}

impl ChainReport {
    /// Whether the run was fully solver-free: every fold step decoded
    /// from the store, no stage explored, no compose solver request
    /// (and, if planning ran, the plan record was warm too).
    pub fn fully_cached(&self) -> bool {
        self.steps_composed == 0
            && self.stages_explored == 0
            && self.solver == SolverStats::default()
    }

    /// Machine-readable rendering of the report (one JSON object; the
    /// `--json` form of `bolt_cli chain`). Stable field set; plan
    /// predictions are evaluated at all-zero PCVs.
    pub fn to_json(&self) -> String {
        let names = self
            .names
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", ");
        let plan = match &self.plan {
            None => "null".to_string(),
            Some(p) => {
                let env = PcvAssignment::new();
                let groups = p
                    .groups
                    .iter()
                    .map(|g| {
                        format!(
                            "[{}]",
                            g.iter()
                                .map(|i| i.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let witnesses = p
                    .witnesses
                    .iter()
                    .map(|w| {
                        format!(
                            "{{\"left\": {}, \"right\": {}, \"commutes\": {}, \"identical\": {}}}",
                            w.left, w.right, w.commutes, w.identical
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                let stage_cycles = p
                    .stage_cycles
                    .iter()
                    .map(|e| e.eval(&env).to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let merges = p
                    .merge_cycles
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{{\"groups\": [{groups}], \"witnesses\": [{witnesses}], \
                     \"stage_cycles\": [{stage_cycles}], \"merge_cycles\": [{merges}], \
                     \"sequential_cycles\": {}, \"parallel_cycles\": {}, \
                     \"predicted_speedup\": {:.4}, \"cached\": {}}}",
                    p.sequential_cycles(&env),
                    p.parallel_cycles(&env),
                    p.predicted_speedup(),
                    self.plan_cached
                )
            }
        };
        format!(
            "{{\"chain\": [{names}], \"level\": \"{}\", \"key\": \"{}\", \"paths\": {}, \
             \"stages_explored\": {}, \"stages_cached\": {}, \"steps_composed\": {}, \
             \"steps_cached\": {}, \"solver\": {{\"checks_requested\": {}, \
             \"solver_queries\": {}}}, \"fully_cached\": {}, \"plan\": {plan}}}",
            level_name(self.level),
            self.key,
            self.contract.paths.len(),
            self.stages_explored,
            self.stages_cached,
            self.steps_composed,
            self.steps_cached,
            self.solver.checks_requested,
            self.solver.solver_queries,
            self.fully_cached(),
        )
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl fmt::Display for ChainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chain {} @ {} — {} paths  key {}",
            self.names.join(" -> "),
            level_name(self.level),
            self.contract.paths.len(),
            self.key
        )?;
        writeln!(
            f,
            "  stages     : {} explored, {} from store",
            self.stages_explored, self.stages_cached
        )?;
        writeln!(
            f,
            "  fold steps : {} composed, {} from store",
            self.steps_composed, self.steps_cached
        )?;
        write!(
            f,
            "  compose    : {} solver requests, {} full queries{}",
            self.solver.checks_requested,
            self.solver.solver_queries,
            if self.fully_cached() {
                " (fully warm: solver-free)"
            } else {
                ""
            }
        )?;
        if let Some(plan) = &self.plan {
            let env = PcvAssignment::new();
            write!(
                f,
                "\n  plan       : {}{}\n  predicted  : {}cy sequential -> {}cy parallel ({:.2}x)",
                plan.groups_display(),
                if self.plan_cached {
                    " (from store)"
                } else {
                    ""
                },
                plan.sequential_cycles(&env),
                plan.parallel_cycles(&env),
                plan.predicted_speedup(),
            )?;
        }
        Ok(())
    }
}

/// A chain of heterogeneous network functions, composed pairwise (§3.4).
///
/// Stages are [`AbstractNf`] trait objects, so any mix of
/// [`crate::nf::NetworkFunction`] implementors chains without generics
/// leaking into the caller:
///
/// ```ignore
/// let chain = Pipeline::new()
///     .push(Firewall::default())
///     .push(StaticRouter::default());
/// let contract = chain.contract(StackLevel::NfOnly).unwrap();
/// ```
///
/// With a persistent contract store attached
/// ([`Pipeline::with_store`], or ambiently via `BOLT_STORE_DIR`), both
/// halves of the work are memoized: stage explorations are
/// get-or-explore, and every pairwise fold step is a content-addressed
/// composed record (keyed by [`crate::store::compose_key`] over the two
/// operand fingerprints), so a warm chain run is fully solver-free —
/// [`Pipeline::report`] returns the [`ChainReport`] that proves it.
///
/// [`Pipeline::parallelize`] additionally partitions the chain into
/// groups of provably order-independent stages and attaches the
/// [`ChainPlan`] (itself a store record) to the report.
#[derive(Default)]
pub struct Pipeline<'s> {
    pub(crate) stages: Vec<Box<dyn AbstractNf>>,
    pub(crate) store: Option<&'s bolt_store::ContractStore>,
    pub(crate) threads: Option<usize>,
}

impl<'s> Pipeline<'s> {
    /// An empty chain.
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            store: None,
            threads: None,
        }
    }

    /// Append a network function to the downstream end.
    pub fn push(mut self, nf: impl AbstractNf + 'static) -> Self {
        self.stages.push(Box::new(nf));
        self
    }

    /// Attach a persistent contract store consulted for every stage
    /// exploration, every composed fold step, and every chain plan.
    pub fn with_store(mut self, store: &'s bolt_store::ContractStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Explore stages and compose path pairs on `n` worker threads
    /// (1 = sequential). Overrides the ambient `BOLT_THREADS`; stage and
    /// composed contracts — and plans — are bit-identical at any count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names, upstream first.
    pub fn names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The chain's composed-contract store key at a level: the left fold
    /// of [`crate::store::compose_key`] over the stage keys. For a
    /// single-stage chain this is the stage's own key (no composed
    /// record is ever written for it). `None` for an empty chain.
    pub fn chain_key(&self, level: StackLevel) -> Option<Fingerprint> {
        let mut it = self.stages.iter();
        let mut key = it.next()?.store_key(level);
        for s in it {
            key = compose_key(key, s.store_key(level), level);
        }
        Some(key)
    }

    pub(crate) fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(crate::nf::ambient_threads)
    }

    /// Each stage's individual contract, upstream first (every stage is
    /// explored at `level`, through the attached or ambient store when
    /// one is configured).
    pub fn contracts(&self, level: StackLevel) -> Vec<NfContract> {
        let threads = self.resolved_threads();
        let env;
        let store = match self.store {
            Some(s) => Some(s),
            None => {
                env = crate::store::env_store();
                env.as_ref()
            }
        };
        self.stages
            .iter()
            .map(|s| match store {
                Some(st) => s.explore_contract_cached_threads(level, st, threads),
                None => s.explore_contract_threads(level, threads),
            })
            .collect()
    }

    /// The composed contract of the whole chain: stage contracts are
    /// composed pairwise left to right, discarding solver-infeasible
    /// path pairs (which is what masks downstream slow paths the upstream
    /// NFs filter out). Store-aware and parallel — this is
    /// [`Pipeline::report`] without the provenance counters. `None` for
    /// an empty chain.
    pub fn contract(&self, level: StackLevel) -> Option<NfContract> {
        self.report(level).map(|r| r.contract)
    }

    /// Compose the chain at `level`, reporting what the run actually did.
    ///
    /// The fold walks stages left to right. For every step it first
    /// consults the store (attached or ambient) under the step's
    /// [`crate::store::compose_key`]; a hit decodes the composed record
    /// — no stage exploration, no solver work. On a miss the two
    /// operands are materialised (themselves store-backed), composed on
    /// the configured worker-thread count, and the result is persisted
    /// for the next run. Stage contracts are built lazily, so a fully
    /// warm chain run touches nothing but the final composed record.
    ///
    /// Equivalent to [`crate::composer::Composer::chain`] with this
    /// pipeline's store/threads settings; build a [`Composer`] directly
    /// to share a solver cache across chains or to enable planning.
    pub fn report(&self, level: StackLevel) -> Option<ChainReport> {
        let solver = Solver::default();
        Composer::new(&solver).chain(self, level)
    }

    /// [`Pipeline::report`] with the parallelization planner enabled:
    /// the returned report additionally carries the [`ChainPlan`] —
    /// groups of provably-commuting stages, the commutativity
    /// witnesses, and the predicted `max + merge` cycle contract. With
    /// a store attached the plan is itself a cached record (keyed over
    /// every stage fingerprint, so any stage-config change invalidates
    /// it); a fully warm parallelized run is still solver-free.
    pub fn parallelize(&self, level: StackLevel) -> Option<ChainReport> {
        let solver = Solver::default();
        Composer::new(&solver).parallelize(true).chain(self, level)
    }

    /// Compose pre-built stage contracts left to right, sharing one
    /// feasibility cache across the fold, on the ambient `BOLT_THREADS`
    /// worker count.
    #[deprecated(
        since = "0.1.0",
        note = "use `Composer::new(&solver).compose_all(contracts)`"
    )]
    pub fn compose_all(contracts: Vec<NfContract>) -> Option<NfContract> {
        let solver = Solver::default();
        let mut cache = SolverCache::new();
        fold_contracts(contracts, &solver, &mut cache, crate::nf::ambient_threads())
    }

    /// [`Pipeline::compose_all`] with an explicit solver, shared cache,
    /// and worker-thread count.
    #[deprecated(
        since = "0.1.0",
        note = "use `Composer::new(&solver).cache(cache).threads(n).compose_all(contracts)`"
    )]
    pub fn compose_all_with(
        contracts: Vec<NfContract>,
        solver: &Solver,
        cache: &mut SolverCache,
        threads: usize,
    ) -> Option<NfContract> {
        fold_contracts(contracts, solver, cache, threads)
    }

    /// The naive prediction: the sum over stages of each stage's
    /// individual worst case (Figure 3's "Naive-Add" bar, generalised to
    /// any length). Re-explores every stage; callers that already hold
    /// the stage contracts should use [`Pipeline::naive_add_of`].
    pub fn naive_add(&self, level: StackLevel, metric: Metric, env: &PcvAssignment) -> u64 {
        Self::naive_add_of(&self.contracts(level), metric, env)
    }

    /// Naive addition over pre-built stage contracts (no re-exploration —
    /// pair with [`Pipeline::contracts`] +
    /// [`crate::composer::Composer::compose_all`] when both the composed
    /// contract and the baseline are needed).
    pub fn naive_add_of(contracts: &[NfContract], metric: Metric, env: &PcvAssignment) -> u64 {
        contracts
            .iter()
            .map(|c| {
                c.paths
                    .iter()
                    .map(|p| p.expr(metric).eval(env))
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }
}

/// Fold pre-built contracts left to right through one shared cache: the
/// single body behind [`crate::composer::Composer::compose_all`] and the
/// deprecated [`Pipeline::compose_all`]/[`Pipeline::compose_all_with`].
pub(crate) fn fold_contracts(
    contracts: Vec<NfContract>,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
) -> Option<NfContract> {
    let mut it = contracts.into_iter();
    let mut acc = it.next()?;
    for next in it {
        acc = compose_pair(&acc, &next, solver, cache, threads);
    }
    Some(acc)
}

/// The naive prediction for a chain: the sum of each NF's individual
/// worst case (Figure 3's "Naive-Add" bar).
pub fn naive_add(
    first: &NfContract,
    second: &NfContract,
    metric: Metric,
    env: &PcvAssignment,
) -> u64 {
    let a = first
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    let b = second
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_contract;
    use bolt_expr::Width;
    use bolt_see::{Explorer, NfCtx};

    /// A forwarding NF body that writes one field and reads another.
    fn upstream_nf(ctx: &mut bolt_see::SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        let et = ctx.load(pkt, 12, 2);
        if ctx.branch_eq_imm(et, 0x0800, Width::W16) {
            ctx.tag("up-valid");
            let marker = ctx.lit(0x7, Width::W8);
            ctx.store(pkt, 30, marker, 1);
            ctx.verdict(NfVerdict::Forward(0));
        } else {
            ctx.tag("up-drop");
            ctx.verdict(NfVerdict::Drop);
        }
    }

    /// A downstream NF body that branches on the upstream-written field.
    fn downstream_nf(ctx: &mut bolt_see::SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        let m = ctx.load(pkt, 30, 1);
        if ctx.branch_eq_imm(m, 0x7, Width::W8) {
            ctx.tag("down-fast");
            ctx.verdict(NfVerdict::Forward(1));
        } else {
            ctx.tag("down-slow");
            let x = ctx.load(pkt, 31, 1);
            let z = ctx.lit(0, Width::W8);
            let _ = ctx.add(x, z);
            ctx.verdict(NfVerdict::Forward(1));
        }
    }

    fn toy_pair() -> (NfContract, NfContract) {
        let reg = nf_lib::registry::DsRegistry::new();
        let a = crate::contract::generate(&reg, Explorer::new().explore(upstream_nf));
        let b = crate::contract::generate(&reg, Explorer::new().explore(downstream_nf));
        (a, b)
    }

    /// A stateless always-forward marking filter over one field: reads
    /// `offset`, branches, always `Forward(0)`, never writes. Two such
    /// filters over disjoint fields are genuinely order-independent.
    fn mark_filter(
        offset: u64,
        hit_tag: &'static str,
        miss_tag: &'static str,
    ) -> impl Fn(&mut bolt_see::SymbolicCtx<'_>) {
        move |ctx| {
            let pkt = ctx.packet(64);
            let v = ctx.load(pkt, offset, 1);
            if ctx.branch_eq_imm(v, 0x42, Width::W8) {
                ctx.tag(hit_tag);
            } else {
                ctx.tag(miss_tag);
                let w = ctx.load(pkt, offset + 1, 1);
                let z = ctx.lit(1, Width::W8);
                let _ = ctx.add(w, z);
            }
            ctx.verdict(NfVerdict::Forward(0));
        }
    }

    fn filter_contract(body: impl Fn(&mut bolt_see::SymbolicCtx<'_>)) -> NfContract {
        let reg = nf_lib::registry::DsRegistry::new();
        crate::contract::generate(&reg, Explorer::new().explore(|ctx| body(ctx)))
    }

    #[test]
    fn infeasible_pairs_are_masked() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        let chain = Composer::new(&solver).compose(&a, &b);
        // up-drop alone, up-valid×down-fast; up-valid×down-slow is
        // infeasible (the upstream always writes 0x7).
        assert_eq!(chain.paths.len(), 2);
        assert!(chain.paths.iter().any(|p| p.has_tag("up-drop")));
        assert!(chain
            .paths
            .iter()
            .any(|p| p.has_tag("up-valid") && p.has_tag("down-fast")));
        assert!(!chain.paths.iter().any(|p| p.has_tag("down-slow")));
    }

    #[test]
    fn parallel_composition_is_bit_identical() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        let mut seq_cache = SolverCache::new();
        let seq = compose_pair(&a, &b, &solver, &mut seq_cache, 1);
        let seq_bytes = encode_contract(&seq);
        for threads in [2, 3, 8] {
            let mut cache = SolverCache::new();
            let par = compose_pair(&a, &b, &solver, &mut cache, threads);
            assert_eq!(
                encode_contract(&par),
                seq_bytes,
                "composition at {threads} threads diverged from sequential"
            );
            assert_eq!(
                cache.stats, seq_cache.stats,
                "solver counters diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn deprecated_shims_are_parity_exact() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        let via_composer = {
            let mut c = Composer::new(&solver);
            encode_contract(&c.compose(&a, &b))
        };
        #[allow(deprecated)]
        let via_compose = encode_contract(&compose(&a, &b, &solver));
        #[allow(deprecated)]
        let via_compose_with = {
            let mut cache = SolverCache::new();
            encode_contract(&compose_with(&a, &b, &solver, &mut cache, 2))
        };
        assert_eq!(via_compose, via_composer, "compose() shim drifted");
        assert_eq!(
            via_compose_with, via_composer,
            "compose_with() shim drifted"
        );
        let (a2, b2) = toy_pair();
        let via_composer_all = {
            let mut c = Composer::new(&solver);
            encode_contract(&c.compose_all(vec![a2, b2]).unwrap())
        };
        let (a3, b3) = toy_pair();
        #[allow(deprecated)]
        let via_compose_all = encode_contract(&Pipeline::compose_all(vec![a3, b3]).unwrap());
        assert_eq!(
            via_compose_all, via_composer_all,
            "compose_all() shim drifted"
        );
    }

    #[test]
    fn shared_cache_reuses_verdicts_across_fold_steps() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        // Composing the same pair twice through one cache must answer
        // the second step's identical probes from the memo.
        let mut cache = SolverCache::new();
        let _ = compose_pair(&a, &b, &solver, &mut cache, 1);
        let after_first = cache.stats;
        let _ = compose_pair(&a, &b, &solver, &mut cache, 1);
        assert!(
            cache.stats.checks_requested > after_first.checks_requested,
            "second step must issue requests"
        );
        assert_eq!(
            cache.stats.solver_queries, after_first.solver_queries,
            "identical second fold step must run zero fresh solver queries"
        );
    }

    #[test]
    fn compose_all_threads_a_single_cache() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        let mut composer = Composer::new(&solver);
        let c = composer.compose_all(vec![a, b]).unwrap();
        assert_eq!(c.paths.len(), 2);
        assert!(
            composer.stats().checks_requested > 0,
            "fold reports its work"
        );
    }

    #[test]
    fn empty_and_single_compose_all() {
        let solver = Solver::default();
        assert!(Composer::new(&solver).compose_all(Vec::new()).is_none());
        let (a, _) = toy_pair();
        let n = a.paths.len();
        let only = Composer::new(&solver).compose_all(vec![a]).unwrap();
        assert_eq!(only.paths.len(), n);
    }

    #[test]
    fn independent_stateless_filters_commute() {
        // Disjoint fields (20/21 vs 30/31), always Forward(0), no
        // writes: the canonical signatures must match in both orders.
        let f = filter_contract(mark_filter(20, "f-hit", "f-miss"));
        let g = filter_contract(mark_filter(30, "g-hit", "g-miss"));
        let solver = Solver::default();
        let mut cache = SolverCache::new();
        assert!(
            stages_commute(&f, &g, "f", "g", &solver, &mut cache, 1),
            "independent stateless filters must provably commute"
        );
        // And the signature machinery agrees with itself at any thread
        // count (compose is bit-identical, signatures are derived).
        let mut cache8 = SolverCache::new();
        assert!(stages_commute(&f, &g, "f", "g", &solver, &mut cache8, 8));
    }

    #[test]
    fn writer_before_reader_does_not_commute() {
        // The toy upstream writes byte 30; the toy downstream branches
        // on byte 30. Order visibly matters (one order masks down-slow,
        // the other cannot), so the proof must fail.
        let (a, b) = toy_pair();
        let solver = Solver::default();
        let mut cache = SolverCache::new();
        assert!(
            !stages_commute(&a, &b, "up", "down", &solver, &mut cache, 1),
            "a writer and a reader of the same field must stay sequential"
        );
    }

    #[test]
    fn drop_capable_stage_does_not_commute_with_a_filter() {
        // The upstream toy drops non-0x0800 packets. Against an
        // independent always-forward filter, an upstream drop path
        // stands alone in one order but is crossed with the filter's
        // paths in the other — conservatively order-dependent.
        let (a, _) = toy_pair();
        let g = filter_contract(mark_filter(40, "g-hit", "g-miss"));
        let solver = Solver::default();
        let mut cache = SolverCache::new();
        assert!(!stages_commute(&a, &g, "up", "g", &solver, &mut cache, 1));
    }

    #[test]
    fn chain_plan_cycle_arithmetic() {
        let mut e1 = PerfExpr::constant(400);
        e1.add_assign(&PerfExpr::constant(0));
        let plan = ChainPlan {
            names: vec!["a".into(), "b".into(), "c".into()],
            level: StackLevel::NfOnly,
            groups: vec![vec![0, 1], vec![2]],
            witnesses: vec![CommuteWitness {
                left: 0,
                right: 1,
                commutes: true,
                identical: false,
            }],
            stage_cycles: vec![
                PerfExpr::constant(400),
                PerfExpr::constant(300),
                PerfExpr::constant(500),
            ],
            merge_cycles: vec![208, 0],
        };
        let env = PcvAssignment::new();
        assert_eq!(plan.sequential_cycles(&env), 1200);
        // max(400, 300) + 208, then 500 + 0.
        assert_eq!(plan.parallel_cycles(&env), 1108);
        assert!(plan.is_parallel());
        assert_eq!(plan.widest_group(), 2);
        assert!(plan.predicted_speedup() > 1.0);
        assert_eq!(plan.groups_display(), "[a | b] -> [c]");
        let shown = plan.to_string();
        assert!(shown.contains("1200cy sequential"));
        assert!(shown.contains("1108cy parallel"));
    }
}
