//! NF-chain composition (§3.4).
//!
//! Two contracts compose by pairing execution paths: an upstream path
//! that forwards is paired with every downstream path whose constraints
//! are compatible once the upstream NF's *output* packet expressions are
//! equated with the downstream NF's *input* symbols. Incompatible pairs
//! are discarded — which is exactly how the firewall masks the router's
//! expensive IP-options path in §5.2 (Figure 3 / Table 5c). Upstream
//! paths that drop the packet appear in the composed contract on their
//! own.
//!
//! Both contracts keep their own term pools; composition migrates terms
//! into a joint pool, remapping every symbol to a fresh one prefixed by
//! the NF's name.
//!
//! # Parallel composition
//!
//! With `threads > 1`, [`compose_with`] fans the upstream×downstream
//! cross-product out over a worker pool in the same
//! speculate-then-commit shape as the parallel path explorer: each
//! worker composes one upstream path against every downstream candidate
//! using a *private* [`TermPool`] and private solver state, and a
//! sequential committer absorbs each private pool into the shared one
//! (deterministic re-intern via [`TermPool::absorb_with`], symbols
//! resolved by name) and *replays* the worker's assert/probe schedule
//! against the shared [`SolverCache`]. Composed path order, constraint
//! terms, verdicts, metrics, and [`SolverStats`] counters are therefore
//! byte-equal at any thread count (speculative feasibility verdicts are
//! classification-identical to the replay — `Unsat` comes only from the
//! deterministic propagation/enumeration half of the solver — and the
//! committer hard-asserts the agreement).
//!
//! # Memoized composition
//!
//! Composed contracts are content-addressed store records: each fold
//! step of a [`Pipeline`] is keyed by
//! [`crate::store::compose_key`] over the two operand fingerprints and
//! the stack level, so a warm chain run decodes the final composed
//! contract straight from disk — zero stage explorations, zero compose
//! solver queries ([`ChainReport`] counts both).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use bolt_expr::{PcvAssignment, PerfExpr, Term, TermPool, TermRef};
use bolt_see::symbolic::PacketField;
use bolt_see::NfVerdict;
use bolt_solver::{Solver, SolverCache, SolverCtx, SolverStats};
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

use crate::contract::{NfContract, PathContract};
use crate::nf::AbstractNf;
use crate::store::{compose_key, Fingerprint, StoreExt};

/// Rebuild a [`PacketField`] around a migrated symbol term.
fn field_of(pool: &TermPool, offset: u64, bytes: u8, term: TermRef) -> Option<PacketField> {
    match *pool.get(term) {
        Term::Sym { id, .. } => Some(PacketField {
            offset,
            bytes,
            sym: id,
            term,
        }),
        _ => None,
    }
}

/// Migrates terms between pools, remapping symbols.
struct Migrator<'a> {
    src: &'a TermPool,
    prefix: &'a str,
    memo: HashMap<TermRef, TermRef>,
    sym_map: HashMap<u32, TermRef>,
}

impl<'a> Migrator<'a> {
    fn new(src: &'a TermPool, prefix: &'a str) -> Self {
        Migrator {
            src,
            prefix,
            memo: HashMap::new(),
            sym_map: HashMap::new(),
        }
    }

    fn migrate(&mut self, dst: &mut TermPool, t: TermRef) -> TermRef {
        if let Some(&m) = self.memo.get(&t) {
            return m;
        }
        let out = match *self.src.get(t) {
            Term::Const { value, width } => dst.constant(value, width),
            Term::Sym { id, width } => *self.sym_map.entry(id).or_insert_with(|| {
                dst.fresh_sym(format!("{}.{}", self.prefix, self.src.sym_name(id)), width)
            }),
            Term::Unop { op, a } => {
                let a = self.migrate(dst, a);
                dst.unop(op, a)
            }
            Term::Binop { op, a, b } => {
                let a = self.migrate(dst, a);
                let b = self.migrate(dst, b);
                dst.binop(op, a, b)
            }
            Term::Ite { c, t: tt, e } => {
                let c = self.migrate(dst, c);
                let tt = self.migrate(dst, tt);
                let e = self.migrate(dst, e);
                dst.ite(c, tt, e)
            }
            Term::Zext { a, width } => {
                let a = self.migrate(dst, a);
                dst.zext(a, width)
            }
            Term::Trunc { a, width } => {
                let a = self.migrate(dst, a);
                dst.trunc(a, width)
            }
        };
        self.memo.insert(t, out);
        out
    }
}

fn add_perf(a: &[PerfExpr; 3], b: &[PerfExpr; 3]) -> [PerfExpr; 3] {
    [a[0].add(&b[0]), a[1].add(&b[1]), a[2].add(&b[2])]
}

/// Everything composing one upstream path produces, expressed in the
/// refs of whichever pool [`compose_one`] ran against (the shared pool
/// in the sequential fold, a worker-private pool under speculation).
enum PaBody {
    /// The upstream path ends the packet: the pair is the path alone.
    Terminal {
        constraints: Vec<TermRef>,
        packet_fields: Vec<(u64, u8, TermRef)>,
    },
    /// The upstream path forwards: one entry per downstream candidate.
    Forwarding {
        ca: Vec<TermRef>,
        pairs: Vec<PairSpec>,
    },
}

/// One upstream×downstream candidate pair.
struct PairSpec {
    /// Downstream path index.
    bi: usize,
    /// Constraints beyond `ca`: the migrated downstream constraints plus
    /// the input/output link equalities (`cs = ca ++ tail`).
    tail: Vec<TermRef>,
    /// Feasibility verdict. Speculative when produced by a worker; the
    /// committer's shared-cache replay re-derives it and hard-asserts
    /// agreement.
    feasible: bool,
    /// Composed-path fields, recorded only for feasible pairs (the
    /// sequential fold migrates them only then, and term-intern order
    /// must match exactly).
    packet_fields: Vec<(u64, u8, TermRef)>,
    final_packet: Vec<(u64, u8, TermRef)>,
}

/// Compose one upstream path against every downstream path. This single
/// body serves both engines — the sequential fold calls it against the
/// shared pool/migrators/cache, speculation workers against private ones
/// — so the operation (and term-intern) order cannot drift between them.
///
/// The upstream constraints are asserted once into an incremental
/// [`SolverCtx`]; every downstream candidate extends that saved state
/// under a push/pop checkpoint, with verdicts and models memoised in the
/// given [`SolverCache`].
fn compose_one(
    pool: &mut TermPool,
    mig_a: &mut Migrator<'_>,
    mig_b: &mut Migrator<'_>,
    pa: &PathContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
) -> PaBody {
    let ca: Vec<TermRef> = pa
        .constraints
        .iter()
        .map(|&t| mig_a.migrate(pool, t))
        .collect();
    let forwards = matches!(
        pa.verdict,
        Some(NfVerdict::Forward(_)) | Some(NfVerdict::Flood)
    );
    if !forwards {
        // The packet dies here: the pair is the upstream path alone.
        let packet_fields = pa
            .packet_fields
            .iter()
            .map(|f| (f.offset, f.bytes, mig_a.migrate(pool, f.term)))
            .collect();
        return PaBody::Terminal {
            constraints: ca,
            packet_fields,
        };
    }
    // Output packet state of the upstream path, migrated.
    let out_fields: Vec<(u64, u8, TermRef)> = pa
        .final_packet
        .iter()
        .map(|&(o, b, t)| (o, b, mig_a.migrate(pool, t)))
        .collect();
    let in_fields: Vec<(u64, u8, TermRef)> = pa
        .packet_fields
        .iter()
        .map(|f| (f.offset, f.bytes, mig_a.migrate(pool, f.term)))
        .collect();
    // The upstream constraints are asserted once; every downstream
    // candidate extends this saved state under a checkpoint.
    let mut upstream = SolverCtx::new(solver);
    for &c in &ca {
        upstream.assert_term(pool, c);
    }
    let mut pairs = Vec::new();
    for (bi, pb) in second.paths.iter().enumerate() {
        let mut tail: Vec<TermRef> = pb
            .constraints
            .iter()
            .map(|&t| mig_b.migrate(pool, t))
            .collect();
        // Link: the downstream NF's input fields equal the upstream
        // NF's output (written value if any, else the pass-through
        // input symbol).
        for f in &pb.packet_fields {
            let downstream = mig_b.migrate(pool, f.term);
            let up = out_fields
                .iter()
                .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                .or_else(|| {
                    in_fields
                        .iter()
                        .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                })
                .map(|&(_, _, t)| t);
            if let Some(u) = up {
                tail.push(pool.eq(downstream, u));
            }
        }
        upstream.push();
        for &c in &tail {
            upstream.assert_term(pool, c);
        }
        let feasible = upstream.current_feasible(pool, cache);
        upstream.pop();
        let (packet_fields, final_packet) = if feasible {
            // The chain's input fields are the first NF's inputs, plus
            // any field the second NF reads that passed through the
            // first NF untouched (it is still free chain input).
            let mut pf: Vec<(u64, u8, TermRef)> = pa
                .packet_fields
                .iter()
                .map(|f| (f.offset, f.bytes, mig_a.migrate(pool, f.term)))
                .collect();
            for f in &pb.packet_fields {
                let nf1_touched = out_fields
                    .iter()
                    .any(|&(o, b, _)| o == f.offset && b == f.bytes)
                    || in_fields
                        .iter()
                        .any(|&(o, b, _)| o == f.offset && b == f.bytes);
                if !nf1_touched {
                    pf.push((f.offset, f.bytes, mig_b.migrate(pool, f.term)));
                }
            }
            // The chain's final packet: the second NF's writes overlay
            // the first NF's final state.
            let mut fpk: Vec<(u64, u8, TermRef)> = out_fields.clone();
            for &(o, b, t) in &pb.final_packet {
                let t = mig_b.migrate(pool, t);
                if let Some(slot) = fpk.iter_mut().find(|(fo, fb, _)| *fo == o && *fb == b) {
                    slot.2 = t;
                } else {
                    fpk.push((o, b, t));
                }
            }
            (pf, fpk)
        } else {
            (Vec::new(), Vec::new())
        };
        pairs.push(PairSpec {
            bi,
            tail,
            feasible,
            packet_fields,
            final_packet,
        });
    }
    PaBody::Forwarding { ca, pairs }
}

/// Turn one upstream path's composed body into [`PathContract`]s.
/// Shared by the sequential fold and the parallel committer (which calls
/// it after remapping the body into the shared pool), so composed path
/// order and content are engine-independent.
fn push_paths(
    paths: &mut Vec<PathContract>,
    pool: &TermPool,
    pa: &PathContract,
    second: &NfContract,
    body: PaBody,
) {
    match body {
        PaBody::Terminal {
            constraints,
            packet_fields,
        } => {
            paths.push(PathContract {
                index: paths.len(),
                constraints,
                tags: pa.tags.clone(),
                verdict: pa.verdict,
                perf: pa.perf.clone(),
                packet_fields: packet_fields
                    .iter()
                    .filter_map(|&(o, b, t)| field_of(pool, o, b, t))
                    .collect(),
                final_packet: Vec::new(),
            });
        }
        PaBody::Forwarding { ca, pairs } => {
            for pair in pairs {
                if !pair.feasible {
                    continue;
                }
                let pb = &second.paths[pair.bi];
                let mut constraints = ca.clone();
                constraints.extend(pair.tail.iter().copied());
                let mut tags = pa.tags.clone();
                tags.extend(pb.tags.iter().copied());
                paths.push(PathContract {
                    index: paths.len(),
                    constraints,
                    tags,
                    verdict: pb.verdict,
                    perf: add_perf(&pa.perf, &pb.perf),
                    packet_fields: pair
                        .packet_fields
                        .iter()
                        .filter_map(|&(o, b, t)| field_of(pool, o, b, t))
                        .collect(),
                    final_packet: pair.final_packet,
                });
            }
        }
    }
}

/// Remap every term ref in a body through an absorb table.
fn remap_body(body: PaBody, map: &[TermRef]) -> PaBody {
    let r = |t: TermRef| map[t.index()];
    let rv = |v: Vec<TermRef>| v.into_iter().map(r).collect();
    let rf = |v: Vec<(u64, u8, TermRef)>| v.into_iter().map(|(o, b, t)| (o, b, r(t))).collect();
    match body {
        PaBody::Terminal {
            constraints,
            packet_fields,
        } => PaBody::Terminal {
            constraints: rv(constraints),
            packet_fields: rf(packet_fields),
        },
        PaBody::Forwarding { ca, pairs } => PaBody::Forwarding {
            ca: rv(ca),
            pairs: pairs
                .into_iter()
                .map(|p| PairSpec {
                    bi: p.bi,
                    tail: rv(p.tail),
                    feasible: p.feasible,
                    packet_fields: rf(p.packet_fields),
                    final_packet: rf(p.final_packet),
                })
                .collect(),
        },
    }
}

/// Compose two contracts into the contract of `first → second`.
///
/// Both NFs must have been registered against the *same*
/// [`nf_lib::registry::DsRegistry`]
/// (or be stateless) so that PCV ids agree in the summed expressions.
///
/// Runs sequentially with a private [`SolverCache`]; use
/// [`compose_with`] to share a cache across a chain fold and to fan the
/// path cross-product out over worker threads.
pub fn compose(first: &NfContract, second: &NfContract, solver: &Solver) -> NfContract {
    let mut cache = SolverCache::new();
    compose_with(first, second, solver, &mut cache, 1)
}

/// [`compose`] with an explicit feasibility cache (shared across the
/// fold steps of a chain, and the carrier of the compose-side
/// [`SolverStats`]) and worker-thread count. Output — composed path
/// order, constraint terms, verdicts, metrics, and the cache's stats
/// counters — is bit-identical at any thread count.
pub fn compose_with(
    first: &NfContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
) -> NfContract {
    if threads <= 1 {
        return compose_seq(first, second, solver, cache);
    }
    compose_par(first, second, solver, cache, threads)
}

/// The sequential cross-product fold: one shared pool, shared migrators,
/// pair-compatibility checks on an incremental [`SolverCtx`] against the
/// shared cache.
fn compose_seq(
    first: &NfContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
) -> NfContract {
    let mut pool = TermPool::new();
    let mut paths = Vec::new();
    let mut mig_a = Migrator::new(&first.pool, "nf1");
    let mut mig_b = Migrator::new(&second.pool, "nf2");
    for pa in &first.paths {
        let body = compose_one(&mut pool, &mut mig_a, &mut mig_b, pa, second, solver, cache);
        push_paths(&mut paths, &pool, pa, second, body);
    }
    NfContract { pool, paths }
}

/// Hard ceiling on compose speculation workers, whatever the caller
/// says (mirrors the explorer's clamp: a runaway `BOLT_THREADS` must
/// degrade to oversubscription, never exhaust OS threads).
const MAX_COMPOSE_WORKERS: usize = 256;

/// One speculation slot of the parallel cross-product.
enum Slot {
    Pending,
    Done(Box<(TermPool, PaBody)>),
    /// The worker panicked; the committer re-runs the path inline so
    /// the panic surfaces on its thread.
    Panicked,
}

/// The parallel engine: workers speculate upstream paths in claim order
/// against private pools/solver state; the committer absorbs and replays
/// them in exact upstream-path order (see the module docs).
fn compose_par(
    first: &NfContract,
    second: &NfContract,
    solver: &Solver,
    cache: &mut SolverCache,
    threads: usize,
) -> NfContract {
    let n = first.paths.len();
    let mut pool = TermPool::new();
    let mut paths = Vec::new();
    // (symbol name, width bits) → shared-pool term: the cross-worker
    // symbol identity the committer resolves private pools through.
    // Names are unique per identity (each side's exploration pool
    // dedupes names; the nf1./nf2. prefixes keep the sides disjoint).
    let mut symtab: HashMap<(String, u32), TermRef> = HashMap::new();
    let slots: Vec<Mutex<Slot>> = (0..n).map(|_| Mutex::new(Slot::Pending)).collect();
    let next = AtomicUsize::new(0);
    let cv = Condvar::new();
    // One mutex guards the "a slot changed" wakeup; per-slot mutexes
    // hold the payloads so workers never serialise on the committer.
    let wake = Mutex::new(());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(MAX_COMPOSE_WORKERS).min(n) {
            scope.spawn(|| loop {
                let ai = next.fetch_add(1, Ordering::Relaxed);
                if ai >= n {
                    return;
                }
                let spec =
                    catch_unwind(AssertUnwindSafe(|| speculate_pa(first, second, ai, solver)));
                *slots[ai].lock().unwrap() = match spec {
                    Ok(s) => Slot::Done(Box::new(s)),
                    Err(_) => Slot::Panicked,
                };
                let _g = wake.lock().unwrap();
                cv.notify_all();
            });
        }
        for (ai, slot) in slots.iter().enumerate() {
            let spec = loop {
                // Take the slot under its own lock and release it before
                // any wait: holding it across the wait would block the
                // worker's write forever.
                let taken = {
                    let mut g = slot.lock().unwrap();
                    std::mem::replace(&mut *g, Slot::Pending)
                };
                match taken {
                    Slot::Done(s) => break Some(*s),
                    Slot::Panicked => break None,
                    Slot::Pending => {
                        let g = wake.lock().unwrap();
                        // Re-check under the wake lock: the worker may
                        // have filled the slot (and notified) between
                        // the take above and acquiring the wake lock.
                        let filled = !matches!(*slot.lock().unwrap(), Slot::Pending);
                        if !filled {
                            drop(cv.wait(g).unwrap());
                        }
                    }
                }
            };
            let (lp, body) = spec.unwrap_or_else(|| speculate_pa(first, second, ai, solver));
            // Absorb the worker's private pool: deterministic re-intern
            // through the public constructors in arena order, symbols
            // resolved by (name, width) through the shared table — the
            // shared arena gains exactly the nodes the sequential fold
            // would have interned at this upstream path, in the same
            // order.
            let tmap = pool.absorb_with(&lp, |p, name, w| {
                let key = (name.to_string(), w.bits());
                if let Some(&t) = symtab.get(&key) {
                    t
                } else {
                    let t = p.fresh_sym(name, w);
                    symtab.insert(key, t);
                    t
                }
            });
            let body = remap_body(body, &tmap);
            // Replay the worker's solver schedule against the shared
            // cache so memo/model state and every counter evolve
            // exactly as sequentially — and hard-assert that the
            // speculative verdicts agree (a divergence would mean a
            // solver fast path stopped being classification-identical).
            if let PaBody::Forwarding { ca, pairs } = &body {
                let mut upstream = SolverCtx::new(solver);
                for &c in ca {
                    upstream.assert_term(&pool, c);
                }
                for pair in pairs {
                    upstream.push();
                    for &c in &pair.tail {
                        upstream.assert_term(&pool, c);
                    }
                    let feasible = upstream.current_feasible(&pool, cache);
                    upstream.pop();
                    assert_eq!(
                        feasible, pair.feasible,
                        "speculative pair verdict diverged from the shared-cache \
                         replay (solver fast path not classification-identical?)"
                    );
                }
            }
            push_paths(&mut paths, &pool, &first.paths[ai], second, body);
        }
    });
    NfContract { pool, paths }
}

/// Execute one upstream path against fresh private state. Valid at any
/// time, in any order: the body depends only on the two (immutable)
/// operand contracts, never on sibling speculation. Feasibility verdicts
/// computed here are classification-identical to the committer's
/// shared-cache replay — `Unsat` comes only from the deterministic,
/// ref-index-independent propagation/enumeration half of the solver.
fn speculate_pa(
    first: &NfContract,
    second: &NfContract,
    ai: usize,
    solver: &Solver,
) -> (TermPool, PaBody) {
    let mut pool = TermPool::new();
    let mut cache = SolverCache::new();
    let mut mig_a = Migrator::new(&first.pool, "nf1");
    let mut mig_b = Migrator::new(&second.pool, "nf2");
    let body = compose_one(
        &mut pool,
        &mut mig_a,
        &mut mig_b,
        &first.paths[ai],
        second,
        solver,
        &mut cache,
    );
    (pool, body)
}

/// What one [`Pipeline`] chain run did: the composed contract plus the
/// work provenance the warm-chain CI gate asserts on.
#[derive(Debug)]
pub struct ChainReport {
    /// The composed contract of the whole chain.
    pub contract: NfContract,
    /// Compose-side solver counters, accumulated across every fold step
    /// that composed fresh this run. All-zero on a fully warm run.
    pub solver: SolverStats,
    /// Fold steps composed fresh (pairwise cross-product solves ran).
    pub steps_composed: usize,
    /// Stored composed records decoded. The fold resumes after the
    /// *deepest* stored prefix, so this is at most 1 per run — a fully
    /// warm chain decodes exactly the final record, a partially warm one
    /// the longest memoized prefix.
    pub steps_cached: usize,
    /// Stage contracts explored fresh this run.
    pub stages_explored: usize,
    /// Stage contracts decoded from stored explorations.
    pub stages_cached: usize,
}

impl ChainReport {
    /// Whether the run was fully solver-free: every fold step decoded
    /// from the store, no stage explored, no compose solver request.
    pub fn fully_cached(&self) -> bool {
        self.steps_composed == 0
            && self.stages_explored == 0
            && self.solver == SolverStats::default()
    }
}

/// A chain of heterogeneous network functions, composed pairwise (§3.4).
///
/// Stages are [`AbstractNf`] trait objects, so any mix of
/// [`crate::nf::NetworkFunction`] implementors chains without generics
/// leaking into the caller:
///
/// ```ignore
/// let chain = Pipeline::new()
///     .push(Firewall::default())
///     .push(StaticRouter::default());
/// let contract = chain.contract(StackLevel::NfOnly).unwrap();
/// ```
///
/// With a persistent contract store attached
/// ([`Pipeline::with_store`], or ambiently via `BOLT_STORE_DIR`), both
/// halves of the work are memoized: stage explorations are
/// get-or-explore, and every pairwise fold step is a content-addressed
/// composed record (keyed by [`crate::store::compose_key`] over the two
/// operand fingerprints), so a warm chain run is fully solver-free —
/// [`Pipeline::report`] returns the [`ChainReport`] that proves it.
#[derive(Default)]
pub struct Pipeline<'s> {
    stages: Vec<Box<dyn AbstractNf>>,
    store: Option<&'s bolt_store::ContractStore>,
    threads: Option<usize>,
}

impl<'s> Pipeline<'s> {
    /// An empty chain.
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            store: None,
            threads: None,
        }
    }

    /// Append a network function to the downstream end.
    pub fn push(mut self, nf: impl AbstractNf + 'static) -> Self {
        self.stages.push(Box::new(nf));
        self
    }

    /// Attach a persistent contract store consulted for every stage
    /// exploration and every composed fold step.
    pub fn with_store(mut self, store: &'s bolt_store::ContractStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Explore stages and compose path pairs on `n` worker threads
    /// (1 = sequential). Overrides the ambient `BOLT_THREADS`; stage and
    /// composed contracts are bit-identical at any count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names, upstream first.
    pub fn names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// The chain's composed-contract store key at a level: the left fold
    /// of [`crate::store::compose_key`] over the stage keys. For a
    /// single-stage chain this is the stage's own key (no composed
    /// record is ever written for it). `None` for an empty chain.
    pub fn chain_key(&self, level: StackLevel) -> Option<Fingerprint> {
        let mut it = self.stages.iter();
        let mut key = it.next()?.store_key(level);
        for s in it {
            key = compose_key(key, s.store_key(level), level);
        }
        Some(key)
    }

    fn resolved_threads(&self) -> usize {
        self.threads.unwrap_or_else(crate::nf::ambient_threads)
    }

    /// Each stage's individual contract, upstream first (every stage is
    /// explored at `level`, through the attached or ambient store when
    /// one is configured).
    pub fn contracts(&self, level: StackLevel) -> Vec<NfContract> {
        let threads = self.resolved_threads();
        let env;
        let store = match self.store {
            Some(s) => Some(s),
            None => {
                env = crate::store::env_store();
                env.as_ref()
            }
        };
        self.stages
            .iter()
            .map(|s| match store {
                Some(st) => s.explore_contract_cached_threads(level, st, threads),
                None => s.explore_contract_threads(level, threads),
            })
            .collect()
    }

    /// The composed contract of the whole chain: stage contracts are
    /// [`compose`]d pairwise left to right, discarding solver-infeasible
    /// path pairs (which is what masks downstream slow paths the upstream
    /// NFs filter out). Store-aware and parallel — this is
    /// [`Pipeline::report`] without the provenance counters. `None` for
    /// an empty chain.
    pub fn contract(&self, level: StackLevel) -> Option<NfContract> {
        self.report(level).map(|r| r.contract)
    }

    /// Compose the chain at `level`, reporting what the run actually did.
    ///
    /// The fold walks stages left to right. For every step it first
    /// consults the store (attached or ambient) under the step's
    /// [`crate::store::compose_key`]; a hit decodes the composed record
    /// — no stage exploration, no solver work. On a miss the two
    /// operands are materialised (themselves store-backed), composed on
    /// the configured worker-thread count, and the result is persisted
    /// for the next run. Stage contracts are built lazily, so a fully
    /// warm chain run touches nothing but the final composed record.
    pub fn report(&self, level: StackLevel) -> Option<ChainReport> {
        if self.stages.is_empty() {
            return None;
        }
        let threads = self.resolved_threads();
        let env;
        let store = match self.store {
            Some(s) => Some(s),
            None => {
                env = crate::store::env_store();
                env.as_ref()
            }
        };
        let solver = Solver::default();
        let mut cache = SolverCache::new();
        let (mut stages_explored, mut stages_cached) = (0usize, 0usize);
        let (mut steps_composed, mut steps_cached) = (0usize, 0usize);
        let stage_contract = |i: usize, explored: &mut usize, cached: &mut usize| match store {
            Some(st) => {
                let (c, was_cached) = self.stages[i].explore_contract_via_store(level, st, threads);
                if was_cached {
                    *cached += 1;
                } else {
                    *explored += 1;
                }
                c
            }
            None => {
                *explored += 1;
                self.stages[i].explore_contract_threads(level, threads)
            }
        };
        let keys: Vec<Fingerprint> = self.stages.iter().map(|s| s.store_key(level)).collect();
        let names = self.names();
        // `cks[i]` addresses the composed contract of stages `0..=i`
        // (`cks[0]` is stage 0's own key; nothing composed is stored
        // under it).
        let mut cks: Vec<Fingerprint> = Vec::with_capacity(keys.len());
        cks.push(keys[0]);
        for i in 1..keys.len() {
            cks.push(compose_key(cks[i - 1], keys[i], level));
        }
        // Resume after the deepest stored composed prefix: a fully warm
        // run decodes exactly one record (the whole chain's) and a
        // partially warm one re-uses the longest memoized prefix.
        // `acc == None` means "the accumulator is still stage 0,
        // unmaterialised" — a warm fold never materialises it at all.
        let mut acc: Option<NfContract> = None;
        let mut start = 1;
        if let Some(st) = store {
            for i in (1..self.stages.len()).rev() {
                if let Some(c) = st.get_composed(cks[i]) {
                    steps_cached += 1;
                    acc = Some(c);
                    start = i + 1;
                    break;
                }
            }
        }
        for i in start..self.stages.len() {
            let left = match acc.take() {
                Some(c) => c,
                None => stage_contract(0, &mut stages_explored, &mut stages_cached),
            };
            let right = stage_contract(i, &mut stages_explored, &mut stages_cached);
            let composed = compose_with(&left, &right, &solver, &mut cache, threads);
            if let Some(st) = store {
                // A failed write costs only the next run's warm start.
                let _ = st.put_composed(cks[i], &names[..=i].join("+"), level, &composed);
            }
            steps_composed += 1;
            acc = Some(composed);
        }
        let contract = match acc {
            Some(c) => c,
            // Single-stage chain: the contract is the stage contract.
            None => stage_contract(0, &mut stages_explored, &mut stages_cached),
        };
        Some(ChainReport {
            contract,
            solver: cache.stats,
            steps_composed,
            steps_cached,
            stages_explored,
            stages_cached,
        })
    }

    /// Compose pre-built stage contracts left to right, sharing one
    /// feasibility cache across the fold, on the ambient `BOLT_THREADS`
    /// worker count. No store involvement (the contracts are already in
    /// hand); use [`Pipeline::report`] for the memoized path.
    pub fn compose_all(contracts: Vec<NfContract>) -> Option<NfContract> {
        let solver = Solver::default();
        let mut cache = SolverCache::new();
        Self::compose_all_with(contracts, &solver, &mut cache, crate::nf::ambient_threads())
    }

    /// [`Pipeline::compose_all`] with an explicit solver, shared cache
    /// (whose [`SolverCache::stats`] accumulate the compose-side
    /// counters across every fold step), and worker-thread count.
    pub fn compose_all_with(
        contracts: Vec<NfContract>,
        solver: &Solver,
        cache: &mut SolverCache,
        threads: usize,
    ) -> Option<NfContract> {
        let mut it = contracts.into_iter();
        let mut acc = it.next()?;
        for next in it {
            acc = compose_with(&acc, &next, solver, cache, threads);
        }
        Some(acc)
    }

    /// The naive prediction: the sum over stages of each stage's
    /// individual worst case (Figure 3's "Naive-Add" bar, generalised to
    /// any length). Re-explores every stage; callers that already hold
    /// the stage contracts should use [`Pipeline::naive_add_of`].
    pub fn naive_add(&self, level: StackLevel, metric: Metric, env: &PcvAssignment) -> u64 {
        Self::naive_add_of(&self.contracts(level), metric, env)
    }

    /// Naive addition over pre-built stage contracts (no re-exploration —
    /// pair with [`Pipeline::contracts`] + [`Pipeline::compose_all`] when
    /// both the composed contract and the baseline are needed).
    pub fn naive_add_of(contracts: &[NfContract], metric: Metric, env: &PcvAssignment) -> u64 {
        contracts
            .iter()
            .map(|c| {
                c.paths
                    .iter()
                    .map(|p| p.expr(metric).eval(env))
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }
}

/// The naive prediction for a chain: the sum of each NF's individual
/// worst case (Figure 3's "Naive-Add" bar).
pub fn naive_add(
    first: &NfContract,
    second: &NfContract,
    metric: Metric,
    env: &PcvAssignment,
) -> u64 {
    let a = first
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    let b = second
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_contract;
    use bolt_expr::Width;
    use bolt_see::{Explorer, NfCtx};

    /// A forwarding NF body that writes one field and reads another.
    fn upstream_nf(ctx: &mut bolt_see::SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        let et = ctx.load(pkt, 12, 2);
        if ctx.branch_eq_imm(et, 0x0800, Width::W16) {
            ctx.tag("up-valid");
            let marker = ctx.lit(0x7, Width::W8);
            ctx.store(pkt, 30, marker, 1);
            ctx.verdict(NfVerdict::Forward(0));
        } else {
            ctx.tag("up-drop");
            ctx.verdict(NfVerdict::Drop);
        }
    }

    /// A downstream NF body that branches on the upstream-written field.
    fn downstream_nf(ctx: &mut bolt_see::SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        let m = ctx.load(pkt, 30, 1);
        if ctx.branch_eq_imm(m, 0x7, Width::W8) {
            ctx.tag("down-fast");
            ctx.verdict(NfVerdict::Forward(1));
        } else {
            ctx.tag("down-slow");
            let x = ctx.load(pkt, 31, 1);
            let z = ctx.lit(0, Width::W8);
            let _ = ctx.add(x, z);
            ctx.verdict(NfVerdict::Forward(1));
        }
    }

    fn toy_pair() -> (NfContract, NfContract) {
        let reg = nf_lib::registry::DsRegistry::new();
        let a = crate::contract::generate(&reg, Explorer::new().explore(upstream_nf));
        let b = crate::contract::generate(&reg, Explorer::new().explore(downstream_nf));
        (a, b)
    }

    #[test]
    fn infeasible_pairs_are_masked() {
        let (a, b) = toy_pair();
        let chain = compose(&a, &b, &Solver::default());
        // up-drop alone, up-valid×down-fast; up-valid×down-slow is
        // infeasible (the upstream always writes 0x7).
        assert_eq!(chain.paths.len(), 2);
        assert!(chain.paths.iter().any(|p| p.has_tag("up-drop")));
        assert!(chain
            .paths
            .iter()
            .any(|p| p.has_tag("up-valid") && p.has_tag("down-fast")));
        assert!(!chain.paths.iter().any(|p| p.has_tag("down-slow")));
    }

    #[test]
    fn parallel_composition_is_bit_identical() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        let mut seq_cache = SolverCache::new();
        let seq = compose_with(&a, &b, &solver, &mut seq_cache, 1);
        let seq_bytes = encode_contract(&seq);
        for threads in [2, 3, 8] {
            let mut cache = SolverCache::new();
            let par = compose_with(&a, &b, &solver, &mut cache, threads);
            assert_eq!(
                encode_contract(&par),
                seq_bytes,
                "composition at {threads} threads diverged from sequential"
            );
            assert_eq!(
                cache.stats, seq_cache.stats,
                "solver counters diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn shared_cache_reuses_verdicts_across_fold_steps() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        // Composing the same pair twice through one cache must answer
        // the second step's identical probes from the memo.
        let mut cache = SolverCache::new();
        let _ = compose_with(&a, &b, &solver, &mut cache, 1);
        let after_first = cache.stats;
        let _ = compose_with(&a, &b, &solver, &mut cache, 1);
        assert!(
            cache.stats.checks_requested > after_first.checks_requested,
            "second step must issue requests"
        );
        assert_eq!(
            cache.stats.solver_queries, after_first.solver_queries,
            "identical second fold step must run zero fresh solver queries"
        );
    }

    #[test]
    fn compose_all_threads_a_single_cache() {
        let (a, b) = toy_pair();
        let solver = Solver::default();
        let mut cache = SolverCache::new();
        let c = Pipeline::compose_all_with(vec![a, b], &solver, &mut cache, 1).unwrap();
        assert_eq!(c.paths.len(), 2);
        assert!(cache.stats.checks_requested > 0, "fold reports its work");
    }

    #[test]
    fn empty_and_single_compose_all() {
        assert!(Pipeline::compose_all(Vec::new()).is_none());
        let (a, _) = toy_pair();
        let n = a.paths.len();
        let only = Pipeline::compose_all(vec![a]).unwrap();
        assert_eq!(only.paths.len(), n);
    }
}
