//! NF-chain composition (§3.4).
//!
//! Two contracts compose by pairing execution paths: an upstream path
//! that forwards is paired with every downstream path whose constraints
//! are compatible once the upstream NF's *output* packet expressions are
//! equated with the downstream NF's *input* symbols. Incompatible pairs
//! are discarded — which is exactly how the firewall masks the router's
//! expensive IP-options path in §5.2 (Figure 3 / Table 5c). Upstream
//! paths that drop the packet appear in the composed contract on their
//! own.
//!
//! Both contracts keep their own term pools; composition migrates terms
//! into a joint pool, remapping every symbol to a fresh one prefixed by
//! the NF's name.

use std::collections::HashMap;

use bolt_expr::{PcvAssignment, PerfExpr, Term, TermPool, TermRef};
use bolt_see::symbolic::PacketField;
use bolt_see::NfVerdict;
use bolt_solver::{Solver, SolverCache, SolverCtx};
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

use crate::contract::{NfContract, PathContract};
use crate::nf::AbstractNf;

/// Rebuild a [`PacketField`] around a migrated symbol term.
fn field_of(pool: &TermPool, offset: u64, bytes: u8, term: TermRef) -> Option<PacketField> {
    match *pool.get(term) {
        Term::Sym { id, .. } => Some(PacketField {
            offset,
            bytes,
            sym: id,
            term,
        }),
        _ => None,
    }
}

/// Migrates terms between pools, remapping symbols.
struct Migrator<'a> {
    src: &'a TermPool,
    prefix: &'a str,
    memo: HashMap<TermRef, TermRef>,
    sym_map: HashMap<u32, TermRef>,
}

impl<'a> Migrator<'a> {
    fn new(src: &'a TermPool, prefix: &'a str) -> Self {
        Migrator {
            src,
            prefix,
            memo: HashMap::new(),
            sym_map: HashMap::new(),
        }
    }

    fn migrate(&mut self, dst: &mut TermPool, t: TermRef) -> TermRef {
        if let Some(&m) = self.memo.get(&t) {
            return m;
        }
        let out = match *self.src.get(t) {
            Term::Const { value, width } => dst.constant(value, width),
            Term::Sym { id, width } => *self.sym_map.entry(id).or_insert_with(|| {
                dst.fresh_sym(format!("{}.{}", self.prefix, self.src.sym_name(id)), width)
            }),
            Term::Unop { op, a } => {
                let a = self.migrate(dst, a);
                dst.unop(op, a)
            }
            Term::Binop { op, a, b } => {
                let a = self.migrate(dst, a);
                let b = self.migrate(dst, b);
                dst.binop(op, a, b)
            }
            Term::Ite { c, t: tt, e } => {
                let c = self.migrate(dst, c);
                let tt = self.migrate(dst, tt);
                let e = self.migrate(dst, e);
                dst.ite(c, tt, e)
            }
            Term::Zext { a, width } => {
                let a = self.migrate(dst, a);
                dst.zext(a, width)
            }
            Term::Trunc { a, width } => {
                let a = self.migrate(dst, a);
                dst.trunc(a, width)
            }
        };
        self.memo.insert(t, out);
        out
    }
}

fn add_perf(a: &[PerfExpr; 3], b: &[PerfExpr; 3]) -> [PerfExpr; 3] {
    [a[0].add(&b[0]), a[1].add(&b[1]), a[2].add(&b[2])]
}

/// Compose two contracts into the contract of `first → second`.
///
/// Both NFs must have been registered against the *same*
/// [`nf_lib::registry::DsRegistry`]
/// (or be stateless) so that PCV ids agree in the summed expressions.
///
/// Pair-compatibility checks run on an incremental [`SolverCtx`]: each
/// upstream path's constraints are asserted once, and every downstream
/// candidate is probed with a push/pop against that saved state, with
/// verdicts and models memoised in a [`SolverCache`] shared across the
/// whole cross-product.
pub fn compose(first: &NfContract, second: &NfContract, solver: &Solver) -> NfContract {
    let mut pool = TermPool::new();
    let mut paths = Vec::new();
    let mut mig_a = Migrator::new(&first.pool, "nf1");
    let mut cache = SolverCache::new();

    for pa in &first.paths {
        let ca: Vec<TermRef> = pa
            .constraints
            .iter()
            .map(|&t| mig_a.migrate(&mut pool, t))
            .collect();
        let forwards = matches!(
            pa.verdict,
            Some(NfVerdict::Forward(_)) | Some(NfVerdict::Flood)
        );
        if !forwards {
            // The packet dies here: the pair is the upstream path alone.
            let packet_fields = pa
                .packet_fields
                .iter()
                .filter_map(|f| {
                    let t = mig_a.migrate(&mut pool, f.term);
                    field_of(&pool, f.offset, f.bytes, t)
                })
                .collect();
            paths.push(PathContract {
                index: paths.len(),
                constraints: ca,
                tags: pa.tags.clone(),
                verdict: pa.verdict,
                perf: pa.perf.clone(),
                packet_fields,
                final_packet: Vec::new(),
            });
            continue;
        }
        // Output packet state of the upstream path, migrated.
        let out_fields: Vec<(u64, u8, TermRef)> = pa
            .final_packet
            .iter()
            .map(|&(o, b, t)| (o, b, mig_a.migrate(&mut pool, t)))
            .collect();
        let in_fields: Vec<(u64, u8, TermRef)> = pa
            .packet_fields
            .iter()
            .map(|f| (f.offset, f.bytes, mig_a.migrate(&mut pool, f.term)))
            .collect();
        // The upstream constraints are asserted once; every downstream
        // candidate extends this saved state under a checkpoint.
        let mut upstream = SolverCtx::new(solver);
        for &c in &ca {
            upstream.assert_term(&pool, c);
        }
        for pb in &second.paths {
            let mut mig_b = Migrator::new(&second.pool, "nf2");
            let mut cs = ca.clone();
            cs.extend(pb.constraints.iter().map(|&t| mig_b.migrate(&mut pool, t)));
            // Link: the downstream NF's input fields equal the upstream
            // NF's output (written value if any, else the pass-through
            // input symbol).
            for f in &pb.packet_fields {
                let downstream = mig_b.migrate(&mut pool, f.term);
                let upstream = out_fields
                    .iter()
                    .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                    .or_else(|| {
                        in_fields
                            .iter()
                            .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                    })
                    .map(|&(_, _, t)| t);
                if let Some(u) = upstream {
                    cs.push(pool.eq(downstream, u));
                }
            }
            upstream.push();
            for &c in &cs[ca.len()..] {
                upstream.assert_term(&pool, c);
            }
            let feasible = upstream.current_feasible(&pool, &mut cache);
            upstream.pop();
            if !feasible {
                continue;
            }
            let mut tags = pa.tags.clone();
            tags.extend(pb.tags.iter().copied());
            // The chain's input fields are the first NF's inputs, plus any
            // field the second NF reads that passed through the first NF
            // untouched (it is still free chain input).
            let mut packet_fields: Vec<PacketField> = pa
                .packet_fields
                .iter()
                .filter_map(|f| {
                    let t = mig_a.migrate(&mut pool, f.term);
                    field_of(&pool, f.offset, f.bytes, t)
                })
                .collect();
            for f in &pb.packet_fields {
                let nf1_touched = out_fields
                    .iter()
                    .any(|&(o, b, _)| o == f.offset && b == f.bytes)
                    || in_fields
                        .iter()
                        .any(|&(o, b, _)| o == f.offset && b == f.bytes);
                if !nf1_touched {
                    let t = mig_b.migrate(&mut pool, f.term);
                    if let Some(pf) = field_of(&pool, f.offset, f.bytes, t) {
                        packet_fields.push(pf);
                    }
                }
            }
            // The chain's final packet: the second NF's writes overlay the
            // first NF's final state.
            let mut final_packet: Vec<(u64, u8, TermRef)> = out_fields.clone();
            for &(o, b, t) in &pb.final_packet {
                let t = mig_b.migrate(&mut pool, t);
                if let Some(slot) = final_packet
                    .iter_mut()
                    .find(|(fo, fb, _)| *fo == o && *fb == b)
                {
                    slot.2 = t;
                } else {
                    final_packet.push((o, b, t));
                }
            }
            paths.push(PathContract {
                index: paths.len(),
                constraints: cs,
                tags,
                verdict: pb.verdict,
                perf: add_perf(&pa.perf, &pb.perf),
                packet_fields,
                final_packet,
            });
        }
    }
    NfContract { pool, paths }
}

/// A chain of heterogeneous network functions, composed pairwise (§3.4).
///
/// Stages are [`AbstractNf`] trait objects, so any mix of
/// [`crate::nf::NetworkFunction`] implementors chains without generics
/// leaking into the caller:
///
/// ```ignore
/// let chain = Pipeline::new()
///     .push(Firewall::default())
///     .push(StaticRouter::default());
/// let contract = chain.contract(StackLevel::NfOnly).unwrap();
/// ```
///
/// With a persistent contract store attached
/// ([`Pipeline::with_store`], or ambiently via `BOLT_STORE_DIR`), stage
/// explorations are get-or-explore: long chains re-use each NF's stored
/// paths instead of re-exploring per composition.
#[derive(Default)]
pub struct Pipeline<'s> {
    stages: Vec<Box<dyn AbstractNf>>,
    store: Option<&'s bolt_store::ContractStore>,
    threads: Option<usize>,
}

impl<'s> Pipeline<'s> {
    /// An empty chain.
    pub fn new() -> Self {
        Pipeline {
            stages: Vec::new(),
            store: None,
            threads: None,
        }
    }

    /// Append a network function to the downstream end.
    pub fn push(mut self, nf: impl AbstractNf + 'static) -> Self {
        self.stages.push(Box::new(nf));
        self
    }

    /// Attach a persistent contract store consulted for every stage
    /// exploration.
    pub fn with_store(mut self, store: &'s bolt_store::ContractStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Explore every stage on `n` worker threads (1 = sequential).
    /// Overrides the ambient `BOLT_THREADS`; stage contracts are
    /// bit-identical at any count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage names, upstream first.
    pub fn names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// Each stage's individual contract, upstream first (every stage is
    /// explored at `level`, through the attached or ambient store when
    /// one is configured).
    pub fn contracts(&self, level: StackLevel) -> Vec<NfContract> {
        let threads = self.threads.unwrap_or_else(crate::nf::ambient_threads);
        let env;
        let store = match self.store {
            Some(s) => Some(s),
            None => {
                env = crate::store::env_store();
                env.as_ref()
            }
        };
        self.stages
            .iter()
            .map(|s| match store {
                Some(st) => s.explore_contract_cached_threads(level, st, threads),
                None => s.explore_contract_threads(level, threads),
            })
            .collect()
    }

    /// The composed contract of the whole chain: stage contracts are
    /// [`compose`]d pairwise left to right, discarding solver-infeasible
    /// path pairs (which is what masks downstream slow paths the upstream
    /// NFs filter out). `None` for an empty chain.
    pub fn contract(&self, level: StackLevel) -> Option<NfContract> {
        Self::compose_all(self.contracts(level))
    }

    /// Compose pre-built stage contracts left to right.
    pub fn compose_all(contracts: Vec<NfContract>) -> Option<NfContract> {
        let solver = Solver::default();
        let mut it = contracts.into_iter();
        let mut acc = it.next()?;
        for next in it {
            acc = compose(&acc, &next, &solver);
        }
        Some(acc)
    }

    /// The naive prediction: the sum over stages of each stage's
    /// individual worst case (Figure 3's "Naive-Add" bar, generalised to
    /// any length). Re-explores every stage; callers that already hold
    /// the stage contracts should use [`Pipeline::naive_add_of`].
    pub fn naive_add(&self, level: StackLevel, metric: Metric, env: &PcvAssignment) -> u64 {
        Self::naive_add_of(&self.contracts(level), metric, env)
    }

    /// Naive addition over pre-built stage contracts (no re-exploration —
    /// pair with [`Pipeline::contracts`] + [`Pipeline::compose_all`] when
    /// both the composed contract and the baseline are needed).
    pub fn naive_add_of(contracts: &[NfContract], metric: Metric, env: &PcvAssignment) -> u64 {
        contracts
            .iter()
            .map(|c| {
                c.paths
                    .iter()
                    .map(|p| p.expr(metric).eval(env))
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }
}

/// The naive prediction for a chain: the sum of each NF's individual
/// worst case (Figure 3's "Naive-Add" bar).
pub fn naive_add(
    first: &NfContract,
    second: &NfContract,
    metric: Metric,
    env: &PcvAssignment,
) -> u64 {
    let a = first
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    let b = second
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    a + b
}
