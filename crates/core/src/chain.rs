//! NF-chain composition (§3.4).
//!
//! Two contracts compose by pairing execution paths: an upstream path
//! that forwards is paired with every downstream path whose constraints
//! are compatible once the upstream NF's *output* packet expressions are
//! equated with the downstream NF's *input* symbols. Incompatible pairs
//! are discarded — which is exactly how the firewall masks the router's
//! expensive IP-options path in §5.2 (Figure 3 / Table 5c). Upstream
//! paths that drop the packet appear in the composed contract on their
//! own.
//!
//! Both contracts keep their own term pools; composition migrates terms
//! into a joint pool, remapping every symbol to a fresh one prefixed by
//! the NF's name.

use std::collections::HashMap;

use bolt_expr::{PcvAssignment, PerfExpr, Term, TermPool, TermRef};
use bolt_see::symbolic::PacketField;
use bolt_see::NfVerdict;
use bolt_solver::Solver;
use bolt_trace::Metric;

use crate::contract::{NfContract, PathContract};

/// Rebuild a [`PacketField`] around a migrated symbol term.
fn field_of(pool: &TermPool, offset: u64, bytes: u8, term: TermRef) -> Option<PacketField> {
    match *pool.get(term) {
        Term::Sym { id, .. } => Some(PacketField {
            offset,
            bytes,
            sym: id,
            term,
        }),
        _ => None,
    }
}

/// Migrates terms between pools, remapping symbols.
struct Migrator<'a> {
    src: &'a TermPool,
    prefix: &'a str,
    memo: HashMap<TermRef, TermRef>,
    sym_map: HashMap<u32, TermRef>,
}

impl<'a> Migrator<'a> {
    fn new(src: &'a TermPool, prefix: &'a str) -> Self {
        Migrator {
            src,
            prefix,
            memo: HashMap::new(),
            sym_map: HashMap::new(),
        }
    }

    fn migrate(&mut self, dst: &mut TermPool, t: TermRef) -> TermRef {
        if let Some(&m) = self.memo.get(&t) {
            return m;
        }
        let out = match *self.src.get(t) {
            Term::Const { value, width } => dst.constant(value, width),
            Term::Sym { id, width } => *self.sym_map.entry(id).or_insert_with(|| {
                dst.fresh_sym(format!("{}.{}", self.prefix, self.src.sym_name(id)), width)
            }),
            Term::Unop { op, a } => {
                let a = self.migrate(dst, a);
                dst.unop(op, a)
            }
            Term::Binop { op, a, b } => {
                let a = self.migrate(dst, a);
                let b = self.migrate(dst, b);
                dst.binop(op, a, b)
            }
            Term::Ite { c, t: tt, e } => {
                let c = self.migrate(dst, c);
                let tt = self.migrate(dst, tt);
                let e = self.migrate(dst, e);
                dst.ite(c, tt, e)
            }
            Term::Zext { a, width } => {
                let a = self.migrate(dst, a);
                dst.zext(a, width)
            }
            Term::Trunc { a, width } => {
                let a = self.migrate(dst, a);
                dst.trunc(a, width)
            }
        };
        self.memo.insert(t, out);
        out
    }
}

fn add_perf(a: &[PerfExpr; 3], b: &[PerfExpr; 3]) -> [PerfExpr; 3] {
    [a[0].add(&b[0]), a[1].add(&b[1]), a[2].add(&b[2])]
}

/// Compose two contracts into the contract of `first → second`.
///
/// Both NFs must have been registered against the *same*
/// [`nf_lib::registry::DsRegistry`]
/// (or be stateless) so that PCV ids agree in the summed expressions.
pub fn compose(first: &NfContract, second: &NfContract, solver: &Solver) -> NfContract {
    let mut pool = TermPool::new();
    let mut paths = Vec::new();
    let mut mig_a = Migrator::new(&first.pool, "nf1");

    for pa in &first.paths {
        let ca: Vec<TermRef> = pa
            .constraints
            .iter()
            .map(|&t| mig_a.migrate(&mut pool, t))
            .collect();
        let forwards = matches!(
            pa.verdict,
            Some(NfVerdict::Forward(_)) | Some(NfVerdict::Flood)
        );
        if !forwards {
            // The packet dies here: the pair is the upstream path alone.
            let packet_fields = pa
                .packet_fields
                .iter()
                .filter_map(|f| {
                    let t = mig_a.migrate(&mut pool, f.term);
                    field_of(&pool, f.offset, f.bytes, t)
                })
                .collect();
            paths.push(PathContract {
                index: paths.len(),
                constraints: ca,
                tags: pa.tags.clone(),
                verdict: pa.verdict,
                perf: pa.perf.clone(),
                packet_fields,
                final_packet: Vec::new(),
            });
            continue;
        }
        // Output packet state of the upstream path, migrated.
        let out_fields: Vec<(u64, u8, TermRef)> = pa
            .final_packet
            .iter()
            .map(|&(o, b, t)| (o, b, mig_a.migrate(&mut pool, t)))
            .collect();
        let in_fields: Vec<(u64, u8, TermRef)> = pa
            .packet_fields
            .iter()
            .map(|f| (f.offset, f.bytes, mig_a.migrate(&mut pool, f.term)))
            .collect();
        for pb in &second.paths {
            let mut mig_b = Migrator::new(&second.pool, "nf2");
            let mut cs = ca.clone();
            cs.extend(
                pb.constraints
                    .iter()
                    .map(|&t| mig_b.migrate(&mut pool, t)),
            );
            // Link: the downstream NF's input fields equal the upstream
            // NF's output (written value if any, else the pass-through
            // input symbol).
            for f in &pb.packet_fields {
                let downstream = mig_b.migrate(&mut pool, f.term);
                let upstream = out_fields
                    .iter()
                    .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                    .or_else(|| {
                        in_fields
                            .iter()
                            .find(|&&(o, b, _)| o == f.offset && b == f.bytes)
                    })
                    .map(|&(_, _, t)| t);
                if let Some(u) = upstream {
                    cs.push(pool.eq(downstream, u));
                }
            }
            if !solver.is_feasible(&pool, &cs) {
                continue;
            }
            let mut tags = pa.tags.clone();
            tags.extend(pb.tags.iter().copied());
            // The chain's input fields are the first NF's inputs, plus any
            // field the second NF reads that passed through the first NF
            // untouched (it is still free chain input).
            let mut packet_fields: Vec<PacketField> = pa
                .packet_fields
                .iter()
                .filter_map(|f| {
                    let t = mig_a.migrate(&mut pool, f.term);
                    field_of(&pool, f.offset, f.bytes, t)
                })
                .collect();
            for f in &pb.packet_fields {
                let nf1_touched = out_fields
                    .iter()
                    .any(|&(o, b, _)| o == f.offset && b == f.bytes)
                    || in_fields
                        .iter()
                        .any(|&(o, b, _)| o == f.offset && b == f.bytes);
                if !nf1_touched {
                    let t = mig_b.migrate(&mut pool, f.term);
                    if let Some(pf) = field_of(&pool, f.offset, f.bytes, t) {
                        packet_fields.push(pf);
                    }
                }
            }
            // The chain's final packet: the second NF's writes overlay the
            // first NF's final state.
            let mut final_packet: Vec<(u64, u8, TermRef)> = out_fields.clone();
            for &(o, b, t) in &pb.final_packet {
                let t = mig_b.migrate(&mut pool, t);
                if let Some(slot) = final_packet
                    .iter_mut()
                    .find(|(fo, fb, _)| *fo == o && *fb == b)
                {
                    slot.2 = t;
                } else {
                    final_packet.push((o, b, t));
                }
            }
            paths.push(PathContract {
                index: paths.len(),
                constraints: cs,
                tags,
                verdict: pb.verdict,
                perf: add_perf(&pa.perf, &pb.perf),
                packet_fields,
                final_packet,
            });
        }
    }
    NfContract { pool, paths }
}

/// The naive prediction for a chain: the sum of each NF's individual
/// worst case (Figure 3's "Naive-Add" bar).
pub fn naive_add(
    first: &NfContract,
    second: &NfContract,
    metric: Metric,
    env: &PcvAssignment,
) -> u64 {
    let a = first
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    let b = second
        .paths
        .iter()
        .map(|p| p.expr(metric).eval(env))
        .max()
        .unwrap_or(0);
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_nfs::{firewall, static_router};
    use dpdk_sim::StackLevel;

    fn chain() -> (NfContract, NfContract, NfContract) {
        let (_, fw_exp) = firewall::explore(&firewall::FirewallConfig::default(), StackLevel::NfOnly);
        let (_, rt_exp) = static_router::explore(StackLevel::NfOnly);
        let reg = nf_lib::registry::DsRegistry::new();
        let fw = crate::generate(&reg, fw_exp);
        let rt = crate::generate(&reg, rt_exp);
        let solver = Solver::default();
        let composed = compose(&fw, &rt, &solver);
        (fw, rt, composed)
    }

    #[test]
    fn firewall_masks_router_option_paths() {
        let (_, rt, composed) = chain();
        // The router alone has expensive option paths…
        let env = PcvAssignment::new();
        let rt_worst = rt
            .paths
            .iter()
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .max()
            .unwrap();
        // …but no composed path pairs a forwarded firewall packet with a
        // router option path: packets with options died at the firewall.
        for p in &composed.paths {
            assert!(
                !(p.has_tag("no-options") && p.has_tag("ip-options")),
                "firewall-accepted traffic must not reach router option paths"
            );
        }
        let composed_worst = composed
            .paths
            .iter()
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .max()
            .unwrap();
        let naive = naive_add(
            &chain().0,
            &rt,
            Metric::Instructions,
            &env,
        );
        assert!(
            composed_worst < naive,
            "composition must beat naive addition: {composed_worst} vs {naive}"
        );
        let _ = rt_worst;
    }

    #[test]
    fn dropped_upstream_paths_stand_alone() {
        let (fw, _, composed) = chain();
        // Firewall option-drop path appears in the chain unpaired, with
        // the firewall-only cost.
        let env = PcvAssignment::new();
        let fw_drop = fw
            .tagged("ip-options")
            .next()
            .unwrap()
            .expr(Metric::Instructions)
            .eval(&env);
        let chain_drop = composed
            .tagged("ip-options")
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .max()
            .unwrap();
        assert_eq!(fw_drop, chain_drop, "drop path cost is firewall-only");
    }

    #[test]
    fn longer_chains_compose_pairwise() {
        // §3.4: longer chains are pieced together one NF at a time. A
        // firewall → router → router chain composes associatively enough
        // for provisioning: the three-NF contract still masks the option
        // paths and still beats naive addition.
        let (fw, rt, fw_rt) = chain();
        let solver = Solver::default();
        let three = compose(&fw_rt, &rt, &solver);
        let env = PcvAssignment::new();
        assert!(!three.paths.is_empty());
        for p in &three.paths {
            assert!(
                !(p.has_tag("no-options") && p.has_tag("ip-options")),
                "masking must survive a second composition"
            );
        }
        let worst3 = three
            .paths
            .iter()
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .max()
            .unwrap();
        let naive3 = naive_add(&fw_rt, &rt, Metric::Instructions, &env)
            .max(naive_add(&fw, &rt, Metric::Instructions, &env));
        assert!(worst3 < naive3 + naive_add(&fw, &rt, Metric::Instructions, &env));
        // The three-NF worst case is the two-NF worst case plus one more
        // clean router pass.
        let worst2 = fw_rt
            .paths
            .iter()
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .max()
            .unwrap();
        let rt_clean = rt
            .tagged("no-options")
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .max()
            .unwrap();
        assert_eq!(worst3, worst2 + rt_clean);
    }

    #[test]
    fn composed_pairs_sum_costs() {
        let (fw, rt, composed) = chain();
        let env = PcvAssignment::new();
        // Any composed forwarding path costs at least the cheapest
        // upstream forward plus the cheapest downstream path.
        let fw_min = fw
            .paths
            .iter()
            .filter(|p| matches!(p.verdict, Some(NfVerdict::Forward(_))))
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .min()
            .unwrap();
        let rt_min = rt
            .paths
            .iter()
            .map(|p| p.expr(Metric::Instructions).eval(&env))
            .min()
            .unwrap();
        for p in &composed.paths {
            if matches!(p.verdict, Some(NfVerdict::Forward(_))) {
                assert!(p.expr(Metric::Instructions).eval(&env) >= fw_min + rt_min);
            }
        }
    }
}
