//! The unified network-function abstraction.
//!
//! The paper promises one workflow for *any* NF: symbolically execute the
//! analysis build against data-structure models, generate a contract
//! (Algorithm 2), then query it per input class. [`NetworkFunction`]
//! captures the pieces an NF must supply — registration of its stateful
//! parts, concrete state construction, and the packet-processing body in
//! both execution modes — and provides the whole pipeline on top:
//! [`NetworkFunction::explore`] and [`Exploration::contract`] are blanket
//! implementations, so every NF gets Algorithm 2 for free.
//!
//! The fluent entrypoint reads the way the paper describes the workflow:
//!
//! ```ignore
//! let mut contract = Bolt::nf(Bridge::default())
//!     .explore(StackLevel::FullStack)
//!     .contract();
//! let q = contract.query(&broadcast_frames, Metric::Instructions, &env);
//! ```
//!
//! Chains (§3.4) compose over the same abstraction: [`crate::chain::Pipeline`]
//! takes heterogeneous NFs as trait objects and pairwise-composes their
//! contracts.
//!
//! On the concrete path, [`NetworkFunction::process_batch`] processes a
//! burst of mbufs per call (DPDK-style `rte_rx_burst` loops). The default
//! implementation loops over [`NetworkFunction::process`]; NFs can
//! override it to amortise per-burst work (prefetching, batched expiry) —
//! the hook for future batching speedups.

use bolt_expr::{PcvAssignment, PerfExpr};
use bolt_see::{ConcreteCtx, ExplorationResult, Explorer, SymbolicCtx};
use bolt_solver::Solver;
use bolt_trace::{AddressSpace, Metric};
use dpdk_sim::{sym_process_packet, Mbuf, StackLevel};
use nf_lib::clock::Clock;
use nf_lib::registry::DsRegistry;

pub use bolt_store::{ContractStore, Fingerprinter};

use crate::classes::InputClass;
use crate::contract::{generate, NfContract, PathContract, QueryResult};
use crate::store::StoreExt;

/// Chunk size of the default [`NetworkFunction::process_batch`] walk.
/// Tuned to the shape real burst loops take (a cache-friendly fraction
/// of the typical 32–256-mbuf burst); overriding NFs are free to pick
/// their own.
pub const BURST_CHUNK: usize = 32;

/// Environment variable naming the ambient exploration thread count.
pub const THREADS_ENV: &str = "BOLT_THREADS";

/// The ambient exploration thread count: `BOLT_THREADS` when set to a
/// positive integer, else 1 (sequential — all existing behaviour
/// unchanged). Exploration output is bit-identical at any value; the
/// knob only trades cores for wall-clock.
pub fn ambient_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// A network function: configuration plus the Vigor-style split into
/// stateful library parts (registered, modelled, contracted) and
/// stateless packet logic (written once, executed symbolically and
/// concretely).
///
/// Implementors are cheap *descriptors* — configuration bundles like
/// `Bridge { cfg }` — not the runtime state itself; state is built on
/// demand by [`NetworkFunction::state`].
pub trait NetworkFunction {
    /// Handle to the NF's registered stateful parts (data-structure ids
    /// and PCVs). `()` for stateless NFs. `Sync` because exploration
    /// worker threads share the handle while re-executing the NF body.
    type Ids: Copy + Sync + 'static;

    /// Concrete instrumented state (the production build's data
    /// structures).
    type State;

    /// Short name, used for diagnostics and chain composition labels.
    fn name(&self) -> &'static str;

    /// Register the NF's stateful parts and their method contracts.
    fn register(&self, reg: &mut DsRegistry) -> Self::Ids;

    /// Build the concrete state bundle for production runs.
    fn state(&self, ids: Self::Ids, aspace: &mut AddressSpace) -> Self::State;

    /// Process one packet concretely (the production build).
    fn process(
        &self,
        ctx: &mut ConcreteCtx<'_>,
        state: &mut Self::State,
        clock: &Clock,
        mbuf: Mbuf,
    );

    /// Process one packet symbolically (the analysis build): instantiate
    /// the data-structure models for `ids` and run the same stateless
    /// logic. Called once per explored path.
    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, ids: Self::Ids, mbuf: Mbuf);

    /// Symbolic packet length for the analysis build. NFs that walk
    /// variable-length headers (IP options) need room beyond the 64-byte
    /// default.
    fn packet_len(&self) -> u64 {
        64
    }

    /// Feed every configuration field that can change exploration output
    /// into the contract-store fingerprint. The NF name, packet length,
    /// and stack level are hashed by the caller
    /// ([`crate::store::store_key`]); descriptors add their own config on
    /// top. The default adds nothing — correct only for configuration-free
    /// descriptors, so any NF with a config struct must override this or
    /// distinct configs would share a store record.
    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        let _ = fp;
    }

    /// Process a burst of received packets (the DPDK `rx_burst` shape).
    ///
    /// The default walks the burst in [`BURST_CHUNK`]-sized chunks,
    /// processing each packet with [`NetworkFunction::process`] and
    /// emitting one verdict per mbuf in order — the invariant overriding
    /// implementations must preserve (pinned by the parity test in
    /// `tests/nf_api.rs`). Behaviourally this walk equals the plain
    /// per-packet loop; the chunk boundary exists as the seam where
    /// overriding NFs hang per-chunk amortisation (prefetch of the next
    /// chunk's headers, shared expiry scans, SIMD classification)
    /// without re-deriving the ragged-tail bookkeeping.
    fn process_batch(
        &self,
        ctx: &mut ConcreteCtx<'_>,
        state: &mut Self::State,
        clock: &Clock,
        mbufs: &mut [Mbuf],
    ) {
        for chunk in mbufs.chunks(BURST_CHUNK) {
            for mbuf in chunk.iter() {
                self.process(ctx, state, clock, *mbuf);
            }
        }
    }

    /// Run the analysis build: enumerate every feasible path of this NF
    /// at the given stack level (Algorithm 2, lines 2–3). Provided for
    /// every NF. Honours the ambient `BOLT_THREADS` thread count
    /// ([`ambient_threads`]); output is bit-identical at any value.
    fn explore(&self, level: StackLevel) -> Exploration<Self::Ids>
    where
        Self: Sized + Sync,
    {
        self.explore_threads(level, ambient_threads())
    }

    /// [`NetworkFunction::explore`] with an explicit worker-thread
    /// count (1 = the sequential worklist). Exploration output is
    /// bit-identical at any count; see [`Explorer::explore_par`].
    fn explore_threads(&self, level: StackLevel, threads: usize) -> Exploration<Self::Ids>
    where
        Self: Sized + Sync,
    {
        let mut reg = DsRegistry::new();
        let ids = self.register(&mut reg);
        let mut explorer = Explorer::new();
        explorer.threads = threads;
        let result = explorer.explore_par(|ctx| {
            sym_process_packet(ctx, level, self.packet_len(), |ctx, mbuf| {
                self.sym_process(ctx, ids, mbuf);
            });
        });
        Exploration {
            reg,
            ids,
            level,
            result,
            cached: false,
        }
    }

    /// Explore and generate in one step (`explore(level).contract()`).
    fn contract(&self, level: StackLevel) -> Contract<Self::Ids>
    where
        Self: Sized + Sync,
    {
        self.explore(level).contract()
    }
}

/// Fluent entrypoint: `Bolt::nf(nf).explore(level).contract().query(…)`.
///
/// `explore` consults the persistent contract store when one is attached
/// with [`Bolt::with_store`] — or ambiently via the `BOLT_STORE_DIR`
/// environment variable — and skips the explorer (and every solver
/// query) on a warm hit. With no store, it explores fresh, exactly as
/// before. [`Bolt::threads`] sets the exploration worker-thread count
/// (default: ambient `BOLT_THREADS`, else 1); output is bit-identical
/// at any count.
pub struct Bolt<'s, N> {
    nf: N,
    store: Option<&'s ContractStore>,
    threads: Option<usize>,
}

impl<'s, N: NetworkFunction + Sync> Bolt<'s, N> {
    /// Wrap a network function descriptor.
    pub fn nf(nf: N) -> Self {
        Bolt {
            nf,
            store: None,
            threads: None,
        }
    }

    /// Attach a persistent contract store: `explore` becomes
    /// get-or-explore against it.
    pub fn with_store(mut self, store: &'s ContractStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Explore on `n` worker threads (1 = sequential). Overrides the
    /// ambient `BOLT_THREADS`. The knob trades cores for wall-clock
    /// only — exploration output is bit-identical at any value.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Run the analysis build at a stack level (through the attached or
    /// ambient store, when one is configured).
    pub fn explore(self, level: StackLevel) -> Exploration<N::Ids> {
        let threads = self.threads.unwrap_or_else(ambient_threads);
        if let Some(store) = self.store {
            return store.get_or_explore_threads(&self.nf, level, threads);
        }
        if let Some(store) = crate::store::env_store() {
            return store.get_or_explore_threads(&self.nf, level, threads);
        }
        self.nf.explore_threads(level, threads)
    }

    /// The wrapped descriptor.
    pub fn into_inner(self) -> N {
        self.nf
    }
}

/// Result of an NF's analysis build: the registry (holding the library
/// contracts and PCV table), the NF's registered-state handle, and the
/// explored feasible paths.
pub struct Exploration<I> {
    /// Registry the NF registered its stateful parts against.
    pub reg: DsRegistry,
    /// The NF's registered-state handle.
    pub ids: I,
    /// The stack level the analysis ran at.
    pub level: StackLevel,
    /// The feasible paths.
    pub result: ExplorationResult,
    /// Whether the result was served from a persistent contract store
    /// (no explorer run, no solver query) rather than explored fresh.
    pub cached: bool,
}

impl<I> Exploration<I> {
    /// Generate the performance contract (Algorithm 2, lines 4–17).
    pub fn contract(self) -> Contract<I> {
        let inner = generate(&self.reg, self.result);
        Contract {
            reg: self.reg,
            ids: self.ids,
            level: self.level,
            inner,
            solver: Solver::default(),
        }
    }
}

/// A queryable performance contract bound to the registry it was
/// generated against (so expressions render with the right PCV names)
/// and carrying its own solver for class-compatibility checks.
pub struct Contract<I> {
    /// Registry holding the library contracts and PCV table.
    pub reg: DsRegistry,
    /// The NF's registered-state handle (PCV ids for bindings).
    pub ids: I,
    /// The stack level the contract covers.
    pub level: StackLevel,
    /// The raw contract.
    pub inner: NfContract,
    solver: Solver,
}

impl<I> Contract<I> {
    /// Predicted performance of an input class: the worst compatible
    /// path's expression evaluated at `env` (§5.1).
    pub fn query(
        &mut self,
        class: &InputClass,
        metric: Metric,
        env: &PcvAssignment,
    ) -> Option<QueryResult> {
        self.inner.query(&self.solver, class, metric, env)
    }

    /// Indices of the paths compatible with a class.
    pub fn compatible_paths(&mut self, class: &InputClass) -> Vec<usize> {
        self.inner.compatible_paths(&self.solver, class)
    }

    /// The worst path overall for a metric under a binding.
    pub fn worst(&self, metric: Metric, env: &PcvAssignment) -> Option<&PathContract> {
        self.inner.worst(metric, env)
    }

    /// All per-path contracts.
    pub fn paths(&self) -> &[PathContract] {
        &self.inner.paths
    }

    /// Render `class → expression` rows for the paper's contract tables.
    pub fn rows(
        &mut self,
        classes: &[InputClass],
        metric: Metric,
        env: &PcvAssignment,
    ) -> Vec<(String, String)> {
        let Contract {
            reg, inner, solver, ..
        } = self;
        inner.render_rows(solver, reg, classes, metric, env)
    }

    /// Render one expression with this contract's PCV names.
    pub fn display_expr(&self, expr: &PerfExpr) -> String {
        format!("{}", expr.display(&self.reg.pcvs))
    }

    /// Synthesize a concrete packet driving the NF down a path.
    pub fn synthesize_packet(&self, path_index: usize, frame_len: usize) -> Option<(Vec<u8>, u16)> {
        self.inner
            .synthesize_packet(&self.solver, path_index, frame_len)
    }

    /// The solver used for compatibility checks.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Unwrap the raw [`NfContract`] (drops registry and ids).
    pub fn into_inner(self) -> NfContract {
        self.inner
    }
}

/// Object-safe view of a network function for heterogeneous chains: the
/// subset of the workflow [`crate::chain::Pipeline`] needs. Blanket-implemented for
/// every [`NetworkFunction`], so any NF descriptor can be boxed into a
/// pipeline.
pub trait AbstractNf {
    /// The NF's short name.
    fn name(&self) -> &'static str;

    /// Run the analysis build and generate the raw contract, on
    /// `threads` exploration workers (1 = sequential; output is
    /// bit-identical at any count).
    fn explore_contract_threads(&self, level: StackLevel, threads: usize) -> NfContract;

    /// Like [`AbstractNf::explore_contract_threads`], but get-or-explore
    /// against a persistent contract store (warm hits skip the explorer
    /// and the solver entirely).
    fn explore_contract_cached_threads(
        &self,
        level: StackLevel,
        store: &ContractStore,
        threads: usize,
    ) -> NfContract;

    /// [`AbstractNf::explore_contract_cached_threads`], additionally
    /// reporting whether the stage was served from the store (`true`) or
    /// explored fresh (`false`) — the provenance
    /// [`crate::chain::ChainReport`] surfaces per chain run.
    fn explore_contract_via_store(
        &self,
        level: StackLevel,
        store: &ContractStore,
        threads: usize,
    ) -> (NfContract, bool);

    /// The stage's contract-store key at a stack level (NF name, config,
    /// level, store-format version — see [`crate::store::store_key`]).
    /// Chain composition derives composed-record keys from these, so a
    /// changed stage config invalidates every composed record downstream
    /// of the stage.
    fn store_key(&self, level: StackLevel) -> crate::store::Fingerprint;

    /// [`AbstractNf::explore_contract_threads`] at the ambient
    /// `BOLT_THREADS` count.
    fn explore_contract(&self, level: StackLevel) -> NfContract {
        self.explore_contract_threads(level, ambient_threads())
    }

    /// [`AbstractNf::explore_contract_cached_threads`] at the ambient
    /// `BOLT_THREADS` count.
    fn explore_contract_cached(&self, level: StackLevel, store: &ContractStore) -> NfContract {
        self.explore_contract_cached_threads(level, store, ambient_threads())
    }
}

impl<N: NetworkFunction + Sync> AbstractNf for N {
    fn name(&self) -> &'static str {
        NetworkFunction::name(self)
    }

    fn explore_contract_threads(&self, level: StackLevel, threads: usize) -> NfContract {
        self.explore_threads(level, threads).contract().into_inner()
    }

    fn explore_contract_cached_threads(
        &self,
        level: StackLevel,
        store: &ContractStore,
        threads: usize,
    ) -> NfContract {
        store
            .get_or_explore_threads(self, level, threads)
            .contract()
            .into_inner()
    }

    fn explore_contract_via_store(
        &self,
        level: StackLevel,
        store: &ContractStore,
        threads: usize,
    ) -> (NfContract, bool) {
        let ex = store.get_or_explore_threads(self, level, threads);
        let cached = ex.cached;
        (ex.contract().into_inner(), cached)
    }

    fn store_key(&self, level: StackLevel) -> crate::store::Fingerprint {
        crate::store::store_key(self, level)
    }
}
