//! NF-aware layer over the persistent contract store.
//!
//! `bolt_store` moves raw checksummed records; this module gives them
//! meaning: [`store_key`] fingerprints an NF descriptor + stack level
//! into the store's addressing key, and [`StoreExt`] extends
//! [`ContractStore`] with the typed front door —
//! [`StoreExt::get_or_explore`] returns a decoded exploration on a warm
//! hit (zero exploration runs, zero solver queries) and explores + saves
//! on a miss. Exploration is deterministic per (config, level), which is
//! what makes the cached record a faithful stand-in for a fresh run.
//!
//! Opt-in is explicit ([`crate::nf::Bolt::with_store`],
//! [`crate::chain::Pipeline::with_store`]) or ambient via the
//! `BOLT_STORE_DIR` environment variable (the bench default).

use std::io;

use dpdk_sim::StackLevel;
use nf_lib::registry::DsRegistry;

pub use bolt_store::{
    ContractStore, Fingerprint, Fingerprinter, RecordHeader, RecordKind, StoreEntry, SweepReport,
};

use crate::codec::{decode_contract, encode_contract};
use crate::contract::NfContract;
use crate::nf::{Exploration, NetworkFunction};

/// Environment variable naming the ambient store directory.
pub const STORE_DIR_ENV: &str = "BOLT_STORE_DIR";

/// Stable tag of a stack level (part of the record header and key).
pub fn level_tag(level: StackLevel) -> u8 {
    match level {
        StackLevel::NfOnly => 0,
        StackLevel::FullStack => 1,
    }
}

/// Parse a stack-level tag back.
pub fn level_from_tag(tag: u8) -> Option<StackLevel> {
    match tag {
        0 => Some(StackLevel::NfOnly),
        1 => Some(StackLevel::FullStack),
        _ => None,
    }
}

/// Human name of a stack level (the CLI's `--level` vocabulary).
pub fn level_name(level: StackLevel) -> &'static str {
    match level {
        StackLevel::NfOnly => "nf-only",
        StackLevel::FullStack => "full-stack",
    }
}

/// The store key of one (NF descriptor, stack level) exploration: name,
/// symbolic packet length, every config field the descriptor feeds
/// through [`NetworkFunction::fingerprint_config`], and the level — all
/// under the store format version (seeded into the hasher) and the
/// crate version (so a release that may have changed NF bodies or the
/// explorer cold-starts the store instead of serving stale paths;
/// within one version, exploration-affecting changes must bump
/// `bolt_store::STORE_FORMAT_VERSION`).
pub fn store_key<N: NetworkFunction>(nf: &N, level: StackLevel) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.str("bolt.nf");
    fp.str(env!("CARGO_PKG_VERSION"));
    fp.str(nf.name());
    fp.u64(nf.packet_len());
    nf.fingerprint_config(&mut fp);
    fp.u8(level_tag(level));
    fp.finish()
}

/// The store key of one composed-pair record: the two operand
/// fingerprints — a stage's [`store_key`], or, for chains longer than
/// two, the composed key of the whole upstream prefix — plus the stack
/// level, under the store format version (seeded into the hasher) and
/// the crate version. Composition folds left, so the key of an n-stage
/// chain is `compose_key(compose_key(..), key_n, level)`; changing any
/// stage's configuration changes its stage key and therefore every
/// composed key downstream of it, so stale composed records simply miss
/// and are re-composed.
pub fn compose_key(first: Fingerprint, second: Fingerprint, level: StackLevel) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.str("bolt.compose");
    fp.str(env!("CARGO_PKG_VERSION"));
    fp.u128(first.0);
    fp.u128(second.0);
    fp.u8(level_tag(level));
    fp.finish()
}

/// The store key of one chain-parallelization plan: *every* stage
/// fingerprint in chain order, plus the stack level, under the store
/// format version (seeded into the hasher) and the crate version.
/// Unlike [`compose_key`]'s left fold, the plan key hashes the stage
/// list flat — the plan's groups can span any stages, so any stage
/// configuration change anywhere in the chain must invalidate it (the
/// changed stage key changes this key, and the stale plan simply
/// misses).
pub fn plan_key(stage_keys: &[Fingerprint], level: StackLevel) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.str("bolt.plan");
    fp.str(env!("CARGO_PKG_VERSION"));
    fp.u64(stage_keys.len() as u64);
    for k in stage_keys {
        fp.u128(k.0);
    }
    fp.u8(level_tag(level));
    fp.finish()
}

/// The ambient store named by `BOLT_STORE_DIR`, if the variable is set
/// and the directory is usable.
pub fn env_store() -> Option<ContractStore> {
    let dir = std::env::var_os(STORE_DIR_ENV)?;
    if dir.is_empty() {
        return None;
    }
    ContractStore::open(std::path::PathBuf::from(dir)).ok()
}

/// Typed operations over a [`ContractStore`] (implemented for it here,
/// since the store crate sits below the NF abstraction).
pub trait StoreExt {
    /// Warm path: decode the stored exploration for this (NF, level) —
    /// re-registering the NF's stateful parts is the only work, no
    /// explorer run, no solver query. Cold path: explore, save the
    /// record, and return the fresh result. The returned
    /// [`Exploration::cached`] flag says which happened. Explores at
    /// the ambient `BOLT_THREADS` count.
    fn get_or_explore<N: NetworkFunction + Sync>(
        &self,
        nf: &N,
        level: StackLevel,
    ) -> Exploration<N::Ids> {
        self.get_or_explore_threads(nf, level, crate::nf::ambient_threads())
    }

    /// [`StoreExt::get_or_explore`] with an explicit exploration
    /// worker-thread count for the cold path. Exploration output — and
    /// therefore the persisted record — is bit-identical at any count.
    fn get_or_explore_threads<N: NetworkFunction + Sync>(
        &self,
        nf: &N,
        level: StackLevel,
        threads: usize,
    ) -> Exploration<N::Ids>;

    /// Fetch and decode a stored contract record.
    fn get_contract(&self, key: Fingerprint) -> Option<NfContract>;

    /// Encode and persist a contract record.
    fn put_contract(
        &self,
        key: Fingerprint,
        nf_name: &str,
        level: StackLevel,
        contract: &NfContract,
    ) -> io::Result<()>;

    /// Fetch and decode a composed-chain contract record (keyed by
    /// [`compose_key`]). A hit is fully solver-free: the record decodes
    /// straight into a queryable [`NfContract`].
    fn get_composed(&self, key: Fingerprint) -> Option<NfContract>;

    /// Encode and persist a composed-chain contract record. `chain_name`
    /// is the human-readable stage chain (e.g. `firewall+static_router`),
    /// shown by `list`; the addressing is entirely by `key`.
    fn put_composed(
        &self,
        key: Fingerprint,
        chain_name: &str,
        level: StackLevel,
        contract: &NfContract,
    ) -> io::Result<()>;

    /// Fetch and decode a stored chain-parallelization plan (keyed by
    /// [`plan_key`]). A hit skips every commutativity probe the planner
    /// would otherwise run.
    fn get_plan(&self, key: Fingerprint) -> Option<crate::chain::ChainPlan>;

    /// Encode and persist a chain-parallelization plan. `chain_name` is
    /// the human-readable stage chain; the record's path count slot
    /// holds the plan's group count.
    fn put_plan(
        &self,
        key: Fingerprint,
        chain_name: &str,
        level: StackLevel,
        plan: &crate::chain::ChainPlan,
    ) -> io::Result<()>;

    /// Header-only metadata of a record: the cheap pass (no payload
    /// read, no pool rehydration) for existence checks, `list`-style
    /// enumeration, and serving-cache admission accounting. Use
    /// [`StoreExt::get_or_explore`]/[`StoreExt::get_contract`] only when
    /// the payload's contents are actually needed.
    fn peek(&self, key: Fingerprint, kind: RecordKind) -> Option<RecordHeader>;
}

/// Feed one fresh exploration's counters into a metrics registry, under
/// the `explore.*` / `solver.*` wire vocabulary. Called only on the cold
/// path — a warm record replays the *original* run's stats, which would
/// double-count work this process never did.
fn feed_explore_stats(metrics: &bolt_obs::Registry, stats: &bolt_see::ExploreStats) {
    metrics.counter("explore.explorations").inc();
    metrics.counter("explore.runs").add(stats.runs);
    metrics
        .counter("explore.terms_interned")
        .add(stats.terms_interned);
    metrics
        .counter("explore.syms_minted")
        .add(stats.syms_minted);
    let s = &stats.solver;
    metrics
        .counter("solver.checks_requested")
        .add(s.checks_requested);
    metrics.counter("solver.queries").add(s.solver_queries);
    metrics
        .counter("solver.completion_searches")
        .add(s.completion_searches);
    metrics
        .counter("solver.unsat_by_propagation")
        .add(s.unsat_by_propagation);
    metrics.counter("solver.memo_hits").add(s.memo_hits);
    metrics
        .counter("solver.witness_reuse_hits")
        .add(s.witness_reuse_hits);
    metrics
        .counter("solver.model_evictions")
        .add(s.model_evictions);
}

impl StoreExt for ContractStore {
    fn get_or_explore_threads<N: NetworkFunction + Sync>(
        &self,
        nf: &N,
        level: StackLevel,
        threads: usize,
    ) -> Exploration<N::Ids> {
        let key = store_key(nf, level);
        if let Some(payload) = self.get(key, RecordKind::Exploration) {
            let decoded = {
                let _span = self.metrics().histogram("store.decode").span();
                bolt_see::codec::decode_result(&payload)
            };
            match decoded {
                Ok(result) => {
                    let mut reg = DsRegistry::new();
                    let ids = nf.register(&mut reg);
                    return Exploration {
                        reg,
                        ids,
                        level,
                        result,
                        cached: true,
                    };
                }
                Err(_) => {
                    // The header checked out but the payload did not
                    // decode (e.g. written by a buggy encoder): drop the
                    // record so the rewrite below replaces it.
                    let _ = self.evict(key, RecordKind::Exploration);
                }
            }
        }
        let ex = {
            let _span = self.metrics().histogram("explore.wall").span();
            nf.explore_threads(level, threads)
        };
        feed_explore_stats(self.metrics(), &ex.result.stats);
        let payload = bolt_see::codec::encode_result(&ex.result);
        // A failed write costs only the warm start, never the result.
        let _ = self.put(
            key,
            RecordKind::Exploration,
            nf.name(),
            level_tag(level),
            ex.result.paths.len() as u64,
            &payload,
        );
        ex
    }

    fn get_contract(&self, key: Fingerprint) -> Option<NfContract> {
        let payload = self.get(key, RecordKind::Contract)?;
        decode_contract(&payload).ok()
    }

    fn put_contract(
        &self,
        key: Fingerprint,
        nf_name: &str,
        level: StackLevel,
        contract: &NfContract,
    ) -> io::Result<()> {
        let payload = encode_contract(contract);
        self.put(
            key,
            RecordKind::Contract,
            nf_name,
            level_tag(level),
            contract.paths.len() as u64,
            &payload,
        )
    }

    fn get_composed(&self, key: Fingerprint) -> Option<NfContract> {
        let payload = self.get(key, RecordKind::Composed)?;
        decode_contract(&payload).ok()
    }

    fn get_plan(&self, key: Fingerprint) -> Option<crate::chain::ChainPlan> {
        let payload = self.get(key, RecordKind::Plan)?;
        crate::codec::decode_plan(&payload).ok()
    }

    fn put_plan(
        &self,
        key: Fingerprint,
        chain_name: &str,
        level: StackLevel,
        plan: &crate::chain::ChainPlan,
    ) -> io::Result<()> {
        let payload = crate::codec::encode_plan(plan);
        self.put(
            key,
            RecordKind::Plan,
            chain_name,
            level_tag(level),
            plan.groups.len() as u64,
            &payload,
        )
    }

    fn peek(&self, key: Fingerprint, kind: RecordKind) -> Option<RecordHeader> {
        self.header(key, kind)
    }

    fn put_composed(
        &self,
        key: Fingerprint,
        chain_name: &str,
        level: StackLevel,
        contract: &NfContract,
    ) -> io::Result<()> {
        let payload = encode_contract(contract);
        self.put(
            key,
            RecordKind::Composed,
            chain_name,
            level_tag(level),
            contract.paths.len() as u64,
            &payload,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_tags_round_trip() {
        for level in [StackLevel::NfOnly, StackLevel::FullStack] {
            assert_eq!(level_from_tag(level_tag(level)), Some(level));
        }
        assert_eq!(level_from_tag(9), None);
    }

    #[test]
    fn plan_keys_cover_every_stage_and_the_level() {
        let ks = [Fingerprint(1), Fingerprint(2), Fingerprint(3)];
        let k = plan_key(&ks, StackLevel::NfOnly);
        assert_eq!(k, plan_key(&ks, StackLevel::NfOnly), "stable");
        assert_ne!(k, plan_key(&ks, StackLevel::FullStack), "level");
        let reordered = [Fingerprint(2), Fingerprint(1), Fingerprint(3)];
        assert_ne!(k, plan_key(&reordered, StackLevel::NfOnly), "order");
        let changed = [Fingerprint(1), Fingerprint(2), Fingerprint(4)];
        assert_ne!(
            k,
            plan_key(&changed, StackLevel::NfOnly),
            "any stage-config change must invalidate the plan"
        );
        assert_ne!(k, plan_key(&ks[..2], StackLevel::NfOnly), "length");
    }

    #[test]
    fn compose_keys_are_order_level_and_operand_sensitive() {
        let (a, b) = (Fingerprint(17), Fingerprint(42));
        let k = compose_key(a, b, StackLevel::FullStack);
        assert_eq!(k, compose_key(a, b, StackLevel::FullStack), "stable");
        assert_ne!(k, compose_key(b, a, StackLevel::FullStack), "order");
        assert_ne!(k, compose_key(a, b, StackLevel::NfOnly), "level");
        assert_ne!(
            k,
            compose_key(Fingerprint(18), b, StackLevel::FullStack),
            "a stale stage fingerprint must miss"
        );
    }
}
