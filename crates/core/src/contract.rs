//! Algorithm 2: from explored paths to performance contracts.

use bolt_expr::{PcvAssignment, PerfExpr, TermPool, TermRef};
use bolt_hw::ConservativeModel;
use bolt_see::symbolic::PacketField;
use bolt_see::{ExplorationResult, NfVerdict};
use bolt_solver::Solver;
use bolt_trace::{Metric, TraceEvent, Tracer};
use nf_lib::registry::DsRegistry;

use crate::classes::InputClass;

/// Contract of one feasible execution path.
#[derive(Debug, Clone)]
pub struct PathContract {
    /// Index within the parent [`NfContract`].
    pub index: usize,
    /// The path's constraints (conjunction).
    pub constraints: Vec<TermRef>,
    /// Labels the NF attached.
    pub tags: Vec<&'static str>,
    /// The NF's verdict on this path.
    pub verdict: Option<NfVerdict>,
    /// Per-metric cost expressions, indexed by [`Metric::index`].
    pub perf: [PerfExpr; 3],
    /// Input packet fields the path read (offset, size, symbol).
    pub packet_fields: Vec<PacketField>,
    /// Final symbolic packet state (for chain composition).
    pub final_packet: Vec<(u64, u8, TermRef)>,
}

impl PathContract {
    /// The expression for a metric.
    pub fn expr(&self, metric: Metric) -> &PerfExpr {
        &self.perf[metric.index()]
    }

    /// Whether the path carries a tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(&tag)
    }
}

/// A complete performance contract: every feasible path of the NF, plus
/// the term pool their constraints live in.
#[derive(Debug)]
pub struct NfContract {
    /// Pool owning all constraint terms.
    pub pool: TermPool,
    /// Per-path contracts.
    pub paths: Vec<PathContract>,
}

/// Result of a class query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Index of the worst compatible path.
    pub path_index: usize,
    /// Its predicted value at the supplied PCV binding.
    pub value: u64,
    /// Its cost expression.
    pub expr: PerfExpr,
}

/// Generate the contract from an exploration (Algorithm 2, lines 4–17).
///
/// For every path: stateless `Instr`/`Mem` events contribute their exact
/// counts to the instructions/accesses metrics and are replayed through a
/// cold [`ConservativeModel`] for the cycles metric; every recorded
/// [`TraceEvent::Stateful`] call contributes the case expression the path
/// selected, resolved against `reg`.
///
/// Panics if the exploration was truncated by the explorer's `max_paths`
/// bound: a contract over an incomplete path set is not conservative
/// (its worst case could under-estimate). Callers that want to handle
/// path explosion must check [`ExplorationResult::truncated`] before
/// generating.
pub fn generate(reg: &DsRegistry, exploration: ExplorationResult) -> NfContract {
    assert!(
        !exploration.truncated,
        "path explosion: exploration truncated at {} paths — bound the \
         NF's loops (or raise Explorer::max_paths); a contract over an \
         incomplete path set would not be conservative",
        exploration.paths.len()
    );
    let ExplorationResult { pool, paths, .. } = exploration;
    let mut out = Vec::with_capacity(paths.len());
    for (index, p) in paths.into_iter().enumerate() {
        let mut perf = [PerfExpr::zero(), PerfExpr::zero(), PerfExpr::zero()];
        let mut stateless_ic = 0u64;
        let mut stateless_ma = 0u64;
        let mut hw = ConservativeModel::new();
        for ev in &p.events {
            match ev {
                TraceEvent::Stateful(call) => {
                    let case = reg.resolve(*call);
                    for m in Metric::ALL {
                        perf[m.index()].add_assign(case.expr(m));
                    }
                }
                ev => {
                    stateless_ic += ev.instruction_count();
                    stateless_ma += ev.mem_access_count();
                    hw.event(*ev);
                }
            }
        }
        perf[Metric::Instructions.index()].add_const(stateless_ic);
        perf[Metric::MemAccesses.index()].add_const(stateless_ma);
        perf[Metric::Cycles.index()].add_const(hw.cycles());
        out.push(PathContract {
            index,
            constraints: p.constraints,
            tags: p.tags,
            verdict: p.verdict,
            perf,
            packet_fields: p.packet_fields,
            final_packet: p.final_packet,
        });
    }
    NfContract { pool, paths: out }
}

impl NfContract {
    /// Indices of the paths compatible with an input class: tags must
    /// match and the conjunction of path constraints and instantiated
    /// class constraints must not be provably unsatisfiable.
    pub fn compatible_paths(&mut self, solver: &Solver, class: &InputClass) -> Vec<usize> {
        let mut out = Vec::new();
        for i in 0..self.paths.len() {
            if !class.spec.tags_match(&self.paths[i]) {
                continue;
            }
            let mut cs = self.paths[i].constraints.clone();
            let extra = class
                .spec
                .instantiate(&mut self.pool, &self.paths[i].packet_fields);
            cs.extend(extra);
            if solver.is_feasible(&self.pool, &cs) {
                out.push(i);
            }
        }
        out
    }

    /// The class's predicted performance: the worst compatible path's
    /// expression evaluated at `env` (§5.1's conservative reporting).
    pub fn query(
        &mut self,
        solver: &Solver,
        class: &InputClass,
        metric: Metric,
        env: &PcvAssignment,
    ) -> Option<QueryResult> {
        let compatible = self.compatible_paths(solver, class);
        compatible
            .into_iter()
            .map(|i| QueryResult {
                path_index: i,
                value: self.paths[i].expr(metric).eval(env),
                expr: self.paths[i].expr(metric).clone(),
            })
            .max_by_key(|r| r.value)
    }

    /// Paths carrying a tag.
    pub fn tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a PathContract> + 'a {
        self.paths.iter().filter(move |p| p.has_tag(tag))
    }

    /// The worst path overall for a metric under a binding (the WCET-style
    /// query: an unconstrained class).
    pub fn worst(&self, metric: Metric, env: &PcvAssignment) -> Option<&PathContract> {
        self.paths.iter().max_by_key(|p| p.expr(metric).eval(env))
    }

    /// Synthesize a concrete packet that drives the NF down `path`
    /// (CASTAN-style adversarial input synthesis, §5.1): ask the solver
    /// for a witness and materialise the constrained fields into a frame.
    /// Returns the frame bytes and the witness input-port value.
    pub fn synthesize_packet(
        &self,
        solver: &Solver,
        path_index: usize,
        frame_len: usize,
    ) -> Option<(Vec<u8>, u16)> {
        let p = &self.paths[path_index];
        let w = match solver.check(&self.pool, &p.constraints) {
            bolt_solver::SolveResult::Sat(w) => w,
            _ => return None,
        };
        let mut bytes = vec![0u8; frame_len];
        for f in &p.packet_fields {
            let v = w.get(f.sym);
            for i in 0..f.bytes as usize {
                let shift = 8 * (f.bytes as usize - 1 - i);
                let idx = f.offset as usize + i;
                if idx < bytes.len() {
                    bytes[idx] = (v >> shift) as u8;
                }
            }
        }
        // The direction symbol, if the NF read one.
        let mut port = 0u16;
        for id in 0..self.pool.sym_count() as u32 {
            if self.pool.sym_name(id) == "pkt.in_port" {
                port = w.get(id) as u16;
            }
        }
        Some((bytes, port))
    }

    /// Render contract rows (`class name`, `expression`) for the paper's
    /// contract tables: one row per compatible worst path of each class.
    pub fn render_rows(
        &mut self,
        solver: &Solver,
        reg: &DsRegistry,
        classes: &[InputClass],
        metric: Metric,
        env: &PcvAssignment,
    ) -> Vec<(String, String)> {
        classes
            .iter()
            .filter_map(|c| {
                let q = self.query(solver, c, metric, env)?;
                Some((c.name.clone(), format!("{}", q.expr.display(&reg.pcvs))))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ClassSpec;
    use bolt_expr::Width;
    use bolt_see::{Explorer, NfCtx};
    use bolt_trace::Metric;
    use dpdk_sim::headers as h;
    use nf_lib::flow_table::{FlowTableModel, FlowTableOps, FlowTableParams};

    fn toy_contract() -> (DsRegistry, nf_lib::flow_table::FlowTableIds, NfContract) {
        let mut reg = DsRegistry::new();
        let params = FlowTableParams {
            capacity: 256,
            ttl_ns: 1000,
        };
        let ids = nf_lib::flow_table::register::<1>(&mut reg, "t", "", params);
        let result = Explorer::new().explore(|ctx| {
            let mut model = FlowTableModel::new(ids, params);
            let pkt = ctx.packet(64);
            let et = ctx.load(pkt, h::ETHER_TYPE, 2);
            if ctx.branch_eq_imm(et, h::ETHERTYPE_IPV4 as u64, Width::W16) {
                ctx.tag("valid");
                let f = ctx.load(pkt, h::IPV4_SRC, 4);
                let f64v = ctx.zext(f, Width::W64);
                let now = ctx.lit(0, Width::W64);
                match FlowTableOps::<_, 1>::get(&mut model, ctx, &[f64v], now) {
                    Some(_) => ctx.tag("hit"),
                    None => ctx.tag("miss"),
                }
                ctx.verdict(NfVerdict::Forward(0));
            } else {
                ctx.tag("invalid");
                ctx.verdict(NfVerdict::Drop);
            }
        });
        let contract = generate(&reg, result);
        (reg, ids, contract)
    }

    #[test]
    fn stateless_and_stateful_costs_combine() {
        let (reg, ids, contract) = toy_contract();
        assert_eq!(contract.paths.len(), 3);
        let hit = contract.tagged("hit").next().unwrap();
        // The hit path's instruction expression = stateless constant +
        // get-hit case expression: it must carry the t PCV.
        let expr = hit.expr(Metric::Instructions);
        assert!(expr.coeff(&bolt_expr::Monomial::var(ids.t)) > 0);
        assert!(expr.constant_term() > 0);
        // The invalid path is a pure constant (no stateful calls).
        let invalid = contract.tagged("invalid").next().unwrap();
        assert!(invalid.expr(Metric::Instructions).as_const().is_some());
        // Cycles expressions exist and dominate instruction counts.
        let _ = reg;
        for p in &contract.paths {
            let env = PcvAssignment::new();
            assert!(
                p.expr(Metric::Cycles).eval(&env) >= p.expr(Metric::Instructions).eval(&env),
                "a cycle is at least an instruction on this machine"
            );
        }
    }

    #[test]
    fn class_queries_pick_worst_compatible_path() {
        let (_, ids, mut contract) = toy_contract();
        let solver = Solver::default();
        let valid = InputClass::new(
            "valid packets",
            ClassSpec::field_eq(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        );
        let invalid = InputClass::new(
            "invalid packets",
            ClassSpec::field_ne(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        );
        let mut env = PcvAssignment::new();
        env.set(ids.t, 4).set(ids.c, 1);
        let qv = contract
            .query(&solver, &valid, Metric::Instructions, &env)
            .unwrap();
        let qi = contract
            .query(&solver, &invalid, Metric::Instructions, &env)
            .unwrap();
        assert!(qv.value > qi.value, "valid packets cost more");
        // The valid class's worst path is the hit path (it has the t/c
        // terms).
        assert!(contract.paths[qv.path_index].has_tag("hit"));
        // Class compatibility filtered correctly.
        assert_eq!(contract.compatible_paths(&solver, &invalid).len(), 1);
        assert_eq!(contract.compatible_paths(&solver, &valid).len(), 2);
    }

    #[test]
    fn synthesized_packets_trigger_their_class() {
        let (_, _, mut contract) = toy_contract();
        let solver = Solver::default();
        let invalid = InputClass::new(
            "invalid",
            ClassSpec::field_ne(h::ETHER_TYPE, 2, h::ETHERTYPE_IPV4 as u64),
        );
        let idx = contract.compatible_paths(&solver, &invalid)[0];
        let (bytes, _) = contract.synthesize_packet(&solver, idx, 64).unwrap();
        let et = u16::from_be_bytes([bytes[12], bytes[13]]);
        assert_ne!(et, h::ETHERTYPE_IPV4);
    }

    #[test]
    fn tag_classes_work() {
        let (_, _, mut contract) = toy_contract();
        let solver = Solver::default();
        let hits = InputClass::new("hits", ClassSpec::Tag("hit"));
        assert_eq!(contract.compatible_paths(&solver, &hits).len(), 1);
    }

    #[test]
    #[should_panic(expected = "path explosion")]
    fn truncated_exploration_cannot_generate_a_contract() {
        // A contract over an incomplete path set would under-estimate the
        // worst case; generation must fail loudly, not silently drop
        // paths (callers handle truncation via ExplorationResult).
        let reg = DsRegistry::new();
        let mut ex = Explorer::new();
        ex.max_paths = 2;
        let result = ex.explore(|ctx| {
            let pkt = ctx.packet(64);
            for i in 0..4 {
                let b = ctx.load(pkt, i, 1);
                let z = ctx.lit(0, Width::W8);
                let c = ctx.eq(b, z);
                ctx.branch(c);
            }
            ctx.verdict(NfVerdict::Drop);
        });
        assert!(result.truncated);
        let _ = generate(&reg, result);
    }
}
