//! Minimal libpcap-format reader/writer.
//!
//! Implements the classic `0xa1b2c3d4` container (microsecond
//! timestamps, LINKTYPE_ETHERNET), which is all the Distiller workflow
//! needs to exchange traces with standard tools. Ingress ports are not
//! part of the format; [`read`] assigns port 0 to every packet.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::TimedPacket;

const MAGIC: u32 = 0xA1B2_C3D4;
const LINKTYPE_ETHERNET: u32 = 1;

/// Write packets to a pcap file.
pub fn write(path: impl AsRef<Path>, packets: &[TimedPacket]) -> io::Result<()> {
    let mut f = File::create(path)?;
    // Global header.
    f.write_all(&MAGIC.to_le_bytes())?;
    f.write_all(&2u16.to_le_bytes())?; // version major
    f.write_all(&4u16.to_le_bytes())?; // version minor
    f.write_all(&0i32.to_le_bytes())?; // thiszone
    f.write_all(&0u32.to_le_bytes())?; // sigfigs
    f.write_all(&65535u32.to_le_bytes())?; // snaplen
    f.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
    for p in packets {
        let secs = (p.t_ns / 1_000_000_000) as u32;
        let usecs = (p.t_ns % 1_000_000_000 / 1_000) as u32;
        f.write_all(&secs.to_le_bytes())?;
        f.write_all(&usecs.to_le_bytes())?;
        f.write_all(&(p.frame.len() as u32).to_le_bytes())?;
        f.write_all(&(p.frame.len() as u32).to_le_bytes())?;
        f.write_all(&p.frame)?;
    }
    Ok(())
}

/// Read packets from a pcap file.
pub fn read(path: impl AsRef<Path>) -> io::Result<Vec<TimedPacket>> {
    let mut f = File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    parse(&buf)
}

/// Parse pcap bytes.
pub fn parse(buf: &[u8]) -> io::Result<Vec<TimedPacket>> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if buf.len() < 24 {
        return Err(err("truncated pcap header"));
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(err("unsupported pcap magic (only 0xa1b2c3d4 LE)"));
    }
    let mut out = Vec::new();
    let mut off = 24;
    while off + 16 <= buf.len() {
        let secs = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as u64;
        let usecs = u32::from_le_bytes(buf[off + 4..off + 8].try_into().unwrap()) as u64;
        let incl = u32::from_le_bytes(buf[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16;
        if off + incl > buf.len() {
            return Err(err("truncated packet record"));
        }
        out.push(TimedPacket {
            t_ns: secs * 1_000_000_000 + usecs * 1_000,
            frame: buf[off..off + incl].to_vec(),
            port: 0,
        });
        off += incl;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_udp_flows;

    #[test]
    fn roundtrip() {
        let pkts = uniform_udp_flows(7, 50, 32, 2_000_000, 0);
        let dir = std::env::temp_dir().join("bolt_pcap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pcap");
        write(&path, &pkts).unwrap();
        let back = read(&path).unwrap();
        assert_eq!(back.len(), pkts.len());
        for (a, b) in pkts.iter().zip(&back) {
            assert_eq!(a.frame, b.frame);
            // Timestamps round to microseconds.
            assert_eq!(a.t_ns / 1000, b.t_ns / 1000);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&[0u8; 10]).is_err());
        assert!(parse(&[0xFF; 64]).is_err());
    }

    #[test]
    fn empty_capture_roundtrips() {
        let dir = std::env::temp_dir().join("bolt_pcap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.pcap");
        write(&path, &[]).unwrap();
        assert!(read(&path).unwrap().is_empty());
    }
}
