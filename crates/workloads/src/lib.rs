//! Workload generation: the MoonGen/PCAP side of the paper's testbed.
//!
//! Each generator produces a timed packet sequence ([`TimedPacket`])
//! matching one of the evaluation's input classes: uniform random flows,
//! churn-controlled NAT traffic, broadcast/unicast bridge frames,
//! adversarially colliding MACs (the CASTAN-substitute for attack
//! workloads), LPM address mixes, and backend heartbeats. [`pcap`]
//! reads and writes the classic libpcap container so traces can move in
//! and out of the toolchain (§4: the Distiller's input is "a sample of
//! real-world traffic (as PCAP files)").

pub mod generators;
pub mod pcap;

pub use generators::*;

/// One workload packet: arrival time, frame bytes, ingress port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedPacket {
    /// Arrival timestamp in nanoseconds.
    pub t_ns: u64,
    /// The frame.
    pub frame: Vec<u8>,
    /// Ingress device port.
    pub port: u16,
}
