//! Traffic generators for the evaluation's input classes.

use dpdk_sim::headers as h;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::TimedPacket;

/// Uniform random UDP flows (the paper's "uniform random test workload"):
/// each packet picks one of `flow_space` 5-tuples uniformly.
pub fn uniform_udp_flows(
    seed: u64,
    n_packets: usize,
    flow_space: u32,
    gap_ns: u64,
    port: u16,
) -> Vec<TimedPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_packets)
        .map(|i| {
            let f = rng.gen_range(0..flow_space);
            let frame = h::PacketBuilder::new()
                .eth(0x0202_0202_0202, 0x0101_0101_0101, h::ETHERTYPE_IPV4)
                .ipv4(0x0A00_0000 | (f & 0xFFFF), 0x0808_0808, h::IPPROTO_UDP, 64)
                .udp(1024 + (f >> 16) as u16, 80)
                .build();
            TimedPacket {
                t_ns: i as u64 * gap_ns,
                frame,
                port,
            }
        })
        .collect()
}

/// Churn-controlled flows: `active` concurrent flows; each packet
/// belongs to a live flow, and every `renewal_every` packets one flow
/// dies and a fresh one replaces it. `renewal_every = 1` is the paper's
/// "high churn, few short-lived flows"; large values give "low churn,
/// long-lived flows".
pub fn churn_flows(
    seed: u64,
    n_packets: usize,
    active: usize,
    renewal_every: usize,
    gap_ns: u64,
    port: u16,
) -> Vec<TimedPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_id: u32 = active as u32;
    let mut live: Vec<u32> = (0..active as u32).collect();
    (0..n_packets)
        .map(|i| {
            if renewal_every > 0 && i % renewal_every == renewal_every - 1 {
                let victim = rng.gen_range(0..live.len());
                live[victim] = next_id;
                next_id += 1;
            }
            let f = live[rng.gen_range(0..live.len())];
            let frame = h::PacketBuilder::new()
                .eth(0x0202_0202_0202, 0x0101_0101_0101, h::ETHERTYPE_IPV4)
                .ipv4(0x0A00_0000 | (f & 0xFFFF), 0x0808_0808, h::IPPROTO_UDP, 64)
                .udp(1024u16.wrapping_add((f >> 16) as u16), 80)
                .build();
            TimedPacket {
                t_ns: i as u64 * gap_ns,
                frame,
                port,
            }
        })
        .collect()
}

/// Bridge traffic with uniform random source/destination MACs drawn from
/// `mac_space` hosts (scenario Br3-style unicast when `broadcast` is
/// false, Br2 when true).
pub fn bridge_traffic(
    seed: u64,
    n_packets: usize,
    mac_space: u64,
    broadcast: bool,
    gap_ns: u64,
) -> Vec<TimedPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_packets)
        .map(|i| {
            let src = 0x0200_0000_0000 + rng.gen_range(0..mac_space);
            let dst = if broadcast {
                0xFFFF_FFFF_FFFF
            } else {
                0x0200_0000_0000 + rng.gen_range(0..mac_space)
            };
            let frame = h::PacketBuilder::new()
                .eth(dst, src, h::ETHERTYPE_IPV4)
                .ipv4(1, 2, h::IPPROTO_UDP, 64)
                .udp(1, 2)
                .build();
            TimedPacket {
                t_ns: i as u64 * gap_ns,
                frame,
                port: (i % 2) as u16,
            }
        })
        .collect()
}

/// Adversarial bridge traffic: source MACs chosen (by rejection sampling
/// against the victim table's hash) to land in one slot — the
/// collision-attack workload of §5.2. This substitutes for CASTAN's
/// symbolic adversarial-input synthesis: the attacker knows the hash
/// function but, against a seeded table, must guess.
pub fn bridge_collision_attack(
    bucket_of: impl Fn(u64) -> usize,
    target_slot: usize,
    n_packets: usize,
    gap_ns: u64,
) -> Vec<TimedPacket> {
    let mut out = Vec::with_capacity(n_packets);
    let mut nonce = 0x0300_0000_0000u64;
    for i in 0..n_packets {
        let src = loop {
            nonce += 1;
            if bucket_of(nonce) == target_slot {
                break nonce;
            }
        };
        let frame = h::PacketBuilder::new()
            .eth(0x0200_0000_0001, src, h::ETHERTYPE_IPV4)
            .ipv4(1, 2, h::IPPROTO_UDP, 64)
            .udp(1, 2)
            .build();
        out.push(TimedPacket {
            t_ns: i as u64 * gap_ns,
            frame,
            port: 0,
        });
    }
    out
}

/// LPM router traffic: a mix of destinations matched by short (≤ 24-bit)
/// and long (> 24-bit) prefixes. `long_fraction` ∈ [0, 1].
pub fn lpm_traffic(
    seed: u64,
    n_packets: usize,
    short_dst: u32,
    long_dst: u32,
    long_fraction: f64,
    gap_ns: u64,
) -> Vec<TimedPacket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n_packets)
        .map(|i| {
            let dst = if rng.gen_bool(long_fraction) {
                long_dst
            } else {
                short_dst | (rng.gen::<u32>() & 0xFF)
            };
            let frame = h::PacketBuilder::new()
                .eth(2, 1, h::ETHERTYPE_IPV4)
                .ipv4(rng.gen(), dst, h::IPPROTO_UDP, 64)
                .udp(rng.gen(), 80)
                .build();
            TimedPacket {
                t_ns: i as u64 * gap_ns,
                frame,
                port: 0,
            }
        })
        .collect()
}

/// Backend heartbeat packets for the load balancer (scenario LB5).
pub fn heartbeats(
    n_backends: u16,
    rounds: usize,
    every_ns: u64,
    backend_port: u16,
    hb_udp_port: u16,
) -> Vec<TimedPacket> {
    let mut out = Vec::with_capacity(n_backends as usize * rounds);
    for r in 0..rounds {
        for b in 0..n_backends {
            let frame = h::PacketBuilder::new()
                .eth(
                    0x0200_0000_0001,
                    0x0200_0000_0100 + b as u64,
                    h::ETHERTYPE_IPV4,
                )
                .ipv4(b as u32, 0x0A00_0001, h::IPPROTO_UDP, 64)
                .udp(1, hb_udp_port)
                .build();
            out.push(TimedPacket {
                t_ns: r as u64 * every_ns + b as u64,
                frame,
                port: backend_port,
            });
        }
    }
    out
}

/// Frames with `n` IPv4 option words (the chain experiment's slow-path
/// traffic).
pub fn options_traffic(n_packets: usize, n_options: u8, gap_ns: u64) -> Vec<TimedPacket> {
    (0..n_packets)
        .map(|i| {
            let frame = h::PacketBuilder::new()
                .eth(2, 1, h::ETHERTYPE_IPV4)
                .ipv4(1, 0x0A000001, h::IPPROTO_UDP, 64)
                .ipv4_options(n_options)
                .udp(5, 6)
                .build();
            TimedPacket {
                t_ns: i as u64 * gap_ns,
                frame,
                port: 0,
            }
        })
        .collect()
}

/// Merge workloads by arrival time (stable for equal stamps).
pub fn merge(mut streams: Vec<Vec<TimedPacket>>) -> Vec<TimedPacket> {
    let mut out: Vec<TimedPacket> = streams.drain(..).flatten().collect();
    out.sort_by_key(|p| p.t_ns);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_flows_deterministic_and_well_formed() {
        let a = uniform_udp_flows(1, 100, 64, 1000, 0);
        let b = uniform_udp_flows(1, 100, 64, 1000, 0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        for p in &a {
            assert_eq!(u16::from_be_bytes([p.frame[12], p.frame[13]]), 0x0800);
            assert_eq!(p.frame[23], h::IPPROTO_UDP);
        }
        assert_eq!(a[99].t_ns, 99_000);
    }

    #[test]
    fn churn_controls_flow_lifetime() {
        // High churn: every packet replaces a flow → many distinct flows.
        let hi = churn_flows(2, 500, 16, 1, 100, 0);
        let lo = churn_flows(2, 500, 16, 500, 100, 0);
        let distinct = |pkts: &[TimedPacket]| {
            let mut set = std::collections::HashSet::new();
            for p in pkts {
                set.insert((p.frame[28], p.frame[29], p.frame[34], p.frame[35]));
            }
            set.len()
        };
        assert!(distinct(&hi) > 5 * distinct(&lo));
    }

    #[test]
    fn broadcast_flag_sets_destination() {
        let pkts = bridge_traffic(3, 10, 100, true, 100);
        for p in &pkts {
            assert_eq!(&p.frame[0..6], &[0xFF; 6]);
        }
        let uni = bridge_traffic(3, 10, 100, false, 100);
        assert!(uni.iter().any(|p| p.frame[0..6] != [0xFF; 6]));
    }

    #[test]
    fn collision_attack_hits_one_slot() {
        // Fake hash: low 4 bits of the MAC.
        let pkts = bridge_collision_attack(|m| (m & 0xF) as usize, 7, 20, 10);
        assert_eq!(pkts.len(), 20);
        for p in &pkts {
            let src = u64::from_be_bytes([
                0,
                0,
                p.frame[6],
                p.frame[7],
                p.frame[8],
                p.frame[9],
                p.frame[10],
                p.frame[11],
            ]);
            assert_eq!(src & 0xF, 7, "src {src:#x} must collide");
        }
    }

    #[test]
    fn merge_orders_by_time() {
        let a = uniform_udp_flows(1, 5, 8, 1000, 0);
        let b = heartbeats(2, 2, 1500, 1, 9999);
        let m = merge(vec![a, b]);
        for w in m.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
    }

    #[test]
    fn options_traffic_has_expected_ihl() {
        let pkts = options_traffic(3, 4, 10);
        for p in &pkts {
            assert_eq!(p.frame[14], 0x49); // version 4, IHL 9
        }
    }
}
