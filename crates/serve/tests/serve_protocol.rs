//! End-to-end protocol tests: concurrent clients get byte-identical
//! answers, warm repeats do zero work, malformed frames never take the
//! server down, shutdown drains in-flight requests, and server cache
//! hits keep the on-disk LRU honest.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use bolt_core::store::{level_tag, store_key, RecordKind, StoreExt};
use bolt_core::{ClassSpec, InputClass, NetworkFunction};
use bolt_expr::PcvAssignment;
use bolt_nfs::{Bridge, Firewall};
use bolt_serve::protocol::{read_frame, write_frame, Request, Response, MAX_FRAME};
use bolt_serve::{
    CacheConfig, Client, Endpoint, QueryRequest, ServeCore, Server, StatsReply, LEGACY_STATS_NAMES,
};
use bolt_store::ContractStore;
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bolt-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Open a store pre-warmed with bridge + firewall at nf-only level, so
/// server queries are store hits (the CLI's `(warm)` source), never
/// fresh explorations.
fn warm_store(tag: &str) -> (PathBuf, ContractStore) {
    let dir = temp_dir(tag);
    let store = ContractStore::open(dir.join("store")).unwrap();
    let _ = store.get_or_explore(&Bridge::default(), StackLevel::NfOnly);
    let _ = store.get_or_explore(&Firewall::default(), StackLevel::NfOnly);
    (dir, store)
}

fn reopen(dir: &std::path::Path) -> ContractStore {
    ContractStore::open(dir.join("store")).unwrap()
}

/// Render a query answer exactly the way `examples/bolt_cli.rs`
/// `query_one` prints it (the one-shot CLI path: fresh process, fresh
/// decode, its own rendering code). The server's answers must match
/// this byte for byte.
fn cli_query_text<N: NetworkFunction + Sync>(
    store: &ContractStore,
    nf: N,
    level: StackLevel,
    tag: Option<&str>,
    pcvs: &[(&str, u64)],
    metric: Metric,
) -> String {
    let ex = store.get_or_explore(&nf, level);
    let source = if ex.cached { "warm" } else { "explored" };
    let mut contract = ex.contract();
    let mut env = PcvAssignment::new();
    for (name, v) in pcvs {
        let id = contract.reg.pcvs.lookup(name).expect("known PCV");
        env.set(id, *v);
    }
    let class = match tag {
        Some(t) => InputClass::new(
            format!("tag:{t}"),
            ClassSpec::Tag(bolt_store::intern_tag(t)),
        ),
        None => InputClass::unconstrained(),
    };
    let level_name = match level_tag(level) {
        0 => "nf-only",
        _ => "full-stack",
    };
    match contract.query(&class, metric, &env) {
        None => format!(
            "no path of {} is compatible with {}\n",
            nf.name(),
            class.name
        ),
        Some(q) => {
            let path = &contract.paths()[q.path_index];
            format!(
                "{} @ {level_name} ({source}), class {}, metric {metric}:\n  \
                 worst path : #{} tags {:?}\n  \
                 expression : {}\n  \
                 prediction : {} {metric}\n",
                nf.name(),
                class.name,
                q.path_index,
                path.tags,
                contract.display_expr(&q.expr),
                q.value
            )
        }
    }
}

fn start_server(store: ContractStore, dir: &std::path::Path) -> Server {
    Server::builder()
        .unix(dir.join("bolt.sock"))
        .tcp("127.0.0.1:0")
        .start(ServeCore::new(store))
        .unwrap()
}

fn counter(stats: &StatsReply, name: &str) -> u64 {
    stats
        .get(name)
        .unwrap_or_else(|| panic!("no counter {name}"))
}

#[test]
fn concurrent_clients_match_one_shot_cli_queries() {
    let (dir, store) = warm_store("concurrent");
    // The expected answers, rendered the CLI's way from a separate store
    // handle (a one-shot process equivalent).
    let cases = [
        ("bridge", None, Metric::Instructions),
        ("bridge", Some("dst:known"), Metric::Cycles),
        ("firewall", None, Metric::MemAccesses),
    ];
    let expected: Vec<String> = cases
        .iter()
        .map(|(nf, tag, metric)| {
            let s = reopen(&dir);
            match *nf {
                "bridge" => cli_query_text(
                    &s,
                    Bridge::default(),
                    StackLevel::NfOnly,
                    *tag,
                    &[],
                    *metric,
                ),
                _ => cli_query_text(
                    &s,
                    Firewall::default(),
                    StackLevel::NfOnly,
                    *tag,
                    &[],
                    *metric,
                ),
            }
        })
        .collect();

    let server = start_server(store, &dir);
    let tcp = Endpoint::Tcp(server.tcp_addr().unwrap().to_string());
    let unix = Endpoint::Unix(server.unix_path().unwrap().to_path_buf());

    // ≥4 concurrent clients, split across both socket families, each
    // running every case several times.
    let mut handles = Vec::new();
    for i in 0..6 {
        let ep = if i % 2 == 0 {
            tcp.clone()
        } else {
            unix.clone()
        };
        handles.push(std::thread::spawn(move || {
            let mut client = Client::builder(&ep).build().unwrap();
            let mut texts = Vec::new();
            for _round in 0..3 {
                for (nf, tag, metric) in cases {
                    let reply = client
                        .query(QueryRequest {
                            nf: nf.to_string(),
                            level: level_tag(StackLevel::NfOnly),
                            metric: metric.index() as u8,
                            tag: tag.map(str::to_string),
                            pcvs: vec![],
                        })
                        .unwrap();
                    texts.push(reply.text);
                }
            }
            texts
        }));
    }
    for h in handles {
        let texts = h.join().unwrap();
        for (i, text) in texts.iter().enumerate() {
            assert_eq!(
                *text,
                expected[i % cases.len()],
                "server answer diverged from the one-shot CLI rendering"
            );
        }
    }
    server.request_shutdown();
    server.join();
}

#[test]
fn repeated_queries_are_pure_cache_hits() {
    let (dir, store) = warm_store("memo");
    let server = start_server(store, &dir);
    let ep = Endpoint::Unix(server.unix_path().unwrap().to_path_buf());
    let mut client = Client::builder(&ep).build().unwrap();
    let q = QueryRequest {
        nf: "bridge".to_string(),
        level: level_tag(StackLevel::NfOnly),
        metric: Metric::Instructions.index() as u8,
        tag: None,
        pcvs: vec![],
    };
    // First ask: store hit (one record decode), solver runs once.
    let first = client.query(q.clone()).unwrap();
    let before = client.stats().unwrap();
    assert_eq!(counter(&before, "contract_decodes"), 1);
    assert_eq!(counter(&before, "explorations"), 0);
    assert_eq!(counter(&before, "solver_queries"), 1);
    // Repeat: answered from the memo — zero explorations, zero solver
    // requests, zero record decodes.
    let again = client.query(q).unwrap();
    assert_eq!(again, first, "memoised answer must be byte-identical");
    let after = client.stats().unwrap();
    assert_eq!(counter(&after, "explorations"), 0);
    assert_eq!(counter(&after, "solver_queries"), 1);
    assert_eq!(counter(&after, "contract_decodes"), 1);
    assert_eq!(
        counter(&after, "memo_hits"),
        counter(&before, "memo_hits") + 1
    );
    assert_eq!(
        counter(&after, "memo_misses"),
        counter(&before, "memo_misses")
    );
    server.request_shutdown();
    server.join();
}

#[test]
fn metrics_snapshot_spans_every_layer_over_the_socket() {
    let (dir, store) = warm_store("metrics");
    let server = start_server(store, &dir);
    let ep = Endpoint::Unix(server.unix_path().unwrap().to_path_buf());
    // Depth 1 skips Hello entirely: the exact per-phase counts below
    // are the PR 6 wire contract, frame for frame.
    let mut client = Client::builder(&ep).pipeline_depth(1).build().unwrap();
    client.ping().unwrap();
    let q = QueryRequest {
        nf: "bridge".to_string(),
        level: level_tag(StackLevel::NfOnly),
        metric: Metric::Instructions.index() as u8,
        tag: None,
        pcvs: vec![],
    };
    client.query(q.clone()).unwrap();
    client.query(q).unwrap();
    let m = client.metrics().unwrap();

    // Serve layer: counters and per-opcode latency histograms. The
    // metrics request itself is mid-handle when the snapshot is taken,
    // so `serve.requests` includes it but its histograms do not yet.
    assert_eq!(
        m.counter("serve.requests"),
        Some(4),
        "ping + 2 queries + metrics"
    );
    assert_eq!(m.counter("serve.queries"), Some(2));
    assert_eq!(m.counter("serve.memo_hits"), Some(1));
    assert_eq!(m.counter("serve.contract_decodes"), Some(1));
    assert_eq!(
        m.counter("serve.explorations"),
        Some(0),
        "store was pre-warmed"
    );
    let hq = m.histogram("serve.req.query").expect("query histogram");
    assert_eq!(hq.count, 2);
    assert!(
        hq.p50() > 0 && hq.max > 0,
        "latencies are non-zero nanoseconds"
    );
    assert_eq!(m.histogram("serve.req.ping").unwrap().count, 1);

    // Phase histograms: one read per frame (the metrics frame's read
    // phase lands before its handle), one handle/write per answered
    // request so far.
    assert_eq!(m.histogram("serve.phase.read").unwrap().count, 4);
    assert_eq!(m.histogram("serve.phase.handle").unwrap().count, 3);
    assert_eq!(m.histogram("serve.phase.write").unwrap().count, 3);

    // Store layer, in the same snapshot: the warm query decoded one
    // record (a store hit + a timed get + a timed decode).
    assert!(m.counter("store.hits").unwrap() >= 1);
    assert_eq!(m.histogram("store.decode").unwrap().count, 1);
    assert!(m.histogram("store.get").unwrap().count >= 1);

    // The live-connection gauge sees this client.
    assert_eq!(
        m.gauges
            .iter()
            .find(|(n, _)| n == "serve.active_connections"),
        Some(&("serve.active_connections".to_string(), 1))
    );
    server.request_shutdown();
    server.join();
}

#[test]
fn stats_reply_keeps_the_legacy_prefix_order() {
    let (_dir, store) = warm_store("statsorder");
    let stats = ServeCore::new(store).stats_reply();
    let names: Vec<&str> = stats.counters.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        &names[..LEGACY_STATS_NAMES.len()],
        &LEGACY_STATS_NAMES,
        "the first 17 stats counters are a frozen wire prefix"
    );
    assert_eq!(
        &names[LEGACY_STATS_NAMES.len()..],
        &[
            "store_hits",
            "store_misses",
            "active_connections",
            "trace_events"
        ],
        "new counters are only ever appended"
    );
}

#[test]
fn malformed_frames_do_not_kill_the_server() {
    let (dir, store) = warm_store("malformed");
    let server = start_server(store, &dir);
    let addr = server.tcp_addr().unwrap();

    // Undecodable bodies: the connection gets an error frame and stays
    // usable.
    let mut raw = TcpStream::connect(addr).unwrap();
    for bad in [
        vec![],                    // empty payload
        vec![1, 0xEE],             // unknown opcode
        vec![99, 1],               // wrong protocol version
        vec![1, 2, 5, b'h', b'i'], // truncated query body
    ] {
        write_frame(&mut raw, &bad).unwrap();
        let reply = Response::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
        assert!(matches!(reply, Response::Error { .. }), "got {reply:?}");
    }
    // Same connection still answers a valid request.
    write_frame(&mut raw, &Request::Ping.encode()).unwrap();
    let pong = Response::decode(&read_frame(&mut raw).unwrap().unwrap()).unwrap();
    assert!(matches!(pong, Response::Pong { .. }));

    // An oversized length prefix poisons stream sync: error frame, then
    // the connection closes — but only that connection.
    let mut hostile = TcpStream::connect(addr).unwrap();
    hostile.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
    let reply = Response::decode(&read_frame(&mut hostile).unwrap().unwrap()).unwrap();
    assert!(matches!(reply, Response::Error { .. }));
    let mut probe = [0u8; 1];
    assert_eq!(hostile.read(&mut probe).unwrap(), 0, "connection closed");

    // A service-level error (unknown NF) is an error frame, not a crash.
    let mut client = Client::builder(&Endpoint::Tcp(addr.to_string()))
        .build()
        .unwrap();
    let err = client
        .query(QueryRequest {
            nf: "tor".to_string(),
            level: 0,
            metric: 0,
            tag: None,
            pcvs: vec![],
        })
        .unwrap_err();
    assert!(err.to_string().contains("unknown NF"), "got {err}");
    let err = client
        .query(QueryRequest {
            nf: "bridge".to_string(),
            level: 0,
            metric: 0,
            tag: None,
            pcvs: vec![("no-such-pcv".to_string(), 1)],
        })
        .unwrap_err();
    assert!(err.to_string().contains("unknown PCV"), "got {err}");

    // The server survived everything above.
    assert!(client.ping().is_ok());
    let stats = client.stats().unwrap();
    assert!(counter(&stats, "protocol_errors") >= 5);
    server.request_shutdown();
    server.join();
}

#[test]
fn shutdown_drains_requests_received_before_the_flag() {
    let (dir, store) = warm_store("drain");
    let server = start_server(store, &dir);
    let sock = server.unix_path().unwrap().to_path_buf();
    let q = Request::Query(QueryRequest {
        nf: "firewall".to_string(),
        level: level_tag(StackLevel::NfOnly),
        metric: Metric::Instructions.index() as u8,
        tag: None,
        pcvs: vec![],
    });
    // Four clients write a query each but do not read yet.
    let mut pending: Vec<UnixStream> = (0..4)
        .map(|_| {
            let mut s = UnixStream::connect(&sock).unwrap();
            write_frame(&mut s, &q.encode()).unwrap();
            s
        })
        .collect();
    // Give the frames time to reach the per-connection threads, then
    // ask for shutdown.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let mut killer = Client::builder(&Endpoint::Unix(sock)).build().unwrap();
    killer.shutdown().unwrap();
    // Every request written before the shutdown still gets its answer,
    // and all answers agree.
    let mut texts = Vec::new();
    for s in &mut pending {
        let payload = read_frame(s).unwrap().expect("drained reply");
        match Response::decode(&payload).unwrap() {
            Response::Query(r) => texts.push(r.text),
            other => panic!("expected a query reply, got {other:?}"),
        }
    }
    assert!(texts.windows(2).all(|w| w[0] == w[1]));
    server.join();
}

#[test]
fn server_cache_hits_keep_the_store_lru_honest() {
    let (dir, store) = warm_store("coherence");
    let hot_key = store_key(&Firewall::default(), StackLevel::NfOnly);
    let cold_key = store_key(&Bridge::default(), StackLevel::NfOnly);
    // flush_every=1 exercises the batched path on every hit.
    let core = ServeCore::with_config(
        store,
        CacheConfig {
            budget: 64 * 1024 * 1024,
            flush_every: 1,
        },
    );
    let ask = |nf: &str| {
        core.query(&QueryRequest {
            nf: nf.to_string(),
            level: level_tag(StackLevel::NfOnly),
            metric: 0,
            tag: None,
            pcvs: vec![],
        })
        .unwrap()
    };
    // Load bridge last so its *store get* stamp is newer than
    // firewall's...
    ask("firewall");
    ask("bridge");
    let stamp = |key| {
        core.store()
            .peek(key, RecordKind::Exploration)
            .unwrap()
            .last_used
    };
    assert!(stamp(cold_key) > stamp(hot_key));
    // ...then keep firewall hot purely through server cache hits. The
    // touches must swing the on-disk MRU order back to firewall.
    ask("firewall");
    ask("firewall");
    core.flush_touches();
    assert!(
        stamp(hot_key) > stamp(cold_key),
        "cache hits must bump on-disk last-used stamps"
    );
    // An LRU sweep with room for one exploration record now agrees with
    // the server about which contract is hot.
    let hot_bytes = {
        let h = core.store().peek(hot_key, RecordKind::Exploration).unwrap();
        h.header_len + h.payload_len
    };
    let report = core.store().sweep(hot_bytes).unwrap();
    assert!(report.evicted >= 1);
    assert!(
        core.store()
            .peek(hot_key, RecordKind::Exploration)
            .is_some(),
        "the server-hot record must survive the sweep"
    );
    assert!(
        core.store()
            .peek(cold_key, RecordKind::Exploration)
            .is_none(),
        "the server-cold record is the LRU victim"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
