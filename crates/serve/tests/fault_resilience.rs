//! Failure-path tests for the serve layer: endpoint validation, client
//! behaviour when the server dies mid-request, reconnect-and-retry
//! across a restart (including stale-socket reclaim), the connection
//! cap, the idle reaper, the request deadline, and a seeded transport
//! fault storm that must still converge to byte-identical answers.

#![cfg(unix)]

use std::io::Read;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bolt_core::store::{level_tag, StoreExt};
use bolt_core::{InputClass, NetworkFunction};
use bolt_expr::PcvAssignment;
use bolt_nfs::Bridge;
use bolt_serve::protocol::{read_frame, write_frame};
use bolt_serve::{
    Client, ClientConfig, Endpoint, QueryRequest, Request, ServeCore, ServeError, Server,
};
use bolt_store::ContractStore;
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bolt-fault-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Store pre-warmed with the bridge so server queries are store hits.
fn warm_store(tag: &str) -> (PathBuf, ContractStore) {
    let dir = temp_dir(tag);
    let store = ContractStore::open(dir.join("store")).unwrap();
    let _ = store.get_or_explore(&Bridge::default(), StackLevel::NfOnly);
    (dir, store)
}

/// The query every test sends, and the answer rendered the CLI's way
/// from an independent store handle — the byte-identical oracle.
fn bridge_query() -> QueryRequest {
    QueryRequest {
        nf: "bridge".into(),
        level: level_tag(StackLevel::NfOnly),
        metric: 0,
        tag: None,
        pcvs: vec![],
    }
}

fn expected_bridge_text(dir: &std::path::Path) -> String {
    let store = ContractStore::open(dir.join("store")).unwrap();
    let nf = Bridge::default();
    let ex = store.get_or_explore(&nf, StackLevel::NfOnly);
    assert!(ex.cached, "oracle must read the pre-warmed record");
    let mut contract = ex.contract();
    let class = InputClass::unconstrained();
    let env = PcvAssignment::new();
    let q = contract
        .query(&class, Metric::Instructions, &env)
        .expect("bridge has paths");
    let path = &contract.paths()[q.path_index];
    format!(
        "{} @ nf-only (warm), class {}, metric {}:\n  \
         worst path : #{} tags {:?}\n  \
         expression : {}\n  \
         prediction : {} {}\n",
        nf.name(),
        class.name,
        Metric::Instructions,
        q.path_index,
        path.tags,
        contract.display_expr(&q.expr),
        q.value,
        Metric::Instructions
    )
}

fn fast_retry_config() -> ClientConfig {
    ClientConfig {
        deadline: Duration::from_secs(30),
        retries: 5,
        backoff: Duration::from_millis(20),
        backoff_cap: Duration::from_millis(200),
        // This suite pins the v1 (strict request/response) path; the
        // pipelining suite covers negotiated v2 sessions.
        pipeline_depth: 1,
        ..ClientConfig::default()
    }
}

#[test]
fn endpoint_parse_rejects_garbage_and_round_trips() {
    for bad in [
        "",
        "   ",
        "tcp:",
        "tcp:127.0.0.1", // no port
        "tcp::8080",     // empty host
        "tcp:host:notaport",
        "tcp:host:99999", // port > u16
        "tcp:::1:8080",   // unbracketed IPv6: ambiguous, must be [::1]
        "tcp:[::1]",      // bracketed host, no port
        "tcp:[::1:9",     // unclosed bracket
        "tcp:[]:9",       // empty bracketed host
        "tcp:[::1]9",     // missing ':' between bracket and port
    ] {
        assert!(Endpoint::parse(bad).is_err(), "{bad:?} must not parse");
    }
    for good in [
        "tcp:127.0.0.1:8080",
        "tcp:[::1]:9",
        "tcp:[2001:db8::1]:443",
        "tcp:example.com:443",
        "/tmp/bolt.sock",
        "relative/path.sock",
    ] {
        let ep = Endpoint::parse(good).unwrap();
        // Display must round-trip through parse to the same endpoint.
        assert_eq!(Endpoint::parse(&ep.to_string()).unwrap(), ep, "{good:?}");
    }
    // Whitespace-padded specs trim to the same endpoint.
    assert_eq!(
        Endpoint::parse("  /tmp/a.sock  ").unwrap(),
        Endpoint::parse("/tmp/a.sock").unwrap()
    );
    assert_eq!(Endpoint::parse("tcp:h:1").unwrap().to_string(), "tcp:h:1");
}

#[test]
fn server_death_mid_request_is_a_clean_io_error() {
    let dir = temp_dir("mid-request");
    // Scenario A: the "server" reads the request and dies without
    // replying. Scenario B: it dies halfway through the reply frame.
    for (name, partial_reply) in [("drop-before-reply", false), ("drop-mid-frame", true)] {
        let sock = dir.join(format!("{name}.sock"));
        let listener = UnixListener::bind(&sock).unwrap();
        let fake = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _ = read_frame(&mut conn).unwrap();
            if partial_reply {
                // A length prefix promising 64 bytes, then silence.
                use std::io::Write;
                conn.write_all(&64u32.to_le_bytes()).unwrap();
                conn.write_all(b"only a few bytes").unwrap();
            }
            // Dropping the stream kills the connection mid-request.
        });
        let no_retry = ClientConfig {
            retries: 0,
            pipeline_depth: 1,
            ..ClientConfig::default()
        };
        let mut client = Client::builder(&Endpoint::Unix(sock))
            .config(no_retry)
            .build()
            .unwrap();
        let err = client.request(&Request::Ping).unwrap_err();
        assert!(
            matches!(err, ServeError::Io(_)),
            "{name}: want ServeError::Io, got {err:?}"
        );
        fake.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_retries_idempotent_requests_across_a_restart() {
    let (dir, store) = warm_store("restart");
    let expected = expected_bridge_text(&dir);
    let sock = dir.join("bolt.sock");
    let server_a = Server::builder()
        .unix(sock.clone())
        .start(ServeCore::new(store))
        .unwrap();

    // A second server cannot steal the live socket.
    let contender = Server::builder().unix(sock.clone()).start(ServeCore::new(
        ContractStore::open(dir.join("store2")).unwrap(),
    ));
    match contender {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::AddrInUse),
        Ok(_) => panic!("binding over a live server must fail"),
    }

    let mut client = Client::builder(&Endpoint::Unix(sock.clone()))
        .config(fast_retry_config())
        .build()
        .unwrap();
    assert_eq!(client.query(bridge_query()).unwrap().text, expected);

    // Kill server A, then leave a *stale* socket file behind, the way a
    // crashed process would: bind and immediately abandon the listener.
    let mut killer = Client::builder(&Endpoint::Unix(sock.clone()))
        .pipeline_depth(1)
        .build()
        .unwrap();
    killer.shutdown().unwrap();
    server_a.join();
    drop(UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "the stale socket file is the test fixture");

    // A restart must reclaim the dead socket, not fail on it.
    let server_b = Server::builder()
        .unix(sock.clone())
        .start(ServeCore::new(
            ContractStore::open(dir.join("store")).unwrap(),
        ))
        .expect("restart must reclaim a stale socket");

    // The client's connection died with server A; the same query must
    // transparently reconnect to B and return byte-identical text.
    assert_eq!(client.query(bridge_query()).unwrap().text, expected);

    server_b.request_shutdown();
    server_b.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_cap_rejects_with_busy_and_recovers() {
    let (dir, store) = warm_store("busy");
    let sock = dir.join("bolt.sock");
    let server = Server::builder()
        .unix(sock.clone())
        .max_connections(1)
        .start(ServeCore::new(store))
        .unwrap();
    let ep = Endpoint::Unix(sock);

    let mut holder = Client::builder(&ep).pipeline_depth(1).build().unwrap();
    holder.ping().unwrap(); // the slot is definitely taken now

    // The next connection gets the busy frame, not service.
    let no_retry = ClientConfig {
        retries: 0,
        pipeline_depth: 1,
        ..ClientConfig::default()
    };
    let mut second = Client::builder(&ep).config(no_retry).build().unwrap();
    match second.ping() {
        Err(ServeError::Remote(m)) => {
            assert!(m.contains("busy"), "busy rejection said {m:?}")
        }
        other => panic!("want a busy rejection, got {other:?}"),
    }
    assert!(server.core().stats_reply().get("busy_rejects").unwrap() >= 1);

    // Releasing the slot lets a retrying client in (the reject closed
    // its connection, so the retry path re-dials into the free slot).
    drop(holder);
    let mut third = Client::builder(&ep)
        .config(fast_retry_config())
        .build()
        .unwrap();
    let mut served = false;
    for _ in 0..40 {
        if third.ping().is_ok() {
            served = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(served, "a client must be served once the slot frees up");

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_connections_are_reaped_while_active_ones_survive() {
    let (dir, store) = warm_store("idle");
    let sock = dir.join("bolt.sock");
    let server = Server::builder()
        .unix(sock.clone())
        .idle_timeout(Duration::from_millis(150))
        .start(ServeCore::new(store))
        .unwrap();

    // A silent raw connection: says nothing, must get EOF'd.
    let mut silent = UnixStream::connect(&sock).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // An active client pinging well inside the idle window survives the
    // whole time.
    let ep = Endpoint::Unix(sock);
    let mut active = Client::builder(&ep).pipeline_depth(1).build().unwrap();
    for _ in 0..10 {
        active
            .ping()
            .expect("an active connection must not be reaped");
        std::thread::sleep(Duration::from_millis(50));
    }

    // 500 ms of pings > 150 ms idle timeout: the silent peer is gone.
    let mut buf = [0u8; 1];
    assert_eq!(
        silent.read(&mut buf).expect("reap closes cleanly"),
        0,
        "the idle connection must see EOF"
    );
    assert!(server.core().stats_reply().get("idle_closed").unwrap() >= 1);

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn blown_request_deadline_yields_a_typed_error_and_counts() {
    let (dir, store) = warm_store("deadline");
    let expected = expected_bridge_text(&dir);
    let sock = dir.join("bolt.sock");
    // Deterministic slowness: the first handled request stalls 80 ms
    // against a 10 ms deadline; every later request runs clean.
    let plan = Arc::new(
        bolt_fault::FaultPlan::seeded(7)
            .with_at(bolt_fault::site::SERVE_HANDLE_STALL, 1)
            .with_stall(Duration::from_millis(80)),
    );
    let server = Server::builder()
        .unix(sock.clone())
        .request_deadline(Duration::from_millis(10))
        .fault(plan)
        .start(ServeCore::new(store))
        .unwrap();

    let mut client = Client::builder(&Endpoint::Unix(sock))
        .pipeline_depth(1)
        .build()
        .unwrap();
    match client.query(bridge_query()) {
        Err(ServeError::Remote(m)) => {
            assert!(m.contains("deadline exceeded"), "got {m:?}")
        }
        other => panic!("want a deadline error frame, got {other:?}"),
    }
    assert_eq!(
        server.core().stats_reply().get("deadlines_exceeded"),
        Some(1)
    );
    // The connection survived the error frame; the retry is instant and
    // byte-identical (the slow first pass warmed the cache).
    assert_eq!(client.query(bridge_query()).unwrap().text, expected);

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_transport_storm_converges_to_byte_identical_answers() {
    let seed = std::env::var("BOLT_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB017);
    let (dir, store) = warm_store("storm");
    let expected = expected_bridge_text(&dir);
    let sock = dir.join("bolt.sock");
    let plan = Arc::new(
        bolt_fault::FaultPlan::seeded(seed)
            .with_prob(bolt_fault::site::SERVE_READ_ERR, 0.10)
            .with_prob(bolt_fault::site::SERVE_READ_DISCONNECT, 0.05)
            .with_prob(bolt_fault::site::SERVE_WRITE_PARTIAL, 0.15),
    );
    let server = Server::builder()
        .unix(sock.clone())
        .fault(plan)
        .start(ServeCore::new(store))
        .unwrap();

    // One sequential client, so the per-site fault schedule is
    // deterministic for a given seed. Every query must *eventually*
    // come back byte-identical; transport failures in between are
    // expected and healed by reconnect-and-retry (plus this outer loop
    // for fault runs longer than the client's retry budget).
    let mut client = Client::builder(&Endpoint::Unix(sock))
        .config(fast_retry_config())
        .build()
        .unwrap();
    for round in 0..20 {
        let mut answered = false;
        for _ in 0..40 {
            match client.query(bridge_query()) {
                Ok(reply) => {
                    assert_eq!(
                        reply.text, expected,
                        "seed {seed} round {round}: answers must stay byte-identical"
                    );
                    answered = true;
                    break;
                }
                Err(ServeError::Io(_)) | Err(ServeError::Protocol(_)) => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("seed {seed} round {round}: unexpected {e:?}"),
            }
        }
        assert!(answered, "seed {seed} round {round}: query never converged");
    }

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_is_never_auto_retried_but_reads_are() {
    // A pure protocol-level check of the retry policy predicate.
    assert!(Request::Ping.is_idempotent());
    assert!(Request::List.is_idempotent());
    assert!(Request::Stats.is_idempotent());
    assert!(Request::Query(bridge_query()).is_idempotent());
    assert!(Request::Provenance {
        nf: "bridge".into(),
        level: 0
    }
    .is_idempotent());
    assert!(!Request::Shutdown.is_idempotent());
    assert!(!Request::Diff(bolt_serve::DiffRequest {
        a: "bridge".into(),
        b: "bridge".into(),
        metric: 0
    })
    .is_idempotent());
    // write_frame is used by the raw-listener tests above; keep the
    // import honest even when only some tests run.
    let mut sink = Vec::new();
    write_frame(&mut sink, &Request::Ping.encode()).unwrap();
    assert_eq!(
        read_frame(&mut sink.as_slice()).unwrap().unwrap(),
        Request::Ping.encode()
    );
}
