//! Pipelined (v2) session tests: depth negotiation, out-of-order
//! completion routed by correlation id, byte-identical depth-1/v1
//! fallback, deprecated-shim parity, fault storms on the event loop,
//! and the 1024-idle-connection soak pinning the fixed thread pool.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bolt_core::store::{level_tag, StoreExt};
use bolt_nfs::{Bridge, Firewall};
use bolt_serve::protocol::{read_frame, write_frame};
use bolt_serve::{
    Client, Endpoint, QueryRequest, Request, Response, ServeCore, Server, ServerConfig,
    MAX_PIPELINE_DEPTH,
};
use bolt_store::ContractStore;
use dpdk_sim::StackLevel;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bolt-pipeline-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Store pre-warmed with bridge + firewall at nf-only level (queries
/// are store hits, never fresh explorations).
fn warm_store(tag: &str) -> (PathBuf, ContractStore) {
    let dir = temp_dir(tag);
    let store = ContractStore::open(dir.join("store")).unwrap();
    let _ = store.get_or_explore(&Bridge::default(), StackLevel::NfOnly);
    let _ = store.get_or_explore(&Firewall::default(), StackLevel::NfOnly);
    (dir, store)
}

fn bridge_query() -> QueryRequest {
    QueryRequest {
        nf: "bridge".to_string(),
        level: level_tag(StackLevel::NfOnly),
        metric: 0,
        tag: None,
        pcvs: vec![],
    }
}

fn firewall_query() -> QueryRequest {
    QueryRequest {
        nf: "firewall".to_string(),
        level: level_tag(StackLevel::NfOnly),
        metric: 0,
        tag: None,
        pcvs: vec![],
    }
}

#[test]
fn hello_negotiation_grants_the_clamped_depth() {
    let (dir, store) = warm_store("negotiate");
    let sock = dir.join("bolt.sock");
    let server = Server::builder()
        .unix(sock.clone())
        .max_pipeline_depth(4)
        .start(ServeCore::new(store))
        .unwrap();
    let ep = Endpoint::Unix(sock);

    // Client asks for 8; server caps at 4.
    let session = Client::builder(&ep).pipeline_depth(8).session().unwrap();
    assert!(session.pipelined());
    assert_eq!(session.depth(), 4);

    // Depth 1 skips negotiation entirely: a pure v1 connection.
    let session = Client::builder(&ep).pipeline_depth(1).session().unwrap();
    assert!(!session.pipelined());
    assert_eq!(session.depth(), 1);

    // The builder clamps absurd asks to the protocol maximum.
    let session = Client::builder(&ep)
        .pipeline_depth(10_000)
        .session()
        .unwrap();
    assert!(session.depth() <= MAX_PIPELINE_DEPTH);

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn completions_route_out_of_order_by_correlation_id() {
    let (dir, store) = warm_store("interleave");
    let sock = dir.join("bolt.sock");
    let server = Server::builder()
        .unix(sock.clone())
        .start(ServeCore::new(store))
        .unwrap();
    let ep = Endpoint::Unix(sock);

    let mut session = Client::builder(&ep).pipeline_depth(8).session().unwrap();
    assert!(session.pipelined());

    // A cold query (offloaded to the handler pool) followed by pings
    // (answered inline on the event loop). The pings overtake the
    // query on the wire; correlation ids must still route each reply
    // to its ticket — which we stress by receiving in reverse
    // submission order, so the query reply has to buffer ping replies
    // and the ping receives then hit the ready map.
    let t_query = session.submit(&Request::Query(firewall_query())).unwrap();
    let t_pings: Vec<_> = (0..5)
        .map(|_| session.submit(&Request::Ping).unwrap())
        .collect();
    session.flush().unwrap();

    match session.recv(t_query).unwrap() {
        Response::Query(reply) => assert!(reply.text.contains("firewall")),
        other => panic!("expected a query reply, got {other:?}"),
    }
    for t in t_pings {
        match session.recv(t).unwrap() {
            Response::Pong { version } => assert!(!version.is_empty()),
            other => panic!("expected a pong, got {other:?}"),
        }
    }

    // Receiving the same ticket twice is a protocol error, not a hang.
    assert!(session.recv(t_query).is_err());

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_submit_window_applies_backpressure_without_losing_replies() {
    let (dir, store) = warm_store("window");
    let sock = dir.join("bolt.sock");
    let server = Server::builder()
        .unix(sock.clone())
        .start(ServeCore::new(store))
        .unwrap();

    let mut session = Client::builder(&Endpoint::Unix(sock))
        .pipeline_depth(4)
        .session()
        .unwrap();
    // Far more submissions than the negotiated window: submit must
    // transparently drain completed replies to stay within depth.
    let tickets: Vec<_> = (0..100)
        .map(|_| session.submit(&Request::Ping).unwrap())
        .collect();
    for t in tickets {
        assert!(matches!(session.recv(t).unwrap(), Response::Pong { .. }));
    }

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn depth_8_and_depth_1_answers_are_byte_identical() {
    let (dir, store) = warm_store("equivalence");
    let sock = dir.join("bolt.sock");
    let server = Server::builder()
        .unix(sock.clone())
        .start(ServeCore::new(store))
        .unwrap();
    let ep = Endpoint::Unix(sock);

    let mut v1 = Client::builder(&ep).pipeline_depth(1).build().unwrap();
    let mut v2 = Client::builder(&ep).pipeline_depth(8).build().unwrap();
    for q in [bridge_query(), firewall_query()] {
        let a = v1.query(q.clone()).unwrap();
        let b = v2.query(q).unwrap();
        assert_eq!(a.text, b.text, "pipelining must not change answers");
    }

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A raw v1 exchange (what a pre-pipelining client sends) against the
/// event-driven server: the reply frame must be byte-identical to the
/// in-process `ServeCore::handle` encoding — the PR 6 wire contract.
#[test]
fn raw_v1_frames_round_trip_byte_identical_to_the_core_encoding() {
    let (dir, store) = warm_store("rawv1");
    let server = Server::builder()
        .tcp("127.0.0.1:0")
        .start(ServeCore::new(store))
        .unwrap();
    let addr = server.tcp_addr().unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    for req in [Request::Ping, Request::Query(bridge_query())] {
        write_frame(&mut stream, &req.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("reply frame");
        let expected = server.core().handle(&req).encode();
        assert_eq!(payload, expected, "v1 reply bytes diverged for {req:?}");
    }
    drop(stream);

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deprecated entry points (`Server::start`, `Client::connect`)
/// must keep working and produce the same bytes as the builder path.
#[test]
#[allow(deprecated)]
fn deprecated_shims_match_the_builder_path() {
    let (dir, store) = warm_store("shims");
    let sock = dir.join("bolt.sock");
    let server = Server::start(
        ServeCore::new(store),
        ServerConfig {
            unix: Some(sock.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let ep = Endpoint::Unix(sock);

    let mut old_style = Client::connect(&ep).unwrap();
    let via_old = old_style.query(bridge_query()).unwrap();
    let via_old_call = match old_style.call(&Request::Query(bridge_query())).unwrap() {
        Response::Query(r) => r.text,
        other => panic!("expected a query reply, got {other:?}"),
    };

    let mut new_style = Client::builder(&ep).build().unwrap();
    let via_new = new_style.query(bridge_query()).unwrap();

    assert_eq!(via_old.text, via_new.text);
    assert_eq!(via_old_call, via_new.text);

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_storm_on_the_event_loop_converges_with_pipelining() {
    let seed = 0xF1BE;
    let (dir, store) = warm_store("pipestorm");
    let sock = dir.join("bolt.sock");
    let plan = Arc::new(
        bolt_fault::FaultPlan::seeded(seed)
            .with_prob(bolt_fault::site::SERVE_READ_ERR, 0.08)
            .with_prob(bolt_fault::site::SERVE_READ_DISCONNECT, 0.04)
            .with_prob(bolt_fault::site::SERVE_WRITE_PARTIAL, 0.12),
    );
    let server = Server::builder()
        .unix(sock.clone())
        .fault(plan)
        .start(ServeCore::new(store))
        .unwrap();
    let ep = Endpoint::Unix(sock);

    // The expected answer, fetched before the storm via a throwaway
    // retrying client (builds may also fail under injected faults, so
    // construction retries too).
    let build = |ep: &Endpoint| -> Client {
        for _ in 0..50 {
            if let Ok(c) = Client::builder(ep)
                .pipeline_depth(8)
                .retries(6)
                .backoff(Duration::from_millis(5))
                .backoff_cap(Duration::from_millis(40))
                .build()
            {
                return c;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("client never connected through the fault storm");
    };
    let expected = {
        let mut probe = build(&ep);
        let mut text = None;
        for _ in 0..200 {
            if let Ok(r) = probe.query(bridge_query()) {
                text = Some(r.text);
                break;
            }
            probe = build(&ep);
        }
        text.expect("probe query never converged")
    };

    let mut client = build(&ep);
    for round in 0..15 {
        let mut answered = false;
        for _ in 0..40 {
            match client.query(bridge_query()) {
                Ok(reply) => {
                    assert_eq!(
                        reply.text, expected,
                        "round {round}: pipelined answers must stay byte-identical"
                    );
                    answered = true;
                    break;
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    client = build(&ep);
                }
            }
        }
        assert!(answered, "round {round}: query never converged");
    }

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// 1024 idle connections must not grow the thread pool: the engine is
/// a fixed set of poll-driven workers, not thread-per-connection.
#[test]
fn a_1024_idle_connection_soak_keeps_the_thread_count_fixed() {
    let (dir, store) = warm_store("soak");
    let server = Server::builder()
        .tcp("127.0.0.1:0")
        .idle_timeout(Duration::from_secs(300))
        .start(ServeCore::new(store))
        .unwrap();
    let addr = server.tcp_addr().unwrap();
    let ep = Endpoint::Tcp(addr.to_string());

    let threads_before = server.worker_threads();
    #[cfg(target_os = "linux")]
    let os_threads_before = proc_thread_count();

    let mut idle = Vec::with_capacity(1024);
    for i in 0..1024 {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(e) => panic!("connection {i} refused: {e}"),
        }
    }
    // Give the acceptors time to hand every socket to an event worker.
    std::thread::sleep(Duration::from_millis(300));

    // The pool is fixed: same engine thread count as at start.
    assert_eq!(server.worker_threads(), threads_before);
    #[cfg(target_os = "linux")]
    {
        // OS-level check: the process did not spawn a thread per
        // connection. Allow a little slack for test-harness threads.
        let os_threads_now = proc_thread_count();
        assert!(
            os_threads_now <= os_threads_before + 8,
            "thread count grew from {os_threads_before} to {os_threads_now} \
             under 1024 idle connections"
        );
    }

    // The server still answers new work while holding the idle herd.
    let mut client = Client::builder(&ep).build().unwrap();
    assert!(client.ping().is_ok());
    let reply = client.query(bridge_query()).unwrap();
    assert!(reply.text.contains("bridge"));

    // One of the idle sockets is still live and serviceable too.
    let mut s = idle.pop().unwrap();
    write_frame(&mut s, &Request::Ping.encode()).unwrap();
    assert!(read_frame(&mut s).unwrap().is_some());

    drop(idle);
    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(target_os = "linux")]
fn proc_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Pipelining on a connection that never negotiated it is a protocol
/// error the server reports (and survives) rather than misframes.
#[test]
fn unnegotiated_v2_frames_are_rejected_cleanly() {
    let (dir, store) = warm_store("unnegotiated");
    let server = Server::builder()
        .tcp("127.0.0.1:0")
        .start(ServeCore::new(store))
        .unwrap();
    let addr = server.tcp_addr().unwrap();

    let mut stream = TcpStream::connect(addr).unwrap();
    // A v2-encoded request without a preceding Hello.
    write_frame(&mut stream, &Request::Ping.encode_v2(1)).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("error frame");
    match Response::decode(&payload).unwrap() {
        Response::Error { message } => {
            assert!(
                message.contains("not negotiated"),
                "unexpected error: {message}"
            );
        }
        other => panic!("expected an error reply, got {other:?}"),
    }

    // The server is still healthy for well-formed clients.
    let mut client = Client::builder(&Endpoint::Tcp(addr.to_string()))
        .build()
        .unwrap();
    assert!(client.ping().is_ok());

    server.request_shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
