//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message — request or response — travels as one frame. Two
//! frame versions coexist on the wire:
//!
//! ```text
//! frame               := len:u32le payload       (len = payload bytes, ≤ MAX_FRAME)
//!
//! v1 request payload  := 0x01 opcode:u8 body
//! v1 response payload := status:u8 opcode:u8 body   (status 0 = ok)
//!                      | status:u8 message:str      (status 1 = error)
//!
//! v2 request payload  := 0x02 opcode:u8 corr:varint body
//! v2 response payload := corr:varint v1-response-payload
//! ```
//!
//! Version 1 is strict request/response: one frame out, one frame back,
//! in order. Version 2 adds a per-request **correlation id** so a client
//! can pipeline many requests on one connection and the server may
//! answer them in *completion* order; the id on each response says which
//! request it answers. A connection starts in v1 and is upgraded by the
//! [`Opcode::Hello`] negotiation (itself a v1 exchange): the client
//! names the highest version and pipeline depth it wants, the server
//! acks with what it grants, and both sides latch. An old server answers
//! the unknown opcode with a clean error frame, which a new client takes
//! as "negotiate down to v1, depth 1" — and an old client never sends
//! `Hello`, so it sees pure v1 byte-for-byte.
//!
//! Bodies reuse the store's checked wire substrate
//! ([`ByteWriter`]/[`ByteReader`]: little-endian integers, LEB128
//! varints, length-prefixed strings), so a truncated or hostile frame
//! decodes to a [`DecodeError`], never a panic. The version byte leads
//! every request so a server can reject a future client with a clean
//! error frame instead of a mis-parse; the opcode echo leads every ok
//! response so a client can detect a desynchronised stream.
//!
//! Frames larger than [`MAX_FRAME`] are a protocol violation: the
//! receiver cannot resynchronise past an untrusted length prefix, so the
//! connection is closed after an error frame — the *server* stays up
//! (see `server`), only the offending connection dies.

use std::io::{self, Read, Write};

use bolt_obs::{HistogramSnapshot, Snapshot, HIST_BUCKETS};
use bolt_store::{ByteReader, ByteWriter, DecodeError};

/// The baseline (strict request/response) frame version. Every request
/// encoded by [`Request::encode`] leads with this byte, and it is the
/// floor both sides can always fall back to.
pub const PROTOCOL_VERSION: u8 = 1;

/// The pipelined frame version: requests carry a correlation id (see
/// [`Request::encode_v2`]) and responses echo it, so many requests can
/// be in flight on one connection and complete out of order. Spoken
/// only after a successful [`Opcode::Hello`] negotiation.
pub const PIPELINE_VERSION: u8 = 2;

/// Hard ceiling a server places on the negotiated pipeline depth,
/// whatever the client asks for. Bounds per-connection buffering: at
/// most this many requests are admitted in flight per connection.
pub const MAX_PIPELINE_DEPTH: u32 = 64;

/// Hard ceiling on one frame's payload (16 MiB). Rendered replies are
/// kilobytes; anything near this bound is garbage or an attack, and a
/// length prefix beyond it poisons stream sync, so the connection is
/// dropped rather than resynchronised.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Request/response opcodes (the second byte of every payload).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness + version handshake.
    Ping = 1,
    /// A contract performance query (class, metric, PCV binding).
    Query = 2,
    /// Compare two stored contracts.
    Diff = 3,
    /// Enumerate the store (header pass only — no payload decodes).
    List = 4,
    /// Where a record came from: key, on-disk state, cache state.
    Provenance = 5,
    /// Server counters (cache hits, decodes, explorations, memo traffic).
    Stats = 6,
    /// Graceful shutdown: stop accepting, drain in-flight, exit.
    Shutdown = 7,
    /// Full observability snapshot: every counter, gauge, and latency
    /// histogram in the server's registry. Added within protocol version
    /// 1 — an old server answers it with a clean error frame (unknown
    /// opcode), which clients surface as "server too old".
    Metrics = 8,
    /// Version/depth negotiation: the client names the highest frame
    /// version and pipeline depth it wants; the server acks with what it
    /// grants and both sides latch. Always exchanged as a v1 frame, so
    /// an old server answers it with a clean unknown-opcode error frame
    /// — which a new client takes as "v1 only, depth 1".
    Hello = 9,
}

impl Opcode {
    fn from_u8(v: u8) -> Result<Self, DecodeError> {
        Ok(match v {
            1 => Opcode::Ping,
            2 => Opcode::Query,
            3 => Opcode::Diff,
            4 => Opcode::List,
            5 => Opcode::Provenance,
            6 => Opcode::Stats,
            7 => Opcode::Shutdown,
            8 => Opcode::Metrics,
            9 => Opcode::Hello,
            _ => return Err(DecodeError::Malformed("unknown opcode")),
        })
    }

    /// Every opcode, in wire order (indexable as `op as u8 - 1`).
    pub const ALL: [Opcode; 9] = [
        Opcode::Ping,
        Opcode::Query,
        Opcode::Diff,
        Opcode::List,
        Opcode::Provenance,
        Opcode::Stats,
        Opcode::Shutdown,
        Opcode::Metrics,
        Opcode::Hello,
    ];

    /// Lower-case wire name — the `serve.req.<name>` histogram suffix.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::Query => "query",
            Opcode::Diff => "diff",
            Opcode::List => "list",
            Opcode::Provenance => "provenance",
            Opcode::Stats => "stats",
            Opcode::Shutdown => "shutdown",
            Opcode::Metrics => "metrics",
            Opcode::Hello => "hello",
        }
    }
}

/// One contract query: which NF at which stack level, the input class
/// (an optional path tag), the metric, and the PCV binding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryRequest {
    /// NF name (the server's dispatch vocabulary, e.g. `bridge`).
    pub nf: String,
    /// Stack-level tag (`bolt_core::store::level_tag`).
    pub level: u8,
    /// Metric index (`bolt_trace::Metric::index`).
    pub metric: u8,
    /// Restrict the class to paths carrying this tag (`None` = any
    /// packet).
    pub tag: Option<String>,
    /// PCV bindings by name; unbound PCVs evaluate as 0.
    pub pcvs: Vec<(String, u64)>,
}

/// Compare two stored contracts. Sides travel as the raw `NF[:LEVEL]`
/// spec the user typed (parsed server-side), because the rendered diff
/// echoes them verbatim — keeping remote output byte-identical to a
/// local `bolt_cli diff`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiffRequest {
    /// Left side, `NF[:LEVEL]` (level defaults to full-stack).
    pub a: String,
    /// Right side, `NF[:LEVEL]`.
    pub b: String,
    /// Metric index for the worst-case comparison.
    pub metric: u8,
}

/// A decoded request frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness + version handshake.
    Ping,
    /// A contract performance query.
    Query(QueryRequest),
    /// Compare two stored contracts.
    Diff(DiffRequest),
    /// Enumerate the store.
    List,
    /// Record provenance for one (NF, level).
    Provenance {
        /// NF name.
        nf: String,
        /// Stack-level tag.
        level: u8,
    },
    /// Server counters.
    Stats,
    /// Graceful shutdown.
    Shutdown,
    /// Full observability snapshot.
    Metrics,
    /// Version/depth negotiation (see [`Opcode::Hello`]).
    Hello {
        /// The highest frame version the client can speak.
        max_version: u8,
        /// The pipeline depth the client wants (in-flight request cap).
        depth: u32,
    },
}

impl Request {
    /// The request's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Ping => Opcode::Ping,
            Request::Query(_) => Opcode::Query,
            Request::Diff(_) => Opcode::Diff,
            Request::List => Opcode::List,
            Request::Provenance { .. } => Opcode::Provenance,
            Request::Stats => Opcode::Stats,
            Request::Shutdown => Opcode::Shutdown,
            Request::Metrics => Opcode::Metrics,
            Request::Hello { .. } => Opcode::Hello,
        }
    }

    /// Whether re-sending this request after a transport failure is
    /// safe. Reads are; [`Request::Shutdown`] is not (a retry after a
    /// restart would kill the new instance), and [`Request::Diff`] is
    /// grouped with it conservatively even though today's diff renders
    /// from immutable records. [`Request::Hello`] is connection-scoped
    /// state, not store state, so re-negotiating after a re-dial is
    /// safe by construction.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Query(_)
                | Request::List
                | Request::Provenance { .. }
                | Request::Stats
                | Request::Metrics
                | Request::Hello { .. }
        )
    }

    /// Encode to one v1 frame payload (version byte, opcode, body) —
    /// byte-identical to what a pre-pipelining client produced.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(PROTOCOL_VERSION);
        w.u8(self.opcode() as u8);
        self.encode_body(&mut w);
        w.into_bytes()
    }

    /// Encode to one v2 frame payload: version byte, opcode, the
    /// request's correlation id, body. Spoken only on connections that
    /// negotiated [`PIPELINE_VERSION`]; the server echoes `corr` on the
    /// matching response so replies may arrive in completion order.
    pub fn encode_v2(&self, corr: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(PIPELINE_VERSION);
        w.u8(self.opcode() as u8);
        w.varint(corr);
        self.encode_body(&mut w);
        w.into_bytes()
    }

    fn encode_body(&self, w: &mut ByteWriter) {
        match self {
            Request::Ping
            | Request::List
            | Request::Stats
            | Request::Shutdown
            | Request::Metrics => {}
            Request::Query(q) => {
                w.str(&q.nf);
                w.u8(q.level);
                w.u8(q.metric);
                match &q.tag {
                    Some(t) => {
                        w.bool(true);
                        w.str(t);
                    }
                    None => w.bool(false),
                }
                w.varint(q.pcvs.len() as u64);
                for (name, v) in &q.pcvs {
                    w.str(name);
                    w.u64(*v);
                }
            }
            Request::Diff(d) => {
                w.str(&d.a);
                w.str(&d.b);
                w.u8(d.metric);
            }
            Request::Provenance { nf, level } => {
                w.str(nf);
                w.u8(*level);
            }
            Request::Hello { max_version, depth } => {
                w.u8(*max_version);
                w.varint(*depth as u64);
            }
        }
    }

    /// Decode a v1 request frame payload. Rejects version skew (v2
    /// frames included — a v1-only peer must never half-parse a
    /// pipelined frame), unknown opcodes, and malformed or over-long
    /// bodies — always with an error, never a panic.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        match Request::decode_framed(payload)? {
            DecodedRequest { corr: None, req } => Ok(req),
            DecodedRequest { corr: Some(_), .. } => {
                Err(DecodeError::Malformed("protocol version mismatch"))
            }
        }
    }

    /// Decode a request frame payload of either version: v1 yields
    /// `corr: None`, v2 yields the request's correlation id. Any other
    /// leading version byte is a version mismatch.
    pub fn decode_framed(payload: &[u8]) -> Result<DecodedRequest, DecodeError> {
        let mut r = ByteReader::new(payload);
        let ver = r.u8()?;
        if ver != PROTOCOL_VERSION && ver != PIPELINE_VERSION {
            return Err(DecodeError::Malformed("protocol version mismatch"));
        }
        let op = Opcode::from_u8(r.u8()?)?;
        let corr = if ver == PIPELINE_VERSION {
            Some(r.varint()?)
        } else {
            None
        };
        let req = Request::decode_body(op, &mut r)?;
        r.expect_end()?;
        Ok(DecodedRequest { corr, req })
    }

    fn decode_body(op: Opcode, r: &mut ByteReader<'_>) -> Result<Request, DecodeError> {
        Ok(match op {
            Opcode::Ping => Request::Ping,
            Opcode::List => Request::List,
            Opcode::Stats => Request::Stats,
            Opcode::Shutdown => Request::Shutdown,
            Opcode::Metrics => Request::Metrics,
            Opcode::Query => {
                let nf = r.str()?.to_owned();
                let level = r.u8()?;
                let metric = r.u8()?;
                let tag = if r.bool()? {
                    Some(r.str()?.to_owned())
                } else {
                    None
                };
                let n = r.count(1 << 16)?;
                let mut pcvs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?.to_owned();
                    let v = r.u64()?;
                    pcvs.push((name, v));
                }
                Request::Query(QueryRequest {
                    nf,
                    level,
                    metric,
                    tag,
                    pcvs,
                })
            }
            Opcode::Diff => Request::Diff(DiffRequest {
                a: r.str()?.to_owned(),
                b: r.str()?.to_owned(),
                metric: r.u8()?,
            }),
            Opcode::Provenance => Request::Provenance {
                nf: r.str()?.to_owned(),
                level: r.u8()?,
            },
            Opcode::Hello => Request::Hello {
                max_version: r.u8()?,
                depth: u32::try_from(r.varint()?)
                    .map_err(|_| DecodeError::Malformed("pipeline depth out of range"))?,
            },
        })
    }
}

/// A request frame decoded without assuming its version: the request
/// plus its correlation id when the frame was v2 (`None` for v1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodedRequest {
    /// The v2 correlation id; `None` when the frame was v1.
    pub corr: Option<u64>,
    /// The decoded request.
    pub req: Request,
}

/// A query answer: the rendered text (identical to what a one-shot
/// `bolt_cli query` against the same store prints) plus the structured
/// worst-path fields for programmatic callers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryReply {
    /// Whether any path of the contract is compatible with the class.
    pub found: bool,
    /// Index of the worst compatible path (0 when `found` is false).
    pub path_index: u64,
    /// Its predicted value at the supplied PCV binding.
    pub value: u64,
    /// The rendered answer, byte-identical to the CLI's local output.
    pub text: String,
}

/// A snapshot of the server's counters, as ordered name/value pairs (the
/// encoding is schema-free so counters can be added without a protocol
/// bump).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StatsReply {
    /// Counter names and values, in the server's canonical order.
    pub counters: Vec<(String, u64)>,
}

impl StatsReply {
    /// Look up one counter by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The full observability snapshot: every counter, gauge, and latency
/// histogram in the server's registry, name-sorted. Histograms travel
/// sparsely (only non-empty log2 buckets), so a reply stays small no
/// matter how wide the value range is.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MetricsReply {
    /// Counter names and values.
    pub counters: Vec<(String, u64)>,
    /// Gauge names and values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram names and snapshots (latency series are nanoseconds).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsReply {
    /// Build a reply from a registry snapshot.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        MetricsReply {
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap.histograms.clone(),
        }
    }

    /// Convert back into a registry snapshot (for merging or Prometheus
    /// rendering client-side).
    pub fn to_snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Look up one counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up one histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

/// A decoded response frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// Ping answer: the server's crate version.
    Pong {
        /// Server crate version (`CARGO_PKG_VERSION`).
        version: String,
    },
    /// Query answer.
    Query(QueryReply),
    /// Diff answer: rendered comparison text.
    Diff {
        /// The rendered diff, byte-identical to the CLI's local output.
        text: String,
    },
    /// Store listing.
    List {
        /// Number of records enumerated.
        entries: u64,
        /// The rendered table, byte-identical to the CLI's local output.
        text: String,
    },
    /// Provenance answer: rendered record/cache state.
    Provenance {
        /// The rendered provenance block.
        text: String,
    },
    /// Server counters.
    Stats(StatsReply),
    /// Full observability snapshot.
    Metrics(MetricsReply),
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown,
    /// Negotiation answer: the frame version and pipeline depth the
    /// server grants (`version` ≤ the client's `max_version`, `depth` ≤
    /// [`MAX_PIPELINE_DEPTH`]). Both sides latch these for the rest of
    /// the connection.
    HelloAck {
        /// The granted frame version.
        version: u8,
        /// The granted pipeline depth (in-flight request cap).
        depth: u32,
    },
    /// The request failed; the connection remains usable (unless the
    /// failure was a frame-sync violation, in which case the server
    /// closes it after sending this).
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl Response {
    /// Encode to one v1 frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        if let Response::Error { message } = self {
            w.u8(1);
            w.str(message);
            return w.into_bytes();
        }
        w.u8(0);
        match self {
            Response::Pong { version } => {
                w.u8(Opcode::Ping as u8);
                w.str(version);
            }
            Response::Query(q) => {
                w.u8(Opcode::Query as u8);
                w.bool(q.found);
                w.varint(q.path_index);
                w.u64(q.value);
                w.str(&q.text);
            }
            Response::Diff { text } => {
                w.u8(Opcode::Diff as u8);
                w.str(text);
            }
            Response::List { entries, text } => {
                w.u8(Opcode::List as u8);
                w.varint(*entries);
                w.str(text);
            }
            Response::Provenance { text } => {
                w.u8(Opcode::Provenance as u8);
                w.str(text);
            }
            Response::Stats(s) => {
                w.u8(Opcode::Stats as u8);
                w.varint(s.counters.len() as u64);
                for (name, v) in &s.counters {
                    w.str(name);
                    w.u64(*v);
                }
            }
            Response::Metrics(m) => {
                w.u8(Opcode::Metrics as u8);
                w.varint(m.counters.len() as u64);
                for (name, v) in &m.counters {
                    w.str(name);
                    w.u64(*v);
                }
                w.varint(m.gauges.len() as u64);
                for (name, v) in &m.gauges {
                    w.str(name);
                    // Two's-complement through u64; the decoder casts back.
                    w.u64(*v as u64);
                }
                w.varint(m.histograms.len() as u64);
                for (name, h) in &m.histograms {
                    w.str(name);
                    w.varint(h.count);
                    w.u64(h.sum);
                    w.u64(h.max);
                    let nonzero = h.buckets.iter().filter(|&&c| c != 0).count();
                    w.varint(nonzero as u64);
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c != 0 {
                            w.u8(i as u8);
                            w.varint(c);
                        }
                    }
                }
            }
            Response::ShuttingDown => {
                w.u8(Opcode::Shutdown as u8);
            }
            Response::HelloAck { version, depth } => {
                w.u8(Opcode::Hello as u8);
                w.u8(*version);
                w.varint(*depth as u64);
            }
            Response::Error { .. } => unreachable!("handled above"),
        }
        w.into_bytes()
    }

    /// Encode to one v2 frame payload: the answered request's
    /// correlation id, then the v1 payload unchanged. Error frames carry
    /// the id too, so a pipelined client can attribute a failure to the
    /// exact request that caused it.
    pub fn encode_v2(&self, corr: u64) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.varint(corr);
        w.raw(&self.encode());
        w.into_bytes()
    }

    /// Decode a v1 response frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut r = ByteReader::new(payload);
        let resp = Response::decode_inner(&mut r)?;
        r.expect_end()?;
        Ok(resp)
    }

    /// Decode a v2 response frame payload: the correlation id, then the
    /// response it answers.
    pub fn decode_v2(payload: &[u8]) -> Result<(u64, Response), DecodeError> {
        let mut r = ByteReader::new(payload);
        let corr = r.varint()?;
        let resp = Response::decode_inner(&mut r)?;
        r.expect_end()?;
        Ok((corr, resp))
    }

    fn decode_inner(r: &mut ByteReader<'_>) -> Result<Response, DecodeError> {
        match r.u8()? {
            1 => {
                let message = r.str()?.to_owned();
                r.expect_end()?;
                return Ok(Response::Error { message });
            }
            0 => {}
            _ => return Err(DecodeError::Malformed("response status out of range")),
        }
        let op = Opcode::from_u8(r.u8()?)?;
        let resp = match op {
            Opcode::Ping => Response::Pong {
                version: r.str()?.to_owned(),
            },
            Opcode::Query => Response::Query(QueryReply {
                found: r.bool()?,
                path_index: r.varint()?,
                value: r.u64()?,
                text: r.str()?.to_owned(),
            }),
            Opcode::Diff => Response::Diff {
                text: r.str()?.to_owned(),
            },
            Opcode::List => Response::List {
                entries: r.varint()?,
                text: r.str()?.to_owned(),
            },
            Opcode::Provenance => Response::Provenance {
                text: r.str()?.to_owned(),
            },
            Opcode::Stats => {
                let n = r.count(1 << 10)?;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?.to_owned();
                    let v = r.u64()?;
                    counters.push((name, v));
                }
                Response::Stats(StatsReply { counters })
            }
            Opcode::Metrics => {
                let n = r.count(1 << 12)?;
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?.to_owned();
                    counters.push((name, r.u64()?));
                }
                let n = r.count(1 << 12)?;
                let mut gauges = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?.to_owned();
                    gauges.push((name, r.u64()? as i64));
                }
                let n = r.count(1 << 12)?;
                let mut histograms = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.str()?.to_owned();
                    let mut h = HistogramSnapshot {
                        count: r.varint()?,
                        sum: r.u64()?,
                        max: r.u64()?,
                        ..HistogramSnapshot::default()
                    };
                    let nonzero = r.count(HIST_BUCKETS)?;
                    for _ in 0..nonzero {
                        let idx = r.u8()? as usize;
                        if idx >= HIST_BUCKETS {
                            return Err(DecodeError::Malformed("histogram bucket out of range"));
                        }
                        h.buckets[idx] = r.varint()?;
                    }
                    histograms.push((name, h));
                }
                Response::Metrics(MetricsReply {
                    counters,
                    gauges,
                    histograms,
                })
            }
            Opcode::Shutdown => Response::ShuttingDown,
            Opcode::Hello => Response::HelloAck {
                version: r.u8()?,
                depth: u32::try_from(r.varint()?)
                    .map_err(|_| DecodeError::Malformed("pipeline depth out of range"))?,
            },
        };
        Ok(resp)
    }
}

/// A frame-sync violation: the stream cannot be trusted past this point,
/// so the connection must be closed (after a best-effort error frame).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte limit")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, blocking. `Ok(None)` on clean end-of-stream (EOF at a
/// frame boundary); `InvalidData` when the length prefix exceeds
/// [`MAX_FRAME`] or EOF lands mid-frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "EOF inside a frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame accumulator for non-blocking readers (the server's
/// connection loop reads with a timeout so it can observe shutdown, so
/// it may see partial frames; this buffers bytes until a whole frame is
/// available).
#[derive(Default, Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether buffered bytes are waiting (a partial or complete frame).
    pub fn has_pending(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Pop the next complete frame payload, if one is buffered.
    /// `Err(TooLarge)` poisons the stream — the caller must close the
    /// connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::List,
            Request::Stats,
            Request::Shutdown,
            Request::Query(QueryRequest {
                nf: "bridge".into(),
                level: 1,
                metric: 2,
                tag: Some("dst:broadcast".into()),
                pcvs: vec![("e".into(), 16), ("t".into(), 4)],
            }),
            Request::Query(QueryRequest {
                nf: "nat-a".into(),
                level: 0,
                metric: 0,
                tag: None,
                pcvs: vec![],
            }),
            Request::Diff(DiffRequest {
                a: "firewall".into(),
                b: "static_router:nf-only".into(),
                metric: 1,
            }),
            Request::Provenance {
                nf: "lb".into(),
                level: 1,
            },
            Request::Metrics,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Pong {
                version: "0.1.0".into(),
            },
            Response::Query(QueryReply {
                found: true,
                path_index: 7,
                value: 12345,
                text: "bridge @ full-stack (warm)...\n".into(),
            }),
            Response::Query(QueryReply {
                found: false,
                path_index: 0,
                value: 0,
                text: "no path\n".into(),
            }),
            Response::Diff {
                text: "diff a vs b\n".into(),
            },
            Response::List {
                entries: 3,
                text: "...".into(),
            },
            Response::Provenance {
                text: "provenance...\n".into(),
            },
            Response::Stats(StatsReply {
                counters: vec![("requests".into(), 9), ("memo_hits".into(), 4)],
            }),
            Response::ShuttingDown,
            Response::Error {
                message: "unknown NF \"tor\"".into(),
            },
        ];
        for resp in resps {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn metrics_replies_round_trip() {
        let mut h = HistogramSnapshot::default();
        for v in [0u64, 1, 7, 1024, u64::MAX] {
            h.buckets[bucket_index(v)] += 1;
            h.count += 1;
            h.sum = h.sum.saturating_add(v);
            h.max = h.max.max(v);
        }
        let reply = MetricsReply {
            counters: vec![("serve.requests".into(), 42), ("store.hits".into(), 7)],
            gauges: vec![("serve.active_connections".into(), -1)],
            histograms: vec![
                ("serve.req.query".into(), h),
                ("store.get".into(), HistogramSnapshot::default()),
            ],
        };
        let resp = Response::Metrics(reply.clone());
        let bytes = resp.encode();
        let decoded = Response::decode(&bytes).unwrap();
        assert_eq!(decoded, resp);
        let Response::Metrics(m) = decoded else {
            unreachable!()
        };
        assert_eq!(m.counter("serve.requests"), Some(42));
        assert_eq!(m.histogram("serve.req.query").unwrap().count, 5);
        // Truncations decode to errors, never panics.
        for cut in 0..bytes.len() {
            assert!(Response::decode(&bytes[..cut]).is_err());
        }
        // A bucket index past the array is malformed, not a panic.
        let empty = MetricsReply::default();
        let mut bad = Response::Metrics(MetricsReply {
            histograms: vec![("h".into(), HistogramSnapshot::default())],
            ..empty
        })
        .encode();
        // Patch the nonzero-bucket count from 0 to 1 and append a
        // too-large index with a count.
        let last = bad.len() - 1;
        assert_eq!(bad[last], 0, "empty histogram ends with nonzero=0");
        bad[last] = 1;
        bad.push(64); // bucket index out of range
        bad.push(1); // its count
        assert!(Response::decode(&bad).is_err());
    }

    fn bucket_index(v: u64) -> usize {
        bolt_obs::bucket_of(v)
    }

    #[test]
    fn stats_reply_wire_is_append_compatible() {
        // The schema-free (name, value) encoding is the compatibility
        // contract: a reply with counters appended past the legacy set
        // still decodes, and the legacy names resolve unchanged — this is
        // what lets an old client read a new server's stats.
        let legacy = StatsReply {
            counters: vec![("requests".into(), 3), ("errors".into(), 0)],
        };
        let extended = StatsReply {
            counters: legacy
                .counters
                .iter()
                .cloned()
                .chain([("store_hits".into(), 9), ("brand_new".into(), 1)])
                .collect(),
        };
        let decoded = Response::decode(&Response::Stats(extended).encode()).unwrap();
        let Response::Stats(s) = decoded else {
            unreachable!()
        };
        for (name, v) in &legacy.counters {
            assert_eq!(s.get(name), Some(*v), "legacy counter {name} intact");
        }
        assert_eq!(s.get("store_hits"), Some(9));
    }

    #[test]
    fn malformed_payloads_are_errors_not_panics() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[PROTOCOL_VERSION]).is_err());
        assert!(Request::decode(&[PROTOCOL_VERSION, 0xEE]).is_err());
        assert!(Request::decode(&[PROTOCOL_VERSION + 1, Opcode::Ping as u8]).is_err());
        // Trailing garbage after a valid body.
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        // Truncated query body.
        let q = Request::Query(QueryRequest {
            nf: "bridge".into(),
            level: 1,
            metric: 0,
            tag: None,
            pcvs: vec![],
        })
        .encode();
        for cut in 0..q.len() {
            assert!(Request::decode(&q[..cut]).is_err());
        }
        assert!(Response::decode(&[9]).is_err());
    }

    #[test]
    fn v1_encodings_are_pinned() {
        // The v1 wire bytes are the compatibility contract with
        // pre-pipelining peers: pin the simplest frames exactly.
        assert_eq!(Request::Ping.encode(), vec![1, 1]);
        assert_eq!(Request::List.encode(), vec![1, 4]);
        assert_eq!(Response::ShuttingDown.encode(), vec![0, 7]);
        // Hello itself travels as a v1 frame (it negotiates v2).
        assert_eq!(
            Request::Hello {
                max_version: 2,
                depth: 8,
            }
            .encode(),
            vec![1, 9, 2, 8]
        );
    }

    #[test]
    fn v2_requests_round_trip_with_correlation_ids() {
        let reqs = [
            Request::Ping,
            Request::Query(QueryRequest {
                nf: "bridge".into(),
                level: 1,
                metric: 2,
                tag: Some("dst:broadcast".into()),
                pcvs: vec![("e".into(), 16)],
            }),
            Request::Stats,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let corr = (i as u64) * 1_000_003 + 7;
            let bytes = req.encode_v2(corr);
            assert_eq!(bytes[0], PIPELINE_VERSION);
            let got = Request::decode_framed(&bytes).unwrap();
            assert_eq!(
                got,
                DecodedRequest {
                    corr: Some(corr),
                    req: req.clone(),
                }
            );
            // The strict v1 decoder refuses pipelined frames outright.
            assert!(Request::decode(&bytes).is_err());
            // And decode_framed still accepts plain v1 frames.
            let v1 = Request::decode_framed(&req.encode()).unwrap();
            assert_eq!(v1, DecodedRequest { corr: None, req });
        }
    }

    #[test]
    fn v2_responses_round_trip_with_correlation_ids() {
        let resps = [
            Response::Pong {
                version: "0.1.0".into(),
            },
            Response::HelloAck {
                version: 2,
                depth: 8,
            },
            Response::Error {
                message: "unknown NF \"tor\"".into(),
            },
        ];
        for (i, resp) in resps.into_iter().enumerate() {
            let corr = u64::MAX - i as u64;
            let bytes = resp.encode_v2(corr);
            assert_eq!(Response::decode_v2(&bytes).unwrap(), (corr, resp.clone()));
            // A v2 payload is the corr varint + the v1 payload, exactly.
            let tail = resp.encode();
            assert!(bytes.ends_with(&tail));
            // Truncations error, never panic.
            for cut in 0..bytes.len() {
                assert!(Response::decode_v2(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn hello_round_trips() {
        let req = Request::Hello {
            max_version: PIPELINE_VERSION,
            depth: MAX_PIPELINE_DEPTH,
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        assert!(req.is_idempotent());
        let ack = Response::HelloAck {
            version: PIPELINE_VERSION,
            depth: 4,
        };
        assert_eq!(Response::decode(&ack.encode()).unwrap(), ack);
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let payload = Request::Ping.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        let mut fb = FrameBuffer::new();
        // Feed one byte at a time: no frame until the last byte.
        for (i, b) in framed.iter().enumerate() {
            fb.extend(&[*b]);
            let got = fb.next_frame().unwrap();
            if i + 1 < framed.len() {
                assert!(got.is_none());
            } else {
                assert_eq!(got.unwrap(), payload);
            }
        }
        assert!(!fb.has_pending());
        // Two frames in one burst.
        let mut burst = Vec::new();
        write_frame(&mut burst, &payload).unwrap();
        write_frame(&mut burst, &payload).unwrap();
        fb.extend(&burst);
        assert_eq!(fb.next_frame().unwrap().unwrap(), payload);
        assert_eq!(fb.next_frame().unwrap().unwrap(), payload);
        assert!(fb.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefixes_poison_the_stream() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert_eq!(fb.next_frame(), Err(FrameError::TooLarge(u32::MAX)));
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut r = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn read_frame_handles_eof() {
        let mut empty = std::io::Cursor::new(Vec::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
        let mut partial = std::io::Cursor::new(vec![3, 0]);
        assert!(read_frame(&mut partial).is_err());
        let mut midframe = std::io::Cursor::new(vec![3, 0, 0, 0, 1]);
        assert!(read_frame(&mut midframe).is_err());
    }
}
