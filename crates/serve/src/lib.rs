//! `bolt serve` — contracts as a long-lived query service.
//!
//! Compile-once/query-forever (the store crates) still paid a per-query
//! process cost: every `bolt_cli query` re-opened the store, re-decoded
//! the record, and re-rehydrated the term pool. This crate keeps all of
//! that hot: a server opens the [`bolt_store::ContractStore`] once,
//! caches decoded contracts in memory under an LRU byte budget, and
//! answers query/diff/list/provenance requests from many concurrent
//! clients over a length-prefixed framed protocol (Unix socket and/or
//! TCP).
//!
//! The layering, bottom-up:
//!
//! * [`protocol`] — frames, opcodes, request/response bodies (no I/O
//!   beyond `Read`/`Write`).
//! * [`cache`] — the hot-contract LRU with per-contract query memos and
//!   batched last-used touches back to the store (so `sweep --budget`
//!   and the server agree on MRU order).
//! * [`service`] — [`service::ServeCore`], the engine mapping requests
//!   to answers; also used in-process by `bolt_cli` so local and remote
//!   output is rendered by one code path.
//! * [`server`] — accept loops, connection threads, graceful drain.
//! * [`client`] — the blocking client (`bolt_cli --remote`).
//!
//! A warm repeat of the same query is answered from the memo: zero
//! explorations, zero solver requests, zero record decodes — the
//! property the protocol tests assert via the `stats` counters.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CacheConfig, ContractCache};
pub use client::{Client, ClientConfig, Endpoint, ParseEndpointError, ServeError};
pub use protocol::{
    DiffRequest, MetricsReply, QueryReply, QueryRequest, Request, Response, StatsReply, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
pub use service::{Phase, ServeCore, LEGACY_STATS_NAMES, NF_NAMES};
