//! `bolt serve` — contracts as a long-lived query service.
//!
//! Compile-once/query-forever (the store crates) still paid a per-query
//! process cost: every `bolt_cli query` re-opened the store, re-decoded
//! the record, and re-rehydrated the term pool. This crate keeps all of
//! that hot: a server opens the [`bolt_store::ContractStore`] once,
//! caches decoded contracts in memory under an LRU byte budget, and
//! answers query/diff/list/provenance requests from many concurrent
//! clients over a length-prefixed framed protocol (Unix socket and/or
//! TCP).
//!
//! The layering, bottom-up:
//!
//! * [`protocol`] — frames, opcodes, request/response bodies (no I/O
//!   beyond `Read`/`Write`); two wire versions, with per-request
//!   correlation ids and `Hello` depth negotiation on v2.
//! * [`cache`] — the hot-contract LRU with per-contract query memos and
//!   batched last-used touches back to the store (so `sweep --budget`
//!   and the server agree on MRU order).
//! * [`service`] — [`service::ServeCore`], the engine mapping requests
//!   to answers; also used in-process by `bolt_cli` so local and remote
//!   output is rendered by one code path. Classifies each request as
//!   inline-fast or offload-cold ([`service::Dispatch`]).
//! * [`server`] — the event-driven connection engine: a fixed pool of
//!   poll-driven workers over nonblocking sockets, request pipelining
//!   at a negotiated depth, cold requests offloaded to a handler pool.
//!   Built with [`Server::builder`].
//! * [`client`] — the blocking client (`bolt_cli --remote`): the
//!   resilient [`Client`] (built with [`Client::builder`]) and the raw
//!   pipelined [`client::Session`].
//!
//! A warm repeat of the same query is answered from the memo: zero
//! explorations, zero solver requests, zero record decodes — the
//! property the protocol tests assert via the `stats` counters.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CacheConfig, ContractCache};
pub use client::{
    Client, ClientBuilder, ClientConfig, Endpoint, ParseEndpointError, ServeError, Session, Ticket,
};
pub use protocol::{
    DiffRequest, MetricsReply, QueryReply, QueryRequest, Request, Response, StatsReply, MAX_FRAME,
    MAX_PIPELINE_DEPTH, PIPELINE_VERSION, PROTOCOL_VERSION,
};
pub use server::{Server, ServerBuilder, ServerConfig};
pub use service::{Dispatch, Phase, ServeCore, LEGACY_STATS_NAMES, NF_NAMES};
