//! The socket front end: accept loops, per-connection threads, graceful
//! drain.
//!
//! A [`Server`] listens on a Unix socket, a TCP address, or both, and
//! runs one thread per connection over the shared [`ServeCore`]. All
//! sockets run with short read timeouts instead of blocking forever, so
//! every thread observes the shutdown flag within a poll interval:
//!
//! * **accept loops** poll non-blocking listeners and exit once
//!   [`Server::request_shutdown`] (or a client's `Shutdown` request)
//!   raises the flag;
//! * **connection threads** keep draining bytes already received —
//!   requests fully written before the shutdown are still answered —
//!   and exit at the first moment the stream goes idle under shutdown.
//!
//! Malformed input never takes the server down: an undecodable request
//! gets an error frame and the connection lives on; only a frame-sync
//! violation (a length prefix beyond [`crate::protocol::MAX_FRAME`])
//! closes the offending connection, because the stream cannot be
//! resynchronised past an untrusted length.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bolt_fault::{site, FaultPlan};
use bolt_obs::{trace, Gauge};

use crate::protocol::{write_frame, FrameBuffer, Request, Response};
use crate::service::{Phase, ServeCore};

/// How long a connection read blocks before re-checking the shutdown
/// flag, and how long an idle accept loop sleeps between polls.
const POLL: Duration = Duration::from_millis(25);

/// Where to listen, and how hard the server defends itself. At least
/// one endpoint must be set; every limit defaults to off.
#[derive(Default, Clone, Debug)]
pub struct ServerConfig {
    /// Unix-domain socket path (a stale leftover from a crashed server
    /// is unlinked after a probe connect proves nobody answers it; a
    /// *live* server's socket makes the bind fail with `AddrInUse`).
    pub unix: Option<PathBuf>,
    /// TCP listen address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: Option<String>,
    /// Cap on concurrently served connections; `0` means unlimited.
    /// Connections past the cap get a `server busy` error frame and are
    /// closed immediately (counted in `busy_rejects`).
    pub max_connections: usize,
    /// Close a connection that sends nothing for this long (counted in
    /// `idle_closed`). `None` means connections may idle forever.
    pub idle_timeout: Option<Duration>,
    /// Bound on one request's handling time. Exploration cannot be
    /// aborted mid-flight, so a blown deadline still runs to completion
    /// — but the client gets a `deadline exceeded` error frame instead
    /// of an arbitrarily stale answer (counted in `deadlines_exceeded`).
    pub request_deadline: Option<Duration>,
    /// Deterministic fault injection for this server's transports.
    /// `None` falls back to the ambient [`bolt_fault::ambient`] plan
    /// (i.e. the `BOLT_FAULT_*` environment), which is itself `None`
    /// outside torture runs.
    pub fault: Option<Arc<FaultPlan>>,
}

/// Per-connection enforcement state shared by the accept loops.
#[derive(Clone)]
struct Limits {
    max_connections: usize,
    idle_timeout: Option<Duration>,
    request_deadline: Option<Duration>,
    fault: Option<Arc<FaultPlan>>,
    active: Arc<AtomicUsize>,
}

/// Decrements the active-connection count (and the exported
/// `serve.active_connections` gauge) however the connection ends.
struct ActiveGuard(Arc<AtomicUsize>, Arc<Gauge>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
        self.1.dec();
    }
}

/// A running server: listener threads, connection threads, shutdown
/// plumbing. Dropped handles keep running; call [`Server::join`] to
/// drain and stop.
pub struct Server {
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
    accept_handles: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Bind the configured endpoints and start accepting.
    pub fn start(core: ServeCore, config: ServerConfig) -> io::Result<Server> {
        if config.unix.is_none() && config.tcp.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server config names no endpoint (need a unix path or a tcp address)",
            ));
        }
        let core = Arc::new(core);
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();
        let limits = Limits {
            max_connections: config.max_connections,
            idle_timeout: config.idle_timeout,
            request_deadline: config.request_deadline,
            fault: config
                .fault
                .clone()
                .or_else(|| bolt_fault::ambient().cloned()),
            active: Arc::new(AtomicUsize::new(0)),
        };
        let mut accept_handles = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            accept_handles.push(spawn_acceptor(
                Arc::clone(&core),
                Arc::clone(&shutdown),
                Arc::clone(&conns),
                limits.clone(),
                move |l: &TcpListener| l.accept().map(|(s, _)| s),
                listener,
            ));
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = &config.unix {
            reclaim_unix_socket(path)?;
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            accept_handles.push(spawn_acceptor(
                Arc::clone(&core),
                Arc::clone(&shutdown),
                Arc::clone(&conns),
                limits.clone(),
                move |l: &UnixListener| l.accept().map(|(s, _)| s),
                listener,
            ));
        }
        #[cfg(not(unix))]
        if config.unix.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are unavailable on this platform; use --tcp",
            ));
        }
        Ok(Server {
            core,
            shutdown,
            accept_handles,
            conns,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address, when a TCP endpoint was configured (the
    /// way callers learn an ephemeral port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path, when one was configured.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The shared query engine (for in-process inspection in tests and
    /// benches).
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// Raise the shutdown flag: accept loops stop, connections drain.
    /// Also raised when any client sends a `Shutdown` request.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server has fully stopped: waits for the shutdown
    /// flag, joins the accept loops and every connection thread (each
    /// finishes answering what it already received), flushes pending
    /// cache-hit touches to the store's LRU stamps, and removes the
    /// Unix socket file. Returns the engine for post-mortem inspection.
    pub fn join(self) -> Arc<ServeCore> {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        for h in self.accept_handles {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns poisoned"));
        for h in handles {
            let _ = h.join();
        }
        self.core.flush_touches();
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        self.core
    }
}

/// Make a Unix socket path bindable without stealing it from a live
/// server. The old code blindly unlinked the path, which would silently
/// hijack a running server's endpoint; instead:
///
/// * nothing at the path → fine, bind;
/// * a non-socket at the path → refuse (it is not ours to delete);
/// * a socket someone answers → `AddrInUse`;
/// * a socket nobody answers (a crashed server's leftover) → unlink.
#[cfg(unix)]
fn reclaim_unix_socket(path: &Path) -> io::Result<()> {
    use std::os::unix::fs::FileTypeExt;
    let meta = match std::fs::symlink_metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if !meta.file_type().is_socket() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!(
                "{} exists and is not a socket; refusing to remove it",
                path.display()
            ),
        ));
    }
    match UnixStream::connect(path) {
        Ok(_) => Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!("{} is in use by a live server", path.display()),
        )),
        // Nobody home: a stale socket from an unclean death. Reclaim it.
        Err(_) => std::fs::remove_file(path),
    }
}

/// Anything a connection runs over: both socket families read, write,
/// and support a read timeout (the shutdown-poll mechanism).
trait Conn: Read + Write + Send {
    /// Set the blocking-read timeout.
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, dur)
    }
}

/// Spawn one accept loop over a non-blocking listener. Also reaps
/// finished connection threads each pass so the handle list does not
/// grow with total connections served.
fn spawn_acceptor<L, S>(
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    limits: Limits,
    accept: impl Fn(&L) -> io::Result<S> + Send + 'static,
    listener: L,
) -> JoinHandle<()>
where
    L: Send + 'static,
    S: Conn + 'static,
{
    std::thread::spawn(move || loop {
        match accept(&listener) {
            Ok(mut stream) => {
                let conn_id = core.note_connection();
                // Claim a slot before spawning, so the cap holds even
                // while a burst of accepts races the handler threads.
                let taken = limits.active.fetch_add(1, Ordering::SeqCst);
                core.connection_gauge().inc();
                let guard = ActiveGuard(
                    Arc::clone(&limits.active),
                    Arc::clone(core.connection_gauge()),
                );
                if limits.max_connections > 0 && taken >= limits.max_connections {
                    core.note_busy_reject();
                    trace::emit("serve.conn.busy", &[("id", conn_id.into())]);
                    let reply = Response::Error {
                        message: format!(
                            "server busy: {} connection(s) already active; retry later",
                            limits.max_connections
                        ),
                    };
                    let _ = write_frame(&mut stream, &reply.encode());
                    drop(guard); // releases the slot; stream drops too
                    continue;
                }
                trace::emit("serve.conn.open", &[("id", conn_id.into())]);
                let core = Arc::clone(&core);
                let shutdown = Arc::clone(&shutdown);
                let limits = limits.clone();
                let handle = std::thread::spawn(move || {
                    let _guard = guard;
                    let reason = match limits.fault.clone() {
                        Some(plan) => serve_conn(
                            &core,
                            &shutdown,
                            FaultStream {
                                inner: stream,
                                plan,
                            },
                            &limits,
                        ),
                        None => serve_conn(&core, &shutdown, stream, &limits),
                    };
                    trace::emit(
                        "serve.conn.close",
                        &[("id", conn_id.into()), ("reason", reason.into())],
                    );
                });
                let mut guard = conns.lock().expect("conns poisoned");
                guard.push(handle);
                let mut i = 0;
                while i < guard.len() {
                    if guard[i].is_finished() {
                        let _ = guard.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(POLL);
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(POLL);
            }
        }
    })
}

/// A transport wrapper that injects deterministic faults from a
/// [`FaultPlan`] into the server's half of the connection: read errors,
/// spurious EOFs (mid-frame disconnects), stalls, torn writes. The
/// server code underneath is exercised exactly as a flaky network would
/// exercise it, but reproducibly.
struct FaultStream<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.fires(site::SERVE_READ_STALL) {
            std::thread::sleep(self.plan.stall());
        }
        if self.plan.fires(site::SERVE_READ_DISCONNECT) {
            return Ok(0); // spurious EOF: the peer "vanished"
        }
        if let Some(e) = self.plan.io_fault(site::SERVE_READ_ERR, "read") {
            return Err(e);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.fires(site::SERVE_WRITE_PARTIAL) {
            // Tear the write: half the bytes reach the wire, then the
            // "connection" dies. The client sees a truncated frame.
            let _ = self.inner.write(&buf[..buf.len() / 2]);
            let _ = self.inner.flush();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected fault at serve.write.partial: torn write",
            ));
        }
        if let Some(e) = self.plan.io_fault(site::SERVE_WRITE_ERR, "write") {
            return Err(e);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Conn> Conn for FaultStream<S> {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }
}

/// Serve one connection until EOF, a frame-sync violation, the idle
/// timeout, or an idle stream under shutdown. Complete frames already
/// received are always answered, shutdown or not — the drain guarantee.
/// Returns why the connection closed (the `serve.conn.close` reason).
fn serve_conn<S: Conn>(
    core: &ServeCore,
    shutdown: &AtomicBool,
    mut stream: S,
    limits: &Limits,
) -> &'static str {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return "setup-failed";
    }
    let mut fb = FrameBuffer::new();
    let mut buf = [0u8; 16 * 1024];
    let mut idle_since = Instant::now();
    // Read-phase clock: ticking from the first bytes of a frame to the
    // frame's completion. Frames already buffered behind the one being
    // answered cost no further socket time and record as ~0.
    let mut read_started: Option<Instant> = None;
    loop {
        // Answer everything already buffered before reading more.
        loop {
            match fb.next_frame() {
                Ok(Some(payload)) => {
                    let read_ns = read_started
                        .take()
                        .map_or(0, |t| t.elapsed().as_nanos() as u64);
                    core.phase_histogram(Phase::Read).record(read_ns);
                    if let Err(reason) =
                        handle_frame(core, shutdown, &mut stream, limits, &payload, read_ns)
                    {
                        return reason;
                    }
                    idle_since = Instant::now();
                }
                Ok(None) => break,
                Err(e) => {
                    core.note_protocol_error();
                    let reply = Response::Error {
                        message: e.to_string(),
                    };
                    let _ = write_frame(&mut stream, &reply.encode());
                    return "frame-desync";
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return "eof",
            Ok(n) => {
                fb.extend(&buf[..n]);
                read_started.get_or_insert_with(Instant::now);
                idle_since = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle. Bytes written before a shutdown are already in
                // the kernel buffer, so a post-shutdown read would have
                // returned them — an idle stream under shutdown has
                // nothing left to drain.
                if shutdown.load(Ordering::SeqCst) {
                    return "drained";
                }
                if let Some(max_idle) = limits.idle_timeout {
                    if idle_since.elapsed() >= max_idle {
                        core.note_idle_close();
                        return "idle-timeout";
                    }
                }
            }
            Err(_) => return "read-error",
        }
    }
}

/// Decode and answer one frame. `read_ns` is the frame's read-phase
/// time, folded into the per-opcode total. Returns `Err(reason)` when
/// the connection should close (shutdown acknowledged or the reply
/// could not be written).
fn handle_frame<S: Conn>(
    core: &ServeCore,
    shutdown: &AtomicBool,
    stream: &mut S,
    limits: &Limits,
    payload: &[u8],
    read_ns: u64,
) -> Result<(), &'static str> {
    let req = match Request::decode(payload) {
        Ok(req) => req,
        Err(e) => {
            // Bad body, intact framing: answer the error, keep serving.
            core.note_protocol_error();
            let reply = Response::Error {
                message: format!("bad request: {e}"),
            };
            return match write_frame(stream, &reply.encode()) {
                Ok(()) => Ok(()),
                Err(_) => Err("write-failed"),
            };
        }
    };
    let op = req.opcode();
    let is_shutdown = matches!(req, Request::Shutdown);
    let started = Instant::now();
    // Injected slowness counts against the deadline like real slowness.
    if let Some(plan) = &limits.fault {
        if plan.fires(site::SERVE_HANDLE_STALL) {
            std::thread::sleep(plan.stall());
        }
    }
    let mut reply = core.handle(&req);
    let handled = Instant::now();
    core.phase_histogram(Phase::Handle)
        .record(handled.duration_since(started).as_nanos() as u64);
    if let Some(deadline) = limits.request_deadline {
        let elapsed = handled.duration_since(started);
        // Exploration cannot be aborted mid-flight, so the work ran to
        // completion either way (and is persisted for next time) — but
        // an answer slower than the deadline is not the answer the
        // client contracted for. Shutdown acks are exempt.
        if elapsed > deadline && !is_shutdown {
            core.note_deadline_exceeded();
            reply = Response::Error {
                message: format!(
                    "deadline exceeded: request took {elapsed:?} (limit {deadline:?})"
                ),
            };
        }
    }
    let sent = write_frame(stream, &reply.encode()).is_ok();
    core.phase_histogram(Phase::Write)
        .record(handled.elapsed().as_nanos() as u64);
    core.request_histogram(op)
        .record(read_ns + started.elapsed().as_nanos() as u64);
    if is_shutdown {
        // Flag after replying, so the requester gets its ack.
        shutdown.store(true, Ordering::SeqCst);
        return Err("shutdown");
    }
    if sent {
        Ok(())
    } else {
        Err("write-failed")
    }
}
