//! The event-driven socket front end: fixed worker pool, pipelining,
//! graceful drain.
//!
//! PR 6 spent one OS thread per connection; this core replaces that
//! with a **fixed thread topology** that does not grow with the
//! connection count:
//!
//! * one *acceptor* per listening socket (Unix and/or TCP), which only
//!   accepts, enforces the connection cap, and routes the socket to a
//!   worker;
//! * a small pool of *event workers*, each running a nonblocking
//!   poll(2)-driven readiness loop; every connection is a state machine
//!   owning its [`FrameBuffer`] and write buffer;
//! * a small pool of *handler* threads that absorb cold requests
//!   (explorations, diffs, store scans) so the event loop never blocks
//!   on the solver — warm memo hits dispatch inline on the loop itself
//!   (see [`ServeCore::dispatch`]);
//! * an optional 1 Hz Prometheus-text exporter.
//!
//! On top of the frame layer the engine speaks both protocol versions:
//! a v1 connection behaves exactly as PR 6 did (one request in flight,
//! replies in submission order), while a client that negotiates v2 via
//! [`Request::Hello`] may pipeline up to the granted depth on one
//! connection and receives replies in **completion order**, matched by
//! correlation id.
//!
//! The PR 6 robustness contract carries over unchanged: malformed
//! bodies get an error frame and the connection lives on; only a
//! frame-sync violation (a length prefix beyond
//! [`crate::protocol::MAX_FRAME`]) closes the connection; requests
//! fully received before a shutdown are still answered.
//!
//! Construct servers with [`Server::builder`]; the former
//! [`Server::start`] entry point remains as a deprecated shim.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bolt_fault::{site, FaultPlan};
use bolt_obs::{trace, Gauge};

use crate::protocol::{
    write_frame, DecodedRequest, FrameBuffer, Opcode, Request, Response, MAX_PIPELINE_DEPTH,
    PIPELINE_VERSION,
};
use crate::service::{Dispatch, Phase, ServeCore};
use bolt_store::ByteWriter;

/// How long a poll wait blocks before re-checking the shutdown flag,
/// and how long an idle accept loop sleeps between polls.
const POLL: Duration = Duration::from_millis(25);

/// Event-loop workers when [`ServerConfig::event_workers`] is 0.
const DEFAULT_EVENT_WORKERS: usize = 2;

/// Cold-path handler threads when [`ServerConfig::handler_threads`]
/// is 0.
const DEFAULT_HANDLER_THREADS: usize = 2;

/// Scratch size for draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// Where to listen, and how hard the server defends itself. At least
/// one endpoint must be set; every limit defaults to off.
///
/// Prefer [`Server::builder`]; the struct stays public (with
/// `..Default::default()` ergonomics) for the deprecated
/// [`Server::start`] path and for code that pins its shape.
#[derive(Default, Clone, Debug)]
pub struct ServerConfig {
    /// Unix-domain socket path (a stale leftover from a crashed server
    /// is unlinked after a probe connect proves nobody answers it; a
    /// *live* server's socket makes the bind fail with `AddrInUse`).
    pub unix: Option<PathBuf>,
    /// TCP listen address (e.g. `127.0.0.1:0` for an ephemeral port).
    pub tcp: Option<String>,
    /// Cap on concurrently served connections; `0` means unlimited.
    /// Connections past the cap get a `server busy` error frame and are
    /// closed immediately (counted in `busy_rejects`).
    pub max_connections: usize,
    /// Close a connection that sends nothing for this long (counted in
    /// `idle_closed`). `None` means connections may idle forever.
    pub idle_timeout: Option<Duration>,
    /// Bound on one request's handling time. Exploration cannot be
    /// aborted mid-flight, so a blown deadline still runs to completion
    /// — but the client gets a `deadline exceeded` error frame instead
    /// of an arbitrarily stale answer (counted in `deadlines_exceeded`).
    pub request_deadline: Option<Duration>,
    /// Deterministic fault injection for this server's transports.
    /// `None` falls back to the ambient [`bolt_fault::ambient`] plan
    /// (i.e. the `BOLT_FAULT_*` environment), which is itself `None`
    /// outside torture runs.
    pub fault: Option<Arc<FaultPlan>>,
    /// Number of event-loop workers; `0` picks the default (2).
    pub event_workers: usize,
    /// Number of cold-path handler threads; `0` picks the default (2).
    pub handler_threads: usize,
    /// Cap on the pipeline depth granted to v2 clients; `0` means the
    /// protocol maximum ([`MAX_PIPELINE_DEPTH`]).
    pub max_pipeline_depth: u32,
    /// When set, an exporter thread rewrites this file about once a
    /// second with the Prometheus text rendering of the server's
    /// metrics (and once more on shutdown).
    pub metrics_text: Option<PathBuf>,
}

/// Fluent construction for a [`Server`]: sockets, limits, fault plan
/// and metrics sink in one chain, ending in
/// [`ServerBuilder::start`].
///
/// ```no_run
/// use std::time::Duration;
/// use bolt_serve::Server;
/// # fn core() -> bolt_serve::ServeCore { unimplemented!() }
/// let server = Server::builder()
///     .tcp("127.0.0.1:0")
///     .max_connections(64)
///     .request_deadline(Duration::from_secs(30))
///     .start(core())
///     .unwrap();
/// ```
#[derive(Default, Clone, Debug)]
pub struct ServerBuilder {
    config: ServerConfig,
}

impl ServerBuilder {
    /// Listen on a Unix-domain socket at `path`.
    pub fn unix(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.unix = Some(path.into());
        self
    }

    /// Listen on a TCP address (e.g. `127.0.0.1:0` for an ephemeral
    /// port).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.config.tcp = Some(addr.into());
        self
    }

    /// Cap concurrently served connections (`0` = unlimited).
    pub fn max_connections(mut self, n: usize) -> Self {
        self.config.max_connections = n;
        self
    }

    /// Close connections that send nothing for `d`.
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.config.idle_timeout = Some(d);
        self
    }

    /// Bound one request's handling time.
    pub fn request_deadline(mut self, d: Duration) -> Self {
        self.config.request_deadline = Some(d);
        self
    }

    /// Inject a deterministic fault plan into this server's I/O and
    /// handling paths.
    pub fn fault(mut self, plan: Arc<FaultPlan>) -> Self {
        self.config.fault = Some(plan);
        self
    }

    /// Number of event-loop workers (`0` = default).
    pub fn event_workers(mut self, n: usize) -> Self {
        self.config.event_workers = n;
        self
    }

    /// Number of cold-path handler threads (`0` = default).
    pub fn handler_threads(mut self, n: usize) -> Self {
        self.config.handler_threads = n;
        self
    }

    /// Cap the pipeline depth granted to v2 clients (`0` = protocol
    /// maximum).
    pub fn max_pipeline_depth(mut self, depth: u32) -> Self {
        self.config.max_pipeline_depth = depth;
        self
    }

    /// Periodically export the server's metrics as Prometheus text to
    /// `path` (atomic tmp-and-rename writes).
    pub fn metrics_text(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.metrics_text = Some(path.into());
        self
    }

    /// Bind the configured endpoints and start the engine.
    pub fn start(self, core: ServeCore) -> io::Result<Server> {
        Server::start_impl(core, self.config)
    }
}

/// Per-connection enforcement state shared by every engine thread.
#[derive(Clone)]
struct Limits {
    max_connections: usize,
    idle_timeout: Option<Duration>,
    request_deadline: Option<Duration>,
    max_depth: u32,
    fault: Option<Arc<FaultPlan>>,
    active: Arc<AtomicUsize>,
}

/// Decrements the active-connection count (and the exported
/// `serve.active_connections` gauge) however the connection ends.
struct ActiveGuard(Arc<AtomicUsize>, Arc<Gauge>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
        self.1.dec();
    }
}

/// A running server: acceptor/event/handler threads, shutdown
/// plumbing. Dropped handles keep running; call [`Server::join`] to
/// drain and stop.
pub struct Server {
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
    engine: Arc<Engine>,
    accept_handles: Vec<JoinHandle<()>>,
    event_handles: Vec<JoinHandle<()>>,
    handler_handles: Vec<JoinHandle<()>>,
    exporter: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Start describing a server; finish with
    /// [`ServerBuilder::start`].
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Bind the configured endpoints and start accepting.
    #[deprecated(note = "use `Server::builder()` and `ServerBuilder::start` instead")]
    pub fn start(core: ServeCore, config: ServerConfig) -> io::Result<Server> {
        Server::start_impl(core, config)
    }

    fn start_impl(core: ServeCore, config: ServerConfig) -> io::Result<Server> {
        if config.unix.is_none() && config.tcp.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server config names no endpoint (need a unix path or a tcp address)",
            ));
        }
        #[cfg(not(unix))]
        if config.unix.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are unavailable on this platform; use --tcp",
            ));
        }
        let core = Arc::new(core);
        let shutdown = Arc::new(AtomicBool::new(false));
        let limits = Limits {
            max_connections: config.max_connections,
            idle_timeout: config.idle_timeout,
            request_deadline: config.request_deadline,
            max_depth: if config.max_pipeline_depth == 0 {
                MAX_PIPELINE_DEPTH
            } else {
                config.max_pipeline_depth.min(MAX_PIPELINE_DEPTH)
            },
            fault: config
                .fault
                .clone()
                .or_else(|| bolt_fault::ambient().cloned()),
            active: Arc::new(AtomicUsize::new(0)),
        };

        // Bind everything fallible before spawning any thread.
        let mut tcp_addr = None;
        let mut tcp_listener = None;
        if let Some(addr) = &config.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            tcp_listener = Some(listener);
        }
        let mut unix_path = None;
        #[cfg(unix)]
        let mut unix_listener = None;
        #[cfg(unix)]
        if let Some(path) = &config.unix {
            reclaim_unix_socket(path)?;
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.clone());
            unix_listener = Some(listener);
        }

        let n_event = if config.event_workers == 0 {
            DEFAULT_EVENT_WORKERS
        } else {
            config.event_workers
        };
        let n_handler = if config.handler_threads == 0 {
            DEFAULT_HANDLER_THREADS
        } else {
            config.handler_threads
        };
        let mut workers = Vec::with_capacity(n_event);
        let mut wake_rxs = Vec::with_capacity(n_event);
        for _ in 0..n_event {
            let (waker, rx) = Waker::pair()?;
            workers.push(Arc::new(WorkerShared {
                inbox: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                waker,
            }));
            wake_rxs.push(rx);
        }
        let engine = Arc::new(Engine {
            core: Arc::clone(&core),
            shutdown: Arc::clone(&shutdown),
            limits,
            workers,
            jobs: JobQueue::default(),
            next_worker: AtomicUsize::new(0),
            live_event_workers: AtomicUsize::new(n_event),
        });

        let mut event_handles = Vec::with_capacity(n_event);
        for (wid, rx) in wake_rxs.into_iter().enumerate() {
            let engine = Arc::clone(&engine);
            event_handles.push(std::thread::spawn(move || {
                EventWorker::new(wid, engine, rx).run()
            }));
        }
        let mut handler_handles = Vec::with_capacity(n_handler);
        for _ in 0..n_handler {
            let engine = Arc::clone(&engine);
            handler_handles.push(std::thread::spawn(move || handler_worker(engine)));
        }

        let mut accept_handles = Vec::new();
        if let Some(listener) = tcp_listener {
            accept_handles.push(spawn_acceptor(
                Arc::clone(&engine),
                move || match listener.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nodelay(true);
                        Some(Ok(Box::new(s) as Box<dyn Conn>))
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => Some(Err(e)),
                },
            ));
        }
        #[cfg(unix)]
        if let Some(listener) = unix_listener {
            accept_handles.push(spawn_acceptor(
                Arc::clone(&engine),
                move || match listener.accept() {
                    Ok((s, _)) => Some(Ok(Box::new(s) as Box<dyn Conn>)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                    Err(e) => Some(Err(e)),
                },
            ));
        }

        let exporter = config.metrics_text.as_ref().map(|path| {
            let path = path.clone();
            let stop = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&stop);
            let core = Arc::clone(&core);
            let handle = std::thread::spawn(move || loop {
                write_metrics_text(&path, &core);
                for _ in 0..10 {
                    if flag.load(Ordering::SeqCst) {
                        write_metrics_text(&path, &core);
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            });
            (stop, handle)
        });

        Ok(Server {
            core,
            shutdown,
            engine,
            accept_handles,
            event_handles,
            handler_handles,
            exporter,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address, when a TCP endpoint was configured (the
    /// way callers learn an ephemeral port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path, when one was configured.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The shared query engine (for in-process inspection in tests and
    /// benches).
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// Total engine threads this server runs: acceptors + event
    /// workers + handlers + exporter. The figure is fixed at start and
    /// independent of how many connections are open — the property the
    /// 1024-connection soak test pins.
    pub fn worker_threads(&self) -> usize {
        self.accept_handles.len()
            + self.event_handles.len()
            + self.handler_handles.len()
            + usize::from(self.exporter.is_some())
    }

    /// Raise the shutdown flag: accept loops stop, connections drain.
    /// Also raised when any client sends a `Shutdown` request.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine.wake_all();
    }

    /// Whether shutdown has been requested.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server has fully stopped: waits for the
    /// shutdown flag, joins every engine thread (connections finish
    /// answering what they already received), flushes pending
    /// cache-hit touches to the store's LRU stamps, and removes the
    /// Unix socket file. Returns the engine for post-mortem
    /// inspection.
    pub fn join(mut self) -> Arc<ServeCore> {
        while !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        // The flag may have been flipped by a client request on an
        // event loop; re-assert the wakeups so nobody sleeps through
        // it.
        self.engine.wake_all();
        for h in self.accept_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.event_handles.drain(..) {
            let _ = h.join();
        }
        self.engine.jobs.notify_all();
        for h in self.handler_handles.drain(..) {
            let _ = h.join();
        }
        if let Some((stop, handle)) = self.exporter.take() {
            stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
        }
        self.core.flush_touches();
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        self.core
    }
}

/// Atomically (tmp + rename) write the server's Prometheus text
/// exposition; best-effort, a failed write never takes the server
/// down.
fn write_metrics_text(path: &Path, core: &ServeCore) {
    let text = core.metrics().snapshot().to_prometheus();
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Make a Unix socket path bindable without stealing it from a live
/// server:
///
/// * nothing at the path → fine, bind;
/// * a non-socket at the path → refuse (it is not ours to delete);
/// * a socket someone answers → `AddrInUse`;
/// * a socket nobody answers (a crashed server's leftover) → unlink.
#[cfg(unix)]
fn reclaim_unix_socket(path: &Path) -> io::Result<()> {
    use std::os::unix::fs::FileTypeExt;
    let meta = match std::fs::symlink_metadata(path) {
        Ok(m) => m,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if !meta.file_type().is_socket() {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!(
                "{} exists and is not a socket; refusing to remove it",
                path.display()
            ),
        ));
    }
    match UnixStream::connect(path) {
        Ok(_) => Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!("{} is in use by a live server", path.display()),
        )),
        // Nobody home: a stale socket from an unclean death. Reclaim it.
        Err(_) => std::fs::remove_file(path),
    }
}

/// Anything a connection runs over: both socket families read, write,
/// toggle nonblocking mode, and (on Linux) expose an fd for poll(2).
trait Conn: Read + Write + Send {
    /// Toggle nonblocking mode on the underlying socket.
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// The raw fd, for readiness registration.
    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> std::os::fd::RawFd;
}

impl Conn for TcpStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpStream::set_nonblocking(self, nonblocking)
    }
    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixStream::set_nonblocking(self, nonblocking)
    }
    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

impl Conn for Box<dyn Conn> {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        (**self).set_nonblocking(nonblocking)
    }
    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        (**self).raw_fd()
    }
}

/// A transport wrapper that injects deterministic faults from a
/// [`FaultPlan`] into the server's half of the connection: read errors,
/// spurious EOFs (mid-frame disconnects), stalls, torn writes. The
/// server code underneath is exercised exactly as a flaky network would
/// exercise it, but reproducibly.
struct FaultStream<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.fires(site::SERVE_READ_STALL) {
            std::thread::sleep(self.plan.stall());
        }
        if self.plan.fires(site::SERVE_READ_DISCONNECT) {
            return Ok(0); // spurious EOF: the peer "vanished"
        }
        if let Some(e) = self.plan.io_fault(site::SERVE_READ_ERR, "read") {
            return Err(e);
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.fires(site::SERVE_WRITE_PARTIAL) {
            // Tear the write: half the bytes reach the wire, then the
            // "connection" dies. The client sees a truncated frame.
            let _ = self.inner.write(&buf[..buf.len() / 2]);
            let _ = self.inner.flush();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected fault at serve.write.partial: torn write",
            ));
        }
        if let Some(e) = self.plan.io_fault(site::SERVE_WRITE_ERR, "write") {
            return Err(e);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: Conn> Conn for FaultStream<S> {
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        self.inner.set_nonblocking(nonblocking)
    }
    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        self.inner.raw_fd()
    }
}

/// poll(2) bindings, declared directly (std already links libc) so the
/// engine needs no external crate.
#[cfg(target_os = "linux")]
mod readiness {
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_ulong};

    #[repr(C)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Block until any fd is ready or the timeout elapses; fills
    /// `revents` in place. A return of -1 (EINTR etc.) is treated as
    /// "nothing ready", which the caller's next pass absorbs.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) {
        unsafe {
            poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms);
        }
    }
}

/// One half of a worker wake-up channel: any thread may `wake()` it to
/// make the owning event loop's poll return immediately.
struct Waker {
    #[cfg(unix)]
    tx: UnixStream,
}

/// The receiving half, owned by the event loop and registered in its
/// poll set.
struct WakeRx {
    #[cfg(unix)]
    rx: UnixStream,
}

impl Waker {
    fn pair() -> io::Result<(Waker, WakeRx)> {
        #[cfg(unix)]
        {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok((Waker { tx }, WakeRx { rx }))
        }
        #[cfg(not(unix))]
        {
            Ok((Waker {}, WakeRx {}))
        }
    }

    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; ignore it.
        #[cfg(unix)]
        {
            let _ = (&self.tx).write(&[1u8]);
        }
    }
}

impl WakeRx {
    /// Swallow every pending wake token.
    fn drain(&mut self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
        }
    }

    #[cfg(target_os = "linux")]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(&self.rx)
    }
}

/// A freshly accepted connection en route to its event worker.
struct NewConn {
    stream: Box<dyn Conn>,
    conn_id: u64,
    guard: ActiveGuard,
}

/// A cold request handed off the event loop.
struct Job {
    wid: usize,
    slot: usize,
    gen: u64,
    seq: u64,
    req: Request,
}

/// A handler's finished answer, routed back to the owning worker.
struct Completion {
    slot: usize,
    gen: u64,
    seq: u64,
    /// Encoded v1 response payload (the v2 correlation prefix is added
    /// at release time, where the connection's mode is known).
    payload: Vec<u8>,
    handle_ns: u64,
}

/// The cold-request queue between event loops and handler threads.
#[derive(Default)]
struct JobQueue {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

impl JobQueue {
    fn push(&self, job: Job) {
        self.q.lock().expect("jobs poisoned").push_back(job);
        self.cv.notify_one();
    }

    fn pop(&self, timeout: Duration) -> Option<Job> {
        let mut q = self.q.lock().expect("jobs poisoned");
        if let Some(j) = q.pop_front() {
            return Some(j);
        }
        let (mut q, _) = self.cv.wait_timeout(q, timeout).expect("jobs poisoned");
        q.pop_front()
    }

    fn is_empty(&self) -> bool {
        self.q.lock().expect("jobs poisoned").is_empty()
    }

    fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// Per-worker mailboxes: new connections from the acceptors,
/// completions from the handler pool, and the waker that makes the
/// loop look at them.
struct WorkerShared {
    inbox: Mutex<Vec<NewConn>>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// Everything the engine threads share.
struct Engine {
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
    limits: Limits,
    workers: Vec<Arc<WorkerShared>>,
    jobs: JobQueue,
    next_worker: AtomicUsize,
    live_event_workers: AtomicUsize,
}

impl Engine {
    fn wake_all(&self) {
        self.jobs.notify_all();
        for w in &self.workers {
            w.waker.wake();
        }
    }
}

/// One in-flight request on a connection, keyed by arrival order
/// (`seq`). v1 connections release strictly front-first; v2
/// connections release any entry the moment it completes.
struct Pending {
    seq: u64,
    corr: Option<u64>,
    op: Opcode,
    read_ns: u64,
    done: Option<(Vec<u8>, u64)>,
}

/// One connection's full state machine on its event loop.
struct Connection {
    conn_id: u64,
    gen: u64,
    stream: Box<dyn Conn>,
    fb: FrameBuffer,
    wbuf: Vec<u8>,
    wpos: usize,
    pending: VecDeque<Pending>,
    /// Negotiated pipeline window (1 until a v2 `Hello` raises it).
    depth: u32,
    /// Whether the connection negotiated v2 (correlated) framing.
    v2: bool,
    next_seq: u64,
    idle_since: Instant,
    read_started: Option<Instant>,
    closing: Option<&'static str>,
    _guard: ActiveGuard,
}

impl Connection {
    fn new(nc: NewConn, gen: u64) -> Connection {
        Connection {
            conn_id: nc.conn_id,
            gen,
            stream: nc.stream,
            fb: FrameBuffer::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            depth: 1,
            v2: false,
            next_seq: 0,
            idle_since: Instant::now(),
            read_started: None,
            closing: None,
            _guard: nc.guard,
        }
    }

    /// Whether the loop should poll this socket for readability: never
    /// past the pipeline window (backpressure) or once closing.
    fn wants_read(&self) -> bool {
        self.closing.is_none() && (self.pending.len() as u32) < self.depth
    }

    /// Whether unflushed reply bytes are waiting for the socket.
    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Append one length-prefixed frame to the write buffer.
    fn queue_frame(&mut self, payload: &[u8]) {
        debug_assert!(payload.len() as u64 <= crate::protocol::MAX_FRAME as u64);
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }

    /// Queue an error reply in the connection's negotiated framing
    /// (`corr` only matters on v2 connections; malformed v2 frames
    /// attribute to correlation id 0).
    fn queue_error(&mut self, corr: u64, message: String) {
        let reply = Response::Error { message };
        let bytes = if self.v2 {
            reply.encode_v2(corr)
        } else {
            reply.encode()
        };
        self.queue_frame(&bytes);
    }

    /// Push as much of the write buffer as the socket takes right now.
    fn try_write(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.wpos >= self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 0 {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    /// Abandon the connection now: no drain, no pending answers.
    fn hard_close(&mut self, reason: &'static str) {
        self.pending.clear();
        self.wbuf.clear();
        self.wpos = 0;
        self.closing = Some(reason);
    }
}

/// Best-effort correlation id for a frame whose body failed to decode:
/// if the frame at least led with the v2 version byte and an opcode,
/// read the correlation varint so the client can attribute the error;
/// otherwise 0 (the reserved "unattributable" id).
fn corr_hint(payload: &[u8]) -> u64 {
    if payload.len() > 2 && payload[0] == PIPELINE_VERSION {
        let mut r = bolt_store::ByteReader::new(&payload[2..]);
        if let Ok(corr) = r.varint() {
            return corr;
        }
    }
    0
}

/// Run one decoded request against the core — fault stall, handling,
/// deadline enforcement — and return the encoded v1 reply payload plus
/// the handle-phase nanoseconds. Shared verbatim by the inline path
/// and the handler pool, so an answer is identical wherever it ran.
fn run_request(core: &ServeCore, limits: &Limits, req: &Request) -> (Vec<u8>, u64) {
    let started = Instant::now();
    // Injected slowness counts against the deadline like real slowness.
    if let Some(plan) = &limits.fault {
        if plan.fires(site::SERVE_HANDLE_STALL) {
            std::thread::sleep(plan.stall());
        }
    }
    let mut reply = core.handle(req);
    let handled = Instant::now();
    let handle_ns = handled.duration_since(started).as_nanos() as u64;
    core.phase_histogram(Phase::Handle).record(handle_ns);
    if let Some(deadline) = limits.request_deadline {
        let elapsed = handled.duration_since(started);
        // Exploration cannot be aborted mid-flight, so the work ran to
        // completion either way (and is persisted for next time) — but
        // an answer slower than the deadline is not the answer the
        // client contracted for. Shutdown acks are exempt.
        if elapsed > deadline && !matches!(req, Request::Shutdown) {
            core.note_deadline_exceeded();
            reply = Response::Error {
                message: format!(
                    "deadline exceeded: request took {elapsed:?} (limit {deadline:?})"
                ),
            };
        }
    }
    (reply.encode(), handle_ns)
}

/// Pop every complete frame the pipeline window allows and process it.
fn pump_frames(engine: &Engine, wid: usize, slot: usize, conn: &mut Connection) {
    while conn.closing.is_none() && (conn.pending.len() as u32) < conn.depth {
        match conn.fb.next_frame() {
            Ok(Some(payload)) => {
                let read_ns = conn
                    .read_started
                    .take()
                    .map_or(0, |t| t.elapsed().as_nanos() as u64);
                engine.core.phase_histogram(Phase::Read).record(read_ns);
                process_frame(engine, wid, slot, conn, &payload, read_ns);
                conn.idle_since = Instant::now();
            }
            Ok(None) => break,
            Err(e) => {
                // A length prefix beyond MAX_FRAME: the stream cannot
                // be resynchronised past an untrusted length.
                engine.core.note_protocol_error();
                conn.queue_error(0, e.to_string());
                conn.closing = Some("frame-desync");
            }
        }
    }
}

/// Decode one frame and route it: negotiate (`Hello`), answer inline,
/// or hand off to the handler pool.
fn process_frame(
    engine: &Engine,
    wid: usize,
    slot: usize,
    conn: &mut Connection,
    payload: &[u8],
    read_ns: u64,
) {
    let core = &engine.core;
    let DecodedRequest { corr, req } = match Request::decode_framed(payload) {
        Ok(d) => d,
        Err(e) => {
            // Bad body, intact framing: answer the error, keep serving.
            core.note_protocol_error();
            let corr = if conn.v2 { corr_hint(payload) } else { 0 };
            conn.queue_error(corr, format!("bad request: {e}"));
            return;
        }
    };
    if let Request::Hello { max_version, depth } = &req {
        // Negotiation is answered by the engine itself (the core's
        // Hello handling exists for in-process callers) and must be the
        // first thing on a fresh connection.
        if corr.is_some() || conn.v2 || !conn.pending.is_empty() {
            core.note_protocol_error();
            conn.queue_error(0, "hello must be the first request on a connection".into());
            return;
        }
        let started = Instant::now();
        let version = (*max_version).min(PIPELINE_VERSION);
        let granted = if version >= PIPELINE_VERSION {
            (*depth).clamp(1, engine.limits.max_depth)
        } else {
            1
        };
        let ack = Response::HelloAck {
            version,
            depth: granted,
        };
        let handle_ns = started.elapsed().as_nanos() as u64;
        core.phase_histogram(Phase::Handle).record(handle_ns);
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.pending.push_back(Pending {
            seq,
            // The ack itself is a v1 frame; v2 framing starts after it.
            corr: None,
            op: Opcode::Hello,
            read_ns,
            done: Some((ack.encode(), handle_ns)),
        });
        if version >= PIPELINE_VERSION {
            conn.v2 = true;
            conn.depth = granted;
        }
        return;
    }
    match (conn.v2, corr) {
        (true, None) => {
            core.note_protocol_error();
            conn.queue_error(
                0,
                "protocol version mismatch: this connection negotiated v2 (correlated) frames"
                    .into(),
            );
            return;
        }
        (false, Some(_)) => {
            core.note_protocol_error();
            conn.queue_error(0, "pipelining was not negotiated on this connection".into());
            return;
        }
        _ => {}
    }
    let op = req.opcode();
    let seq = conn.next_seq;
    conn.next_seq += 1;
    match core.dispatch(&req) {
        Dispatch::Inline => {
            let is_shutdown = matches!(req, Request::Shutdown);
            let (payload, handle_ns) = run_request(core, &engine.limits, &req);
            conn.pending.push_back(Pending {
                seq,
                corr,
                op,
                read_ns,
                done: Some((payload, handle_ns)),
            });
            if is_shutdown {
                // Flag after queueing the ack, so the requester gets
                // it; the soft close drains the write buffer first.
                engine.shutdown.store(true, Ordering::SeqCst);
                engine.wake_all();
                conn.closing = Some("shutdown");
            }
        }
        Dispatch::Offload => {
            conn.pending.push_back(Pending {
                seq,
                corr,
                op,
                read_ns,
                done: None,
            });
            engine.jobs.push(Job {
                wid,
                slot,
                gen: conn.gen,
                seq,
                req,
            });
        }
    }
}

/// Move finished replies into the write buffer — v1 strictly in
/// submission order, v2 in completion order with the correlation
/// prefix — then push bytes at the socket once for the whole burst.
fn release_and_flush(core: &ServeCore, conn: &mut Connection) {
    let mut metas: Vec<(Opcode, u64)> = Vec::new();
    if conn.v2 {
        let mut i = 0;
        while i < conn.pending.len() {
            if conn.pending[i].done.is_some() {
                let p = conn.pending.remove(i).expect("indexed entry");
                let (payload, handle_ns) = p.done.expect("checked done");
                let bytes = match p.corr {
                    Some(c) => {
                        let mut w = ByteWriter::new();
                        w.varint(c);
                        w.raw(&payload);
                        w.into_bytes()
                    }
                    None => payload,
                };
                conn.queue_frame(&bytes);
                metas.push((p.op, p.read_ns + handle_ns));
            } else {
                i += 1;
            }
        }
    } else {
        while conn.pending.front().is_some_and(|p| p.done.is_some()) {
            let p = conn.pending.pop_front().expect("checked front");
            let (payload, handle_ns) = p.done.expect("checked done");
            conn.queue_frame(&payload);
            metas.push((p.op, p.read_ns + handle_ns));
        }
    }
    if !conn.wants_write() {
        return;
    }
    let started = Instant::now();
    let result = conn.try_write();
    let write_ns = started.elapsed().as_nanos() as u64;
    if !metas.is_empty() {
        core.phase_histogram(Phase::Write).record(write_ns);
        for (op, ns) in metas {
            core.request_histogram(op).record(ns + write_ns);
        }
    }
    if result.is_err() {
        conn.hard_close("write-failed");
    }
}

/// Drain a readable socket into the frame buffer, answering as frames
/// complete.
fn handle_readable(
    engine: &Engine,
    wid: usize,
    slot: usize,
    conn: &mut Connection,
    buf: &mut [u8],
) {
    loop {
        pump_frames(engine, wid, slot, conn);
        if conn.closing.is_some() || !conn.wants_read() {
            break;
        }
        match conn.stream.read(buf) {
            Ok(0) => {
                // Soft close: anything fully received is still
                // answered (the drain guarantee), then the slot frees.
                conn.closing = Some("eof");
                break;
            }
            Ok(n) => {
                conn.fb.extend(&buf[..n]);
                conn.read_started.get_or_insert_with(Instant::now);
                conn.idle_since = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.hard_close("read-error");
                break;
            }
        }
    }
    release_and_flush(&engine.core, conn);
}

/// One event loop over the connections routed to it.
struct EventWorker {
    wid: usize,
    engine: Arc<Engine>,
    shared: Arc<WorkerShared>,
    wake_rx: WakeRx,
    slots: Vec<Option<Connection>>,
    free: Vec<usize>,
    next_gen: u64,
}

impl EventWorker {
    fn new(wid: usize, engine: Arc<Engine>, wake_rx: WakeRx) -> EventWorker {
        let shared = Arc::clone(&engine.workers[wid]);
        EventWorker {
            wid,
            engine,
            shared,
            wake_rx,
            slots: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
        }
    }

    fn run(mut self) {
        let mut buf = vec![0u8; READ_CHUNK];
        loop {
            let ready = self.wait();
            self.wake_rx.drain();
            self.apply_completions();
            self.admit_new();
            for (slot, readable, writable) in ready {
                if readable {
                    if let Some(conn) = self.slots[slot].as_mut() {
                        handle_readable(&self.engine, self.wid, slot, conn, &mut buf);
                    }
                }
                if writable {
                    if let Some(conn) = self.slots[slot].as_mut() {
                        if conn.wants_write() && conn.try_write().is_err() {
                            conn.hard_close("write-failed");
                        }
                    }
                }
            }
            self.tick();
            self.engine.core.drain_touches();
            if self.engine.shutdown.load(Ordering::SeqCst)
                && self.slots.iter().all(|s| s.is_none())
                && self.shared.inbox.lock().expect("inbox poisoned").is_empty()
            {
                self.engine
                    .live_event_workers
                    .fetch_sub(1, Ordering::SeqCst);
                // Handlers gate their exit on live event workers; make
                // sure none sleeps through the last decrement.
                self.engine.jobs.notify_all();
                return;
            }
        }
    }

    /// Wait for readiness; returns `(slot, readable, writable)` per
    /// ready connection.
    #[cfg(target_os = "linux")]
    fn wait(&mut self) -> Vec<(usize, bool, bool)> {
        use readiness::{PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
        let mut fds = Vec::with_capacity(self.slots.len() + 1);
        let mut map = Vec::with_capacity(self.slots.len());
        fds.push(PollFd {
            fd: self.wake_rx.raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(conn) = slot {
                let mut events = 0;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd {
                        fd: conn.stream.raw_fd(),
                        events,
                        revents: 0,
                    });
                    map.push(i);
                }
            }
        }
        readiness::wait(&mut fds, POLL.as_millis() as i32);
        let err_bits = POLLERR | POLLHUP | POLLNVAL;
        let mut out = Vec::new();
        for (k, slot) in map.into_iter().enumerate() {
            let f = &fds[k + 1];
            let errored = f.revents & err_bits != 0;
            let readable = f.events & POLLIN != 0 && (f.revents & POLLIN != 0 || errored);
            let writable = f.events & POLLOUT != 0 && (f.revents & POLLOUT != 0 || errored);
            if readable || writable {
                out.push((slot, readable, writable));
            }
        }
        out
    }

    /// Portable fallback: a short sleep, then sweep every connection
    /// as maybe-ready (nonblocking reads make the sweep cheap).
    #[cfg(not(target_os = "linux"))]
    fn wait(&mut self) -> Vec<(usize, bool, bool)> {
        std::thread::sleep(Duration::from_millis(5));
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref()
                    .map(|conn| (i, conn.wants_read(), conn.wants_write()))
            })
            .filter(|(_, r, w)| *r || *w)
            .collect()
    }

    /// Fold finished handler answers into their connections and flush.
    fn apply_completions(&mut self) {
        let comps: Vec<Completion> = {
            let mut guard = self
                .shared
                .completions
                .lock()
                .expect("completions poisoned");
            guard.drain(..).collect()
        };
        for c in comps {
            let Some(conn) = self.slots.get_mut(c.slot).and_then(Option::as_mut) else {
                continue;
            };
            // A stale completion for a connection that died and whose
            // slot was reused must not answer the new tenant.
            if conn.gen != c.gen {
                continue;
            }
            if let Some(p) = conn
                .pending
                .iter_mut()
                .find(|p| p.seq == c.seq && p.done.is_none())
            {
                p.done = Some((c.payload, c.handle_ns));
            }
            release_and_flush(&self.engine.core, conn);
        }
    }

    /// Seat newly accepted connections into free slots.
    fn admit_new(&mut self) {
        let incoming: Vec<NewConn> = {
            let mut inbox = self.shared.inbox.lock().expect("inbox poisoned");
            inbox.drain(..).collect()
        };
        for nc in incoming {
            self.next_gen += 1;
            let conn = Connection::new(nc, self.next_gen);
            match self.free.pop() {
                Some(slot) => self.slots[slot] = Some(conn),
                None => self.slots.push(Some(conn)),
            }
        }
    }

    /// Housekeeping pass: pump frames parked behind the pipeline
    /// window, drain-under-shutdown, idle timeout, and slot reclaim.
    fn tick(&mut self) {
        for slot in 0..self.slots.len() {
            let engine = Arc::clone(&self.engine);
            let Some(conn) = self.slots[slot].as_mut() else {
                continue;
            };
            pump_frames(&engine, self.wid, slot, conn);
            release_and_flush(&engine.core, conn);
            let quiescent = conn.pending.is_empty() && !conn.wants_write();
            if conn.closing.is_none() && quiescent {
                if engine.shutdown.load(Ordering::SeqCst) {
                    // Bytes written before a shutdown are already in
                    // the frame buffer, so a quiescent stream under
                    // shutdown has nothing left to drain.
                    conn.closing = Some("drained");
                } else if let Some(max_idle) = engine.limits.idle_timeout {
                    if conn.idle_since.elapsed() >= max_idle {
                        engine.core.note_idle_close();
                        conn.closing = Some("idle-timeout");
                    }
                }
            }
            if let Some(reason) = conn.closing {
                if conn.pending.is_empty() && !conn.wants_write() {
                    let conn = self.slots[slot].take().expect("checked occupied");
                    trace::emit(
                        "serve.conn.close",
                        &[("id", conn.conn_id.into()), ("reason", reason.into())],
                    );
                    self.free.push(slot);
                }
            }
        }
    }
}

/// A handler thread: absorb cold requests so the event loops never
/// block on the solver; route each answer back to the owning worker.
fn handler_worker(engine: Arc<Engine>) {
    loop {
        match engine.jobs.pop(POLL) {
            Some(job) => {
                let (payload, handle_ns) = run_request(&engine.core, &engine.limits, &job.req);
                let worker = &engine.workers[job.wid];
                worker
                    .completions
                    .lock()
                    .expect("completions poisoned")
                    .push(Completion {
                        slot: job.slot,
                        gen: job.gen,
                        seq: job.seq,
                        payload,
                        handle_ns,
                    });
                worker.waker.wake();
            }
            None => {
                if engine.shutdown.load(Ordering::SeqCst)
                    && engine.jobs.is_empty()
                    && engine.live_event_workers.load(Ordering::SeqCst) == 0
                {
                    return;
                }
            }
        }
    }
}

/// Spawn one accept loop over a nonblocking listener: enforce the
/// connection cap, then route the socket to an event worker
/// round-robin.
fn spawn_acceptor(
    engine: Arc<Engine>,
    mut accept: impl FnMut() -> Option<io::Result<Box<dyn Conn>>> + Send + 'static,
) -> JoinHandle<()> {
    std::thread::spawn(move || loop {
        match accept() {
            Some(Ok(mut stream)) => {
                let core = &engine.core;
                let conn_id = core.note_connection();
                // Claim a slot before routing, so the cap holds even
                // while a burst of accepts races the event loops.
                let taken = engine.limits.active.fetch_add(1, Ordering::SeqCst);
                core.connection_gauge().inc();
                let guard = ActiveGuard(
                    Arc::clone(&engine.limits.active),
                    Arc::clone(core.connection_gauge()),
                );
                if engine.limits.max_connections > 0 && taken >= engine.limits.max_connections {
                    core.note_busy_reject();
                    trace::emit("serve.conn.busy", &[("id", conn_id.into())]);
                    let reply = Response::Error {
                        message: format!(
                            "server busy: {} connection(s) already active; retry later",
                            engine.limits.max_connections
                        ),
                    };
                    // The socket is still blocking here, so the reject
                    // frame goes out before the close.
                    let _ = write_frame(&mut stream, &reply.encode());
                    drop(guard); // releases the slot; stream drops too
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    trace::emit(
                        "serve.conn.close",
                        &[("id", conn_id.into()), ("reason", "setup-failed".into())],
                    );
                    drop(guard);
                    continue;
                }
                trace::emit("serve.conn.open", &[("id", conn_id.into())]);
                let stream: Box<dyn Conn> = match engine.limits.fault.clone() {
                    Some(plan) => Box::new(FaultStream {
                        inner: stream,
                        plan,
                    }),
                    None => stream,
                };
                let wid = engine.next_worker.fetch_add(1, Ordering::SeqCst) % engine.workers.len();
                engine.workers[wid]
                    .inbox
                    .lock()
                    .expect("inbox poisoned")
                    .push(NewConn {
                        stream,
                        conn_id,
                        guard,
                    });
                engine.workers[wid].waker.wake();
            }
            Some(Err(_)) | None => {
                if engine.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(POLL);
            }
        }
    })
}
