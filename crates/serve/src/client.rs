//! A blocking client for the serve protocol, with optional request
//! pipelining.
//!
//! Two layers:
//!
//! * [`Client`] — the high-level, resilient handle. Build one with
//!   [`Client::builder`]; each call is one request/response exchange,
//!   and transport failures on *idempotent* requests (ping, query,
//!   list, provenance, stats) tear down the connection, back off with
//!   jitter, reconnect, and retry up to [`ClientConfig::retries`]
//!   times. Non-idempotent requests (diff today renders from immutable
//!   records but is grouped conservatively; shutdown must never fire
//!   twice) surface the first failure. Error *frames* — the server
//!   answered, but with a diagnostic — are never retried: the server
//!   is healthy and would say the same thing again.
//! * [`Session`] — one negotiated connection, exposed directly for
//!   pipelining: [`Session::submit`] queues a request and returns a
//!   [`Ticket`], [`Session::flush`] pushes the batch onto the wire in
//!   one write, and [`Session::recv`] blocks until that ticket's reply
//!   arrives (replies come back in *completion* order; the session
//!   files them by correlation id). A session never retries — it is
//!   the raw connection; resilience lives in [`Client`].
//!
//! Pipeline depth is negotiated: a session opened with
//! [`ClientConfig::pipeline_depth`] > 1 sends a `Hello` first. A new
//! server acks with the granted protocol version and depth; an old
//! server answers the unknown opcode with an error frame, which the
//! session takes as "speak v1 at depth 1". A depth of 1 (the
//! deprecated [`Client::connect`]/[`Client::connect_with`] shims pin
//! this) skips `Hello` entirely and is byte-identical to the PR 6
//! client on the wire.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use bolt_fault::XorShift64;

use crate::protocol::{
    read_frame, DiffRequest, MetricsReply, QueryReply, QueryRequest, Request, Response, StatsReply,
    MAX_PIPELINE_DEPTH, PIPELINE_VERSION,
};

/// Where a server lives: `tcp:HOST:PORT`, or a Unix socket path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP address (`host:port`, or `[v6-host]:port`).
    Tcp(String),
}

/// An endpoint spec that could not be understood.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseEndpointError {
    spec: String,
    reason: &'static str,
}

impl fmt::Display for ParseEndpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad endpoint {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for ParseEndpointError {}

impl Endpoint {
    /// Parse an endpoint spec: a `tcp:` prefix selects TCP (and the
    /// rest must be `HOST:PORT` with a numeric port — IPv6 hosts
    /// bracketed, `tcp:[::1]:8080`), anything else is a Unix socket
    /// path. Empty and structurally hopeless specs are rejected here
    /// rather than at connect time, where "No such file or directory"
    /// for a mistyped `tcp:` flag would mislead.
    pub fn parse(s: &str) -> Result<Endpoint, ParseEndpointError> {
        let err = |reason| ParseEndpointError {
            spec: s.to_string(),
            reason,
        };
        let spec = s.trim();
        if spec.is_empty() {
            return Err(err("empty endpoint"));
        }
        match spec.strip_prefix("tcp:") {
            Some(addr) => {
                let port = if let Some(rest) = addr.strip_prefix('[') {
                    // Bracketed IPv6: [HOST]:PORT. rsplit_once(':')
                    // would split inside the address, so the bracket
                    // is parsed structurally instead.
                    let (host, after) = rest
                        .split_once(']')
                        .ok_or_else(|| err("tcp endpoint has an unclosed '[' bracket"))?;
                    if host.is_empty() {
                        return Err(err("tcp endpoint has an empty host"));
                    }
                    after
                        .strip_prefix(':')
                        .ok_or_else(|| err("tcp endpoint needs a :PORT after the ']' bracket"))?
                } else {
                    let (host, port) = addr
                        .rsplit_once(':')
                        .ok_or_else(|| err("tcp endpoint needs HOST:PORT"))?;
                    if host.is_empty() {
                        return Err(err("tcp endpoint has an empty host"));
                    }
                    if host.contains(':') {
                        return Err(err("IPv6 hosts must be bracketed, like tcp:[::1]:8080"));
                    }
                    port
                };
                if port.parse::<u16>().is_err() {
                    return Err(err("tcp endpoint needs a numeric port (0-65535)"));
                }
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            None => Ok(Endpoint::Unix(PathBuf::from(spec))),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes did not decode to the expected response.
    Protocol(String),
    /// The server answered with an error frame; the message is the
    /// server's (e.g. an unknown-NF or unknown-PCV diagnostic).
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Remote(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Tunables for one client connection.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-call reply deadline. Warm answers are microseconds; a cold
    /// one can run a fresh exploration, so the default is generous.
    pub deadline: Duration,
    /// How long to wait for a TCP connect (Unix connects are local and
    /// effectively instant).
    pub connect_timeout: Duration,
    /// How many times to re-dial and retry an idempotent request after
    /// a transport failure. Zero disables retry entirely.
    pub retries: u32,
    /// Base reconnect backoff; doubles per attempt.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Requested pipeline window: how many requests may be in flight
    /// on the connection at once. `<= 1` skips negotiation entirely
    /// and speaks pure v1 (byte-identical to the PR 6 client); higher
    /// values negotiate with the server, which may grant less.
    pub pipeline_depth: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline: Duration::from_secs(120),
            connect_timeout: Duration::from_secs(10),
            retries: 2,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            pipeline_depth: 8,
        }
    }
}

/// Fluent construction for a [`Client`] or a raw [`Session`],
/// mirroring the `Composer` convention:
///
/// ```no_run
/// use bolt_serve::{Client, Endpoint};
/// use std::time::Duration;
/// let ep = Endpoint::parse("tcp:127.0.0.1:7070").unwrap();
/// let mut client = Client::builder(&ep)
///     .deadline(Duration::from_secs(30))
///     .retries(4)
///     .pipeline_depth(8)
///     .build()
///     .unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct ClientBuilder {
    endpoint: Endpoint,
    config: ClientConfig,
}

impl ClientBuilder {
    /// Per-call reply deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.config.deadline = d;
        self
    }

    /// TCP connect timeout.
    pub fn connect_timeout(mut self, d: Duration) -> Self {
        self.config.connect_timeout = d;
        self
    }

    /// Transport-failure retries for idempotent requests.
    pub fn retries(mut self, n: u32) -> Self {
        self.config.retries = n;
        self
    }

    /// Base reconnect backoff (doubles per attempt).
    pub fn backoff(mut self, d: Duration) -> Self {
        self.config.backoff = d;
        self
    }

    /// Backoff ceiling.
    pub fn backoff_cap(mut self, d: Duration) -> Self {
        self.config.backoff_cap = d;
        self
    }

    /// Requested pipeline window (clamped to the protocol maximum;
    /// `<= 1` disables negotiation and speaks pure v1).
    pub fn pipeline_depth(mut self, depth: u32) -> Self {
        self.config.pipeline_depth = depth.min(MAX_PIPELINE_DEPTH);
        self
    }

    /// Start from an explicit [`ClientConfig`] (the builder's other
    /// setters still apply on top).
    pub fn config(mut self, config: ClientConfig) -> Self {
        self.config = config;
        self
    }

    /// Dial eagerly and return the resilient [`Client`] handle.
    pub fn build(self) -> Result<Client, ServeError> {
        let mut client = Client {
            endpoint: self.endpoint,
            config: self.config,
            session: None,
            jitter: XorShift64::new(std::process::id() as u64 ^ 0x5EED_1E55),
        };
        client.ensure_session()?;
        Ok(client)
    }

    /// Dial eagerly and return the raw negotiated [`Session`] — the
    /// pipelining interface, without the retry layer.
    pub fn session(self) -> Result<Session, ServeError> {
        Session::establish(&self.endpoint, &self.config)
    }
}

trait Transport: Read + Write + Send {}
impl Transport for TcpStream {}
#[cfg(unix)]
impl Transport for UnixStream {}

/// A claim on one in-flight request in a [`Session`]; redeem it with
/// [`Session::recv`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ticket(u64);

/// One negotiated connection with pipelining: submit many, flush once,
/// receive in any order.
///
/// ```no_run
/// use bolt_serve::{Client, Endpoint, Request};
/// let ep = Endpoint::parse("bolt.sock").unwrap();
/// let mut session = Client::builder(&ep).pipeline_depth(8).session().unwrap();
/// let a = session.submit(&Request::Ping).unwrap();
/// let b = session.submit(&Request::List).unwrap();
/// session.flush().unwrap();
/// let pong = session.recv(b).unwrap(); // completion order is fine
/// let list = session.recv(a).unwrap();
/// # let _ = (pong, list);
/// ```
pub struct Session {
    stream: Box<dyn Transport>,
    /// Whether v2 (correlated) framing was negotiated.
    v2: bool,
    /// Granted pipeline window (1 on a v1 session).
    depth: u32,
    /// Next correlation id; 0 is reserved for unattributable server
    /// errors, so tickets start at 1.
    next_corr: u64,
    /// Correlation ids submitted and not yet received, in submission
    /// order (which is also the v1 reply order).
    inflight: VecDeque<u64>,
    /// Replies that arrived while waiting for a different ticket.
    ready: HashMap<u64, Response>,
    /// Encoded frames queued by [`Session::submit`], sent as one write
    /// by [`Session::flush`].
    wbuf: Vec<u8>,
}

impl Session {
    fn establish(endpoint: &Endpoint, config: &ClientConfig) -> Result<Session, ServeError> {
        let deadline = Some(config.deadline);
        let stream: Box<dyn Transport> = match endpoint {
            Endpoint::Tcp(addr) => {
                let mut last = io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{addr}: no addresses resolved"),
                );
                let mut dialled = None;
                for sock in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sock, config.connect_timeout) {
                        Ok(s) => {
                            dialled = Some(s);
                            break;
                        }
                        Err(e) => last = e,
                    }
                }
                let s = dialled.ok_or(last)?;
                s.set_read_timeout(deadline)?;
                s.set_write_timeout(deadline)?;
                let _ = s.set_nodelay(true);
                Box::new(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(deadline)?;
                s.set_write_timeout(deadline)?;
                Box::new(s)
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are unavailable on this platform; use tcp:HOST:PORT",
                )))
            }
        };
        let mut session = Session {
            stream,
            v2: false,
            depth: 1,
            next_corr: 1,
            inflight: VecDeque::new(),
            ready: HashMap::new(),
            wbuf: Vec::new(),
        };
        if config.pipeline_depth > 1 {
            session.negotiate(config.pipeline_depth.min(MAX_PIPELINE_DEPTH))?;
        }
        Ok(session)
    }

    /// Send `Hello` (always a plain v1 exchange) and latch what the
    /// server grants. An old server answers the unknown opcode with an
    /// error frame — that downgrades to v1 at depth 1; any *other*
    /// error frame (e.g. `server busy`) is a real refusal and
    /// surfaces.
    fn negotiate(&mut self, want: u32) -> Result<(), ServeError> {
        let hello = Request::Hello {
            max_version: PIPELINE_VERSION,
            depth: want,
        };
        self.write_all(&frame(&hello.encode()))?;
        let payload = self.read_payload()?;
        match Response::decode(&payload)
            .map_err(|e| ServeError::Protocol(format!("bad response frame: {e}")))?
        {
            Response::HelloAck { version, depth } => {
                if version >= PIPELINE_VERSION {
                    self.v2 = true;
                    self.depth = depth.clamp(1, MAX_PIPELINE_DEPTH);
                }
                Ok(())
            }
            // Pre-pipelining server: it cannot decode Hello and says
            // so. Fall back to the v1 contract it does speak.
            Response::Error { message } if message.contains("unknown opcode") => Ok(()),
            Response::Error { message } => Err(ServeError::Remote(message)),
            other => Err(mismatch("hello ack", &other)),
        }
    }

    /// The pipeline window the server granted (1 on a v1 session).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Whether the session negotiated v2 (correlated) framing.
    pub fn pipelined(&self) -> bool {
        self.v2
    }

    /// Queue one request and return the ticket that will redeem its
    /// reply. The frame sits in a local batch until [`Session::flush`]
    /// (or a `recv`, which flushes first). If the pipeline window is
    /// full, blocks until the oldest in-flight reply arrives.
    pub fn submit(&mut self, req: &Request) -> Result<Ticket, ServeError> {
        while self.inflight.len() as u32 >= self.depth {
            self.flush()?;
            self.read_one()?;
        }
        let corr = self.next_corr;
        self.next_corr += 1;
        let payload = if self.v2 {
            req.encode_v2(corr)
        } else {
            req.encode()
        };
        self.wbuf.extend_from_slice(&frame(&payload));
        self.inflight.push_back(corr);
        Ok(Ticket(corr))
    }

    /// Push every queued frame onto the wire in one write.
    pub fn flush(&mut self) -> Result<(), ServeError> {
        if self.wbuf.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.wbuf);
        self.write_all(&buf)
    }

    /// Block until the ticket's reply arrives, filing any other
    /// replies that land first. Error frames surface as
    /// [`ServeError::Remote`].
    pub fn recv(&mut self, ticket: Ticket) -> Result<Response, ServeError> {
        self.flush()?;
        loop {
            if let Some(resp) = self.ready.remove(&ticket.0) {
                return match resp {
                    Response::Error { message } => Err(ServeError::Remote(message)),
                    other => Ok(other),
                };
            }
            if !self.inflight.contains(&ticket.0) {
                return Err(ServeError::Protocol(format!(
                    "ticket {} is not in flight on this session",
                    ticket.0
                )));
            }
            self.read_one()?;
        }
    }

    /// One strict request/response round trip on this session.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let ticket = self.submit(req)?;
        self.recv(ticket)
    }

    /// Read one reply frame and file it under its correlation id.
    fn read_one(&mut self) -> Result<(), ServeError> {
        let payload = self.read_payload()?;
        let (corr, resp) = if self.v2 {
            Response::decode_v2(&payload)
                .map_err(|e| ServeError::Protocol(format!("bad response frame: {e}")))?
        } else {
            let resp = Response::decode(&payload)
                .map_err(|e| ServeError::Protocol(format!("bad response frame: {e}")))?;
            let corr = self.inflight.front().copied().ok_or_else(|| {
                ServeError::Protocol("server answered with nothing in flight".to_string())
            })?;
            (corr, resp)
        };
        match self.inflight.iter().position(|c| *c == corr) {
            Some(i) => {
                self.inflight.remove(i);
                self.ready.insert(corr, resp);
                Ok(())
            }
            None => match resp {
                // Correlation id 0 is the server's "unattributable
                // error" channel (malformed frame, desync); any owner
                // of this session hears it immediately.
                Response::Error { message } => Err(ServeError::Remote(message)),
                _ => Err(ServeError::Protocol(format!(
                    "server answered unknown correlation id {corr}"
                ))),
            },
        }
    }

    fn read_payload(&mut self) -> Result<Vec<u8>, ServeError> {
        read_frame(&mut self.stream)?.ok_or_else(|| {
            // EOF before the reply is a transport-level death (the
            // server crashed or reaped us), not a protocol bug —
            // classify it as Io so a retry layer can heal it.
            ServeError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the reply",
            ))
        })
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }
}

/// Length-prefix one payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One connection to a serve endpoint, redialled on demand.
pub struct Client {
    endpoint: Endpoint,
    config: ClientConfig,
    session: Option<Session>,
    jitter: XorShift64,
}

impl Client {
    /// Start describing a client for `endpoint`; finish with
    /// [`ClientBuilder::build`] (or [`ClientBuilder::session`] for the
    /// raw pipelined session).
    pub fn builder(endpoint: &Endpoint) -> ClientBuilder {
        ClientBuilder {
            endpoint: endpoint.clone(),
            config: ClientConfig::default(),
        }
    }

    /// Connect with defaults pinned to the PR 6 wire behaviour (pure
    /// v1, no negotiation). The dial happens eagerly so a dead server
    /// is reported here, not on the first call.
    #[deprecated(note = "use `Client::builder(endpoint).build()` instead")]
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ServeError> {
        #[allow(deprecated)]
        Client::connect_with(endpoint, ClientConfig::default())
    }

    /// Connect with explicit tunables, pinned to the PR 6 wire
    /// behaviour: whatever `config.pipeline_depth` says, this shim
    /// forces depth 1 so legacy callers stay byte-identical on the
    /// wire.
    #[deprecated(note = "use `Client::builder(endpoint)` with builder setters instead")]
    pub fn connect_with(
        endpoint: &Endpoint,
        mut config: ClientConfig,
    ) -> Result<Client, ServeError> {
        config.pipeline_depth = 1;
        Client::builder(endpoint).config(config).build()
    }

    /// The endpoint this client dials.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn ensure_session(&mut self) -> Result<&mut Session, ServeError> {
        if self.session.is_none() {
            self.session = Some(Session::establish(&self.endpoint, &self.config)?);
        }
        Ok(self.session.as_mut().expect("established above"))
    }

    /// One request/response round trip, with reconnect-and-retry for
    /// idempotent requests. Error frames become [`ServeError::Remote`]
    /// and are never retried.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServeError> {
        let mut attempt = 0u32;
        loop {
            match self.try_call(req) {
                Err(ServeError::Io(e)) if req.is_idempotent() && attempt < self.config.retries => {
                    attempt += 1;
                    std::thread::sleep(self.backoff_for(attempt, &e));
                }
                other => return other,
            }
        }
    }

    /// Deprecated name for [`Client::request`].
    #[deprecated(note = "renamed to `Client::request`")]
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.request(req)
    }

    /// Exponential backoff with jitter: `base * 2^(attempt-1)` capped,
    /// plus up to half that again so a herd of clients doesn't re-dial
    /// in lockstep.
    fn backoff_for(&mut self, attempt: u32, _cause: &io::Error) -> Duration {
        let base = self.config.backoff.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(16));
        let delay = exp.min(self.config.backoff_cap);
        let jitter_ns = (delay.as_nanos() as u64 / 2).max(1);
        delay + Duration::from_nanos(self.jitter.next_u64() % jitter_ns)
    }

    /// A single attempt: dial (and negotiate) if needed, write, read,
    /// decode. Any transport or framing failure poisons the connection
    /// so the next attempt starts from a fresh dial.
    fn try_call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let session = match self.ensure_session() {
            Ok(s) => s,
            Err(e) => {
                self.session = None;
                return Err(e);
            }
        };
        match session.call(req) {
            Err(e @ (ServeError::Io(_) | ServeError::Protocol(_))) => {
                // The connection's framing state is unknown; drop it.
                self.session = None;
                Err(e)
            }
            other => other,
        }
    }

    /// Liveness check; returns the server's version string.
    pub fn ping(&mut self) -> Result<String, ServeError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(mismatch("pong", &other)),
        }
    }

    /// Run a contract query.
    pub fn query(&mut self, q: QueryRequest) -> Result<QueryReply, ServeError> {
        match self.request(&Request::Query(q))? {
            Response::Query(r) => Ok(r),
            other => Err(mismatch("query reply", &other)),
        }
    }

    /// Diff two stored contracts; returns the rendered text.
    pub fn diff(&mut self, d: DiffRequest) -> Result<String, ServeError> {
        match self.request(&Request::Diff(d))? {
            Response::Diff { text } => Ok(text),
            other => Err(mismatch("diff reply", &other)),
        }
    }

    /// List the server's store; returns (record count, rendered table).
    pub fn list(&mut self) -> Result<(u64, String), ServeError> {
        match self.request(&Request::List)? {
            Response::List { entries, text } => Ok((entries, text)),
            other => Err(mismatch("list reply", &other)),
        }
    }

    /// Record/cache provenance of one (NF, level); returns rendered
    /// text.
    pub fn provenance(&mut self, nf: &str, level: u8) -> Result<String, ServeError> {
        let req = Request::Provenance {
            nf: nf.to_string(),
            level,
        };
        match self.request(&req)? {
            Response::Provenance { text } => Ok(text),
            other => Err(mismatch("provenance reply", &other)),
        }
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(mismatch("stats reply", &other)),
        }
    }

    /// Fetch the server's full observability snapshot: counters,
    /// gauges, and latency histograms.
    pub fn metrics(&mut self) -> Result<MetricsReply, ServeError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(mismatch("metrics reply", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain, flush, exit).
    /// Never retried: a second shutdown against a restarted server
    /// would kill the wrong instance.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(mismatch("shutdown ack", &other)),
        }
    }
}

fn mismatch(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected a {wanted}, got {got:?}"))
}
