//! A blocking client for the serve protocol.
//!
//! One [`Client`] is one connection; calls are strictly
//! request/response, so a client is cheap to use from many threads by
//! giving each thread its own connection (the server runs one thread
//! per connection anyway).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, DiffRequest, QueryReply, QueryRequest, Request, Response, StatsReply,
};

/// How long a client waits for a reply before giving up. Warm answers
/// are microseconds; a cold one can run a fresh exploration, so the
/// bound is generous.
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Where a server lives: `tcp:HOST:PORT`, or a Unix socket path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP address (`host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Parse an endpoint spec: a `tcp:` prefix selects TCP, anything
    /// else is a Unix socket path.
    pub fn parse(s: &str) -> Endpoint {
        match s.strip_prefix("tcp:") {
            Some(addr) => Endpoint::Tcp(addr.to_string()),
            None => Endpoint::Unix(PathBuf::from(s)),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes did not decode to the expected response.
    Protocol(String),
    /// The server answered with an error frame; the message is the
    /// server's (e.g. an unknown-NF or unknown-PCV diagnostic).
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Remote(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

trait Transport: Read + Write + Send {}
impl Transport for TcpStream {}
#[cfg(unix)]
impl Transport for UnixStream {}

/// One connection to a serve endpoint.
pub struct Client {
    stream: Box<dyn Transport>,
}

impl Client {
    /// Connect to an endpoint.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ServeError> {
        let stream: Box<dyn Transport> = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_read_timeout(Some(REPLY_TIMEOUT))?;
                Box::new(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(REPLY_TIMEOUT))?;
                Box::new(s)
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are unavailable on this platform; use tcp:HOST:PORT",
                )))
            }
        };
        Ok(Client { stream })
    }

    /// One request/response round trip. Error frames become
    /// [`ServeError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ServeError::Protocol("server closed before replying".into()))?;
        let resp = Response::decode(&payload)
            .map_err(|e| ServeError::Protocol(format!("bad response frame: {e}")))?;
        if let Response::Error { message } = resp {
            return Err(ServeError::Remote(message));
        }
        Ok(resp)
    }

    /// Liveness check; returns the server's version string.
    pub fn ping(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(mismatch("pong", &other)),
        }
    }

    /// Run a contract query.
    pub fn query(&mut self, q: QueryRequest) -> Result<QueryReply, ServeError> {
        match self.call(&Request::Query(q))? {
            Response::Query(r) => Ok(r),
            other => Err(mismatch("query reply", &other)),
        }
    }

    /// Diff two stored contracts; returns the rendered text.
    pub fn diff(&mut self, d: DiffRequest) -> Result<String, ServeError> {
        match self.call(&Request::Diff(d))? {
            Response::Diff { text } => Ok(text),
            other => Err(mismatch("diff reply", &other)),
        }
    }

    /// List the server's store; returns (record count, rendered table).
    pub fn list(&mut self) -> Result<(u64, String), ServeError> {
        match self.call(&Request::List)? {
            Response::List { entries, text } => Ok((entries, text)),
            other => Err(mismatch("list reply", &other)),
        }
    }

    /// Record/cache provenance of one (NF, level); returns rendered
    /// text.
    pub fn provenance(&mut self, nf: &str, level: u8) -> Result<String, ServeError> {
        let req = Request::Provenance {
            nf: nf.to_string(),
            level,
        };
        match self.call(&req)? {
            Response::Provenance { text } => Ok(text),
            other => Err(mismatch("provenance reply", &other)),
        }
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(mismatch("stats reply", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain, flush, exit).
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(mismatch("shutdown ack", &other)),
        }
    }
}

fn mismatch(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected a {wanted}, got {got:?}"))
}
