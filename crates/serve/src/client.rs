//! A blocking client for the serve protocol.
//!
//! One [`Client`] owns one (lazily dialled) connection; calls are
//! strictly request/response, so a client is cheap to use from many
//! threads by giving each thread its own client (the server runs one
//! thread per connection anyway).
//!
//! The client is resilient by default: transport failures on
//! *idempotent* requests (ping, query, list, provenance, stats) tear
//! down the connection, back off with jitter, reconnect, and retry up
//! to [`ClientConfig::retries`] times. Non-idempotent requests (diff
//! today renders from immutable records but is grouped conservatively;
//! shutdown must never fire twice) surface the first failure. Error
//! *frames* — the server answered, but with a diagnostic — are never
//! retried: the server is healthy and would say the same thing again.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use bolt_fault::XorShift64;

use crate::protocol::{
    read_frame, write_frame, DiffRequest, MetricsReply, QueryReply, QueryRequest, Request,
    Response, StatsReply,
};

/// Where a server lives: `tcp:HOST:PORT`, or a Unix socket path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// Unix-domain socket path.
    Unix(PathBuf),
    /// TCP address (`host:port`).
    Tcp(String),
}

/// An endpoint spec that could not be understood.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseEndpointError {
    spec: String,
    reason: &'static str,
}

impl fmt::Display for ParseEndpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad endpoint {:?}: {}", self.spec, self.reason)
    }
}

impl std::error::Error for ParseEndpointError {}

impl Endpoint {
    /// Parse an endpoint spec: a `tcp:` prefix selects TCP (and the
    /// rest must be `host:port` with a numeric port), anything else is
    /// a Unix socket path. Empty and structurally hopeless specs are
    /// rejected here rather than at connect time, where "No such file
    /// or directory" for a mistyped `tcp:` flag would mislead.
    pub fn parse(s: &str) -> Result<Endpoint, ParseEndpointError> {
        let err = |reason| ParseEndpointError {
            spec: s.to_string(),
            reason,
        };
        let spec = s.trim();
        if spec.is_empty() {
            return Err(err("empty endpoint"));
        }
        match spec.strip_prefix("tcp:") {
            Some(addr) => {
                let (host, port) = addr
                    .rsplit_once(':')
                    .ok_or_else(|| err("tcp endpoint needs HOST:PORT"))?;
                if host.is_empty() {
                    return Err(err("tcp endpoint has an empty host"));
                }
                if port.parse::<u16>().is_err() {
                    return Err(err("tcp endpoint needs a numeric port (0-65535)"));
                }
                Ok(Endpoint::Tcp(addr.to_string()))
            }
            None => Ok(Endpoint::Unix(PathBuf::from(spec))),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Client-side failure.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure (connect, read, write, timeout).
    Io(io::Error),
    /// The server's bytes did not decode to the expected response.
    Protocol(String),
    /// The server answered with an error frame; the message is the
    /// server's (e.g. an unknown-NF or unknown-PCV diagnostic).
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
            ServeError::Remote(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Tunables for one client connection.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-call reply deadline. Warm answers are microseconds; a cold
    /// one can run a fresh exploration, so the default is generous.
    pub deadline: Duration,
    /// How long to wait for a TCP connect (Unix connects are local and
    /// effectively instant).
    pub connect_timeout: Duration,
    /// How many times to re-dial and retry an idempotent request after
    /// a transport failure. Zero disables retry entirely.
    pub retries: u32,
    /// Base reconnect backoff; doubles per attempt.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline: Duration::from_secs(120),
            connect_timeout: Duration::from_secs(10),
            retries: 2,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

trait Transport: Read + Write + Send {}
impl Transport for TcpStream {}
#[cfg(unix)]
impl Transport for UnixStream {}

/// One connection to a serve endpoint, redialled on demand.
pub struct Client {
    endpoint: Endpoint,
    config: ClientConfig,
    stream: Option<Box<dyn Transport>>,
    jitter: XorShift64,
}

impl Client {
    /// Connect to an endpoint with default [`ClientConfig`]. The dial
    /// happens eagerly so a dead server is reported here, not on the
    /// first call.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ServeError> {
        Client::connect_with(endpoint, ClientConfig::default())
    }

    /// Connect with explicit tunables.
    pub fn connect_with(endpoint: &Endpoint, config: ClientConfig) -> Result<Client, ServeError> {
        let mut client = Client {
            endpoint: endpoint.clone(),
            config,
            stream: None,
            jitter: XorShift64::new(std::process::id() as u64 ^ 0x5EED_1E55),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    fn ensure_connected(&mut self) -> Result<(), ServeError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let deadline = Some(self.config.deadline);
        let stream: Box<dyn Transport> = match &self.endpoint {
            Endpoint::Tcp(addr) => {
                let mut last = io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{addr}: no addresses resolved"),
                );
                let mut dialled = None;
                for sock in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sock, self.config.connect_timeout) {
                        Ok(s) => {
                            dialled = Some(s);
                            break;
                        }
                        Err(e) => last = e,
                    }
                }
                let s = dialled.ok_or(last)?;
                s.set_read_timeout(deadline)?;
                s.set_write_timeout(deadline)?;
                Box::new(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(deadline)?;
                s.set_write_timeout(deadline)?;
                Box::new(s)
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are unavailable on this platform; use tcp:HOST:PORT",
                )))
            }
        };
        self.stream = Some(stream);
        Ok(())
    }

    /// One request/response round trip, with reconnect-and-retry for
    /// idempotent requests. Error frames become [`ServeError::Remote`]
    /// and are never retried.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        let mut attempt = 0u32;
        loop {
            match self.try_call(req) {
                Err(ServeError::Io(e)) if req.is_idempotent() && attempt < self.config.retries => {
                    attempt += 1;
                    std::thread::sleep(self.backoff_for(attempt, &e));
                }
                other => return other,
            }
        }
    }

    /// Exponential backoff with jitter: `base * 2^(attempt-1)` capped,
    /// plus up to half that again so a herd of clients doesn't re-dial
    /// in lockstep.
    fn backoff_for(&mut self, attempt: u32, _cause: &io::Error) -> Duration {
        let base = self.config.backoff.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(16));
        let delay = exp.min(self.config.backoff_cap);
        let jitter_ns = (delay.as_nanos() as u64 / 2).max(1);
        delay + Duration::from_nanos(self.jitter.next_u64() % jitter_ns)
    }

    /// A single attempt: dial if needed, write, read, decode. Any
    /// transport or framing failure poisons the connection so the next
    /// attempt starts from a fresh dial.
    fn try_call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.ensure_connected()?;
        let stream = self.stream.as_mut().expect("connected above");
        let result = (|| {
            write_frame(stream, &req.encode())?;
            let payload = read_frame(stream)?.ok_or_else(|| {
                // EOF before the reply is a transport-level death (the
                // server crashed or reaped us), not a protocol bug —
                // classify it as Io so the retry loop can heal it.
                ServeError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before the reply",
                ))
            })?;
            let resp = Response::decode(&payload)
                .map_err(|e| ServeError::Protocol(format!("bad response frame: {e}")))?;
            Ok(resp)
        })();
        match result {
            Err(e @ (ServeError::Io(_) | ServeError::Protocol(_))) => {
                // The connection's framing state is unknown; drop it.
                self.stream = None;
                Err(e)
            }
            Ok(Response::Error { message }) => Err(ServeError::Remote(message)),
            other => other,
        }
    }

    /// Liveness check; returns the server's version string.
    pub fn ping(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(mismatch("pong", &other)),
        }
    }

    /// Run a contract query.
    pub fn query(&mut self, q: QueryRequest) -> Result<QueryReply, ServeError> {
        match self.call(&Request::Query(q))? {
            Response::Query(r) => Ok(r),
            other => Err(mismatch("query reply", &other)),
        }
    }

    /// Diff two stored contracts; returns the rendered text.
    pub fn diff(&mut self, d: DiffRequest) -> Result<String, ServeError> {
        match self.call(&Request::Diff(d))? {
            Response::Diff { text } => Ok(text),
            other => Err(mismatch("diff reply", &other)),
        }
    }

    /// List the server's store; returns (record count, rendered table).
    pub fn list(&mut self) -> Result<(u64, String), ServeError> {
        match self.call(&Request::List)? {
            Response::List { entries, text } => Ok((entries, text)),
            other => Err(mismatch("list reply", &other)),
        }
    }

    /// Record/cache provenance of one (NF, level); returns rendered
    /// text.
    pub fn provenance(&mut self, nf: &str, level: u8) -> Result<String, ServeError> {
        let req = Request::Provenance {
            nf: nf.to_string(),
            level,
        };
        match self.call(&req)? {
            Response::Provenance { text } => Ok(text),
            other => Err(mismatch("provenance reply", &other)),
        }
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Result<StatsReply, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(mismatch("stats reply", &other)),
        }
    }

    /// Fetch the server's full observability snapshot: counters,
    /// gauges, and latency histograms.
    pub fn metrics(&mut self) -> Result<MetricsReply, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(mismatch("metrics reply", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain, flush, exit).
    /// Never retried: a second shutdown against a restarted server
    /// would kill the wrong instance.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(mismatch("shutdown ack", &other)),
        }
    }
}

fn mismatch(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected a {wanted}, got {got:?}"))
}
