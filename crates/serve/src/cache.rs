//! The server's hot-contract cache.
//!
//! A long-lived server amortises the expensive part of answering a query
//! — decoding a store record and rehydrating its term pool into a
//! queryable contract — across every client that asks about the same
//! (NF, level). This module holds those decoded contracts in memory
//! under an LRU byte budget, plus a per-contract *query memo* so a
//! repeated identical query does not even touch the solver.
//!
//! Two coherence details matter:
//!
//! * **Store/cache LRU agreement.** The on-disk store ranks records for
//!   [`bolt_store::ContractStore::sweep`] by a last-used stamp that a
//!   `get` bumps — but a server cache hit never calls `get`, so a record
//!   hot in the server would look cold to the sweeper. Cache hits
//!   therefore record a *pending touch*; the server flushes the batch
//!   through [`bolt_store::ContractStore::touch`] every
//!   [`CacheConfig::flush_every`] hits (and on shutdown), keeping the
//!   sweeper's MRU order aligned with the server's without one stamp
//!   write per request.
//! * **Entry mutability.** [`bolt_core::NfContract::query`] needs `&mut`
//!   (class constraints intern into the contract's term pool), so each
//!   entry lives behind its own [`Mutex`]: concurrent queries to
//!   *different* contracts run in parallel; queries to the same contract
//!   serialise only with each other, never with the cache map.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use bolt_core::NfContract;
use bolt_solver::Solver;
use bolt_store::Fingerprint;
use dpdk_sim::StackLevel;
use nf_lib::registry::DsRegistry;

use crate::protocol::QueryReply;

/// Memo key of one query against one cached contract: metric index,
/// optional tag class, and the PCV binding (sorted by name, so flag
/// order does not defeat the memo).
pub type MemoKey = (u8, Option<String>, Vec<(String, u64)>);

/// One decoded, queryable contract pinned hot in the server.
pub struct CacheEntry {
    /// The NF descriptor's own name (e.g. `nat` for both allocator
    /// variants) — what query output renders.
    pub nf_name: &'static str,
    /// The stack level the contract covers.
    pub level: StackLevel,
    /// Whether the exploration came from the store (`warm` in rendered
    /// output) or was run fresh by this server (`explored`).
    pub from_store: bool,
    /// The registry the contract was generated against (PCV names).
    pub reg: DsRegistry,
    /// The contract itself.
    pub contract: NfContract,
    /// Solver for class-compatibility checks.
    pub solver: Solver,
    /// Answers already computed against this contract: a hit here is
    /// the zero-work path — no decode, no solver, no exploration.
    pub memo: HashMap<MemoKey, QueryReply>,
}

/// Cache tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// LRU byte budget over the *store size* of cached records (their
    /// on-disk bytes — the same unit `sweep --budget` uses). The
    /// most-recently-inserted entry is never evicted, so one oversized
    /// contract still serves.
    pub budget: u64,
    /// Flush pending last-used touches to disk after this many cache
    /// hits (1 = write-through; shutdown always flushes the remainder).
    pub flush_every: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            budget: 64 * 1024 * 1024,
            flush_every: 32,
        }
    }
}

struct Slot {
    entry: Arc<Mutex<CacheEntry>>,
    weight: u64,
    last_access: u64,
}

#[derive(Default)]
struct CacheInner {
    slots: HashMap<Fingerprint, Slot>,
    total_weight: u64,
    clock: u64,
    pending_touches: HashSet<Fingerprint>,
}

/// The shared in-memory contract cache (see the module docs).
pub struct ContractCache {
    config: CacheConfig,
    inner: Mutex<CacheInner>,
}

impl ContractCache {
    /// Empty cache under a configuration.
    pub fn new(config: CacheConfig) -> Self {
        ContractCache {
            config,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// The configuration the cache runs under.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Look up a hot contract. A hit bumps the entry's recency and
    /// records a pending on-disk touch (flushed in batches — see
    /// [`ContractCache::take_pending_touches`]).
    pub fn lookup(&self, key: Fingerprint) -> Option<Arc<Mutex<CacheEntry>>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let slot = inner.slots.get_mut(&key)?;
        slot.last_access = clock;
        let entry = Arc::clone(&slot.entry);
        inner.pending_touches.insert(key);
        Some(entry)
    }

    /// Look at a hot contract *without* bumping recency or recording a
    /// touch — the event loop's dispatch probe, which must not distort
    /// LRU order for requests that then take the full
    /// [`ContractCache::lookup`] path anyway.
    pub fn peek(&self, key: Fingerprint) -> Option<Arc<Mutex<CacheEntry>>> {
        let inner = self.inner.lock().expect("cache poisoned");
        inner.slots.get(&key).map(|s| Arc::clone(&s.entry))
    }

    /// Insert a freshly decoded contract under its store key and weight
    /// (on-disk record bytes). Evicts least-recently-used entries until
    /// the budget holds again — never the entry just inserted — and
    /// returns the handle plus the evicted keys (the caller counts
    /// them; in-flight queries against an evicted entry finish safely
    /// on their own `Arc`).
    pub fn insert(
        &self,
        key: Fingerprint,
        entry: CacheEntry,
        weight: u64,
    ) -> (Arc<Mutex<CacheEntry>>, Vec<Fingerprint>) {
        let entry = Arc::new(Mutex::new(entry));
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.slots.insert(
            key,
            Slot {
                entry: Arc::clone(&entry),
                weight,
                last_access: clock,
            },
        ) {
            inner.total_weight -= old.weight;
        }
        inner.total_weight += weight;
        let mut evicted = Vec::new();
        while inner.total_weight > self.config.budget && inner.slots.len() > 1 {
            let victim = inner
                .slots
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(k, s)| (s.last_access, *k))
                .map(|(k, _)| *k);
            let Some(v) = victim else { break };
            if let Some(slot) = inner.slots.remove(&v) {
                inner.total_weight -= slot.weight;
            }
            evicted.push(v);
        }
        (entry, evicted)
    }

    /// Drain the pending touch batch if it has reached
    /// [`CacheConfig::flush_every`] (or unconditionally with
    /// `force`). The caller writes the stamps through
    /// [`bolt_store::ContractStore::touch`].
    pub fn take_pending_touches(&self, force: bool) -> Vec<Fingerprint> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if !force && inner.pending_touches.len() < self.config.flush_every {
            return Vec::new();
        }
        let mut keys: Vec<Fingerprint> = inner.pending_touches.drain().collect();
        keys.sort();
        keys
    }

    /// Number of hot entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total weight (on-disk bytes) of the hot entries.
    pub fn weight(&self) -> u64 {
        self.inner.lock().expect("cache poisoned").total_weight
    }

    /// A hot entry's (weight, memoised-answer count), without bumping
    /// recency — provenance reporting, not a lookup.
    pub fn slot_info(&self, key: Fingerprint) -> Option<(u64, usize)> {
        let entry = {
            let inner = self.inner.lock().expect("cache poisoned");
            let slot = inner.slots.get(&key)?;
            (Arc::clone(&slot.entry), slot.weight)
        };
        let memo_len = entry.0.lock().expect("entry poisoned").memo.len();
        Some((entry.1, memo_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_expr::TermPool;

    fn entry(name: &'static str) -> CacheEntry {
        CacheEntry {
            nf_name: name,
            level: StackLevel::FullStack,
            from_store: true,
            reg: DsRegistry::new(),
            contract: NfContract {
                pool: TermPool::new(),
                paths: Vec::new(),
            },
            solver: Solver::default(),
            memo: HashMap::new(),
        }
    }

    #[test]
    fn lru_eviction_respects_the_budget_and_recency() {
        let cache = ContractCache::new(CacheConfig {
            budget: 100,
            flush_every: usize::MAX,
        });
        let (a, b, c) = (Fingerprint(1), Fingerprint(2), Fingerprint(3));
        assert!(cache.insert(a, entry("a"), 40).1.is_empty());
        assert!(cache.insert(b, entry("b"), 40).1.is_empty());
        // Touch a: b becomes the LRU victim.
        assert!(cache.lookup(a).is_some());
        let (_, evicted) = cache.insert(c, entry("c"), 40);
        assert_eq!(evicted, vec![b]);
        assert!(cache.lookup(a).is_some());
        assert!(cache.lookup(b).is_none());
        assert!(cache.lookup(c).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.weight(), 80);
    }

    #[test]
    fn peek_bumps_neither_recency_nor_touches() {
        let cache = ContractCache::new(CacheConfig {
            budget: 100,
            flush_every: 1,
        });
        let (a, b, c) = (Fingerprint(1), Fingerprint(2), Fingerprint(3));
        cache.insert(a, entry("a"), 40);
        cache.insert(b, entry("b"), 40);
        // A peek at `a` must not save it from eviction...
        assert!(cache.peek(a).is_some());
        let (_, evicted) = cache.insert(c, entry("c"), 40);
        assert_eq!(evicted, vec![a], "peek must not bump LRU recency");
        // ...and must not queue an on-disk touch (flush_every=1 means a
        // single lookup would).
        assert!(cache.take_pending_touches(true).is_empty());
        assert!(cache.peek(b).is_some());
        assert!(cache.take_pending_touches(true).is_empty());
        cache.lookup(b);
        assert_eq!(cache.take_pending_touches(true), vec![b]);
    }

    #[test]
    fn an_oversized_entry_still_serves() {
        let cache = ContractCache::new(CacheConfig {
            budget: 10,
            flush_every: usize::MAX,
        });
        let k = Fingerprint(9);
        let (_, evicted) = cache.insert(k, entry("big"), 1000);
        assert!(evicted.is_empty());
        assert!(cache.lookup(k).is_some());
    }

    #[test]
    fn reinserting_a_key_replaces_its_weight() {
        let cache = ContractCache::new(CacheConfig {
            budget: 1000,
            flush_every: usize::MAX,
        });
        let k = Fingerprint(5);
        cache.insert(k, entry("x"), 600);
        cache.insert(k, entry("x"), 200);
        assert_eq!(cache.weight(), 200);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn touches_batch_until_the_flush_threshold() {
        let cache = ContractCache::new(CacheConfig {
            budget: 1000,
            flush_every: 2,
        });
        let (a, b) = (Fingerprint(1), Fingerprint(2));
        cache.insert(a, entry("a"), 1);
        cache.insert(b, entry("b"), 1);
        cache.lookup(a);
        assert!(cache.take_pending_touches(false).is_empty(), "below batch");
        cache.lookup(b);
        let mut due = cache.take_pending_touches(false);
        due.sort();
        assert_eq!(due, vec![a, b]);
        // Drained: nothing pending, even forced.
        assert!(cache.take_pending_touches(true).is_empty());
        // Force flushes a partial batch (the shutdown path).
        cache.lookup(a);
        assert_eq!(cache.take_pending_touches(true), vec![a]);
    }
}
