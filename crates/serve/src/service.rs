//! Request handling: the store-backed query engine behind the socket
//! server (and behind the CLI's local commands, so local and remote
//! answers are rendered by the same code and stay byte-identical).
//!
//! [`ServeCore`] owns the open [`ContractStore`] and the hot-contract
//! [`ContractCache`]; every protocol request maps to one method here.
//! The cost ladder a query can land on, cheapest first:
//!
//! 1. **Memo hit** — this exact (NF, level, class, metric, PCVs) was
//!    answered before: return the stored reply. Zero explorations, zero
//!    solver requests, zero record decodes.
//! 2. **Cache hit** — the contract is hot but the question is new: one
//!    solver pass over the in-memory contract. Zero decodes.
//! 3. **Store hit** — decode the record, rehydrate the pool, generate
//!    the contract, admit it to the cache, then as (2).
//! 4. **Miss** — explore fresh (persisting the record), then as (3).
//!
//! Every rung is counted in [`ServeCore::stats_reply`], which is how the
//! protocol tests pin the "warm repeat does zero work" property.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use bolt_core::store::{level_from_tag, level_tag, store_key, RecordKind, StoreExt};
use bolt_core::{generate, ClassSpec, Exploration, InputClass, NetworkFunction};
use bolt_expr::PcvAssignment;
use bolt_nfs::nat::{AllocKind, NatConfig};
use bolt_nfs::{Bridge, ExampleRouter, Firewall, LoadBalancer, LpmRouter, Nat, StaticRouter};
use bolt_obs::{trace, Counter, Gauge, Histogram, Registry};
use bolt_solver::Solver;
use bolt_store::{ContractStore, Fingerprint};
use bolt_trace::Metric;
use dpdk_sim::StackLevel;

use crate::cache::{CacheConfig, CacheEntry, ContractCache, MemoKey};
use crate::protocol::{
    DiffRequest, MetricsReply, Opcode, QueryReply, QueryRequest, Request, Response, StatsReply,
    MAX_PIPELINE_DEPTH, PIPELINE_VERSION,
};

/// The NF dispatch vocabulary the server understands (the same names
/// `bolt_cli` accepts; `nat` is an alias for `nat-a`).
pub const NF_NAMES: [&str; 8] = [
    "bridge",
    "example_router",
    "firewall",
    "lb",
    "lpm_router",
    "nat-a",
    "nat-b",
    "static_router",
];

/// Dispatch a generic body over an NF named at runtime; unknown names
/// early-return `Err` with the CLI's exact wording.
macro_rules! with_nf {
    ($name:expr, $nf:ident => $body:block) => {
        match $name {
            "bridge" => {
                let $nf = Bridge::default();
                $body
            }
            "example_router" => {
                let $nf = ExampleRouter::default();
                $body
            }
            "firewall" => {
                let $nf = Firewall::default();
                $body
            }
            "lb" => {
                let $nf = LoadBalancer::default();
                $body
            }
            "lpm_router" => {
                let $nf = LpmRouter::default();
                $body
            }
            "nat" | "nat-a" => {
                let $nf = Nat::with(NatConfig::default(), AllocKind::A);
                $body
            }
            "nat-b" => {
                let $nf = Nat::with(NatConfig::default(), AllocKind::B);
                $body
            }
            "static_router" => {
                let $nf = StaticRouter::default();
                $body
            }
            other => {
                return Err(format!(
                    "unknown NF {other:?}; known: {}",
                    NF_NAMES.join(", ")
                ))
            }
        }
    };
}

/// Human name of a stack-level tag (matches the CLI's rendering).
pub fn level_name(tag: u8) -> &'static str {
    match tag {
        0 => "nf-only",
        1 => "full-stack",
        _ => "?",
    }
}

/// Parse a `NF[:LEVEL]` side spec (level defaults to full-stack).
fn parse_side(s: &str) -> Result<(&str, StackLevel), String> {
    match s.split_once(':') {
        Some((n, l)) => match l {
            "nf-only" => Ok((n, StackLevel::NfOnly)),
            "full-stack" => Ok((n, StackLevel::FullStack)),
            _ => Err(format!("bad level {l:?} (nf-only | full-stack)")),
        },
        None => Ok((s, StackLevel::FullStack)),
    }
}

fn parse_metric(tag: u8) -> Result<Metric, String> {
    Metric::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| format!("bad metric tag {tag} (0..={})", Metric::ALL.len() - 1))
}

fn parse_level(tag: u8) -> Result<StackLevel, String> {
    level_from_tag(tag).ok_or_else(|| format!("bad level tag {tag} (0 = nf-only, 1 = full-stack)"))
}

fn class_of(tag: &Option<String>) -> InputClass {
    match tag {
        Some(t) => InputClass::new(
            format!("tag:{t}"),
            ClassSpec::Tag(bolt_store::intern_tag(t)),
        ),
        None => InputClass::unconstrained(),
    }
}

/// Wire names of the request phases, indexed by [`Phase`] — each is a
/// `serve.phase.<name>` histogram in the core's registry.
pub const PHASE_NAMES: [&str; 3] = ["read", "handle", "write"];

/// Where one request's wall time went: reading the frame off the
/// socket, computing the answer, or writing the reply. Indexes
/// [`ServeCore::phase_histogram`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// First byte of a frame arriving → frame complete.
    Read = 0,
    /// Frame decoded → reply computed (injected stalls included, to
    /// match the request-deadline clock).
    Handle = 1,
    /// Reply encoded → frame flushed to the socket.
    Write = 2,
}

/// Where the socket server should run one request (see
/// [`ServeCore::dispatch`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dispatch {
    /// Bounded work: run it inline on the event loop.
    Inline,
    /// Potentially blocking work: hand it to the handler pool.
    Offload,
}

/// Legacy `stats`-reply counter names, in their frozen wire order. The
/// first 17 entries of every [`StatsReply`] are exactly these, in this
/// order — consumers that index by position keep working; new counters
/// are only ever *appended* (see [`ServeCore::stats_reply`]).
pub const LEGACY_STATS_NAMES: [&str; 17] = [
    "requests",
    "errors",
    "connections",
    "protocol_errors",
    "queries",
    "memo_hits",
    "memo_misses",
    "cache_hits",
    "cache_misses",
    "contract_decodes",
    "explorations",
    "solver_queries",
    "evictions",
    "touches_flushed",
    "busy_rejects",
    "idle_closed",
    "deadlines_exceeded",
];

/// Monotonic request/work counters — `Arc` handles into the core's
/// [`Registry`] under `serve.*` names, minted once so the hot path never
/// touches the registry lock. The legacy short names remain the `stats`
/// reply's wire vocabulary (see [`LEGACY_STATS_NAMES`]).
struct Counters {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    connections: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    queries: Arc<Counter>,
    memo_hits: Arc<Counter>,
    memo_misses: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    contract_decodes: Arc<Counter>,
    explorations: Arc<Counter>,
    solver_queries: Arc<Counter>,
    evictions: Arc<Counter>,
    touches_flushed: Arc<Counter>,
    busy_rejects: Arc<Counter>,
    idle_closed: Arc<Counter>,
    deadlines_exceeded: Arc<Counter>,
}

impl Counters {
    fn new(reg: &Registry) -> Self {
        Counters {
            requests: reg.counter("serve.requests"),
            errors: reg.counter("serve.errors"),
            connections: reg.counter("serve.connections"),
            protocol_errors: reg.counter("serve.protocol_errors"),
            queries: reg.counter("serve.queries"),
            memo_hits: reg.counter("serve.memo_hits"),
            memo_misses: reg.counter("serve.memo_misses"),
            cache_hits: reg.counter("serve.cache_hits"),
            cache_misses: reg.counter("serve.cache_misses"),
            contract_decodes: reg.counter("serve.contract_decodes"),
            explorations: reg.counter("serve.explorations"),
            solver_queries: reg.counter("serve.solver_queries"),
            evictions: reg.counter("serve.evictions"),
            touches_flushed: reg.counter("serve.touches_flushed"),
            busy_rejects: reg.counter("serve.busy_rejects"),
            idle_closed: reg.counter("serve.idle_closed"),
            deadlines_exceeded: reg.counter("serve.deadlines_exceeded"),
        }
    }

    fn snapshot(&self) -> Vec<(String, u64)> {
        LEGACY_STATS_NAMES
            .iter()
            .zip([
                &self.requests,
                &self.errors,
                &self.connections,
                &self.protocol_errors,
                &self.queries,
                &self.memo_hits,
                &self.memo_misses,
                &self.cache_hits,
                &self.cache_misses,
                &self.contract_decodes,
                &self.explorations,
                &self.solver_queries,
                &self.evictions,
                &self.touches_flushed,
                &self.busy_rejects,
                &self.idle_closed,
                &self.deadlines_exceeded,
            ])
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect()
    }
}

/// The query engine: one open store, one hot-contract cache, counters.
/// Shared across connection threads behind an `Arc`; all methods take
/// `&self`.
pub struct ServeCore {
    store: ContractStore,
    cache: ContractCache,
    counters: Counters,
    metrics: Arc<Registry>,
    /// Per-phase request-latency histograms, indexed by [`Phase`]
    /// (pre-minted: the request path must not take the registry lock).
    phase_hists: [Arc<Histogram>; PHASE_NAMES.len()],
    /// Per-opcode request-latency histograms, indexed `opcode as u8 - 1`
    /// (pre-minted: the request path must not take the registry lock).
    req_hists: [Arc<Histogram>; Opcode::ALL.len()],
    active_connections: Arc<Gauge>,
}

impl ServeCore {
    /// Engine over a store with default cache tuning.
    pub fn new(store: ContractStore) -> Self {
        Self::with_config(store, CacheConfig::default())
    }

    /// Engine over a store with explicit cache tuning. The core mints its
    /// own [`Registry`] and rebinds the store's series into it, so one
    /// snapshot covers the whole request path (serve counters and phase
    /// latencies, store get/put/decode, explorer/solver work) — and two
    /// cores in one process keep fully isolated numbers.
    pub fn with_config(store: ContractStore, config: CacheConfig) -> Self {
        let metrics = Arc::new(Registry::new());
        let store = store.with_metrics(Arc::clone(&metrics));
        let counters = Counters::new(&metrics);
        let phase_hists =
            std::array::from_fn(|i| metrics.histogram(&format!("serve.phase.{}", PHASE_NAMES[i])));
        let req_hists = std::array::from_fn(|i| {
            metrics.histogram(&format!("serve.req.{}", Opcode::ALL[i].name()))
        });
        let active_connections = metrics.gauge("serve.active_connections");
        ServeCore {
            store,
            cache: ContractCache::new(config),
            counters,
            metrics,
            phase_hists,
            req_hists,
            active_connections,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &ContractStore {
        &self.store
    }

    /// The core's metrics registry (shared with its store).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// The full observability snapshot (the `metrics` reply body).
    pub fn metrics_reply(&self) -> MetricsReply {
        MetricsReply::from_snapshot(&self.metrics.snapshot())
    }

    /// The request-latency histogram for one opcode.
    pub fn request_histogram(&self, op: Opcode) -> &Arc<Histogram> {
        &self.req_hists[op as u8 as usize - 1]
    }

    /// The latency histogram for one request phase.
    pub fn phase_histogram(&self, phase: Phase) -> &Arc<Histogram> {
        &self.phase_hists[phase as usize]
    }

    /// The live-connection gauge (owned here so it appears in the
    /// snapshot; the socket server moves it).
    pub fn connection_gauge(&self) -> &Arc<Gauge> {
        &self.active_connections
    }

    /// Counter snapshot (the `stats` reply body): the frozen legacy
    /// 17-name prefix (see [`LEGACY_STATS_NAMES`]), then appended
    /// counters — the encoding is schema-free (name, value) pairs, so
    /// appending is wire-compatible with old clients.
    pub fn stats_reply(&self) -> StatsReply {
        let mut counters = self.counters.snapshot();
        counters.push(("store_hits".to_string(), self.store.hits()));
        counters.push(("store_misses".to_string(), self.store.misses()));
        counters.push((
            "active_connections".to_string(),
            self.active_connections.get().max(0) as u64,
        ));
        counters.push(("trace_events".to_string(), trace::ambient_events()));
        StatsReply { counters }
    }

    /// Record an accepted connection (called by the socket server);
    /// returns the connection's ordinal (1-based) for lifecycle tracing.
    pub fn note_connection(&self) -> u64 {
        self.counters.connections.inc()
    }

    /// Record a frame/decode-level protocol violation (called by the
    /// socket server).
    pub fn note_protocol_error(&self) {
        self.counters.protocol_errors.inc();
    }

    /// Record a connection turned away at the connection cap (called by
    /// the socket server).
    pub fn note_busy_reject(&self) {
        self.counters.busy_rejects.inc();
    }

    /// Record a connection reaped by the idle timeout (called by the
    /// socket server).
    pub fn note_idle_close(&self) {
        self.counters.idle_closed.inc();
    }

    /// Record a request whose handling blew the configured deadline
    /// (called by the socket server).
    pub fn note_deadline_exceeded(&self) {
        self.counters.deadlines_exceeded.inc();
    }

    /// Write every pending cache-hit touch to the store's last-used
    /// stamps, unconditionally (the shutdown path; the batched path
    /// runs automatically on cache hits). Returns how many records were
    /// stamped.
    pub fn flush_touches(&self) -> u64 {
        self.flush(true)
    }

    /// Flush the pending cache-hit touch batch to the store's last-used
    /// stamps if it has reached [`CacheConfig::flush_every`] — the
    /// socket server calls this from its event loop between poll
    /// wakeups, so the request path itself never pays a stamp write.
    /// Returns how many records were stamped (0 below the threshold).
    pub fn drain_touches(&self) -> u64 {
        self.flush(false)
    }

    fn flush(&self, force: bool) -> u64 {
        let mut stamped = 0;
        for key in self.cache.take_pending_touches(force) {
            if let Ok(true) = self.store.touch(key, RecordKind::Exploration) {
                stamped += 1;
                self.counters.touches_flushed.inc();
            }
        }
        stamped
    }

    /// Answer one decoded request. Service failures become
    /// [`Response::Error`]; this never panics on untrusted input.
    pub fn handle(&self, req: &Request) -> Response {
        self.counters.requests.inc();
        let result = match req {
            Request::Ping => Ok(Response::Pong {
                version: env!("CARGO_PKG_VERSION").to_string(),
            }),
            Request::Query(q) => self.query(q).map(Response::Query),
            Request::Diff(d) => self.diff(d).map(|text| Response::Diff { text }),
            Request::List => self
                .list()
                .map(|(entries, text)| Response::List { entries, text }),
            Request::Provenance { nf, level } => self
                .provenance(nf, *level)
                .map(|text| Response::Provenance { text }),
            Request::Stats => Ok(Response::Stats(self.stats_reply())),
            Request::Metrics => Ok(Response::Metrics(self.metrics_reply())),
            Request::Shutdown => Ok(Response::ShuttingDown),
            // The socket server intercepts Hello (negotiation is
            // connection state, and it knows its own depth cap); this
            // arm answers in-process callers with the protocol-level
            // defaults.
            Request::Hello { max_version, depth } => Ok(Response::HelloAck {
                version: (*max_version).min(PIPELINE_VERSION),
                depth: (*depth).clamp(1, MAX_PIPELINE_DEPTH),
            }),
        };
        result.unwrap_or_else(|message| {
            self.counters.errors.inc();
            Response::Error { message }
        })
    }

    /// Classify one request for the socket server's event loop:
    /// [`Dispatch::Inline`] work is bounded (counter snapshots, memoised
    /// answers — never the solver, never the disk) and may run on the
    /// loop itself; [`Dispatch::Offload`] work can block arbitrarily
    /// (exploration, record decode, store I/O) and must go to the
    /// handler pool so the loop keeps breathing.
    ///
    /// This is advisory: [`ServeCore::handle`] computes the same answer
    /// either way. A race (the memo entry evicted between classification
    /// and handling) costs latency on one request, never correctness.
    pub fn dispatch(&self, req: &Request) -> Dispatch {
        match req {
            Request::Ping
            | Request::Stats
            | Request::Metrics
            | Request::Shutdown
            | Request::Hello { .. } => Dispatch::Inline,
            Request::Query(q) if self.memo_ready(q) => Dispatch::Inline,
            Request::Query(_) | Request::Diff(_) | Request::List | Request::Provenance { .. } => {
                Dispatch::Offload
            }
        }
    }

    /// Whether a query would be answered straight from a hot contract's
    /// memo: the contract is cached, its lock is free right now, and the
    /// exact (metric, class, PCV binding) answer is memoised. Uses
    /// [`ContractCache::peek`] so probing does not perturb recency — the
    /// eventual [`ServeCore::handle`] records the real hit.
    fn memo_ready(&self, q: &QueryRequest) -> bool {
        let Ok(level) = parse_level(q.level) else {
            return false;
        };
        let Ok(key) = self.key_of(&q.nf, level) else {
            return false;
        };
        let Some(entry) = self.cache.peek(key) else {
            return false;
        };
        let Ok(e) = entry.try_lock() else {
            return false;
        };
        let mut pcvs = q.pcvs.clone();
        pcvs.sort_by(|a, b| a.0.cmp(&b.0));
        e.memo.contains_key(&(q.metric, q.tag.clone(), pcvs))
    }

    /// Get the hot contract for (NF name, level): cache hit, store
    /// decode, or fresh exploration — admitting to the cache on the
    /// latter two.
    fn load(
        &self,
        name: &str,
        level: StackLevel,
    ) -> Result<(Fingerprint, Arc<Mutex<CacheEntry>>), String> {
        with_nf!(name, nf => {
            let key = store_key(&nf, level);
            if let Some(entry) = self.cache.lookup(key) {
                self.counters.cache_hits.inc();
                return Ok((key, entry));
            }
            self.counters.cache_misses.inc();
            let ex = self.store.get_or_explore(&nf, level);
            if ex.cached {
                self.counters.contract_decodes.inc();
            } else {
                self.counters.explorations.inc();
            }
            let nf_name = NetworkFunction::name(&nf);
            let Exploration {
                reg,
                result,
                cached,
                ..
            } = ex;
            let contract = generate(&reg, result);
            // Weight = the record's on-disk bytes (header + payload):
            // the same unit `sweep --budget` ranks, so the cache budget
            // and the store budget talk about the same thing. A record
            // the store failed to persist is estimated from shape.
            let weight = self
                .store
                .peek(key, RecordKind::Exploration)
                .map(|h| h.header_len + h.payload_len)
                .unwrap_or_else(|| 1024 + 512 * contract.paths.len() as u64);
            let entry = CacheEntry {
                nf_name,
                level,
                from_store: cached,
                reg,
                contract,
                solver: Solver::default(),
                memo: Default::default(),
            };
            let (entry, evicted) = self.cache.insert(key, entry, weight);
            for victim in &evicted {
                self.counters.evictions.inc();
                if trace::enabled() {
                    trace::emit(
                        "serve.cache.evict",
                        &[("fp", format!("{victim}").as_str().into())],
                    );
                }
            }
            Ok((key, entry))
        })
    }

    /// Answer a query. The rendered text is byte-identical to what
    /// `bolt_cli query` prints locally against the same store state.
    pub fn query(&self, q: &QueryRequest) -> Result<QueryReply, String> {
        let level = parse_level(q.level)?;
        let metric = parse_metric(q.metric)?;
        self.counters.queries.inc();
        let (_, entry) = self.load(&q.nf, level)?;
        let mut pcvs = q.pcvs.clone();
        pcvs.sort_by(|a, b| a.0.cmp(&b.0));
        let memo_key: MemoKey = (q.metric, q.tag.clone(), pcvs);
        let mut e = entry.lock().expect("entry poisoned");
        if let Some(reply) = e.memo.get(&memo_key) {
            self.counters.memo_hits.inc();
            return Ok(reply.clone());
        }
        self.counters.memo_misses.inc();
        let mut env = PcvAssignment::new();
        for (name, v) in &q.pcvs {
            match e.reg.pcvs.lookup(name) {
                Some(id) => {
                    env.set(id, *v);
                }
                None => {
                    let known: Vec<&str> = e.reg.pcvs.iter().map(|(_, n)| n).collect();
                    return Err(format!(
                        "unknown PCV {name:?}; this contract knows: {}",
                        known.join(", ")
                    ));
                }
            }
        }
        let class = class_of(&q.tag);
        self.counters.solver_queries.inc();
        let source = if e.from_store { "warm" } else { "explored" };
        let CacheEntry {
            nf_name,
            reg,
            contract,
            solver,
            memo,
            ..
        } = &mut *e;
        let reply = match contract.query(solver, &class, metric, &env) {
            None => QueryReply {
                found: false,
                path_index: 0,
                value: 0,
                text: format!("no path of {nf_name} is compatible with {}\n", class.name),
            },
            Some(r) => {
                let path = &contract.paths[r.path_index];
                let text = format!(
                    "{nf_name} @ {} ({source}), class {}, metric {metric}:\n\
                     \x20 worst path : #{} tags {:?}\n\
                     \x20 expression : {}\n\
                     \x20 prediction : {} {metric}\n",
                    level_name(level_tag(level)),
                    class.name,
                    r.path_index,
                    path.tags,
                    r.expr.display(&reg.pcvs),
                    r.value,
                );
                QueryReply {
                    found: true,
                    path_index: r.path_index as u64,
                    value: r.value,
                    text,
                }
            }
        };
        memo.insert(memo_key, reply.clone());
        Ok(reply)
    }

    /// Compare two stored contracts; rendering matches `bolt_cli diff`.
    pub fn diff(&self, d: &DiffRequest) -> Result<String, String> {
        let metric = parse_metric(d.metric)?;
        let (name_a, level_a) = parse_side(&d.a)?;
        let (name_b, level_b) = parse_side(&d.b)?;
        let (ka, ea) = self.load(name_a, level_a)?;
        let (kb, eb) = self.load(name_b, level_b)?;
        // Like the CLI's diff, make sure a contract *record* backs each
        // side on disk (diff is about stored artifacts, not transient
        // state); the cache already holds the generated contract, so
        // this is encode+write only, and only when absent.
        for (k, e, name, level) in [(ka, &ea, name_a, level_a), (kb, &eb, name_b, level_b)] {
            if self.store.peek(k, RecordKind::Contract).is_none() {
                let g = e.lock().expect("entry poisoned");
                self.store
                    .put_contract(k, name, level, &g.contract)
                    .map_err(|err| format!("cannot write contract record: {err}"))?;
            }
        }
        let env = PcvAssignment::new();
        let measure = |e: &CacheEntry| {
            let worst = e
                .contract
                .paths
                .iter()
                .map(|p| p.expr(metric).eval(&env))
                .max()
                .unwrap_or(0);
            let tags: BTreeSet<&'static str> = e
                .contract
                .paths
                .iter()
                .flat_map(|p| p.tags.iter().copied())
                .collect();
            (e.contract.paths.len(), worst, tags)
        };
        // Same key ⇒ same entry ⇒ one lock; different keys lock in key
        // order so concurrent diffs cannot deadlock.
        let ((na, wa, ta), (nb, wb, tb)) = if ka == kb {
            let g = ea.lock().expect("entry poisoned");
            let m = measure(&g);
            (m.clone(), m)
        } else if ka < kb {
            let ga = ea.lock().expect("entry poisoned");
            let gb = eb.lock().expect("entry poisoned");
            (measure(&ga), measure(&gb))
        } else {
            let gb = eb.lock().expect("entry poisoned");
            let ga = ea.lock().expect("entry poisoned");
            (measure(&ga), measure(&gb))
        };
        let (sa, sb) = (&d.a, &d.b);
        let mut out = format!("diff {sa} vs {sb} ({metric}, PCVs all 0):\n");
        out.push_str(&format!("  paths      : {na} vs {nb}\n"));
        out.push_str(&format!(
            "  worst case : {wa} vs {wb} ({:+})\n",
            wb as i128 - wa as i128
        ));
        let only_a: Vec<&str> = ta.difference(&tb).copied().collect();
        let only_b: Vec<&str> = tb.difference(&ta).copied().collect();
        if !only_a.is_empty() {
            out.push_str(&format!("  tags only in {sa}: {only_a:?}\n"));
        }
        if !only_b.is_empty() {
            out.push_str(&format!("  tags only in {sb}: {only_b:?}\n"));
        }
        if only_a.is_empty() && only_b.is_empty() {
            out.push_str("  tag vocabularies agree\n");
        }
        Ok(out)
    }

    /// Enumerate the store — a pure header pass (no payload decodes);
    /// rendering matches `bolt_cli list`.
    pub fn list(&self) -> Result<(u64, String), String> {
        let entries = self
            .store
            .list()
            .map_err(|e| format!("cannot list store: {e}"))?;
        if entries.is_empty() {
            return Ok((0, format!("store at {:?} is empty\n", self.store.dir())));
        }
        let mut out = format!(
            "{:>14} {:>10} {:>11} {:>6} {:>9}  key\n",
            "nf", "level", "kind", "paths", "bytes"
        );
        let n = entries.len() as u64;
        for e in entries {
            let kind = match e.kind {
                RecordKind::Exploration => "exploration",
                RecordKind::Contract => "contract",
                RecordKind::Composed => "composed",
                RecordKind::Plan => "plan",
            };
            out.push_str(&format!(
                "{:>14} {:>10} {kind:>11} {:>6} {:>9}  {}\n",
                e.nf_name,
                level_name(e.level),
                e.n_paths,
                e.payload_len,
                e.fingerprint
            ));
        }
        Ok((n, out))
    }

    /// Where an (NF, level)'s records stand: the store key, each on-disk
    /// record's header metadata, and the server cache's view.
    pub fn provenance(&self, name: &str, level: u8) -> Result<String, String> {
        let level = parse_level(level)?;
        let key = self.key_of(name, level)?;
        let mut out = format!("{name} @ {}:\n", level_name(level_tag(level)));
        out.push_str(&format!("  key         : {key}\n"));
        for (label, kind) in [
            ("exploration", RecordKind::Exploration),
            ("contract", RecordKind::Contract),
        ] {
            match self.store.peek(key, kind) {
                Some(h) => out.push_str(&format!(
                    "  {label:<11} : {} paths, {} bytes on disk, last-used stamp {}\n",
                    h.n_paths,
                    h.header_len + h.payload_len,
                    h.last_used
                )),
                None => out.push_str(&format!("  {label:<11} : absent\n")),
            }
        }
        match self.cache.slot_info(key) {
            Some((weight, memo)) => out.push_str(&format!(
                "  cache       : hot ({weight} bytes, {memo} memoised answer(s))\n"
            )),
            None => out.push_str("  cache       : cold\n"),
        }
        Ok(out)
    }

    /// The store key of an (NF name, level) pair.
    pub fn key_of(&self, name: &str, level: StackLevel) -> Result<Fingerprint, String> {
        with_nf!(name, nf => { Ok(store_key(&nf, level)) })
    }
}
