//! Property-based tests: every Sat verdict must carry a genuine witness,
//! and crafted contradictions must never come back Sat.

use bolt_expr::{TermPool, Width};
use bolt_solver::{SolveResult, Solver};
use proptest::prelude::*;

proptest! {
    /// Random conjunctions of interval constraints over two symbols:
    /// the solver's verdict must agree with a brute-force check over the
    /// (small) domain.
    #[test]
    fn interval_conjunctions_decided_correctly(
        lo1 in 0u64..200, hi1 in 0u64..200,
        lo2 in 0u64..200, hi2 in 0u64..200,
        sum_max in 0u64..64,
    ) {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W8);
        let y = p.fresh_sym("y", Width::W8);
        let mut cs = Vec::new();
        let l1 = p.constant(lo1.min(255), Width::W8);
        let h1 = p.constant(hi1.min(255), Width::W8);
        let l2 = p.constant(lo2.min(255), Width::W8);
        let h2 = p.constant(hi2.min(255), Width::W8);
        cs.push(p.ule(l1, x));
        cs.push(p.ule(x, h1));
        cs.push(p.ule(l2, y));
        cs.push(p.ule(y, h2));
        // A cross-symbol constraint the propagator cannot absorb: x + y
        // must wrap-sum below sum_max (8-bit add).
        let sum = p.add(x, y);
        let sm = p.constant(sum_max, Width::W8);
        cs.push(p.ult(sum, sm));
        let verdict = Solver::default().check(&p, &cs);
        // Brute force over the byte domain.
        let mut sat = false;
        'outer: for xv in lo1.min(255)..=hi1.min(255) {
            for yv in lo2.min(255)..=hi2.min(255) {
                if (xv + yv) & 0xFF < sum_max {
                    sat = true;
                    break 'outer;
                }
            }
        }
        match verdict {
            SolveResult::Sat(w) => {
                prop_assert!(sat, "solver Sat but brute force says Unsat");
                prop_assert!(w.satisfies(&p, &cs), "witness does not satisfy");
            }
            SolveResult::Unsat => prop_assert!(!sat, "solver Unsat but a model exists"),
            SolveResult::Unknown => {
                // Unknown is always sound; it just costs precision.
            }
        }
    }

    /// Equality chains bind transitively and witnesses respect them.
    #[test]
    fn equality_chains(v in 0u64..0xFFFF, n in 2usize..6) {
        let mut p = TermPool::new();
        let syms: Vec<_> = (0..n).map(|i| p.fresh_sym(format!("s{i}"), Width::W16)).collect();
        let mut cs = Vec::new();
        for w in syms.windows(2) {
            cs.push(p.eq(w[0], w[1]));
        }
        let c = p.constant(v, Width::W16);
        cs.push(p.eq(syms[n - 1], c));
        match Solver::default().check(&p, &cs) {
            SolveResult::Sat(w) => {
                for i in 0..n as u32 {
                    prop_assert_eq!(w.get(i), v & 0xFFFF);
                }
            }
            other => prop_assert!(false, "expected Sat, got {:?}", other),
        }
    }

    /// A pinned symbol with a contradicting disequality is Unsat.
    #[test]
    fn pinned_disequality_unsat(v in 0u64..0xFFFF) {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W16);
        let c = p.constant(v, Width::W16);
        let eq = p.eq(x, c);
        let ne = p.ne(x, c);
        prop_assert_eq!(Solver::default().check(&p, &[eq, ne]), SolveResult::Unsat);
    }
}
