//! Property-based tests: every Sat verdict must carry a genuine witness,
//! crafted contradictions must never come back Sat, and the incremental
//! `SolverCtx` push/pop path must classify exactly like batch `check()`.

use bolt_expr::{TermPool, TermRef, Width};
use bolt_solver::{SolveResult, Solver, SolverCache, SolverCtx};
use proptest::prelude::*;

/// Build a random conjunction over three 8-bit symbols from a compact
/// op encoding, mixing absorbable comparisons, negations, cross-symbol
/// links, and residual-shaped arithmetic atoms.
fn random_conjunction(p: &mut TermPool, spec: &[(u8, u8, u8)]) -> Vec<TermRef> {
    let syms = [
        p.fresh_sym("x", Width::W8),
        p.fresh_sym("y", Width::W8),
        p.fresh_sym("z", Width::W8),
    ];
    let mut cs = Vec::new();
    for &(op, s, v) in spec {
        let a = syms[(s % 3) as usize];
        let b = syms[((s / 3) % 3) as usize];
        let k = p.constant(v as u64, Width::W8);
        let atom = match op % 10 {
            0 => p.eq(a, k),
            1 => p.ne(a, k),
            2 => p.ult(a, k),
            3 => p.ule(k, a),
            4 => p.eq(a, b),
            5 => {
                let lt = p.ult(a, k);
                p.not(lt)
            }
            6 => {
                // Residual shape: a + b == v.
                let sum = p.add(a, b);
                p.eq(sum, k)
            }
            7 => {
                let c1 = p.eq(a, k);
                let c2 = p.ne(b, k);
                p.and(c1, c2)
            }
            8 => {
                // Width adapter: zext(sym) == wide constant. The constant
                // sometimes exceeds the 8-bit range, making the equation
                // unsatisfiable (repair must not fake a model).
                let z = p.zext(a, Width::W16);
                let wide = p.constant((v as u64) * 13 % 300, Width::W16);
                p.eq(z, wide)
            }
            _ => {
                // Width adapter: trunc(sym) == low bit.
                let t = p.trunc(a, Width::W1);
                let bit = p.constant(v as u64 & 1, Width::W1);
                p.eq(bit, t)
            }
        };
        // Constant-folded atoms (e.g. x == x) are legal constraints too.
        cs.push(atom);
    }
    cs
}

proptest! {
    /// Random conjunctions of interval constraints over two symbols:
    /// the solver's verdict must agree with a brute-force check over the
    /// (small) domain.
    #[test]
    fn interval_conjunctions_decided_correctly(
        lo1 in 0u64..200, hi1 in 0u64..200,
        lo2 in 0u64..200, hi2 in 0u64..200,
        sum_max in 0u64..64,
    ) {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W8);
        let y = p.fresh_sym("y", Width::W8);
        let mut cs = Vec::new();
        let l1 = p.constant(lo1.min(255), Width::W8);
        let h1 = p.constant(hi1.min(255), Width::W8);
        let l2 = p.constant(lo2.min(255), Width::W8);
        let h2 = p.constant(hi2.min(255), Width::W8);
        cs.push(p.ule(l1, x));
        cs.push(p.ule(x, h1));
        cs.push(p.ule(l2, y));
        cs.push(p.ule(y, h2));
        // A cross-symbol constraint the propagator cannot absorb: x + y
        // must wrap-sum below sum_max (8-bit add).
        let sum = p.add(x, y);
        let sm = p.constant(sum_max, Width::W8);
        cs.push(p.ult(sum, sm));
        let verdict = Solver::default().check(&p, &cs);
        // Brute force over the byte domain.
        let mut sat = false;
        'outer: for xv in lo1.min(255)..=hi1.min(255) {
            for yv in lo2.min(255)..=hi2.min(255) {
                if (xv + yv) & 0xFF < sum_max {
                    sat = true;
                    break 'outer;
                }
            }
        }
        match verdict {
            SolveResult::Sat(w) => {
                prop_assert!(sat, "solver Sat but brute force says Unsat");
                prop_assert!(w.satisfies(&p, &cs), "witness does not satisfy");
            }
            SolveResult::Unsat => prop_assert!(!sat, "solver Unsat but a model exists"),
            SolveResult::Unknown => {
                // Unknown is always sound; it just costs precision.
            }
        }
    }

    /// Equality chains bind transitively and witnesses respect them.
    #[test]
    fn equality_chains(v in 0u64..0xFFFF, n in 2usize..6) {
        let mut p = TermPool::new();
        let syms: Vec<_> = (0..n).map(|i| p.fresh_sym(format!("s{i}"), Width::W16)).collect();
        let mut cs = Vec::new();
        for w in syms.windows(2) {
            cs.push(p.eq(w[0], w[1]));
        }
        let c = p.constant(v, Width::W16);
        cs.push(p.eq(syms[n - 1], c));
        match Solver::default().check(&p, &cs) {
            SolveResult::Sat(w) => {
                for i in 0..n as u32 {
                    prop_assert_eq!(w.get(i), v & 0xFFFF);
                }
            }
            other => prop_assert!(false, "expected Sat, got {:?}", other),
        }
    }

    /// A pinned symbol with a contradicting disequality is Unsat.
    #[test]
    fn pinned_disequality_unsat(v in 0u64..0xFFFF) {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W16);
        let c = p.constant(v, Width::W16);
        let eq = p.eq(x, c);
        let ne = p.ne(x, c);
        prop_assert_eq!(Solver::default().check(&p, &[eq, ne]), SolveResult::Unsat);
    }

    /// The incremental context, fed the same conjunction constraint by
    /// constraint, must return the *bit-identical* result of the batch
    /// decision procedure — same class, same witness.
    #[test]
    fn incremental_check_equals_batch(
        spec in proptest::collection::vec((0u8..8, 0u8..9, 0u8..20), 1..10),
    ) {
        let mut p = TermPool::new();
        let cs = random_conjunction(&mut p, &spec);
        let s = Solver::default();
        let batch = s.check(&p, &cs);
        if let SolveResult::Sat(w) = &batch {
            prop_assert!(w.satisfies(&p, &cs), "batch witness must verify");
        }
        let mut ctx = SolverCtx::new(&s);
        for &c in &cs {
            ctx.assert_term(&p, c);
        }
        prop_assert_eq!(ctx.check(&p), batch);
    }

    /// A push/pop probe must classify `prefix + [atom]` exactly as the
    /// batch feasibility check does, every `Sat` witness en route must
    /// verify, and popping must fully restore the prefix state.
    #[test]
    fn probe_equals_batch_on_extension(
        spec in proptest::collection::vec((0u8..8, 0u8..9, 0u8..20), 1..8),
        probe_spec in (0u8..8, 0u8..9, 0u8..20),
    ) {
        let mut p = TermPool::new();
        let mut cs = random_conjunction(&mut p, &spec);
        let atom = random_conjunction(&mut p, &[probe_spec]).pop().unwrap();
        let s = Solver::default();
        let mut cache = SolverCache::new();
        let mut ctx = SolverCtx::new(&s);
        for &c in &cs {
            ctx.assert_term(&p, c);
        }
        let mut extended = cs.clone();
        extended.push(atom);
        // Probe twice: the second answer comes from the caches and must
        // agree with the first (and with batch).
        let batch_ext = s.is_feasible(&p, &extended);
        prop_assert_eq!(ctx.probe_feasible(&p, &mut cache, atom), batch_ext);
        prop_assert_eq!(ctx.probe_feasible(&p, &mut cache, atom), batch_ext);
        prop_assert_eq!(ctx.depth(), 0);
        prop_assert_eq!(ctx.constraints(), cs.as_slice());
        // The popped context still decides the prefix exactly like batch.
        prop_assert_eq!(ctx.check(&p), s.check(&p, &cs));
        // And the model it may have installed is genuine.
        if let Some(m) = ctx.model() {
            prop_assert!(m.satisfies(&p, &cs), "installed model must verify");
        }
        // Committing the atom and re-checking matches batch on the
        // extended list as well.
        ctx.assert_term(&p, atom);
        cs.push(atom);
        prop_assert_eq!(ctx.check(&p), s.check(&p, &cs));
    }

    /// Conjunctions including width-adapter equations (`eq(zext(sym), k)`
    /// / `eq(trunc(sym), k)` — op codes 8/9): the incremental context,
    /// whose model-repair path now handles these shapes, must stay
    /// bit-identical to batch `check()` across assert/probe.
    #[test]
    fn incremental_matches_batch_with_width_adapters(
        spec in proptest::collection::vec((0u8..10, 0u8..9, 0u8..20), 1..10),
        probe_spec in (8u8..10, 0u8..9, 0u8..20),
    ) {
        let mut p = TermPool::new();
        let cs = random_conjunction(&mut p, &spec);
        let atom = random_conjunction(&mut p, &[probe_spec]).pop().unwrap();
        let s = Solver::default();
        let mut cache = SolverCache::new();
        let mut ctx = SolverCtx::new(&s);
        for &c in &cs {
            ctx.assert_term(&p, c);
            // Any model the repair keeps alive must be genuine.
            if let Some(m) = ctx.model() {
                prop_assert!(m.satisfies(&p, ctx.constraints()),
                    "repaired model must verify");
            }
        }
        prop_assert_eq!(ctx.check(&p), s.check(&p, &cs));
        let mut extended = cs.clone();
        extended.push(atom);
        prop_assert_eq!(
            ctx.probe_feasible(&p, &mut cache, atom),
            s.is_feasible(&p, &extended)
        );
    }

    /// One-sided width-adapter equations over *fresh* symbols — exactly
    /// the shape the extended witness repair targets. Classification must
    /// match batch at every step even though the context answers most
    /// steps from the repaired model alone.
    #[test]
    fn width_adapter_repair_is_classification_identical(
        steps in proptest::collection::vec((0u8..3, 0u64..400), 1..10),
    ) {
        let mut p = TermPool::new();
        let s = Solver::default();
        let mut cache = SolverCache::new();
        let mut ctx = SolverCtx::new(&s);
        let mut cs: Vec<TermRef> = Vec::new();
        for (i, &(shape, v)) in steps.iter().enumerate() {
            let sym = p.fresh_sym(format!("f{i}"), Width::W8);
            let atom = match shape {
                0 => {
                    let z = p.zext(sym, Width::W16);
                    let k = p.constant(v, Width::W16); // may exceed 8 bits
                    p.eq(z, k)
                }
                1 => {
                    let t = p.trunc(sym, Width::W1);
                    let k = p.constant(v & 1, Width::W1);
                    p.eq(t, k)
                }
                _ => {
                    let k = p.constant(v & 0xFF, Width::W8);
                    p.eq(k, sym)
                }
            };
            let mut ext = cs.clone();
            ext.push(atom);
            prop_assert_eq!(
                ctx.probe_feasible(&p, &mut cache, atom),
                s.is_feasible(&p, &ext),
                "probe diverged at step {}", i
            );
            ctx.assert_term(&p, atom);
            cs.push(atom);
            if let Some(m) = ctx.model() {
                prop_assert!(m.satisfies(&p, &cs), "kept model must verify");
            }
            prop_assert_eq!(
                ctx.current_feasible(&p, &mut cache),
                s.is_feasible(&p, &cs),
                "classification diverged at step {}", i
            );
        }
    }
}
