//! Constraint solving for NF path constraints.
//!
//! The paper's BOLT prototype drives Z3/STP through KLEE. The constraints
//! produced by symbolic execution of *network functions* are shallow,
//! though: equalities between packet fields and constants, range checks,
//! and boolean case-selection symbols injected by data-structure models.
//! This crate implements a small decision procedure specialised to that
//! fragment:
//!
//! 1. **Propagation** — top-level conjunctions are flattened; equalities
//!    bind symbols through a union-find; comparisons against constants
//!    narrow per-symbol intervals; contradictions found here are definitive
//!    [`SolveResult::Unsat`].
//! 2. **Completion** — remaining free symbols are filled in by a bounded
//!    randomized search (interval endpoints, midpoints, random samples,
//!    plus equation-directed repair). Any witness found is checked by
//!    concrete evaluation, so [`SolveResult::Sat`] is always sound.
//! 3. Otherwise the result is [`SolveResult::Unknown`], which callers must
//!    treat conservatively (keep the path / keep the pair) — exactly how
//!    the paper's pipeline stays sound when the solver times out.

use std::collections::HashMap;

use bolt_expr::{BinOp, SymId, Term, TermPool, TermRef, UnOp, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A satisfying assignment, total over the pool's symbols.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Witness {
    values: HashMap<SymId, u64>,
}

impl Witness {
    /// Value of a symbol (0 if the solver never had to constrain it).
    pub fn get(&self, id: SymId) -> u64 {
        self.values.get(&id).copied().unwrap_or(0)
    }

    /// Bind a symbol (used by tests and by chain composition to pin the
    /// upstream packet).
    pub fn set(&mut self, id: SymId, v: u64) {
        self.values.insert(id, v);
    }

    /// Evaluate a term under this witness.
    pub fn eval(&self, pool: &TermPool, t: TermRef) -> u64 {
        pool.eval(t, &|id| self.get(id))
    }

    /// Check that every constraint evaluates to true under this witness.
    pub fn satisfies(&self, pool: &TermPool, constraints: &[TermRef]) -> bool {
        constraints.iter().all(|&c| self.eval(pool, c) == 1)
    }
}

/// Outcome of a solver query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A verified satisfying assignment.
    Sat(Witness),
    /// Definitive contradiction (found by propagation).
    Unsat,
    /// Search exhausted without a verdict; treat as possibly-satisfiable.
    Unknown,
}

impl SolveResult {
    /// `true` unless definitively unsatisfiable — the conservative
    /// interpretation used for path pruning and chain compatibility.
    pub fn possibly_sat(&self) -> bool {
        !matches!(self, SolveResult::Unsat)
    }

    /// The witness, if satisfiable.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            SolveResult::Sat(w) => Some(w),
            _ => None,
        }
    }
}

/// Per-symbol interval domain (inclusive bounds within the symbol width).
#[derive(Clone, Copy, Debug)]
struct Interval {
    lo: u64,
    hi: u64,
}

impl Interval {
    fn full(w: Width) -> Self {
        Interval {
            lo: 0,
            hi: w.mask(),
        }
    }
    fn is_empty(self) -> bool {
        self.lo > self.hi
    }
    fn singleton(self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }
}

/// The solver. Stateless between queries; deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct Solver {
    /// Maximum number of randomized completion trials.
    pub max_trials: usize,
    /// RNG seed, mixed with a hash of the constraint set so each query is
    /// deterministic but distinct queries explore differently.
    pub seed: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            max_trials: 256,
            seed: 0x0b17_c0de,
        }
    }
}

/// Internal propagation state.
struct Propagator<'p> {
    pool: &'p TermPool,
    /// Union-find parent pointers over symbols that must be equal.
    parent: HashMap<SymId, SymId>,
    /// Constant binding of each representative.
    bound: HashMap<SymId, u64>,
    /// Interval of each representative.
    interval: HashMap<SymId, Interval>,
    /// Atoms propagation could not absorb, with their polarity.
    residual: Vec<(TermRef, bool)>,
    /// Disequalities `repr != value` collected for completion.
    diseq: Vec<(SymId, u64)>,
    contradiction: bool,
}

impl<'p> Propagator<'p> {
    fn new(pool: &'p TermPool) -> Self {
        Propagator {
            pool,
            parent: HashMap::new(),
            bound: HashMap::new(),
            interval: HashMap::new(),
            residual: Vec::new(),
            diseq: Vec::new(),
            contradiction: false,
        }
    }

    fn find(&mut self, s: SymId) -> SymId {
        let p = *self.parent.get(&s).unwrap_or(&s);
        if p == s {
            return s;
        }
        let r = self.find(p);
        self.parent.insert(s, r);
        r
    }

    fn union(&mut self, a: SymId, b: SymId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.parent.insert(rb, ra);
        if let Some(v) = self.bound.remove(&rb) {
            self.bind(ra, v);
        }
        if let Some(i) = self.interval.remove(&rb) {
            self.narrow(ra, i.lo, i.hi);
        }
    }

    fn iv(&mut self, s: SymId) -> Interval {
        let w = self.pool.sym_width(s);
        *self.interval.entry(s).or_insert_with(|| Interval::full(w))
    }

    fn bind(&mut self, s: SymId, v: u64) {
        let r = self.find(s);
        match self.bound.get(&r) {
            Some(&old) if old != v => self.contradiction = true,
            Some(_) => {}
            None => {
                self.bound.insert(r, v);
                self.narrow(r, v, v);
            }
        }
    }

    fn narrow(&mut self, s: SymId, lo: u64, hi: u64) {
        let r = self.find(s);
        let mut iv = self.iv(r);
        iv.lo = iv.lo.max(lo);
        iv.hi = iv.hi.min(hi);
        if iv.is_empty() {
            self.contradiction = true;
            return;
        }
        self.interval.insert(r, iv);
        if let Some(v) = iv.singleton() {
            match self.bound.get(&r) {
                Some(&old) if old != v => self.contradiction = true,
                Some(_) => {}
                None => {
                    self.bound.insert(r, v);
                }
            }
        }
    }

    fn value_of(&mut self, s: SymId) -> Option<u64> {
        let r = self.find(s);
        self.bound.get(&r).copied()
    }

    /// Evaluate a term if it is fully determined by current bindings.
    fn partial_eval(&mut self, t: TermRef) -> Option<u64> {
        match *self.pool.get(t) {
            Term::Const { value, .. } => Some(value),
            Term::Sym { id, .. } => self.value_of(id),
            Term::Unop { op, a } => {
                let w = self.pool.width(a);
                self.partial_eval(a).map(|v| op.apply(v, w))
            }
            Term::Binop { op, a, b } => {
                let w = self.pool.width(a);
                let va = self.partial_eval(a)?;
                let vb = self.partial_eval(b)?;
                Some(op.apply(va, vb, w))
            }
            Term::Ite { c, t: tt, e } => {
                let vc = self.partial_eval(c)?;
                if vc != 0 {
                    self.partial_eval(tt)
                } else {
                    self.partial_eval(e)
                }
            }
            Term::Zext { a, .. } => self.partial_eval(a),
            Term::Trunc { a, width } => self.partial_eval(a).map(|v| v & width.mask()),
        }
    }

    /// Assert an atom (a width-1 term) with the given polarity, absorbing
    /// what we can into bindings/intervals; the rest goes to `residual`.
    fn assert_atom(&mut self, t: TermRef, polarity: bool) {
        if self.contradiction {
            return;
        }
        if let Some(v) = self.partial_eval(t) {
            if (v != 0) != polarity {
                self.contradiction = true;
            }
            return;
        }
        match *self.pool.get(t) {
            Term::Unop { op: UnOp::Not, a } => self.assert_atom(a, !polarity),
            Term::Sym {
                id,
                width: Width::W1,
            } => {
                self.bind(id, polarity as u64);
            }
            Term::Binop {
                op: BinOp::And,
                a,
                b,
            } if polarity => {
                self.assert_atom(a, true);
                self.assert_atom(b, true);
            }
            Term::Binop {
                op: BinOp::Or,
                a,
                b,
            } if !polarity => {
                self.assert_atom(a, false);
                self.assert_atom(b, false);
            }
            Term::Binop { op, a, b } => {
                if !self.assert_comparison(op, a, b, polarity) {
                    self.residual.push((t, polarity));
                }
            }
            _ => self.residual.push((t, polarity)),
        }
    }

    /// Try to absorb a comparison into the domain; returns whether handled.
    fn assert_comparison(&mut self, op: BinOp, a: TermRef, b: TermRef, pol: bool) -> bool {
        // Normalise negated comparisons.
        let (op, a, b) = match (op, pol) {
            (BinOp::Eq, true) | (BinOp::Ne, false) => (BinOp::Eq, a, b),
            (BinOp::Eq, false) | (BinOp::Ne, true) => (BinOp::Ne, a, b),
            (BinOp::Ult, true) => (BinOp::Ult, a, b),
            (BinOp::Ult, false) => (BinOp::Ule, b, a), // !(a<b)  ⇔  b<=a
            (BinOp::Ule, true) => (BinOp::Ule, a, b),
            (BinOp::Ule, false) => (BinOp::Ult, b, a), // !(a<=b) ⇔  b<a
            _ => return false,
        };
        let sym_a = self.as_sym(a);
        let sym_b = self.as_sym(b);
        let val_a = self.partial_eval(a);
        let val_b = self.partial_eval(b);
        match op {
            BinOp::Eq => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) => {
                    self.bind(x, v);
                    true
                }
                (_, Some(v), Some(y), _) => {
                    self.bind(y, v);
                    true
                }
                (Some(x), _, Some(y), _) => {
                    self.union(x, y);
                    true
                }
                _ => false,
            },
            BinOp::Ne => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) | (_, Some(v), Some(x), _) => {
                    let r = self.find(x);
                    self.diseq.push((r, v));
                    let iv = self.iv(r);
                    if iv.lo == iv.hi && iv.lo == v {
                        self.contradiction = true;
                    } else if iv.lo == v {
                        self.narrow(r, v + 1, iv.hi);
                    } else if iv.hi == v {
                        self.narrow(r, iv.lo, v - 1);
                    }
                    true
                }
                _ => false,
            },
            BinOp::Ult => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) => {
                    if v == 0 {
                        self.contradiction = true;
                    } else {
                        self.narrow(x, 0, v - 1);
                    }
                    true
                }
                (_, Some(v), Some(y), _) => {
                    let w = self.pool.sym_width(y);
                    if v >= w.mask() {
                        self.contradiction = true;
                    } else {
                        self.narrow(y, v + 1, w.mask());
                    }
                    true
                }
                _ => false,
            },
            BinOp::Ule => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) => {
                    self.narrow(x, 0, v);
                    true
                }
                (_, Some(v), Some(y), _) => {
                    let w = self.pool.sym_width(y);
                    self.narrow(y, v, w.mask());
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }

    fn as_sym(&self, t: TermRef) -> Option<SymId> {
        match *self.pool.get(t) {
            Term::Sym { id, .. } => Some(id),
            _ => None,
        }
    }
}

impl Solver {
    /// Create a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide the conjunction of `constraints` (each a width-1 term).
    pub fn check(&self, pool: &TermPool, constraints: &[TermRef]) -> SolveResult {
        let mut prop = Propagator::new(pool);
        for &c in constraints {
            prop.assert_atom(c, true);
            if prop.contradiction {
                return SolveResult::Unsat;
            }
        }
        // Fixpoint: re-assert residual atoms whose operands may have since
        // become evaluable (e.g. chained equalities asserted out of order).
        loop {
            let atoms = std::mem::take(&mut prop.residual);
            let before = atoms.len();
            for (t, pol) in atoms {
                prop.assert_atom(t, pol);
            }
            if prop.contradiction {
                return SolveResult::Unsat;
            }
            if prop.residual.len() >= before {
                break;
            }
        }

        // Component-wise exhaustive checking. Constraints are grouped
        // into connected components by shared *unbound* symbols; a
        // component whose free symbols span a small domain is enumerated
        // completely. An unsatisfiable component makes the whole
        // conjunction definitively Unsat (an unsat core). This is what
        // lets the explorer prune contradictions over *derived* packet
        // fields — e.g. the chain pair "firewall saw (ihl & 0xF) ≤ 5" ∧
        // "router saw (ihl & 0xF) > 5" — which interval propagation over
        // bare symbols cannot see, even when other constraints in the set
        // range over 32-bit fields.
        let bound_pairs: Vec<(SymId, u64)> = prop.bound.iter().map(|(&r, &v)| (r, v)).collect();
        {
            // Free-symbol support of each constraint.
            let supports: Vec<Vec<SymId>> = constraints
                .iter()
                .map(|&c| {
                    let reps: Vec<SymId> =
                        pool.syms_of(c).into_iter().map(|s| prop.find(s)).collect();
                    let mut v: Vec<SymId> = reps
                        .into_iter()
                        .filter(|r| !prop.bound.contains_key(r))
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            // Constraints whose symbols are all bound are decided by
            // direct evaluation: the bindings are forced, so a false
            // value here is a definitive contradiction.
            let mut forced = Witness::default();
            for &(r, v) in &bound_pairs {
                forced.set(r, v);
            }
            for (ci, sup) in supports.iter().enumerate() {
                if sup.is_empty() {
                    let c = constraints[ci];
                    let mut w = forced.clone();
                    for s in pool.syms_of(c) {
                        let r = prop.find(s);
                        let v = w.get(r);
                        w.set(s, v);
                    }
                    if w.eval(pool, c) != 1 {
                        return SolveResult::Unsat;
                    }
                }
            }
            // Union-find over constraint indices via shared symbols.
            let mut comp: HashMap<SymId, usize> = HashMap::new();
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut group_of_constraint: Vec<Option<usize>> = vec![None; constraints.len()];
            for (ci, sup) in supports.iter().enumerate() {
                if sup.is_empty() {
                    continue;
                }
                // Find an existing group among this constraint's symbols.
                let mut g = None;
                for s in sup {
                    if let Some(&gi) = comp.get(s) {
                        g = Some(gi);
                        break;
                    }
                }
                let gi = g.unwrap_or_else(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(ci);
                group_of_constraint[ci] = Some(gi);
                for &s in sup {
                    if let Some(&old) = comp.get(&s) {
                        if old != gi {
                            // Merge: move old group's constraints in.
                            let moved = std::mem::take(&mut groups[old]);
                            for m in &moved {
                                group_of_constraint[*m] = Some(gi);
                            }
                            groups[gi].extend(moved);
                            for v in comp.values_mut() {
                                if *v == old {
                                    *v = gi;
                                }
                            }
                        }
                    }
                    comp.insert(s, gi);
                }
            }
            let mut partial = Witness::default();
            for &(r, v) in &bound_pairs {
                partial.set(r, v);
            }
            let mut all_components_solved = true;
            for group in groups.iter().filter(|g| !g.is_empty()) {
                let mut syms: Vec<SymId> = group
                    .iter()
                    .flat_map(|&ci| supports[ci].iter().copied())
                    .collect();
                syms.sort_unstable();
                syms.dedup();
                let domain: u128 = syms
                    .iter()
                    .map(|&r| {
                        let iv = prop.iv(r);
                        (iv.hi - iv.lo) as u128 + 1
                    })
                    .product();
                if syms.len() > 2 || domain > 4096 {
                    all_components_solved = false;
                    continue;
                }
                let group_terms: Vec<TermRef> = group.iter().map(|&ci| constraints[ci]).collect();
                let intervals: Vec<Interval> = syms.iter().map(|&r| prop.iv(r)).collect();
                let mut assignment: Vec<u64> = intervals.iter().map(|iv| iv.lo).collect();
                let mut found = false;
                'enumerate: loop {
                    let mut w = Witness::default();
                    for (&r, &v) in syms.iter().zip(&assignment) {
                        w.set(r, v);
                    }
                    for &(r, v) in &bound_pairs {
                        w.set(r, v);
                    }
                    // Member symbols of enumerated/bound representatives.
                    for &c in &group_terms {
                        for s in pool.syms_of(c) {
                            let r = prop.find(s);
                            let v = w.get(r);
                            w.set(s, v);
                        }
                    }
                    if w.satisfies(pool, &group_terms) {
                        found = true;
                        for (&r, &v) in syms.iter().zip(&assignment) {
                            partial.set(r, v);
                        }
                        break 'enumerate;
                    }
                    let mut i = 0;
                    loop {
                        if i == syms.len() {
                            break 'enumerate;
                        }
                        if assignment[i] < intervals[i].hi {
                            assignment[i] += 1;
                            break;
                        }
                        assignment[i] = intervals[i].lo;
                        i += 1;
                    }
                }
                if !found {
                    return SolveResult::Unsat;
                }
            }
            if all_components_solved {
                // Every component got a witness over disjoint symbols:
                // merge, extend to members, and verify.
                let mut w = partial.clone();
                for &c in constraints {
                    for s in pool.syms_of(c) {
                        let r = prop.find(s);
                        let v = w.get(r);
                        w.set(s, v);
                    }
                }
                if w.satisfies(pool, constraints) {
                    return SolveResult::Sat(w);
                }
            }
        }

        // Completion: every sym in the pool gets a value.
        let all_syms: Vec<SymId> = (0..pool.sym_count() as SymId).collect();
        let mut seed = self.seed;
        for &c in constraints {
            seed = seed
                .wrapping_mul(0x100000001b3)
                .wrapping_add(c.index() as u64 + 1);
        }
        let mut rng = SmallRng::seed_from_u64(seed);

        for trial in 0..self.max_trials {
            let mut w = Witness::default();
            for &s in &all_syms {
                let r = prop.find(s);
                if w.values.contains_key(&r) {
                    continue;
                }
                let v = if let Some(v) = prop.bound.get(&r).copied() {
                    v
                } else {
                    let iv = prop.iv(r);
                    let v = match trial {
                        0 => iv.lo,
                        1 => iv.hi,
                        2 => iv.lo + (iv.hi - iv.lo) / 2,
                        _ => {
                            if iv.hi == iv.lo {
                                iv.lo
                            } else {
                                iv.lo + rng.gen_range(0..=(iv.hi - iv.lo))
                            }
                        }
                    };
                    if prop.diseq.iter().any(|&(ds, dv)| ds == r && dv == v) {
                        if v < iv.hi {
                            v + 1
                        } else {
                            v.saturating_sub(1).max(iv.lo)
                        }
                    } else {
                        v
                    }
                };
                w.set(r, v);
            }
            // Propagate representative values to all class members.
            for &s in &all_syms {
                let r = prop.find(s);
                let v = w.get(r);
                w.set(s, v);
            }
            // Equation-directed repair for residual equalities of the form
            // `sym == expr` / `expr == sym`.
            for _ in 0..4 {
                let mut repaired = false;
                for &(t, pol) in &prop.residual {
                    if w.eval(pool, t) == pol as u64 {
                        continue;
                    }
                    if let Term::Binop {
                        op: BinOp::Eq,
                        a,
                        b,
                    } = *pool.get(t)
                    {
                        if pol {
                            if let Some(x) = prop.as_sym(a) {
                                let v = w.eval(pool, b);
                                w.set(x, v);
                                repaired = true;
                            } else if let Some(y) = prop.as_sym(b) {
                                let v = w.eval(pool, a);
                                w.set(y, v);
                                repaired = true;
                            }
                        }
                    }
                }
                if !repaired {
                    break;
                }
            }
            if w.satisfies(pool, constraints) {
                return SolveResult::Sat(w);
            }
        }
        SolveResult::Unknown
    }

    /// Conservative feasibility: `true` unless definitively unsatisfiable.
    pub fn is_feasible(&self, pool: &TermPool, constraints: &[TermRef]) -> bool {
        self.check(pool, constraints).possibly_sat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> Solver {
        Solver::default()
    }

    #[test]
    fn empty_is_sat() {
        let pool = TermPool::new();
        assert!(matches!(solver().check(&pool, &[]), SolveResult::Sat(_)));
    }

    #[test]
    fn field_equality() {
        let mut p = TermPool::new();
        let et = p.fresh_sym("ether_type", Width::W16);
        let c = p.constant(0x0800, Width::W16);
        let eq = p.eq(et, c);
        match solver().check(&p, &[eq]) {
            SolveResult::Sat(w) => assert_eq!(w.get(0), 0x0800),
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn conflicting_equalities_unsat() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let c3 = p.constant(3, Width::W32);
        let c4 = p.constant(4, Width::W32);
        let a = p.eq(x, c3);
        let b = p.eq(x, c4);
        assert_eq!(solver().check(&p, &[a, b]), SolveResult::Unsat);
    }

    #[test]
    fn empty_interval_unsat() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let five = p.constant(5, Width::W32);
        let seven = p.constant(7, Width::W32);
        let lt = p.ult(x, five);
        let ge = p.ule(seven, x);
        assert_eq!(solver().check(&p, &[lt, ge]), SolveResult::Unsat);
    }

    #[test]
    fn boolean_conflict_unsat() {
        let mut p = TermPool::new();
        let b = p.fresh_sym("hit", Width::W1);
        let nb = p.not(b);
        assert_eq!(solver().check(&p, &[b, nb]), SolveResult::Unsat);
    }

    #[test]
    fn union_find_transitivity() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let z = p.fresh_sym("z", Width::W32);
        let c = p.constant(9, Width::W32);
        let exy = p.eq(x, y);
        let eyz = p.eq(y, z);
        let ezc = p.eq(z, c);
        match solver().check(&p, &[exy, eyz, ezc]) {
            SolveResult::Sat(w) => {
                assert_eq!(w.get(0), 9);
                assert_eq!(w.get(1), 9);
                assert_eq!(w.get(2), 9);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn union_find_conflict() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let c1 = p.constant(1, Width::W32);
        let c2 = p.constant(2, Width::W32);
        let exc = p.eq(x, c1);
        let eyc = p.eq(y, c2);
        let exy = p.eq(x, y);
        assert_eq!(solver().check(&p, &[exc, eyc, exy]), SolveResult::Unsat);
    }

    #[test]
    fn range_witness_in_bounds() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let lo = p.constant(10, Width::W32);
        let hi = p.constant(20, Width::W32);
        let a = p.ule(lo, x);
        let b = p.ult(x, hi);
        match solver().check(&p, &[a, b]) {
            SolveResult::Sat(w) => {
                let v = w.get(0);
                assert!((10..20).contains(&v), "witness {v} out of range");
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn disequality_respected() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W8);
        let c = p.constant(0, Width::W8);
        let ne = p.ne(x, c);
        let three = p.constant(3, Width::W8);
        let lt = p.ult(x, three);
        match solver().check(&p, &[ne, lt]) {
            SolveResult::Sat(w) => {
                let v = w.get(0);
                assert!(v == 1 || v == 2);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn equation_directed_repair() {
        // y == x + 5 with x == 3: repair must find y = 8.
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let five = p.constant(5, Width::W32);
        let sum = p.add(x, five);
        let eq1 = p.eq(y, sum);
        let three = p.constant(3, Width::W32);
        let eq2 = p.eq(x, three);
        match solver().check(&p, &[eq1, eq2]) {
            SolveResult::Sat(w) => {
                assert_eq!(w.get(0), 3);
                assert_eq!(w.get(1), 8);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn chain_style_link_constraint() {
        // Downstream input symbol linked to an upstream output expression:
        // out = ite(opts == 0, 0x0800, 0x86dd); in == out; in == 0x0800.
        let mut p = TermPool::new();
        let opts = p.fresh_sym("nf1.ip_opts", Width::W8);
        let inp = p.fresh_sym("nf2.ether_type", Width::W16);
        let zero8 = p.constant(0, Width::W8);
        let is_zero = p.eq(opts, zero8);
        let v4 = p.constant(0x0800, Width::W16);
        let v6 = p.constant(0x86dd, Width::W16);
        let out = p.ite(is_zero, v4, v6);
        let link = p.eq(inp, out);
        let want = p.eq(inp, v4);
        match solver().check(&p, &[link, want]) {
            SolveResult::Sat(w) => {
                assert_eq!(w.get(0), 0, "opts must be 0");
                assert_eq!(w.get(1), 0x0800);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn constant_contradiction_unsat() {
        let mut p = TermPool::new();
        let inp = p.fresh_sym("in", Width::W16);
        let c5 = p.constant(5, Width::W16);
        let c6 = p.constant(6, Width::W16);
        let a = p.eq(inp, c5);
        let b = p.eq(inp, c6);
        assert_eq!(solver().check(&p, &[a, b]), SolveResult::Unsat);
    }

    #[test]
    fn sat_results_are_verified() {
        let mut p = TermPool::new();
        let a = p.fresh_sym("a", Width::W8);
        let b = p.fresh_sym("b", Width::W8);
        let sum = p.add(a, b);
        let c10 = p.constant(10, Width::W8);
        let eq = p.eq(sum, c10);
        let c3 = p.constant(3, Width::W8);
        let alow = p.ule(a, c3);
        if let SolveResult::Sat(w) = solver().check(&p, &[eq, alow]) {
            assert!(w.satisfies(&p, &[eq, alow]));
        }
        // Unknown is acceptable here (the sum is outside the propagator's
        // fragment); Sat must be genuine when returned.
    }

    #[test]
    fn determinism() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let lo = p.constant(100, Width::W32);
        let c = p.ule(lo, x);
        let w1 = match solver().check(&p, &[c]) {
            SolveResult::Sat(w) => w,
            r => panic!("expected sat, got {r:?}"),
        };
        let w2 = match solver().check(&p, &[c]) {
            SolveResult::Sat(w) => w,
            r => panic!("expected sat, got {r:?}"),
        };
        assert_eq!(w1, w2);
    }

    #[test]
    fn negated_comparison_normalisation() {
        // !(x < 5) and x <= 4 is unsat.
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let five = p.constant(5, Width::W32);
        let four = p.constant(4, Width::W32);
        let lt = p.ult(x, five);
        let nlt = p.not(lt);
        let le4 = p.ule(x, four);
        assert_eq!(solver().check(&p, &[nlt, le4]), SolveResult::Unsat);
    }
}
