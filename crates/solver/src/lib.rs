//! Constraint solving for NF path constraints.
//!
//! The paper's BOLT prototype drives Z3/STP through KLEE, and makes
//! exhaustive path exploration tractable with *incremental* solving and
//! caching inside KLEE. The constraints produced by symbolic execution of
//! *network functions* are shallow, though: equalities between packet
//! fields and constants, range checks, and boolean case-selection symbols
//! injected by data-structure models. This crate implements a small
//! decision procedure specialised to that fragment:
//!
//! 1. **Propagation** — top-level conjunctions are flattened; equalities
//!    bind symbols through a union-find; comparisons against constants
//!    narrow per-symbol intervals; contradictions found here are definitive
//!    [`SolveResult::Unsat`].
//! 2. **Completion** — remaining free symbols are filled in by a bounded
//!    randomized search (interval endpoints, midpoints, random samples,
//!    plus equation-directed repair). Any witness found is checked by
//!    concrete evaluation, so [`SolveResult::Sat`] is always sound.
//! 3. Otherwise the result is [`SolveResult::Unknown`], which callers must
//!    treat conservatively (keep the path / keep the pair) — exactly how
//!    the paper's pipeline stays sound when the solver times out.
//!
//! On top of the batch [`Solver::check`] API sits the incremental layer
//! used by the path explorer and chain composition:
//!
//! * [`SolverCtx`] holds the propagation state of an asserted constraint
//!   prefix and supports `push`/`pop` checkpoints, so probing
//!   `prefix + [flipped]` asserts *one* atom against saved state instead
//!   of replaying the whole conjunction.
//! * [`SolverCache`] memoises feasibility verdicts by exact constraint
//!   list, caches satisfiable-alone witnesses per atom, and keeps a small
//!   model cache whose witnesses answer repeated satisfiable probes by
//!   evaluation alone (sound: a verified model proves satisfiability).
//! * [`SolverStats`] counts every request and what answered it, so the
//!   query reduction is observable and assertable in tests.
//!
//! Every fast path returns *exactly* the verdict the batch procedure
//! would: cached models and witness merges prove satisfiability (batch
//! `Unsat` is impossible for a satisfied list, because propagation and
//! component enumeration are sound), the propagation shortcut mirrors the
//! batch assert loop operation-for-operation, and memoised verdicts come
//! from the deterministic batch tail itself.

use std::collections::{HashMap, HashSet};

use bolt_expr::{BinOp, SymId, Term, TermPool, TermRef, UnOp, Width};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A satisfying assignment, total over the queried constraints' symbols
/// (anything else evaluates to 0 via [`Witness::get`]'s default).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Witness {
    values: HashMap<SymId, u64>,
}

impl Witness {
    /// Value of a symbol (0 if the solver never had to constrain it).
    pub fn get(&self, id: SymId) -> u64 {
        self.values.get(&id).copied().unwrap_or(0)
    }

    /// Bind a symbol (used by tests and by chain composition to pin the
    /// upstream packet).
    pub fn set(&mut self, id: SymId, v: u64) {
        self.values.insert(id, v);
    }

    /// Evaluate a term under this witness.
    pub fn eval(&self, pool: &TermPool, t: TermRef) -> u64 {
        pool.eval(t, &|id| self.get(id))
    }

    /// Check that every constraint evaluates to true under this witness.
    pub fn satisfies(&self, pool: &TermPool, constraints: &[TermRef]) -> bool {
        constraints.iter().all(|&c| self.eval(pool, c) == 1)
    }
}

/// Outcome of a solver query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A verified satisfying assignment.
    Sat(Witness),
    /// Definitive contradiction (found by propagation).
    Unsat,
    /// Search exhausted without a verdict; treat as possibly-satisfiable.
    Unknown,
}

impl SolveResult {
    /// `true` unless definitively unsatisfiable — the conservative
    /// interpretation used for path pruning and chain compatibility.
    pub fn possibly_sat(&self) -> bool {
        !matches!(self, SolveResult::Unsat)
    }

    /// The witness, if satisfiable.
    pub fn witness(&self) -> Option<&Witness> {
        match self {
            SolveResult::Sat(w) => Some(w),
            _ => None,
        }
    }
}

/// Counters describing how feasibility requests were answered. The
/// pre-incremental baseline issued one full solver query per request, so
/// `checks_requested / solver_queries` is the query-reduction factor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Feasibility/check requests made by callers.
    pub checks_requested: u64,
    /// Full decision-procedure executions (propagation fixpoint +
    /// component enumeration, plus randomized completion for batch
    /// checks). Each costs roughly one pre-incremental `check()`.
    pub solver_queries: u64,
    /// Randomized completion searches actually run (the expensive part of
    /// a batch query; pure feasibility checks never need it).
    pub completion_searches: u64,
    /// Requests answered by a contradiction found while asserting a
    /// single atom against saved propagation state.
    pub unsat_by_propagation: u64,
    /// Requests answered by the exact-constraint-list memo.
    pub memo_hits: u64,
    /// Requests answered by evaluating a cached model (witness reuse).
    pub witness_reuse_hits: u64,
    /// Cached models evicted to make room (the model cache is bounded;
    /// eviction picks the least-used entry, oldest on ties).
    pub model_evictions: u64,
}

impl SolverStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, o: &SolverStats) {
        self.checks_requested += o.checks_requested;
        self.solver_queries += o.solver_queries;
        self.completion_searches += o.completion_searches;
        self.unsat_by_propagation += o.unsat_by_propagation;
        self.memo_hits += o.memo_hits;
        self.witness_reuse_hits += o.witness_reuse_hits;
        self.model_evictions += o.model_evictions;
    }

    /// Requests answered without running the decision procedure.
    pub fn shortcuts(&self) -> u64 {
        self.unsat_by_propagation + self.memo_hits + self.witness_reuse_hits
    }
}

/// Per-symbol interval domain (inclusive bounds within the symbol width).
#[derive(Clone, Copy, Debug)]
struct Interval {
    lo: u64,
    hi: u64,
}

impl Interval {
    fn full(w: Width) -> Self {
        Interval {
            lo: 0,
            hi: w.mask(),
        }
    }
    fn is_empty(self) -> bool {
        self.lo > self.hi
    }
    fn singleton(self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }
}

/// The solver. Stateless between queries; deterministic for a given seed.
#[derive(Clone, Debug)]
pub struct Solver {
    /// Maximum number of randomized completion trials.
    pub max_trials: usize,
    /// RNG seed, mixed with a hash of the constraint set so each query is
    /// deterministic but distinct queries explore differently.
    pub seed: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            max_trials: 256,
            seed: 0x0b17_c0de,
        }
    }
}

/// Internal propagation state. Holds no pool reference so that an
/// incremental [`SolverCtx`] can keep it alive while the caller keeps
/// appending terms to the pool; every method takes the pool explicitly.
#[derive(Clone, Debug, Default)]
struct Propagator {
    /// Union-find parent pointers over symbols that must be equal.
    parent: HashMap<SymId, SymId>,
    /// Constant binding of each representative.
    bound: HashMap<SymId, u64>,
    /// Interval of each representative.
    interval: HashMap<SymId, Interval>,
    /// Atoms propagation could not absorb, with their polarity.
    residual: Vec<(TermRef, bool)>,
    /// Disequalities `repr != value` collected for completion.
    diseq: Vec<(SymId, u64)>,
    contradiction: bool,
}

impl Propagator {
    fn new() -> Self {
        Self::default()
    }

    fn find(&mut self, s: SymId) -> SymId {
        let p = *self.parent.get(&s).unwrap_or(&s);
        if p == s {
            return s;
        }
        let r = self.find(p);
        self.parent.insert(s, r);
        r
    }

    fn union(&mut self, pool: &TermPool, a: SymId, b: SymId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.parent.insert(rb, ra);
        if let Some(v) = self.bound.remove(&rb) {
            self.bind(pool, ra, v);
        }
        if let Some(i) = self.interval.remove(&rb) {
            self.narrow(pool, ra, i.lo, i.hi);
        }
    }

    fn iv(&mut self, pool: &TermPool, s: SymId) -> Interval {
        let w = pool.sym_width(s);
        *self.interval.entry(s).or_insert_with(|| Interval::full(w))
    }

    fn bind(&mut self, pool: &TermPool, s: SymId, v: u64) {
        let r = self.find(s);
        match self.bound.get(&r) {
            Some(&old) if old != v => self.contradiction = true,
            Some(_) => {}
            None => {
                self.bound.insert(r, v);
                self.narrow(pool, r, v, v);
            }
        }
    }

    fn narrow(&mut self, pool: &TermPool, s: SymId, lo: u64, hi: u64) {
        let r = self.find(s);
        let mut iv = self.iv(pool, r);
        iv.lo = iv.lo.max(lo);
        iv.hi = iv.hi.min(hi);
        if iv.is_empty() {
            self.contradiction = true;
            return;
        }
        self.interval.insert(r, iv);
        if let Some(v) = iv.singleton() {
            match self.bound.get(&r) {
                Some(&old) if old != v => self.contradiction = true,
                Some(_) => {}
                None => {
                    self.bound.insert(r, v);
                }
            }
        }
    }

    fn value_of(&mut self, s: SymId) -> Option<u64> {
        let r = self.find(s);
        self.bound.get(&r).copied()
    }

    /// Evaluate a term if it is fully determined by current bindings.
    fn partial_eval(&mut self, pool: &TermPool, t: TermRef) -> Option<u64> {
        match *pool.get(t) {
            Term::Const { value, .. } => Some(value),
            Term::Sym { id, .. } => self.value_of(id),
            Term::Unop { op, a } => {
                let w = pool.width(a);
                self.partial_eval(pool, a).map(|v| op.apply(v, w))
            }
            Term::Binop { op, a, b } => {
                let w = pool.width(a);
                let va = self.partial_eval(pool, a)?;
                let vb = self.partial_eval(pool, b)?;
                Some(op.apply(va, vb, w))
            }
            Term::Ite { c, t: tt, e } => {
                let vc = self.partial_eval(pool, c)?;
                if vc != 0 {
                    self.partial_eval(pool, tt)
                } else {
                    self.partial_eval(pool, e)
                }
            }
            Term::Zext { a, .. } => self.partial_eval(pool, a),
            Term::Trunc { a, width } => self.partial_eval(pool, a).map(|v| v & width.mask()),
        }
    }

    /// Assert an atom (a width-1 term) with the given polarity, absorbing
    /// what we can into bindings/intervals; the rest goes to `residual`.
    fn assert_atom(&mut self, pool: &TermPool, t: TermRef, polarity: bool) {
        if self.contradiction {
            return;
        }
        if let Some(v) = self.partial_eval(pool, t) {
            if (v != 0) != polarity {
                self.contradiction = true;
            }
            return;
        }
        match *pool.get(t) {
            Term::Unop { op: UnOp::Not, a } => self.assert_atom(pool, a, !polarity),
            Term::Sym {
                id,
                width: Width::W1,
            } => {
                self.bind(pool, id, polarity as u64);
            }
            Term::Binop {
                op: BinOp::And,
                a,
                b,
            } if polarity => {
                self.assert_atom(pool, a, true);
                self.assert_atom(pool, b, true);
            }
            Term::Binop {
                op: BinOp::Or,
                a,
                b,
            } if !polarity => {
                self.assert_atom(pool, a, false);
                self.assert_atom(pool, b, false);
            }
            Term::Binop { op, a, b } => {
                if !self.assert_comparison(pool, op, a, b, polarity) {
                    self.residual.push((t, polarity));
                }
            }
            _ => self.residual.push((t, polarity)),
        }
    }

    /// Try to absorb a comparison into the domain; returns whether handled.
    fn assert_comparison(
        &mut self,
        pool: &TermPool,
        op: BinOp,
        a: TermRef,
        b: TermRef,
        pol: bool,
    ) -> bool {
        // Normalise negated comparisons.
        let (op, a, b) = match (op, pol) {
            (BinOp::Eq, true) | (BinOp::Ne, false) => (BinOp::Eq, a, b),
            (BinOp::Eq, false) | (BinOp::Ne, true) => (BinOp::Ne, a, b),
            (BinOp::Ult, true) => (BinOp::Ult, a, b),
            (BinOp::Ult, false) => (BinOp::Ule, b, a), // !(a<b)  ⇔  b<=a
            (BinOp::Ule, true) => (BinOp::Ule, a, b),
            (BinOp::Ule, false) => (BinOp::Ult, b, a), // !(a<=b) ⇔  b<a
            _ => return false,
        };
        let sym_a = Self::as_sym(pool, a);
        let sym_b = Self::as_sym(pool, b);
        let val_a = self.partial_eval(pool, a);
        let val_b = self.partial_eval(pool, b);
        match op {
            BinOp::Eq => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) => {
                    self.bind(pool, x, v);
                    true
                }
                (_, Some(v), Some(y), _) => {
                    self.bind(pool, y, v);
                    true
                }
                (Some(x), _, Some(y), _) => {
                    self.union(pool, x, y);
                    true
                }
                _ => false,
            },
            BinOp::Ne => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) | (_, Some(v), Some(x), _) => {
                    let r = self.find(x);
                    self.diseq.push((r, v));
                    let iv = self.iv(pool, r);
                    if iv.lo == iv.hi && iv.lo == v {
                        self.contradiction = true;
                    } else if iv.lo == v {
                        self.narrow(pool, r, v + 1, iv.hi);
                    } else if iv.hi == v {
                        self.narrow(pool, r, iv.lo, v - 1);
                    }
                    true
                }
                _ => false,
            },
            BinOp::Ult => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) => {
                    if v == 0 {
                        self.contradiction = true;
                    } else {
                        self.narrow(pool, x, 0, v - 1);
                    }
                    true
                }
                (_, Some(v), Some(y), _) => {
                    let w = pool.sym_width(y);
                    if v >= w.mask() {
                        self.contradiction = true;
                    } else {
                        self.narrow(pool, y, v + 1, w.mask());
                    }
                    true
                }
                _ => false,
            },
            BinOp::Ule => match (sym_a, val_a, sym_b, val_b) {
                (Some(x), _, _, Some(v)) => {
                    self.narrow(pool, x, 0, v);
                    true
                }
                (_, Some(v), Some(y), _) => {
                    let w = pool.sym_width(y);
                    self.narrow(pool, y, v, w.mask());
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }

    fn as_sym(pool: &TermPool, t: TermRef) -> Option<SymId> {
        match *pool.get(t) {
            Term::Sym { id, .. } => Some(id),
            _ => None,
        }
    }
}

/// How far [`Solver::finish`] must go.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Finish {
    /// The full batch procedure, including randomized completion — the
    /// exact behaviour of the original `check()`.
    Full,
    /// Feasibility classification only: identical `Unsat` detection
    /// (fixpoint, forced evaluation, component enumeration), but skip
    /// the completion search — its only contribution is upgrading
    /// `Unknown` to `Sat`, which feasibility callers don't distinguish.
    Feasibility,
}

impl Solver {
    /// Create a solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide the conjunction of `constraints` (each a width-1 term).
    pub fn check(&self, pool: &TermPool, constraints: &[TermRef]) -> SolveResult {
        let mut prop = Propagator::new();
        for &c in constraints {
            prop.assert_atom(pool, c, true);
            if prop.contradiction {
                return SolveResult::Unsat;
            }
        }
        self.finish(pool, constraints, prop, Finish::Full, None)
    }

    /// Conservative feasibility: `true` unless definitively unsatisfiable.
    /// Runs the same `Unsat` detection as [`Solver::check`] but skips the
    /// randomized completion search (whose verdicts are never `Unsat`).
    pub fn is_feasible(&self, pool: &TermPool, constraints: &[TermRef]) -> bool {
        let mut prop = Propagator::new();
        for &c in constraints {
            prop.assert_atom(pool, c, true);
            if prop.contradiction {
                return false;
            }
        }
        self.finish(pool, constraints, prop, Finish::Feasibility, None)
            .possibly_sat()
    }

    /// The decision-procedure tail: runs after all constraints have been
    /// asserted (in order) into `prop`. Shared verbatim by the batch API
    /// and the incremental [`SolverCtx`], which is what keeps their
    /// verdicts bit-identical.
    fn finish(
        &self,
        pool: &TermPool,
        constraints: &[TermRef],
        mut prop: Propagator,
        mode: Finish,
        stats: Option<&mut SolverStats>,
    ) -> SolveResult {
        // Fixpoint: re-assert residual atoms whose operands may have since
        // become evaluable (e.g. chained equalities asserted out of order).
        loop {
            let atoms = std::mem::take(&mut prop.residual);
            let before = atoms.len();
            for (t, pol) in atoms {
                prop.assert_atom(pool, t, pol);
            }
            if prop.contradiction {
                return SolveResult::Unsat;
            }
            if prop.residual.len() >= before {
                break;
            }
        }

        // Component-wise exhaustive checking. Constraints are grouped
        // into connected components by shared *unbound* symbols; a
        // component whose free symbols span a small domain is enumerated
        // completely. An unsatisfiable component makes the whole
        // conjunction definitively Unsat (an unsat core). This is what
        // lets the explorer prune contradictions over *derived* packet
        // fields — e.g. the chain pair "firewall saw (ihl & 0xF) ≤ 5" ∧
        // "router saw (ihl & 0xF) > 5" — which interval propagation over
        // bare symbols cannot see, even when other constraints in the set
        // range over 32-bit fields.
        let bound_pairs: Vec<(SymId, u64)> = prop.bound.iter().map(|(&r, &v)| (r, v)).collect();
        {
            // Free-symbol support of each constraint (the per-term symbol
            // support is cached in the pool; only the representative
            // mapping is computed here).
            let supports: Vec<Vec<SymId>> = constraints
                .iter()
                .map(|&c| {
                    let reps: Vec<SymId> = pool.syms_of(c).iter().map(|&s| prop.find(s)).collect();
                    let mut v: Vec<SymId> = reps
                        .into_iter()
                        .filter(|r| !prop.bound.contains_key(r))
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect();
            // Constraints whose symbols are all bound are decided by
            // direct evaluation: the bindings are forced, so a false
            // value here is a definitive contradiction.
            let mut forced = Witness::default();
            for &(r, v) in &bound_pairs {
                forced.set(r, v);
            }
            for (ci, sup) in supports.iter().enumerate() {
                if sup.is_empty() {
                    let c = constraints[ci];
                    let mut w = forced.clone();
                    for &s in pool.syms_of(c) {
                        let r = prop.find(s);
                        let v = w.get(r);
                        w.set(s, v);
                    }
                    if w.eval(pool, c) != 1 {
                        return SolveResult::Unsat;
                    }
                }
            }
            // Union-find over constraint indices via shared symbols.
            let mut comp: HashMap<SymId, usize> = HashMap::new();
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut group_of_constraint: Vec<Option<usize>> = vec![None; constraints.len()];
            for (ci, sup) in supports.iter().enumerate() {
                if sup.is_empty() {
                    continue;
                }
                // Find an existing group among this constraint's symbols.
                let mut g = None;
                for s in sup {
                    if let Some(&gi) = comp.get(s) {
                        g = Some(gi);
                        break;
                    }
                }
                let gi = g.unwrap_or_else(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(ci);
                group_of_constraint[ci] = Some(gi);
                for &s in sup {
                    if let Some(&old) = comp.get(&s) {
                        if old != gi {
                            // Merge: move old group's constraints in.
                            let moved = std::mem::take(&mut groups[old]);
                            for m in &moved {
                                group_of_constraint[*m] = Some(gi);
                            }
                            groups[gi].extend(moved);
                            for v in comp.values_mut() {
                                if *v == old {
                                    *v = gi;
                                }
                            }
                        }
                    }
                    comp.insert(s, gi);
                }
            }
            let mut partial = Witness::default();
            for &(r, v) in &bound_pairs {
                partial.set(r, v);
            }
            let mut all_components_solved = true;
            for group in groups.iter().filter(|g| !g.is_empty()) {
                let mut syms: Vec<SymId> = group
                    .iter()
                    .flat_map(|&ci| supports[ci].iter().copied())
                    .collect();
                syms.sort_unstable();
                syms.dedup();
                let domain: u128 = syms
                    .iter()
                    .map(|&r| {
                        let iv = prop.iv(pool, r);
                        (iv.hi - iv.lo) as u128 + 1
                    })
                    .product();
                if syms.len() > 2 || domain > 4096 {
                    all_components_solved = false;
                    continue;
                }
                let group_terms: Vec<TermRef> = group.iter().map(|&ci| constraints[ci]).collect();
                let intervals: Vec<Interval> = syms.iter().map(|&r| prop.iv(pool, r)).collect();
                let mut assignment: Vec<u64> = intervals.iter().map(|iv| iv.lo).collect();
                let mut found = false;
                'enumerate: loop {
                    let mut w = Witness::default();
                    for (&r, &v) in syms.iter().zip(&assignment) {
                        w.set(r, v);
                    }
                    for &(r, v) in &bound_pairs {
                        w.set(r, v);
                    }
                    // Member symbols of enumerated/bound representatives.
                    for &c in &group_terms {
                        for &s in pool.syms_of(c) {
                            let r = prop.find(s);
                            let v = w.get(r);
                            w.set(s, v);
                        }
                    }
                    if w.satisfies(pool, &group_terms) {
                        found = true;
                        for (&r, &v) in syms.iter().zip(&assignment) {
                            partial.set(r, v);
                        }
                        break 'enumerate;
                    }
                    let mut i = 0;
                    loop {
                        if i == syms.len() {
                            break 'enumerate;
                        }
                        if assignment[i] < intervals[i].hi {
                            assignment[i] += 1;
                            break;
                        }
                        assignment[i] = intervals[i].lo;
                        i += 1;
                    }
                }
                if !found {
                    return SolveResult::Unsat;
                }
            }
            if all_components_solved {
                // Every component got a witness over disjoint symbols:
                // merge, extend to members, and verify.
                let mut w = partial.clone();
                for &c in constraints {
                    for &s in pool.syms_of(c) {
                        let r = prop.find(s);
                        let v = w.get(r);
                        w.set(s, v);
                    }
                }
                if w.satisfies(pool, constraints) {
                    return SolveResult::Sat(w);
                }
            }
        }

        // Feasibility callers stop here: completion can only upgrade
        // Unknown to Sat, never produce Unsat, so the classification they
        // care about is already decided.
        if mode == Finish::Feasibility {
            return SolveResult::Unknown;
        }
        if let Some(s) = stats {
            s.completion_searches += 1;
        }

        // Completion: every symbol the constraints mention gets a value.
        // The support — not the whole pool registry — so the verdict and
        // the witness depend only on the constraint list itself: symbols
        // other runs registered in a shared pool (or that a parallel
        // committer absorbed before replaying this query) cannot perturb
        // the RNG stream or the produced model. Symbols outside the
        // support evaluate to 0 under the witness either way.
        let all_syms: Vec<SymId> = {
            let mut v: Vec<SymId> = constraints
                .iter()
                .flat_map(|&c| pool.syms_of(c).iter().copied())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut seed = self.seed;
        for &c in constraints {
            seed = seed
                .wrapping_mul(0x100000001b3)
                .wrapping_add(c.index() as u64 + 1);
        }
        let mut rng = SmallRng::seed_from_u64(seed);

        for trial in 0..self.max_trials {
            let mut w = Witness::default();
            for &s in &all_syms {
                let r = prop.find(s);
                if w.values.contains_key(&r) {
                    continue;
                }
                let v = if let Some(v) = prop.bound.get(&r).copied() {
                    v
                } else {
                    let iv = prop.iv(pool, r);
                    let v = match trial {
                        0 => iv.lo,
                        1 => iv.hi,
                        2 => iv.lo + (iv.hi - iv.lo) / 2,
                        _ => {
                            if iv.hi == iv.lo {
                                iv.lo
                            } else {
                                iv.lo + rng.gen_range(0..=(iv.hi - iv.lo))
                            }
                        }
                    };
                    if prop.diseq.iter().any(|&(ds, dv)| ds == r && dv == v) {
                        if v < iv.hi {
                            v + 1
                        } else {
                            v.saturating_sub(1).max(iv.lo)
                        }
                    } else {
                        v
                    }
                };
                w.set(r, v);
            }
            // Propagate representative values to all class members.
            for &s in &all_syms {
                let r = prop.find(s);
                let v = w.get(r);
                w.set(s, v);
            }
            // Equation-directed repair for residual equalities of the form
            // `sym == expr` / `expr == sym`.
            for _ in 0..4 {
                let mut repaired = false;
                for &(t, pol) in &prop.residual {
                    if w.eval(pool, t) == pol as u64 {
                        continue;
                    }
                    if let Term::Binop {
                        op: BinOp::Eq,
                        a,
                        b,
                    } = *pool.get(t)
                    {
                        if pol {
                            if let Some(x) = Propagator::as_sym(pool, a) {
                                let v = w.eval(pool, b);
                                w.set(x, v);
                                repaired = true;
                            } else if let Some(y) = Propagator::as_sym(pool, b) {
                                let v = w.eval(pool, a);
                                w.set(y, v);
                                repaired = true;
                            }
                        }
                    }
                }
                if !repaired {
                    break;
                }
            }
            if w.satisfies(pool, constraints) {
                return SolveResult::Sat(w);
            }
        }
        SolveResult::Unknown
    }
}

/// Shared feasibility caches for one exploration / composition session:
/// an exact-constraint-list memo, a per-atom satisfiability cache, and a
/// bounded model cache for witness reuse. Memo entries key on
/// pool-independent *content hashes* (structure, widths, constants,
/// symbol ids and names — see `term_content_hash`), so one cache can
/// safely serve probes against several [`TermPool`]s: two terms share a
/// key only when they are structurally identical and bind the same
/// symbols, in which case their verdicts (and atom witnesses) coincide.
/// Raw `TermRef` indices are never used as keys — they are meaningless
/// outside the pool that interned them, and reusing them across pools
/// once served stale verdicts when a planner probed pair orders through
/// the same cache a chain fold was using.
#[derive(Debug, Default)]
pub struct SolverCache {
    /// Ordered constraint list (content hashes) → feasibility verdict.
    list_memo: HashMap<Box<[u64]>, bool>,
    /// Atom content hash → witness satisfying the atom alone (`None`:
    /// no usable witness — the atom alone was Unsat or Unknown).
    atom_memo: HashMap<u64, Option<Witness>>,
    /// Content-hash memo: `(pool uid, term index)` → hash. Sound because
    /// pools are append-only (an interned term's content never changes)
    /// and uids are process-unique.
    term_hashes: HashMap<(u64, u32), u64>,
    /// Recently discovered models, reused to answer satisfiable probes.
    models: Vec<CachedModel>,
    /// Monotone insertion stamp (eviction tie-breaker: oldest loses).
    model_seq: u64,
    /// Counters for everything routed through this cache.
    pub stats: SolverStats,
}

/// One cached model with its usage count (eviction weight).
#[derive(Debug)]
struct CachedModel {
    w: Witness,
    hits: u64,
    seq: u64,
}

/// Cached models kept for witness reuse.
const MODEL_CACHE_CAP: usize = 16;

impl SolverCache {
    /// Fresh, empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of models currently cached.
    pub fn cached_models(&self) -> usize {
        self.models.len()
    }

    fn push_model(&mut self, w: Witness) {
        self.model_seq += 1;
        let entry = CachedModel {
            w,
            hits: 0,
            seq: self.model_seq,
        };
        if self.models.len() < MODEL_CACHE_CAP {
            self.models.push(entry);
            return;
        }
        // Hit-count-weighted retention: a model that has answered many
        // probes is worth more than a fresh one-off, so evict the
        // least-used entry (FIFO only among equally-used ones). NFs with
        // hundreds of paths churn many single-use models past a few
        // hot cross-path ones; plain FIFO evicted the hot ones too.
        let i = self
            .models
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| (m.hits, m.seq))
            .map(|(i, _)| i)
            .expect("cache is non-empty at capacity");
        self.models[i] = entry;
        self.stats.model_evictions += 1;
    }
}

/// Pool-independent content hash of a term: a deterministic FNV-1a fold
/// over the node kind, widths, constant values, symbol ids *and* names,
/// and (recursively) child hashes, memoised per `(pool uid, index)` in
/// `memo`. Two terms hash equal only when they are structurally
/// identical and bind identically-numbered, identically-named symbols —
/// exactly the condition under which feasibility verdicts and cached
/// atom witnesses (which map raw [`SymId`]s) transfer between pools.
fn term_content_hash(pool: &TermPool, memo: &mut HashMap<(u64, u32), u64>, t: TermRef) -> u64 {
    let key = (pool.uid(), t.index() as u32);
    if let Some(&h) = memo.get(&key) {
        return h;
    }
    let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x0100_0000_01b3);
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    match *pool.get(t) {
        Term::Const { value, width } => {
            h = mix(h, 1);
            h = mix(h, value);
            h = mix(h, width.bits() as u64);
        }
        Term::Sym { id, width } => {
            h = mix(h, 2);
            h = mix(h, id as u64);
            h = mix(h, width.bits() as u64);
            for b in pool.sym_name(id).bytes() {
                h = mix(h, b as u64);
            }
        }
        Term::Unop { op, a } => {
            h = mix(h, 3);
            h = mix(h, op as u64);
            h = mix(h, term_content_hash(pool, memo, a));
        }
        Term::Binop { op, a, b } => {
            h = mix(h, 4);
            h = mix(h, op as u64);
            h = mix(h, term_content_hash(pool, memo, a));
            h = mix(h, term_content_hash(pool, memo, b));
        }
        Term::Ite { c, t: tt, e } => {
            h = mix(h, 5);
            h = mix(h, term_content_hash(pool, memo, c));
            h = mix(h, term_content_hash(pool, memo, tt));
            h = mix(h, term_content_hash(pool, memo, e));
        }
        Term::Zext { a, width } => {
            h = mix(h, 6);
            h = mix(h, width.bits() as u64);
            h = mix(h, term_content_hash(pool, memo, a));
        }
        Term::Trunc { a, width } => {
            h = mix(h, 7);
            h = mix(h, width.bits() as u64);
            h = mix(h, term_content_hash(pool, memo, a));
        }
    }
    memo.insert(key, h);
    h
}

/// Snapshot for [`SolverCtx::push`]/[`SolverCtx::pop`].
#[derive(Debug)]
struct Frame {
    prop: Propagator,
    n_constraints: usize,
    known_syms: HashSet<SymId>,
    cur_witness: Option<Witness>,
}

/// An incremental solving context: a constraint prefix asserted once,
/// with saved propagation state, checkpoints, and a current model.
///
/// Invariants: `prop` is exactly the state the batch solver would hold
/// after asserting `constraints` in order (which is what makes
/// [`SolverCtx::check`] bit-identical to [`Solver::check`]), and
/// `cur_witness`, when present, is a verified model of `constraints`.
#[derive(Debug)]
pub struct SolverCtx {
    solver: Solver,
    prop: Propagator,
    constraints: Vec<TermRef>,
    /// Symbols occurring in any asserted constraint (for the
    /// disjoint-support witness merge).
    known_syms: HashSet<SymId>,
    /// A verified model of the current constraint list, when one is known.
    cur_witness: Option<Witness>,
    frames: Vec<Frame>,
}

impl SolverCtx {
    /// New empty context using `solver`'s limits and seed.
    pub fn new(solver: &Solver) -> Self {
        SolverCtx {
            solver: solver.clone(),
            prop: Propagator::new(),
            constraints: Vec::new(),
            known_syms: HashSet::new(),
            cur_witness: Some(Witness::default()),
            frames: Vec::new(),
        }
    }

    /// The asserted constraint list, in assertion order.
    pub fn constraints(&self) -> &[TermRef] {
        &self.constraints
    }

    /// The current verified model of the constraint list, if one is known.
    pub fn model(&self) -> Option<&Witness> {
        self.cur_witness.as_ref()
    }

    /// Install a candidate model; kept only if it actually satisfies the
    /// current constraint list (the invariant every fast path relies on).
    pub fn install_model(&mut self, pool: &TermPool, w: Witness) {
        if w.satisfies(pool, &self.constraints) {
            self.cur_witness = Some(w);
        }
    }

    /// Number of open checkpoints.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Assert one constraint on top of the current state (the incremental
    /// analogue of appending to the batch constraint list).
    pub fn assert_term(&mut self, pool: &TermPool, t: TermRef) {
        // Keep the current model alive across the new constraint: verify
        // it, and for one-sided equations over a previously-unconstrained
        // symbol (the shape data-structure models emit from `assume`),
        // repair the model by assigning the symbol its forced value. The
        // symbol side may be wrapped in a width adapter — `zext(sym)` or
        // `trunc(sym)` — which some models emit when bridging field
        // widths; the forced value passes through the adapter unchanged
        // (for `trunc`, the free high bits are set to zero). The repair
        // cannot disturb earlier constraints — the symbol occurs in none
        // of them — and is verified before being kept, so an
        // unsatisfiable adapter equation (e.g. `zext(sym) == v` with `v`
        // wider than the symbol) simply fails verification and drops the
        // model.
        if let Some(w) = &mut self.cur_witness {
            if w.eval(pool, t) != 1 {
                let mut repaired = false;
                if let Term::Binop {
                    op: BinOp::Eq,
                    a,
                    b,
                } = *pool.get(t)
                {
                    for (s_side, e_side) in [(a, b), (b, a)] {
                        let target = match *pool.get(s_side) {
                            Term::Sym { id, .. } => Some(id),
                            Term::Zext { a: inner, .. } | Term::Trunc { a: inner, .. } => {
                                match *pool.get(inner) {
                                    Term::Sym { id, .. } => Some(id),
                                    _ => None,
                                }
                            }
                            _ => None,
                        };
                        if let Some(id) = target {
                            if !self.known_syms.contains(&id) {
                                let v = w.eval(pool, e_side);
                                w.set(id, v);
                                if w.eval(pool, t) == 1 {
                                    repaired = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                if !repaired {
                    self.cur_witness = None;
                }
            }
        }
        self.constraints.push(t);
        self.prop.assert_atom(pool, t, true);
        self.known_syms.extend(pool.syms_of(t).iter().copied());
    }

    /// Save a checkpoint of the full propagation state.
    pub fn push(&mut self) {
        self.frames.push(Frame {
            prop: self.prop.clone(),
            n_constraints: self.constraints.len(),
            known_syms: self.known_syms.clone(),
            cur_witness: self.cur_witness.clone(),
        });
    }

    /// Restore the most recent checkpoint.
    pub fn pop(&mut self) {
        let f = self.frames.pop().expect("pop without matching push");
        self.prop = f.prop;
        self.constraints.truncate(f.n_constraints);
        self.known_syms = f.known_syms;
        self.cur_witness = f.cur_witness;
    }

    fn memo_key(
        &self,
        pool: &TermPool,
        cache: &mut SolverCache,
        extra: Option<TermRef>,
    ) -> Box<[u64]> {
        let mut key: Vec<u64> = self
            .constraints
            .iter()
            .map(|&c| term_content_hash(pool, &mut cache.term_hashes, c))
            .collect();
        if let Some(e) = extra {
            key.push(term_content_hash(pool, &mut cache.term_hashes, e));
        }
        key.into_boxed_slice()
    }

    /// Witness satisfying `atom` alone, solved once per atom and cached.
    /// Atoms fully absorbed by propagation (single comparisons — the
    /// overwhelmingly common branch-condition shape) are answered by
    /// reading the propagated domain back, with no search at all.
    fn atom_witness(
        solver: &Solver,
        pool: &TermPool,
        cache: &mut SolverCache,
        atom: TermRef,
    ) -> Option<Witness> {
        let k = term_content_hash(pool, &mut cache.term_hashes, atom);
        if let Some(w) = cache.atom_memo.get(&k) {
            return w.clone();
        }
        let mut prop = Propagator::new();
        prop.assert_atom(pool, atom, true);
        let mut w = None;
        if !prop.contradiction && prop.residual.is_empty() {
            // Fully absorbed: every support symbol has a consistent
            // domain; the trial-0 assignment (bound value or interval
            // low, nudged off recorded disequalities) is a model if one
            // exists. Verified before use, so this stays sound.
            let mut cand = Witness::default();
            for &s in pool.syms_of(atom) {
                let r = prop.find(s);
                let v = if let Some(&v) = prop.bound.get(&r) {
                    v
                } else {
                    let iv = prop.iv(pool, r);
                    let v = iv.lo;
                    if prop.diseq.iter().any(|&(ds, dv)| ds == r && dv == v) && v < iv.hi {
                        v + 1
                    } else {
                        v
                    }
                };
                cand.set(r, v);
            }
            for &s in pool.syms_of(atom) {
                let r = prop.find(s);
                let v = cand.get(r);
                cand.set(s, v);
            }
            if cand.eval(pool, atom) == 1 {
                w = Some(cand);
            }
        }
        if w.is_none() && !prop.contradiction {
            // Residual or oddly-shaped atom: run the real procedure once.
            cache.stats.solver_queries += 1;
            let res = solver.finish(pool, &[atom], prop, Finish::Full, Some(&mut cache.stats));
            if let SolveResult::Sat(got) = res {
                w = Some(got);
            }
        }
        cache.atom_memo.insert(k, w.clone());
        w
    }

    /// Feasibility of `constraints + [extra]`, decided against the saved
    /// prefix state with a single push/pop. Returns exactly the verdict
    /// the batch `is_feasible` would.
    pub fn probe_feasible(
        &mut self,
        pool: &TermPool,
        cache: &mut SolverCache,
        extra: TermRef,
    ) -> bool {
        cache.stats.checks_requested += 1;
        // 1. The current model already satisfies the extra atom: the
        //    extended list is satisfied by a verified witness.
        if let Some(w) = &self.cur_witness {
            if w.eval(pool, extra) == 1 {
                cache.stats.witness_reuse_hits += 1;
                return true;
            }
        }
        // 2. Exact-list memo (identical ordered probe seen before —
        //    possibly against a different pool holding the same terms).
        let key = self.memo_key(pool, cache, Some(extra));
        if let Some(&f) = cache.list_memo.get(&key) {
            cache.stats.memo_hits += 1;
            return f;
        }
        // 3. No live model (scheduled replays assert their prefix without
        //    probing, which usually kills the initial all-zeros model):
        //    revive one from the cache. A model satisfying the whole
        //    extended list answers immediately; one satisfying just the
        //    prefix re-arms the merge path below.
        if self.cur_witness.is_none() {
            let mut prefix_model = None;
            for i in 0..cache.models.len() {
                let m = &cache.models[i].w;
                if self.constraints.iter().all(|&c| m.eval(pool, c) == 1) {
                    if m.eval(pool, extra) == 1 {
                        let w = m.clone();
                        cache.models[i].hits += 1;
                        cache.stats.witness_reuse_hits += 1;
                        cache.list_memo.insert(key, true);
                        self.cur_witness = Some(w);
                        return true;
                    }
                    if prefix_model.is_none() {
                        prefix_model = Some((i, m.clone()));
                    }
                }
            }
            if let Some((i, m)) = prefix_model {
                cache.models[i].hits += 1;
                self.cur_witness = Some(m);
            }
        }
        // 4. Disjoint-support merge: the atom touches only symbols no
        //    current constraint mentions, so a witness of the atom alone
        //    extends the current model without disturbing it.
        if self.cur_witness.is_some() {
            let syms = pool.syms_of(extra);
            if !syms.is_empty() && syms.iter().all(|s| !self.known_syms.contains(s)) {
                if let Some(wa) = Self::atom_witness(&self.solver, pool, cache, extra) {
                    let mut w = self.cur_witness.clone().unwrap();
                    for &s in syms {
                        w.set(s, wa.get(s));
                    }
                    cache.stats.witness_reuse_hits += 1;
                    cache.list_memo.insert(key, true);
                    self.cur_witness = Some(w.clone());
                    cache.push_model(w);
                    return true;
                }
            }
        }
        // 5/6. One-atom push against saved state, then the shared tail:
        //      propagation contradiction answers immediately, otherwise
        //      the decision procedure runs from the saved state (no
        //      replay). Any model found is carried past the pop — it
        //      satisfies prefix + extra, hence the prefix too.
        self.push();
        self.assert_term(pool, extra);
        // `key` (prefix + extra) is exactly this frame's constraint list.
        let feasible = self.decide_current(pool, cache, key);
        let carried = if feasible {
            self.cur_witness.take()
        } else {
            None
        };
        self.pop();
        if let Some(w) = carried {
            self.cur_witness = Some(w);
        }
        feasible
    }

    /// Feasibility of the current constraint list (the final whole-path
    /// check). Same cascade as [`SolverCtx::probe_feasible`].
    pub fn current_feasible(&mut self, pool: &TermPool, cache: &mut SolverCache) -> bool {
        cache.stats.checks_requested += 1;
        let key = self.memo_key(pool, cache, None);
        self.decide_current(pool, cache, key)
    }

    /// Shared tail of the decision cascade for the *current* constraint
    /// list: memo lookup → model revival → saved-state contradiction →
    /// full procedure from saved state (with completion, so a model comes
    /// back for future witness reuse). Verdict is memoised under `key`.
    fn decide_current(
        &mut self,
        pool: &TermPool,
        cache: &mut SolverCache,
        key: Box<[u64]>,
    ) -> bool {
        // A live model (e.g. kept alive by assert_term's verified repair)
        // already proves the current list satisfiable.
        if self.cur_witness.is_some() {
            cache.stats.witness_reuse_hits += 1;
            cache.list_memo.insert(key, true);
            return true;
        }
        if let Some(&f) = cache.list_memo.get(&key) {
            cache.stats.memo_hits += 1;
            return f;
        }
        {
            for i in 0..cache.models.len() {
                if self
                    .constraints
                    .iter()
                    .all(|&c| cache.models[i].w.eval(pool, c) == 1)
                {
                    let w = cache.models[i].w.clone();
                    cache.models[i].hits += 1;
                    cache.stats.witness_reuse_hits += 1;
                    cache.list_memo.insert(key, true);
                    self.cur_witness = Some(w);
                    return true;
                }
            }
        }
        let feasible = if self.prop.contradiction {
            cache.stats.unsat_by_propagation += 1;
            false
        } else {
            cache.stats.solver_queries += 1;
            let res = self.solver.finish(
                pool,
                &self.constraints,
                self.prop.clone(),
                Finish::Full,
                Some(&mut cache.stats),
            );
            if let SolveResult::Sat(w) = &res {
                cache.push_model(w.clone());
                self.cur_witness = Some(w.clone());
            }
            res.possibly_sat()
        };
        cache.list_memo.insert(key, feasible);
        feasible
    }

    /// Full batch-equivalent decision of the current constraint list.
    /// Bit-identical to `Solver::check(pool, self.constraints())`.
    pub fn check(&self, pool: &TermPool) -> SolveResult {
        if self.prop.contradiction {
            return SolveResult::Unsat;
        }
        self.solver.finish(
            pool,
            &self.constraints,
            self.prop.clone(),
            Finish::Full,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> Solver {
        Solver::default()
    }

    #[test]
    fn empty_is_sat() {
        let pool = TermPool::new();
        assert!(matches!(solver().check(&pool, &[]), SolveResult::Sat(_)));
    }

    #[test]
    fn field_equality() {
        let mut p = TermPool::new();
        let et = p.fresh_sym("ether_type", Width::W16);
        let c = p.constant(0x0800, Width::W16);
        let eq = p.eq(et, c);
        match solver().check(&p, &[eq]) {
            SolveResult::Sat(w) => assert_eq!(w.get(0), 0x0800),
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn conflicting_equalities_unsat() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let c3 = p.constant(3, Width::W32);
        let c4 = p.constant(4, Width::W32);
        let a = p.eq(x, c3);
        let b = p.eq(x, c4);
        assert_eq!(solver().check(&p, &[a, b]), SolveResult::Unsat);
    }

    #[test]
    fn empty_interval_unsat() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let five = p.constant(5, Width::W32);
        let seven = p.constant(7, Width::W32);
        let lt = p.ult(x, five);
        let ge = p.ule(seven, x);
        assert_eq!(solver().check(&p, &[lt, ge]), SolveResult::Unsat);
    }

    #[test]
    fn boolean_conflict_unsat() {
        let mut p = TermPool::new();
        let b = p.fresh_sym("hit", Width::W1);
        let nb = p.not(b);
        assert_eq!(solver().check(&p, &[b, nb]), SolveResult::Unsat);
    }

    #[test]
    fn union_find_transitivity() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let z = p.fresh_sym("z", Width::W32);
        let c = p.constant(9, Width::W32);
        let exy = p.eq(x, y);
        let eyz = p.eq(y, z);
        let ezc = p.eq(z, c);
        match solver().check(&p, &[exy, eyz, ezc]) {
            SolveResult::Sat(w) => {
                assert_eq!(w.get(0), 9);
                assert_eq!(w.get(1), 9);
                assert_eq!(w.get(2), 9);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn union_find_conflict() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let c1 = p.constant(1, Width::W32);
        let c2 = p.constant(2, Width::W32);
        let exc = p.eq(x, c1);
        let eyc = p.eq(y, c2);
        let exy = p.eq(x, y);
        assert_eq!(solver().check(&p, &[exc, eyc, exy]), SolveResult::Unsat);
    }

    #[test]
    fn range_witness_in_bounds() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let lo = p.constant(10, Width::W32);
        let hi = p.constant(20, Width::W32);
        let a = p.ule(lo, x);
        let b = p.ult(x, hi);
        match solver().check(&p, &[a, b]) {
            SolveResult::Sat(w) => {
                let v = w.get(0);
                assert!((10..20).contains(&v), "witness {v} out of range");
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn disequality_respected() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W8);
        let c = p.constant(0, Width::W8);
        let ne = p.ne(x, c);
        let three = p.constant(3, Width::W8);
        let lt = p.ult(x, three);
        match solver().check(&p, &[ne, lt]) {
            SolveResult::Sat(w) => {
                let v = w.get(0);
                assert!(v == 1 || v == 2);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn equation_directed_repair() {
        // y == x + 5 with x == 3: repair must find y = 8.
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let y = p.fresh_sym("y", Width::W32);
        let five = p.constant(5, Width::W32);
        let sum = p.add(x, five);
        let eq1 = p.eq(y, sum);
        let three = p.constant(3, Width::W32);
        let eq2 = p.eq(x, three);
        match solver().check(&p, &[eq1, eq2]) {
            SolveResult::Sat(w) => {
                assert_eq!(w.get(0), 3);
                assert_eq!(w.get(1), 8);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn chain_style_link_constraint() {
        // Downstream input symbol linked to an upstream output expression:
        // out = ite(opts == 0, 0x0800, 0x86dd); in == out; in == 0x0800.
        let mut p = TermPool::new();
        let opts = p.fresh_sym("nf1.ip_opts", Width::W8);
        let inp = p.fresh_sym("nf2.ether_type", Width::W16);
        let zero8 = p.constant(0, Width::W8);
        let is_zero = p.eq(opts, zero8);
        let v4 = p.constant(0x0800, Width::W16);
        let v6 = p.constant(0x86dd, Width::W16);
        let out = p.ite(is_zero, v4, v6);
        let link = p.eq(inp, out);
        let want = p.eq(inp, v4);
        match solver().check(&p, &[link, want]) {
            SolveResult::Sat(w) => {
                assert_eq!(w.get(0), 0, "opts must be 0");
                assert_eq!(w.get(1), 0x0800);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn constant_contradiction_unsat() {
        let mut p = TermPool::new();
        let inp = p.fresh_sym("in", Width::W16);
        let c5 = p.constant(5, Width::W16);
        let c6 = p.constant(6, Width::W16);
        let a = p.eq(inp, c5);
        let b = p.eq(inp, c6);
        assert_eq!(solver().check(&p, &[a, b]), SolveResult::Unsat);
    }

    #[test]
    fn sat_results_are_verified() {
        let mut p = TermPool::new();
        let a = p.fresh_sym("a", Width::W8);
        let b = p.fresh_sym("b", Width::W8);
        let sum = p.add(a, b);
        let c10 = p.constant(10, Width::W8);
        let eq = p.eq(sum, c10);
        let c3 = p.constant(3, Width::W8);
        let alow = p.ule(a, c3);
        if let SolveResult::Sat(w) = solver().check(&p, &[eq, alow]) {
            assert!(w.satisfies(&p, &[eq, alow]));
        }
        // Unknown is acceptable here (the sum is outside the propagator's
        // fragment); Sat must be genuine when returned.
    }

    #[test]
    fn determinism() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let lo = p.constant(100, Width::W32);
        let c = p.ule(lo, x);
        let w1 = match solver().check(&p, &[c]) {
            SolveResult::Sat(w) => w,
            r => panic!("expected sat, got {r:?}"),
        };
        let w2 = match solver().check(&p, &[c]) {
            SolveResult::Sat(w) => w,
            r => panic!("expected sat, got {r:?}"),
        };
        assert_eq!(w1, w2);
    }

    #[test]
    fn negated_comparison_normalisation() {
        // !(x < 5) and x <= 4 is unsat.
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let five = p.constant(5, Width::W32);
        let four = p.constant(4, Width::W32);
        let lt = p.ult(x, five);
        let nlt = p.not(lt);
        let le4 = p.ule(x, four);
        assert_eq!(solver().check(&p, &[nlt, le4]), SolveResult::Unsat);
    }

    // ------------------------------------------------------------------
    // Incremental context
    // ------------------------------------------------------------------

    #[test]
    fn ctx_check_matches_batch() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W16);
        let y = p.fresh_sym("y", Width::W16);
        let c1 = p.constant(7, Width::W16);
        let eq = p.eq(x, c1);
        let lim = p.constant(100, Width::W16);
        let lt = p.ult(y, lim);
        let link = p.eq(x, y);
        let cs = [eq, lt, link];
        let s = solver();
        let mut ctx = SolverCtx::new(&s);
        for &c in &cs {
            ctx.assert_term(&p, c);
        }
        assert_eq!(ctx.check(&p), s.check(&p, &cs));
    }

    #[test]
    fn push_pop_restores_state() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W8);
        let c5 = p.constant(5, Width::W8);
        let lt = p.ult(x, c5);
        let ge = p.ule(c5, x);
        let s = solver();
        let mut cache = SolverCache::new();
        let mut ctx = SolverCtx::new(&s);
        ctx.assert_term(&p, lt);
        // Probe the contradictory extension, then check the prefix again.
        assert!(!ctx.probe_feasible(&p, &mut cache, ge));
        assert_eq!(ctx.depth(), 0, "probe leaves no open frame");
        assert!(ctx.current_feasible(&p, &mut cache));
        assert_eq!(ctx.constraints(), &[lt]);
    }

    #[test]
    fn probe_matches_batch_classification() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W16);
        let y = p.fresh_sym("y", Width::W16);
        let c10 = p.constant(10, Width::W16);
        let c20 = p.constant(20, Width::W16);
        let base = vec![p.ule(c10, x), p.ult(x, c20)];
        let probes = vec![
            p.eq(y, c10),
            p.ult(x, c10), // contradicts the prefix
            p.eq(x, y),
            p.ne(x, x), // constant false
        ];
        let s = solver();
        let mut cache = SolverCache::new();
        let mut ctx = SolverCtx::new(&s);
        for &c in &base {
            ctx.assert_term(&p, c);
        }
        for &atom in &probes {
            let mut full = base.clone();
            full.push(atom);
            assert_eq!(
                ctx.probe_feasible(&p, &mut cache, atom),
                s.is_feasible(&p, &full),
                "probe diverged from batch on {}",
                p.display(atom)
            );
        }
    }

    #[test]
    fn memo_answers_repeated_probes() {
        let mut p = TermPool::new();
        let x = p.fresh_sym("x", Width::W32);
        let c = p.constant(3, Width::W32);
        let ne = p.ne(x, c);
        let s = solver();
        let mut cache = SolverCache::new();
        let mut ctx = SolverCtx::new(&s);
        ctx.assert_term(&p, ne);
        // Two walks over the same prefix issue the identical probe.
        let atom = p.eq(x, c);
        let first = ctx.probe_feasible(&p, &mut cache, atom);
        let before = cache.stats.solver_queries + cache.stats.unsat_by_propagation;
        let second = ctx.probe_feasible(&p, &mut cache, atom);
        assert_eq!(first, second);
        assert_eq!(
            cache.stats.solver_queries + cache.stats.unsat_by_propagation,
            before,
            "repeat probe must be answered from the caches"
        );
    }

    #[test]
    fn width_adapter_equations_keep_models_alive() {
        // eq(zext(sym), expr) / eq(trunc(sym), expr) over fresh symbols
        // must repair the current model instead of dropping it — the
        // shape width-bridging data-structure models emit from `assume`.
        let mut p = TermPool::new();
        let s = solver();
        let mut ctx = SolverCtx::new(&s);
        let base = p.fresh_sym("base", Width::W8);
        let c1 = p.constant(1, Width::W8);
        let ge1 = p.ule(c1, base);
        ctx.assert_term(&p, ge1);
        // The initial model died (base defaults to 0): restore one.
        let mut cache = SolverCache::new();
        assert!(ctx.current_feasible(&p, &mut cache));
        assert!(ctx.model().is_some());
        // zext adapter over a fresh symbol.
        let f1 = p.fresh_sym("f1", Width::W8);
        let z = p.zext(f1, Width::W16);
        let k = p.constant(0x77, Width::W16);
        let eq_z = p.eq(z, k);
        ctx.assert_term(&p, eq_z);
        let m = ctx.model().expect("zext repair must keep the model");
        assert_eq!(m.get(1), 0x77);
        // trunc adapter over another fresh symbol.
        let f2 = p.fresh_sym("f2", Width::W16);
        let t = p.trunc(f2, Width::W8);
        let k8 = p.constant(0x5A, Width::W8);
        let eq_t = p.eq(k8, t); // flipped side
        ctx.assert_term(&p, eq_t);
        let m = ctx.model().expect("trunc repair must keep the model");
        assert_eq!(m.get(2) & 0xFF, 0x5A);
        assert!(m.satisfies(&p, ctx.constraints()));
    }

    #[test]
    fn unrepairable_zext_equation_drops_the_model() {
        // zext(sym8) == 0x123 has no solution; the "repair" must fail
        // verification and drop the model, never keep a bogus one.
        let mut p = TermPool::new();
        let s = solver();
        let mut ctx = SolverCtx::new(&s);
        let f = p.fresh_sym("f", Width::W8);
        let z = p.zext(f, Width::W16);
        let k = p.constant(0x123, Width::W16);
        let eq = p.eq(z, k);
        ctx.assert_term(&p, eq);
        assert!(ctx.model().is_none());
        let mut cache = SolverCache::new();
        assert!(
            !ctx.current_feasible(&p, &mut cache),
            "the equation is unsatisfiable"
        );
    }

    #[test]
    fn model_cache_evicts_and_counts() {
        let mut p = TermPool::new();
        let s = solver();
        let mut cache = SolverCache::new();
        let zero = p.constant(0, Width::W8);
        for i in 0..40u32 {
            let x = p.fresh_sym(format!("x{i}"), Width::W8);
            let ne = p.ne(x, zero);
            let mut ctx = SolverCtx::new(&s);
            // `ne` kills the initial all-zeros model, forcing a full
            // solve that caches a fresh model each round.
            ctx.assert_term(&p, ne);
            assert!(ctx.current_feasible(&p, &mut cache));
        }
        assert_eq!(cache.cached_models(), 16, "cache stays bounded");
        assert_eq!(
            cache.stats.model_evictions, 24,
            "40 inserts into 16 slots evict 24"
        );
    }

    #[test]
    fn hot_models_survive_one_off_churn() {
        let mut p = TermPool::new();
        let s = solver();
        let mut cache = SolverCache::new();
        let h = p.fresh_sym("hot", Width::W8);
        let zero = p.constant(0, Width::W8);
        let hot_atom = p.ne(h, zero);
        // Seed the hot model and let it answer several distinct lists so
        // it accumulates hits.
        for k in 10..20u64 {
            let kc = p.constant(k, Width::W8);
            let bound = p.ule(h, kc);
            let mut ctx = SolverCtx::new(&s);
            ctx.assert_term(&p, hot_atom);
            ctx.assert_term(&p, bound);
            assert!(ctx.current_feasible(&p, &mut cache));
        }
        // Churn: 30 one-off models over fresh symbols. Plain FIFO would
        // have rotated the hot model out after 16 of these.
        for i in 0..30u32 {
            let x = p.fresh_sym(format!("x{i}"), Width::W8);
            let ne = p.ne(x, zero);
            let mut ctx = SolverCtx::new(&s);
            ctx.assert_term(&p, ne);
            assert!(ctx.current_feasible(&p, &mut cache));
        }
        // A fresh list only the hot model satisfies must be answered by
        // witness reuse, not a new solve.
        let kc = p.constant(99, Width::W8);
        let bound = p.ule(h, kc);
        let mut ctx = SolverCtx::new(&s);
        ctx.assert_term(&p, hot_atom);
        ctx.assert_term(&p, bound);
        let queries_before = cache.stats.solver_queries;
        assert!(ctx.current_feasible(&p, &mut cache));
        assert_eq!(
            cache.stats.solver_queries, queries_before,
            "hot model must answer from the cache"
        );
    }

    #[test]
    fn feasibility_skips_completion() {
        let mut p = TermPool::new();
        let a = p.fresh_sym("a", Width::W8);
        let b = p.fresh_sym("b", Width::W8);
        let sum = p.add(a, b);
        let c10 = p.constant(10, Width::W8);
        let eq = p.eq(sum, c10);
        // Batch feasibility agrees with batch check classification.
        assert_eq!(
            solver().is_feasible(&p, &[eq]),
            solver().check(&p, &[eq]).possibly_sat()
        );
    }
}
