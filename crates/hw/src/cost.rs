//! Per-instruction-class cycle costs.
//!
//! Two tables, mirroring §3.5:
//!
//! * [`CostTable::conservative`] — worst-case latency per instruction, in
//!   the style of the Intel® 64 and IA-32 Architectures Optimization
//!   Reference Manual's latency columns. Because out-of-order scheduling
//!   is proprietary, BOLT assumes zero overlap between instructions.
//! * [`CostTable::testbed`] — effective *throughput* costs on a wide
//!   out-of-order core, where independent ALU work retires several
//!   instructions per cycle and well-predicted branches are nearly free.
//!
//! Memory costs (`l1_hit`, `l2_hit`, `l3_hit`, `mem_latency`) are the
//! published Xeon E5 v2 load-to-use latencies; both tables share the same
//! DRAM latency so that a genuinely uncacheable pointer chase (program P1
//! in §5.1) is predicted within a few percent, as in the paper.

use bolt_trace::InstrClass;

/// Cycle costs per instruction class plus memory-level latencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostTable {
    /// Indexed by [`InstrClass::index`].
    pub per_class: [f64; 10],
    /// L1D load-to-use latency.
    pub l1_hit: f64,
    /// L2 load-to-use latency.
    pub l2_hit: f64,
    /// L3 load-to-use latency.
    pub l3_hit: f64,
    /// Main-memory latency.
    pub mem_latency: f64,
    /// Cost of retiring a store through the store buffer (testbed only;
    /// the conservative table charges stores like loads).
    pub store_buffer: f64,
}

impl CostTable {
    /// Worst-case per-instruction costs (the BOLT model).
    pub fn conservative() -> Self {
        let mut per_class = [0.0; 10];
        per_class[InstrClass::Alu.index()] = 1.0;
        per_class[InstrClass::Mul.index()] = 5.0;
        per_class[InstrClass::Div.index()] = 95.0;
        per_class[InstrClass::Branch.index()] = 2.0;
        per_class[InstrClass::Load.index()] = 1.0; // address generation
        per_class[InstrClass::Store.index()] = 1.0;
        per_class[InstrClass::Call.index()] = 4.0;
        per_class[InstrClass::Ret.index()] = 4.0;
        per_class[InstrClass::Crc.index()] = 3.0;
        per_class[InstrClass::Other.index()] = 20.0;
        CostTable {
            per_class,
            l1_hit: 4.0,
            l2_hit: 12.0, // unused by the conservative model
            l3_hit: 36.0, // unused by the conservative model
            mem_latency: 200.0,
            store_buffer: 1.0,
        }
    }

    /// Effective throughput costs on the out-of-order testbed.
    pub fn testbed() -> Self {
        let mut per_class = [0.0; 10];
        per_class[InstrClass::Alu.index()] = 0.25;
        per_class[InstrClass::Mul.index()] = 1.0;
        per_class[InstrClass::Div.index()] = 22.0;
        per_class[InstrClass::Branch.index()] = 0.5;
        per_class[InstrClass::Load.index()] = 0.5;
        per_class[InstrClass::Store.index()] = 0.5;
        per_class[InstrClass::Call.index()] = 1.0;
        per_class[InstrClass::Ret.index()] = 1.0;
        per_class[InstrClass::Crc.index()] = 1.0;
        per_class[InstrClass::Other.index()] = 10.0;
        CostTable {
            per_class,
            l1_hit: 4.0,
            l2_hit: 12.0,
            l3_hit: 36.0,
            mem_latency: 200.0,
            store_buffer: 1.0,
        }
    }

    /// Cost of one instruction of the given class (excludes memory
    /// hierarchy latency, which the models add per access).
    pub fn class_cost(&self, class: InstrClass) -> f64 {
        self.per_class[class.index()]
    }

    /// Cycles to merge the results of `branches` NF executions that ran
    /// in parallel on sibling cores (the join step of a parallelized
    /// chain group): one cross-core coherence transfer for the verdict
    /// line of the *slowest* branch — the earlier finishers' lines are
    /// fetched while the merge core is still waiting, so only the
    /// critical-path transfer is charged at full memory latency — plus,
    /// per branch, the load, compare-and-branch, and ALU combine that
    /// fold its verdict and packet deltas into the merged result.
    ///
    /// Zero for a single branch: a group of one is just the stage itself
    /// and needs no merge.
    pub fn parallel_merge_cycles(&self, branches: usize) -> u64 {
        if branches <= 1 {
            return 0;
        }
        let per_branch = self.class_cost(InstrClass::Load)
            + self.class_cost(InstrClass::Branch)
            + self.class_cost(InstrClass::Alu);
        (self.mem_latency + branches as f64 * per_branch).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservative_dominates_testbed_per_class() {
        let cons = CostTable::conservative();
        let test = CostTable::testbed();
        for class in InstrClass::ALL {
            assert!(
                cons.class_cost(class) >= test.class_cost(class),
                "class {class:?}: conservative {} < testbed {}",
                cons.class_cost(class),
                test.class_cost(class)
            );
        }
        assert!(cons.mem_latency >= test.mem_latency);
        assert!(cons.l1_hit >= test.l1_hit);
    }

    #[test]
    fn merge_cost_is_monotone_and_zero_for_singletons() {
        for table in [CostTable::conservative(), CostTable::testbed()] {
            assert_eq!(table.parallel_merge_cycles(0), 0);
            assert_eq!(table.parallel_merge_cycles(1), 0);
            let mut prev = 0;
            for n in 2..=8 {
                let c = table.parallel_merge_cycles(n);
                assert!(c > prev, "merge cost must grow with the fan-in");
                prev = c;
            }
            // One coherence transfer dominates: merging must stay far
            // cheaper than re-running a memory-touching stage.
            assert!(table.parallel_merge_cycles(2) < 2 * table.mem_latency as u64);
        }
    }

    #[test]
    fn shared_dram_latency_for_p1_accuracy() {
        // §5.1: BOLT's latency prediction for the non-contiguous linked
        // list (P1) was within 5% of measured. That requires the two
        // models to agree on raw DRAM latency.
        assert_eq!(
            CostTable::conservative().mem_latency,
            CostTable::testbed().mem_latency
        );
    }
}
