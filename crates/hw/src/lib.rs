//! Hardware models for the cycles metric.
//!
//! The paper uses two "machines":
//!
//! * **BOLT's conservative model** (§3.5): per-instruction worst-case
//!   latencies from the Intel optimisation manual, and *every* memory
//!   access charged main-memory latency unless the model can definitively
//!   prove the line is in the private L1D (by tracking spatial and temporal
//!   locality). No L2/L3, no prefetching, no memory-level parallelism
//!   (MLP), no out-of-order overlap. This is [`ConservativeModel`].
//!
//! * **The real Xeon testbed** that produces the measured cycle counts.
//!   Since this reproduction has no hardware, [`TestbedModel`] simulates a
//!   machine with exactly the features §3.5 lists as unmodelled:
//!   a full L1/L2/L3 hierarchy, a next-line prefetcher, MLP (independent
//!   misses overlap), and superscalar issue (sub-cycle per-instruction
//!   throughput). Conservative-vs-testbed ratios therefore reproduce the
//!   paper's Table 3 shape: ≈1× for pointer chases the conservative model
//!   predicts well (program P1), small-integer× for typical NF traffic,
//!   and larger for prefetch-friendly pathological loops (P2/P3, mass
//!   expiry).
//!
//! Both models implement [`Tracer`], so they consume event streams online
//! (constant memory), and both can be reset to a cold state — the
//! conservative model is reset per execution path, because a contract may
//! not assume anything about cache contents when a packet arrives.

pub mod cache;
pub mod cost;

pub use cache::{CacheParams, CacheSim};
pub use cost::CostTable;

use bolt_trace::{Marker, TraceEvent, Tracer};

/// BOLT's conservative hardware model (§3.5).
///
/// Charges worst-case latency per instruction class and main-memory
/// latency for every access it cannot prove L1-resident. The proof is an
/// exact L1D simulation seeded cold: a hit in the simulated L1D *is* a
/// proof of residency (spatial locality within a line already fetched on
/// this path, or temporal locality to a line fetched earlier on this
/// path), so it is charged the L1 latency; everything else is charged
/// `mem_latency`.
#[derive(Debug, Clone)]
pub struct ConservativeModel {
    /// L1D simulator used as the residency prover.
    pub l1: CacheSim,
    /// Per-class worst-case costs.
    pub cost: CostTable,
    cycles: f64,
}

impl ConservativeModel {
    /// New cold model with default Xeon-like parameters.
    pub fn new() -> Self {
        ConservativeModel {
            l1: CacheSim::new(CacheParams::l1d()),
            cost: CostTable::conservative(),
            cycles: 0.0,
        }
    }

    /// Cycles accumulated so far (rounded up; the bound must stay a bound).
    pub fn cycles(&self) -> u64 {
        self.cycles.ceil() as u64
    }

    /// Reset to a cold state (new path ⇒ no assumptions about the cache).
    pub fn reset(&mut self) {
        self.l1.reset();
        self.cycles = 0.0;
    }

    fn mem_access(&mut self, addr: u64, bytes: u8) {
        // An access can straddle a line boundary; charge each line touched.
        let line = self.l1.params().line_size as u64;
        let first = addr / line;
        let last = (addr + bytes.max(1) as u64 - 1) / line;
        for l in first..=last {
            let a = l * line;
            if self.l1.access(a) {
                self.cycles += self.cost.l1_hit;
            } else {
                self.cycles += self.cost.mem_latency;
            }
        }
    }
}

impl Default for ConservativeModel {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer for ConservativeModel {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Instr { class, n } => {
                self.cycles += self.cost.class_cost(class) * n as f64;
            }
            TraceEvent::MemRead { addr, bytes, .. } => {
                self.cycles += self.cost.class_cost(bolt_trace::InstrClass::Load);
                self.mem_access(addr, bytes);
            }
            TraceEvent::MemWrite { addr, bytes } => {
                self.cycles += self.cost.class_cost(bolt_trace::InstrClass::Store);
                self.mem_access(addr, bytes);
            }
            _ => {}
        }
    }
}

/// Simulated testbed machine: stands in for the paper's Xeon E5-2667v2 DUT.
///
/// Models, deliberately, everything the conservative model refuses to
/// model:
///
/// * three-level cache hierarchy with LRU replacement;
/// * a next-line prefetcher that detects ascending line streams and pulls
///   the following lines into the hierarchy ahead of use;
/// * memory-level parallelism: an *independent* miss issued while another
///   miss is outstanding only pays the DRAM bandwidth increment, not the
///   full latency; *dependent* (pointer-chasing) misses serialise;
/// * superscalar issue: ALU-class instructions retire at an average
///   throughput below one cycle each;
/// * a store buffer: store misses do not stall the pipeline.
#[derive(Debug, Clone)]
pub struct TestbedModel {
    /// L1 data cache.
    pub l1: CacheSim,
    /// Unified L2.
    pub l2: CacheSim,
    /// Shared L3 slice.
    pub l3: CacheSim,
    /// Per-class throughput costs.
    pub cost: CostTable,
    /// Prefetch degree: how many next lines are pulled on a detected stream.
    pub prefetch_degree: u64,
    /// Maximum overlapped misses (MLP window).
    pub mlp_degree: u32,
    /// DRAM bandwidth increment per overlapped miss, cycles.
    pub overlap_increment: f64,
    /// Two misses closer together than this (in cycles of intervening
    /// work) are considered overlappable by the out-of-order window.
    pub mlp_window: f64,
    /// Effective cost of an *independent* L1 hit: the out-of-order core
    /// pipelines them at ~1/cycle, while dependent (pointer-chasing) hits
    /// pay the full load-to-use latency.
    pub l1_hit_independent: f64,
    cycles: f64,
    /// Cycle at which the most recent miss group finished.
    last_miss_end: f64,
    /// Number of misses currently overlapped.
    outstanding: u32,
    /// Recently accessed lines (stream detection table).
    streams: [u64; 8],
    stream_next: usize,
}

impl TestbedModel {
    /// New cold testbed with Xeon-like parameters.
    pub fn new() -> Self {
        TestbedModel {
            l1: CacheSim::new(CacheParams::l1d()),
            l2: CacheSim::new(CacheParams::l2()),
            l3: CacheSim::new(CacheParams::l3()),
            cost: CostTable::testbed(),
            prefetch_degree: 2,
            mlp_degree: 10,
            overlap_increment: 24.0,
            mlp_window: 48.0,
            l1_hit_independent: 1.0,
            cycles: 0.0,
            last_miss_end: f64::NEG_INFINITY,
            outstanding: 0,
            streams: [u64::MAX; 8],
            stream_next: 0,
        }
    }

    /// Cycles accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.round() as u64
    }

    /// Exact fractional cycle count (for CDF plots).
    pub fn cycles_f64(&self) -> f64 {
        self.cycles
    }

    /// Reset to a cold machine.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.cycles = 0.0;
        self.last_miss_end = f64::NEG_INFINITY;
        self.outstanding = 0;
        self.streams = [u64::MAX; 8];
        self.stream_next = 0;
    }

    /// Look up the hierarchy; returns the latency of the level that hit and
    /// installs the line everywhere above it.
    fn hierarchy_latency(&mut self, line_addr: u64) -> f64 {
        if self.l1.access(line_addr) {
            return self.cost.l1_hit;
        }
        if self.l2.access(line_addr) {
            self.l1.install(line_addr);
            return self.cost.l2_hit;
        }
        if self.l3.access(line_addr) {
            self.l1.install(line_addr);
            self.l2.install(line_addr);
            return self.cost.l3_hit;
        }
        self.l1.install(line_addr);
        self.l2.install(line_addr);
        self.l3.install(line_addr);
        self.cost.mem_latency
    }

    /// Stream detection, trained on *every* access: an access to line `L`
    /// extends a stream if `L-1` or `L-2` was touched recently.
    fn detect_stream(&mut self, line: u64) -> bool {
        let hit = self
            .streams
            .iter()
            .any(|&s| s != u64::MAX && (line == s + 1 || line == s + 2));
        self.streams[self.stream_next] = line;
        self.stream_next = (self.stream_next + 1) % self.streams.len();
        hit
    }

    fn mem_access(&mut self, addr: u64, bytes: u8, dep: bool, is_store: bool) {
        let line_size = self.l1.params().line_size as u64;
        let first = addr / line_size;
        let last = (addr + bytes.max(1) as u64 - 1) / line_size;
        for l in first..=last {
            let line_addr = l * line_size;
            // Prefetch ahead of any detected ascending stream, hit or miss,
            // so an established stream stays resident ahead of the access
            // point.
            let streaming = self.detect_stream(l);
            if streaming {
                for k in 1..=self.prefetch_degree {
                    let pf = (l + k) * line_size;
                    self.l1.install(pf);
                    self.l2.install(pf);
                    self.l3.install(pf);
                }
            }
            let lat = self.hierarchy_latency(line_addr);
            let missed = lat >= self.cost.mem_latency;
            if missed {
                if is_store {
                    // Store misses retire through the write buffer; the
                    // pipeline does not stall for them.
                    self.cycles += self.cost.store_buffer;
                    continue;
                }
                let now = self.cycles;
                let close = now - self.last_miss_end <= self.mlp_window;
                if !dep && close && self.outstanding < self.mlp_degree {
                    // The out-of-order window overlaps this independent
                    // miss with the previous one: pay bandwidth only.
                    self.outstanding += 1;
                    self.cycles += self.overlap_increment;
                } else {
                    // Serialised miss: dependent, too far from the previous
                    // miss, or MLP slots exhausted.
                    self.outstanding = 1;
                    self.cycles += lat;
                }
                self.last_miss_end = self.cycles;
            } else {
                self.cycles += if is_store {
                    self.cost.store_buffer
                } else if !dep && streaming && lat <= self.cost.l1_hit {
                    // Independent hits inside a detected stream pipeline
                    // at full issue rate; random-indexed warm hits and
                    // pointer chases pay the load-to-use latency.
                    self.l1_hit_independent
                } else {
                    lat
                };
            }
        }
    }
}

impl Default for TestbedModel {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer for TestbedModel {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Instr { class, n } => {
                self.cycles += self.cost.class_cost(class) * n as f64;
            }
            TraceEvent::MemRead { addr, bytes, dep } => {
                self.cycles += self.cost.class_cost(bolt_trace::InstrClass::Load);
                self.mem_access(addr, bytes, dep, false);
            }
            TraceEvent::MemWrite { addr, bytes } => {
                self.cycles += self.cost.class_cost(bolt_trace::InstrClass::Store);
                self.mem_access(addr, bytes, false, true);
            }
            _ => {}
        }
    }
}

/// Wraps a model and records per-packet cycle deltas using the
/// [`Marker::PacketStart`]/[`Marker::PacketEnd`] markers — the equivalent
/// of the paper's per-packet TSC measurements.
pub struct PerPacketCycles<M: Tracer> {
    /// The wrapped hardware model.
    pub model: M,
    /// `(packet sequence number, cycles spent)` per completed packet.
    pub samples: Vec<(u64, f64)>,
    read_cycles: fn(&M) -> f64,
    start: Option<(u64, f64)>,
}

impl PerPacketCycles<TestbedModel> {
    /// Wrap a testbed model.
    pub fn testbed(model: TestbedModel) -> Self {
        PerPacketCycles {
            model,
            samples: Vec::new(),
            read_cycles: TestbedModel::cycles_f64,
            start: None,
        }
    }
}

impl PerPacketCycles<ConservativeModel> {
    /// Wrap a conservative model (used for per-packet bound sanity checks).
    pub fn conservative(model: ConservativeModel) -> Self {
        PerPacketCycles {
            model,
            samples: Vec::new(),
            read_cycles: |m| m.cycles() as f64,
            start: None,
        }
    }
}

impl<M: Tracer> Tracer for PerPacketCycles<M> {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Mark(Marker::PacketStart(seq)) => {
                self.start = Some((seq, (self.read_cycles)(&self.model)));
                self.model.event(ev);
            }
            TraceEvent::Mark(Marker::PacketEnd(_)) => {
                self.model.event(ev);
                if let Some((seq, c0)) = self.start.take() {
                    let c1 = (self.read_cycles)(&self.model);
                    self.samples.push((seq, c1 - c0));
                }
            }
            other => self.model.event(other),
        }
    }
}

/// Run a recorded event slice through a fresh conservative model and return
/// the cycle bound.
pub fn conservative_cycles(events: &[TraceEvent]) -> u64 {
    let mut m = ConservativeModel::new();
    for ev in events {
        m.event(*ev);
    }
    m.cycles()
}

/// Run a recorded event slice through a fresh testbed model and return the
/// simulated measured cycles.
pub fn testbed_cycles(events: &[TraceEvent]) -> u64 {
    let mut m = TestbedModel::new();
    for ev in events {
        m.event(*ev);
    }
    m.cycles()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_trace::{InstrClass, Tracer};

    #[test]
    fn conservative_charges_dram_for_cold_access() {
        let mut m = ConservativeModel::new();
        m.mem_read(0x1000, 8);
        let c = m.cycles() as f64;
        assert!(c >= m.cost.mem_latency, "cold access must cost DRAM");
    }

    #[test]
    fn conservative_proves_temporal_locality() {
        let mut m = ConservativeModel::new();
        m.mem_read(0x1000, 8);
        let after_first = m.cycles();
        m.mem_read(0x1000, 8);
        let delta = m.cycles() - after_first;
        assert!(
            (delta as f64) < m.cost.mem_latency,
            "second access to same line must be an L1 hit"
        );
    }

    #[test]
    fn conservative_proves_spatial_locality() {
        let mut m = ConservativeModel::new();
        m.mem_read(0x1000, 8);
        let after_first = m.cycles();
        m.mem_read(0x1008, 8); // same 64B line
        let delta = m.cycles() - after_first;
        assert!((delta as f64) < m.cost.mem_latency);
    }

    #[test]
    fn straddling_access_charges_both_lines() {
        let mut m = ConservativeModel::new();
        m.mem_read(0x103c, 8); // crosses the 0x1040 line boundary
        let c = m.cycles() as f64;
        assert!(c >= 2.0 * m.cost.mem_latency);
    }

    #[test]
    fn testbed_prefetcher_turns_stream_into_hits() {
        let mut m = TestbedModel::new();
        // Sequential walk over 64 lines.
        for i in 0..64u64 {
            m.mem_read(0x10000 + i * 64, 8);
        }
        let seq = m.cycles();
        let mut m2 = TestbedModel::new();
        // Same number of accesses, scattered (one per page).
        for i in 0..64u64 {
            m2.mem_read(0x10000 + i * 4096, 8);
        }
        let scattered = m2.cycles();
        assert!(
            seq * 2 < scattered,
            "prefetching must make the sequential walk much cheaper: seq={seq} scattered={scattered}"
        );
    }

    #[test]
    fn testbed_mlp_overlaps_independent_misses_only() {
        // Independent scattered misses (dep = false) overlap…
        let mut ind = TestbedModel::new();
        for i in 0..32u64 {
            ind.mem_read(0x100000 + i * 8192, 8);
        }
        // …dependent scattered misses (dep = true) serialise.
        let mut dep = TestbedModel::new();
        for i in 0..32u64 {
            dep.mem_read_dep(0x100000 + i * 8192, 8);
        }
        assert!(
            ind.cycles() * 2 < dep.cycles(),
            "MLP should at least halve independent miss cost: ind={} dep={}",
            ind.cycles(),
            dep.cycles()
        );
    }

    #[test]
    fn conservative_bounds_testbed_on_mixed_trace() {
        // Pseudo-random but deterministic mixed workload.
        let mut cons = ConservativeModel::new();
        let mut test = TestbedModel::new();
        let mut state = 0x243f6a8885a308d3u64;
        for i in 0..2000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = 0x20000 + (state % 65536);
            for m in [&mut cons as &mut dyn Tracer, &mut test as &mut dyn Tracer] {
                m.instr(InstrClass::Alu, 3);
                m.mem_read(a, 8);
                if i % 7 == 0 {
                    m.mem_write(a, 8);
                }
                m.instr(InstrClass::Branch, 1);
            }
        }
        assert!(
            cons.cycles() >= test.cycles(),
            "conservative bound violated: {} < {}",
            cons.cycles(),
            test.cycles()
        );
    }

    #[test]
    fn per_packet_cycles_segments() {
        let mut pp = PerPacketCycles::testbed(TestbedModel::new());
        use bolt_trace::Marker;
        pp.mark(Marker::PacketStart(0));
        pp.alu(100);
        pp.mark(Marker::PacketEnd(0));
        pp.mark(Marker::PacketStart(1));
        pp.alu(200);
        pp.mark(Marker::PacketEnd(1));
        assert_eq!(pp.samples.len(), 2);
        assert!(pp.samples[1].1 > pp.samples[0].1);
    }

    #[test]
    fn warm_testbed_is_cheaper_than_cold_conservative() {
        // Process the "same packet" 100 times: the testbed keeps its caches
        // warm, while the conservative model is reset per path. This is the
        // mechanism behind Table 3's typical-workload ratios.
        let packet_events = |m: &mut dyn Tracer| {
            m.instr(InstrClass::Alu, 200);
            for b in 0..16u64 {
                m.mem_read(0x30000 + b * 64, 8);
            }
            m.instr(InstrClass::Branch, 20);
        };
        let mut cons = ConservativeModel::new();
        packet_events(&mut cons); // one path, cold
        let bound = cons.cycles();

        let mut test = TestbedModel::new();
        for _ in 0..100 {
            packet_events(&mut test);
        }
        let per_packet_measured = test.cycles() / 100;
        let ratio = bound as f64 / per_packet_measured as f64;
        assert!(
            ratio > 1.5 && ratio < 60.0,
            "expected a Table-3-like conservative/measured gap, got {ratio:.2}"
        );
    }
}
