//! Set-associative cache simulator with LRU replacement.
//!
//! Used both as the conservative model's L1D residency prover and as the
//! testbed simulator's L1/L2/L3 levels. Addresses are simulated addresses
//! from [`bolt_trace::AddressSpace`]; only line presence is tracked, not
//! data.

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_size: u32,
}

impl CacheParams {
    /// 32 KB, 8-way, 64 B lines — the Xeon E5 v2 private L1D.
    pub fn l1d() -> Self {
        CacheParams {
            size: 32 * 1024,
            ways: 8,
            line_size: 64,
        }
    }

    /// 256 KB, 8-way — the per-core L2.
    pub fn l2() -> Self {
        CacheParams {
            size: 256 * 1024,
            ways: 8,
            line_size: 64,
        }
    }

    /// A 2 MB L3 slice (the paper's DUT has 25 MB shared; one core's share
    /// is a few MB — exact size only shifts where capacity misses start).
    pub fn l3() -> Self {
        CacheParams {
            size: 2 * 1024 * 1024,
            ways: 16,
            line_size: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / (self.ways * self.line_size)
    }
}

/// LRU set-associative cache. Tracks line tags only.
#[derive(Clone, Debug)]
pub struct CacheSim {
    params: CacheParams,
    /// `sets[s]` holds up to `ways` line addresses, most recent last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// New empty cache.
    pub fn new(params: CacheParams) -> Self {
        assert!(params.line_size.is_power_of_two());
        let n = params.sets() as usize;
        assert!(n > 0, "cache must have at least one set");
        CacheSim {
            params,
            sets: vec![Vec::new(); n],
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Empty the cache and zero the counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    fn set_of(&self, addr: u64) -> usize {
        let line = addr / self.params.line_size as u64;
        (line % self.sets.len() as u64) as usize
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.params.line_size as u64 * self.params.line_size as u64
    }

    /// Access `addr`: returns `true` on hit. On miss the line is installed
    /// (allocate-on-miss), evicting the LRU way if the set is full. On hit
    /// the line becomes most-recently-used.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push(line);
            self.hits += 1;
            true
        } else {
            if set.len() == self.params.ways as usize {
                set.remove(0);
            }
            set.push(line);
            self.misses += 1;
            false
        }
    }

    /// Install a line without counting an access (prefetch fills).
    pub fn install(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push(line);
            return;
        }
        if set.len() == self.params.ways as usize {
            set.remove(0);
        }
        set.push(line);
    }

    /// Whether the line containing `addr` is currently resident (no LRU
    /// update, no counter change).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.sets[self.set_of(addr)].contains(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // 4 sets × 2 ways × 64B = 512B.
        CacheSim::new(CacheParams {
            size: 512,
            ways: 2,
            line_size: 64,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f), "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 256B).
        let a = 0x0u64;
        let b = 0x100u64;
        let d = 0x200u64;
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU, b is LRU
        c.access(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn install_does_not_count() {
        let mut c = tiny();
        c.install(0x40);
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.contains(0x40));
        assert!(c.access(0x40));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x80);
        c.reset();
        assert!(!c.contains(0x80));
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = tiny();
        // 4 lines in 4 different sets: all fit regardless of 2-way limit.
        for i in 0..4u64 {
            c.access(i * 64);
        }
        for i in 0..4u64 {
            assert!(c.contains(i * 64));
        }
    }

    #[test]
    fn realistic_geometries() {
        assert_eq!(CacheParams::l1d().sets(), 64);
        assert_eq!(CacheParams::l2().sets(), 512);
        let c = CacheSim::new(CacheParams::l3());
        assert!(c.params().sets() > 0);
    }
}
