//! Concrete interpreter for [`NfCtx`] — the "production build".
//!
//! Values are `u64`s paired with a width (so wrap-around matches the
//! symbolic semantics bit for bit). Packet buffers are real byte vectors
//! registered per [`MemRegion`]; loads and stores are big-endian, matching
//! network byte order.

use std::collections::HashMap;

use bolt_expr::{BinOp, Width};
use bolt_trace::{InstrClass, MemRegion, Tracer};

use crate::{NfCtx, NfVerdict};

/// A concrete value with an explicit width.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CVal {
    /// The value, always masked to `width`.
    pub v: u64,
    /// Bit width.
    pub w: Width,
}

impl CVal {
    /// Construct (masks the value).
    pub fn new(v: u64, w: Width) -> Self {
        CVal { v: v & w.mask(), w }
    }
}

/// Concrete execution context. Generic over nothing; holds a tracer by
/// mutable reference so callers can aggregate events across many packets.
pub struct ConcreteCtx<'t> {
    tracer: &'t mut dyn Tracer,
    buffers: HashMap<u64, Vec<u8>>,
    verdicts: Vec<NfVerdict>,
}

impl<'t> ConcreteCtx<'t> {
    /// New context writing events into `tracer`.
    pub fn new(tracer: &'t mut dyn Tracer) -> Self {
        ConcreteCtx {
            tracer,
            buffers: HashMap::new(),
            verdicts: Vec::new(),
        }
    }

    /// Register the backing bytes for a region (e.g. a packet buffer).
    /// The byte vector is padded/truncated to the region size.
    pub fn register_buffer(&mut self, region: MemRegion, mut bytes: Vec<u8>) {
        bytes.resize(region.size as usize, 0);
        self.buffers.insert(region.base, bytes);
    }

    /// Read back a buffer (e.g. the packet after NF processing).
    pub fn buffer(&self, region: MemRegion) -> Option<&[u8]> {
        self.buffers.get(&region.base).map(|v| v.as_slice())
    }

    /// Verdicts recorded so far (one per processed packet, in order).
    pub fn verdicts(&self) -> &[NfVerdict] {
        &self.verdicts
    }

    /// The most recent verdict.
    pub fn last_verdict(&self) -> Option<NfVerdict> {
        self.verdicts.last().copied()
    }

    /// Clear recorded verdicts (when reusing the ctx across packets).
    pub fn clear_verdicts(&mut self) {
        self.verdicts.clear();
    }

    fn binop(&mut self, op: BinOp, a: CVal, b: CVal, cost: InstrClass) -> CVal {
        assert_eq!(a.w, b.w, "width mismatch in concrete {op:?}");
        self.tracer.instr(cost, 1);
        let out_w = if op.is_comparison() { Width::W1 } else { a.w };
        CVal::new(op.apply(a.v, b.v, a.w), out_w)
    }
}

impl NfCtx for ConcreteCtx<'_> {
    type Val = CVal;

    fn lit(&mut self, v: u64, w: Width) -> CVal {
        CVal::new(v, w)
    }

    fn add(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Add, a, b, InstrClass::Alu)
    }
    fn sub(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Sub, a, b, InstrClass::Alu)
    }
    fn mul(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Mul, a, b, InstrClass::Mul)
    }
    fn and(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::And, a, b, InstrClass::Alu)
    }
    fn or(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Or, a, b, InstrClass::Alu)
    }
    fn xor(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Xor, a, b, InstrClass::Alu)
    }
    fn shl(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Shl, a, b, InstrClass::Alu)
    }
    fn shr(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Shr, a, b, InstrClass::Alu)
    }
    fn eq(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Eq, a, b, InstrClass::Alu)
    }
    fn ne(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Ne, a, b, InstrClass::Alu)
    }
    fn ult(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Ult, a, b, InstrClass::Alu)
    }
    fn ule(&mut self, a: CVal, b: CVal) -> CVal {
        self.binop(BinOp::Ule, a, b, InstrClass::Alu)
    }

    fn select(&mut self, c: CVal, a: CVal, b: CVal) -> CVal {
        assert_eq!(c.w, Width::W1, "select condition must be boolean");
        assert_eq!(a.w, b.w, "select arm width mismatch");
        self.tracer.instr(InstrClass::Alu, 1);
        if c.v != 0 {
            a
        } else {
            b
        }
    }

    fn zext(&mut self, a: CVal, w: Width) -> CVal {
        assert!(a.w.bits() <= w.bits(), "zext must widen");
        self.tracer.instr(InstrClass::Alu, 1);
        CVal::new(a.v, w)
    }

    fn trunc(&mut self, a: CVal, w: Width) -> CVal {
        assert!(a.w.bits() >= w.bits(), "trunc must narrow");
        self.tracer.instr(InstrClass::Alu, 1);
        CVal::new(a.v, w)
    }

    fn branch(&mut self, c: CVal) -> bool {
        assert_eq!(c.w, Width::W1, "branch condition must be boolean");
        self.tracer.instr(InstrClass::Branch, 1);
        c.v != 0
    }

    fn fork(&mut self, c: CVal) -> bool {
        assert_eq!(c.w, Width::W1, "fork condition must be boolean");
        c.v != 0
    }

    fn eq_free(&mut self, a: CVal, b: CVal) -> CVal {
        assert_eq!(a.w, b.w);
        CVal::new((a.v == b.v) as u64, Width::W1)
    }

    fn ule_free(&mut self, a: CVal, b: CVal) -> CVal {
        assert_eq!(a.w, b.w);
        CVal::new((a.v <= b.v) as u64, Width::W1)
    }

    fn load(&mut self, region: MemRegion, offset: u64, bytes: usize) -> CVal {
        let w = Width::from_bytes(bytes);
        self.tracer.mem_read(region.addr(offset), bytes as u8);
        let buf = self
            .buffers
            .get(&region.base)
            .expect("load from unregistered buffer");
        let mut v = 0u64;
        for i in 0..bytes {
            v = (v << 8) | buf[offset as usize + i] as u64;
        }
        CVal::new(v, w)
    }

    fn store(&mut self, region: MemRegion, offset: u64, val: CVal, bytes: usize) {
        assert_eq!(val.w, Width::from_bytes(bytes), "store width mismatch");
        self.tracer.mem_write(region.addr(offset), bytes as u8);
        let buf = self
            .buffers
            .get_mut(&region.base)
            .expect("store to unregistered buffer");
        for i in 0..bytes {
            buf[offset as usize + i] = (val.v >> (8 * (bytes - 1 - i))) as u8;
        }
    }

    fn fresh(&mut self, name: &str, _w: Width) -> CVal {
        panic!(
            "fresh({name}) called in concrete mode: data-structure models \
             must only run under symbolic execution"
        );
    }

    fn assume(&mut self, c: CVal) {
        assert_eq!(c.w, Width::W1);
        assert_eq!(c.v, 1, "assumption violated in concrete execution");
    }

    fn tag(&mut self, _tag: &'static str) {}

    fn verdict(&mut self, v: NfVerdict) {
        self.verdicts.push(v);
    }

    fn is_symbolic(&self) -> bool {
        false
    }

    fn concrete_value(&self, v: CVal) -> Option<u64> {
        Some(v.v)
    }

    fn tracer(&mut self) -> &mut dyn Tracer {
        self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_trace::{count_ic_ma, AddressSpace, CountingTracer, NullTracer, RecordingTracer};

    #[test]
    fn arithmetic_wraps_to_width() {
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let a = ctx.lit(0xFFFF, Width::W16);
        let b = ctx.lit(1, Width::W16);
        let s = ctx.add(a, b);
        assert_eq!(s.v, 0);
        assert_eq!(s.w, Width::W16);
    }

    #[test]
    fn comparisons_produce_booleans() {
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let a = ctx.lit(3, Width::W32);
        let b = ctx.lit(5, Width::W32);
        let lt = ctx.ult(a, b);
        assert_eq!(lt, CVal::new(1, Width::W1));
        assert!(ctx.branch(lt));
    }

    #[test]
    fn loads_and_stores_are_big_endian() {
        let mut aspace = AddressSpace::new();
        let region = aspace.alloc_table(64);
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        ctx.register_buffer(region, vec![0x08, 0x00, 0xAA, 0xBB]);
        let et = ctx.load(region, 0, 2);
        assert_eq!(et.v, 0x0800);
        let v = ctx.lit(0x1234, Width::W16);
        ctx.store(region, 2, v, 2);
        assert_eq!(&ctx.buffer(region).unwrap()[2..4], &[0x12, 0x34]);
    }

    #[test]
    fn costs_are_accounted() {
        let mut t = CountingTracer::new();
        let mut aspace = AddressSpace::new();
        let region = aspace.alloc_table(64);
        {
            let mut ctx = ConcreteCtx::new(&mut t);
            ctx.register_buffer(region, vec![0; 64]);
            let a = ctx.lit(1, Width::W32); // free
            let b = ctx.lit(2, Width::W32); // free
            let s = ctx.add(a, b); // 1 alu
            let c = ctx.eq(s, a); // 1 alu
            ctx.branch(c); // 1 branch
            let _ = ctx.load(region, 0, 4); // 1 load + access
            ctx.store(region, 0, s, 4); // 1 store + access
        }
        assert_eq!(t.instructions, 5);
        assert_eq!(t.mem_accesses, 2);
    }

    #[test]
    fn event_stream_matches_expected_sequence() {
        let mut r = RecordingTracer::new();
        let mut aspace = AddressSpace::new();
        let region = aspace.alloc_table(64);
        {
            let mut ctx = ConcreteCtx::new(&mut r);
            ctx.register_buffer(region, vec![0; 64]);
            let x = ctx.load(region, 8, 2);
            let c = ctx.eq_imm(x, 0, Width::W16);
            ctx.branch(c);
        }
        let (ic, ma) = count_ic_ma(&r.events);
        assert_eq!((ic, ma), (3, 1));
    }

    #[test]
    #[should_panic(expected = "fresh")]
    fn fresh_panics_in_concrete_mode() {
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        let _ = ctx.fresh("model.x", Width::W32);
    }

    #[test]
    fn verdicts_recorded() {
        let mut t = NullTracer;
        let mut ctx = ConcreteCtx::new(&mut t);
        ctx.verdict(NfVerdict::Drop);
        ctx.verdict(NfVerdict::Forward(3));
        assert_eq!(ctx.verdicts(), &[NfVerdict::Drop, NfVerdict::Forward(3)]);
        assert_eq!(ctx.last_verdict(), Some(NfVerdict::Forward(3)));
    }

    #[test]
    fn select_is_branchless() {
        let mut t = CountingTracer::new();
        {
            let mut ctx = ConcreteCtx::new(&mut t);
            let c = ctx.lit(1, Width::W1);
            let a = ctx.lit(10, Width::W32);
            let b = ctx.lit(20, Width::W32);
            let r = ctx.select(c, a, b);
            assert_eq!(r.v, 10);
        }
        assert_eq!(t.per_class[InstrClass::Branch.index()], 0);
        assert_eq!(t.per_class[InstrClass::Alu.index()], 1);
    }
}
