//! Binary codec for [`ExplorationResult`]s (the contract store's
//! exploration records).
//!
//! Layout: the shared term pool first (rehydrated by re-interning, so
//! every [`TermRef`] in the decoded paths points at a bit-identical
//! arena), then each path's constraints, events, tags, verdict, packet
//! fields, final packet state, and branch decisions, then the
//! exploration stats and the truncation marker. `decode(encode(r))`
//! reproduces `r` exactly — same paths, same terms, same counters — so
//! contracts generated from a decoded exploration are indistinguishable
//! from freshly explored ones.

use bolt_expr::TermRef;
use bolt_solver::SolverStats;
use bolt_store::codec::{
    read_event, read_pool, read_term_ref, write_event, write_pool, write_term_ref, MAX_COUNT,
};
use bolt_store::{intern_tag, ByteReader, ByteWriter, DecodeError};

use crate::explore::{ExplorationResult, ExploreStats, Path};
use crate::symbolic::PacketField;
use crate::NfVerdict;

/// Encode an exploration result.
pub fn encode_result(r: &ExplorationResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_pool(&mut w, &r.pool);
    w.varint(r.paths.len() as u64);
    for p in &r.paths {
        w.varint(p.constraints.len() as u64);
        for &c in &p.constraints {
            write_term_ref(&mut w, c);
        }
        w.varint(p.events.len() as u64);
        for ev in &p.events {
            write_event(&mut w, ev);
        }
        w.varint(p.tags.len() as u64);
        for tag in &p.tags {
            w.str(tag);
        }
        write_verdict(&mut w, p.verdict);
        w.varint(p.packet_fields.len() as u64);
        for f in &p.packet_fields {
            write_packet_field(&mut w, f);
        }
        write_final_packet(&mut w, &p.final_packet);
        w.varint(p.decisions.len() as u64);
        for &d in &p.decisions {
            w.bool(d);
        }
    }
    let s = &r.stats;
    write_solver_stats(&mut w, &s.solver);
    w.varint(s.runs);
    w.varint(s.terms_interned);
    w.varint(s.syms_minted);
    w.bool(r.truncated);
    w.into_bytes()
}

/// Decode an exploration result. Fails (never panics) on any corrupt,
/// truncated, or version-skewed input.
pub fn decode_result(bytes: &[u8]) -> Result<ExplorationResult, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let pool = read_pool(&mut r)?;
    let n_paths = r.count(MAX_COUNT)?;
    let mut paths = Vec::with_capacity(n_paths);
    for _ in 0..n_paths {
        let n_cs = r.count(MAX_COUNT)?;
        let mut constraints = Vec::with_capacity(n_cs);
        for _ in 0..n_cs {
            constraints.push(read_term_ref(&mut r, &pool)?);
        }
        let n_ev = r.count(MAX_COUNT)?;
        let mut events = Vec::with_capacity(n_ev);
        for _ in 0..n_ev {
            events.push(read_event(&mut r)?);
        }
        let tags = read_tags(&mut r)?;
        let verdict = read_verdict(&mut r)?;
        let n_pf = r.count(MAX_COUNT)?;
        let mut packet_fields = Vec::with_capacity(n_pf);
        for _ in 0..n_pf {
            packet_fields.push(read_packet_field(&mut r, &pool)?);
        }
        let final_packet = read_final_packet(&mut r, &pool)?;
        let n_dec = r.count(MAX_COUNT)?;
        let mut decisions = Vec::with_capacity(n_dec);
        for _ in 0..n_dec {
            decisions.push(r.bool()?);
        }
        paths.push(Path {
            constraints,
            events,
            tags,
            verdict,
            packet_fields,
            final_packet,
            decisions,
        });
    }
    let solver = read_solver_stats(&mut r)?;
    let stats = ExploreStats {
        solver,
        runs: r.varint()?,
        terms_interned: r.varint()?,
        syms_minted: r.varint()?,
    };
    let truncated = r.bool()?;
    r.expect_end()?;
    Ok(ExplorationResult {
        pool,
        paths,
        stats,
        truncated,
    })
}

/// Encode a path tag list (shared with the contract codec in
/// `bolt_core`).
pub fn write_tags(w: &mut ByteWriter, tags: &[&'static str]) {
    w.varint(tags.len() as u64);
    for tag in tags {
        w.str(tag);
    }
}

/// Decode a path tag list, interning each tag to `&'static str`.
pub fn read_tags(r: &mut ByteReader<'_>) -> Result<Vec<&'static str>, DecodeError> {
    let n = r.count(MAX_COUNT)?;
    let mut tags = Vec::with_capacity(n);
    for _ in 0..n {
        tags.push(intern_tag(r.str()?));
    }
    Ok(tags)
}

/// Encode an optional NF verdict.
pub fn write_verdict(w: &mut ByteWriter, v: Option<NfVerdict>) {
    match v {
        None => w.u8(0),
        Some(NfVerdict::Drop) => w.u8(1),
        Some(NfVerdict::Flood) => w.u8(2),
        Some(NfVerdict::Forward(port)) => {
            w.u8(3);
            w.u16(port);
        }
    }
}

/// Decode an optional NF verdict.
pub fn read_verdict(r: &mut ByteReader<'_>) -> Result<Option<NfVerdict>, DecodeError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(NfVerdict::Drop),
        2 => Some(NfVerdict::Flood),
        3 => Some(NfVerdict::Forward(r.u16()?)),
        _ => return Err(DecodeError::Malformed("verdict tag out of range")),
    })
}

/// Encode one lazily-minted packet field.
pub fn write_packet_field(w: &mut ByteWriter, f: &PacketField) {
    w.varint(f.offset);
    w.u8(f.bytes);
    w.varint(f.sym as u64);
    write_term_ref(w, f.term);
}

/// Decode one packet field, validating its symbol and term against the
/// rehydrated pool.
pub fn read_packet_field(
    r: &mut ByteReader<'_>,
    pool: &bolt_expr::TermPool,
) -> Result<PacketField, DecodeError> {
    let offset = r.varint()?;
    let bytes = r.u8()?;
    let sym = r.varint()?;
    if sym >= pool.sym_count() as u64 {
        return Err(DecodeError::Malformed("packet-field symbol out of range"));
    }
    let term = read_term_ref(r, pool)?;
    Ok(PacketField {
        offset,
        bytes,
        sym: sym as u32,
        term,
    })
}

/// Encode a final-packet overlay (`(offset, bytes, term)` triples).
pub fn write_final_packet(w: &mut ByteWriter, fp: &[(u64, u8, TermRef)]) {
    w.varint(fp.len() as u64);
    for &(o, b, t) in fp {
        w.varint(o);
        w.u8(b);
        write_term_ref(w, t);
    }
}

/// Decode a final-packet overlay.
pub fn read_final_packet(
    r: &mut ByteReader<'_>,
    pool: &bolt_expr::TermPool,
) -> Result<Vec<(u64, u8, TermRef)>, DecodeError> {
    let n = r.count(MAX_COUNT)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let o = r.varint()?;
        let b = r.u8()?;
        let t = read_term_ref(r, pool)?;
        out.push((o, b, t));
    }
    Ok(out)
}

fn write_solver_stats(w: &mut ByteWriter, s: &SolverStats) {
    w.varint(s.checks_requested);
    w.varint(s.solver_queries);
    w.varint(s.completion_searches);
    w.varint(s.unsat_by_propagation);
    w.varint(s.memo_hits);
    w.varint(s.witness_reuse_hits);
    w.varint(s.model_evictions);
}

fn read_solver_stats(r: &mut ByteReader<'_>) -> Result<SolverStats, DecodeError> {
    Ok(SolverStats {
        checks_requested: r.varint()?,
        solver_queries: r.varint()?,
        completion_searches: r.varint()?,
        unsat_by_propagation: r.varint()?,
        memo_hits: r.varint()?,
        witness_reuse_hits: r.varint()?,
        model_evictions: r.varint()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Explorer, NfCtx};
    use bolt_expr::Width;

    fn toy_nf(ctx: &mut crate::SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        let et = ctx.load(pkt, 12, 2);
        if ctx.branch_eq_imm(et, 0x0800, Width::W16) {
            ctx.tag("valid");
            let ttl = ctx.load(pkt, 22, 1);
            let one = ctx.lit(1, Width::W8);
            let nt = ctx.sub(ttl, one);
            ctx.store(pkt, 22, nt, 1);
            ctx.verdict(NfVerdict::Forward(0));
        } else {
            ctx.tag("invalid");
            ctx.verdict(NfVerdict::Drop);
        }
    }

    #[test]
    fn exploration_round_trip_is_bit_identical() {
        let fresh = Explorer::new().explore(toy_nf);
        let bytes = encode_result(&fresh);
        let decoded = decode_result(&bytes).expect("round trip");
        assert_eq!(decoded.pool.nodes(), fresh.pool.nodes());
        assert_eq!(decoded.pool.sym_count(), fresh.pool.sym_count());
        assert_eq!(decoded.paths.len(), fresh.paths.len());
        for (d, f) in decoded.paths.iter().zip(&fresh.paths) {
            assert_eq!(d.constraints, f.constraints);
            assert_eq!(d.events, f.events);
            assert_eq!(d.tags, f.tags);
            assert_eq!(d.verdict, f.verdict);
            assert_eq!(d.packet_fields, f.packet_fields);
            assert_eq!(d.final_packet, f.final_packet);
            assert_eq!(d.decisions, f.decisions);
        }
        assert_eq!(decoded.stats, fresh.stats);
        assert_eq!(decoded.truncated, fresh.truncated);
        // Encoding the decoded result reproduces the same bytes.
        assert_eq!(encode_result(&decoded), bytes);
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let fresh = Explorer::new().explore(toy_nf);
        let bytes = encode_result(&fresh);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_result(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_result(&padded).is_err());
    }
}
