//! Symbolic execution engine (SEE) and concrete executor for NFs.
//!
//! BOLT's pipeline needs the same stateless NF code to run in two modes
//! (§3.3):
//!
//! * **symbolically**, linked against data-structure *models*, to
//!   enumerate every feasible execution path together with its path
//!   constraints and its stateless instruction trace; and
//! * **concretely**, linked against the real instrumented data
//!   structures, to produce ground-truth measurements.
//!
//! NF authors write their packet-processing logic once, generically,
//! against the [`NfCtx`] trait — the "instruction set" of this
//! reproduction. [`ConcreteCtx`] interprets it over `u64` values;
//! [`SymbolicCtx`] interprets it over [`bolt_expr`] terms, forking at
//! branches on symbolic conditions. The [`Explorer`] drives exhaustive
//! path enumeration by deterministic re-execution with a decision-prefix
//! worklist (the classic concolic scheduling approach), pruning flips the
//! solver proves infeasible.
//!
//! Every `NfCtx` operation also reports its cost to the ambient
//! [`bolt_trace::Tracer`], with a fixed mapping to x86-style instruction
//! classes, so that for a given path the symbolic run and a concrete run
//! emit *identical* stateless event streams — the property that lets the
//! contract generator charge stateless instructions exactly (§3.5's
//! deterministic replay).

pub mod codec;
pub mod concrete;
pub mod explore;
pub mod symbolic;

pub use concrete::ConcreteCtx;
pub use explore::{ExplorationResult, ExploreStats, Explorer, Path};
pub use symbolic::{ExploreShared, SymbolicCtx};

use bolt_expr::Width;
use bolt_trace::{MemRegion, Tracer};

/// What the NF decided to do with the packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NfVerdict {
    /// Send out of a specific port.
    Forward(u16),
    /// Drop the packet.
    Drop,
    /// Send out of every port except the input (bridges).
    Flood,
}

/// The execution context network functions are written against.
///
/// Operations mirror the instructions a C compiler would emit: arithmetic
/// and comparisons cost one ALU instruction, `branch` costs a branch
/// instruction and — in symbolic mode — forks the path when the condition
/// is symbolic, `load`/`store` access packet buffers and cost a memory
/// instruction plus a memory access.
///
/// The model-side operations (`fresh`, `assume`) are used by
/// data-structure models during symbolic execution; calling `fresh` in
/// concrete mode is a bug (concrete runs use the real data structures) and
/// panics.
pub trait NfCtx {
    /// Value representation: `u64`+width when concrete, a term when
    /// symbolic.
    type Val: Copy + std::fmt::Debug;

    /// An immediate constant (free: folded into consuming instructions).
    fn lit(&mut self, v: u64, w: Width) -> Self::Val;

    /// Wrapping addition (1 ALU instruction).
    fn add(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Wrapping subtraction (1 ALU instruction).
    fn sub(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Multiplication (1 multiply instruction).
    fn mul(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Bitwise and (1 ALU instruction).
    fn and(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Bitwise or (1 ALU instruction).
    fn or(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Bitwise xor (1 ALU instruction).
    fn xor(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Shift left (1 ALU instruction).
    fn shl(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Logical shift right (1 ALU instruction).
    fn shr(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;

    /// Equality comparison (1 ALU instruction; result is a W1 boolean).
    fn eq(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Disequality (1 ALU instruction).
    fn ne(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Unsigned less-than (1 ALU instruction).
    fn ult(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;
    /// Unsigned less-or-equal (1 ALU instruction).
    fn ule(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;

    /// Branchless select `c ? a : b` (1 ALU instruction, like `cmov`).
    fn select(&mut self, c: Self::Val, a: Self::Val, b: Self::Val) -> Self::Val;

    /// Zero-extend to a wider width (1 ALU instruction).
    fn zext(&mut self, a: Self::Val, w: Width) -> Self::Val;

    /// Truncate to a narrower width, keeping low bits (1 ALU instruction).
    fn trunc(&mut self, a: Self::Val, w: Width) -> Self::Val;

    /// Conditional branch (1 branch instruction). In symbolic mode a
    /// symbolic condition forks the path; the return value is the
    /// direction taken on *this* path.
    fn branch(&mut self, c: Self::Val) -> bool;

    /// Big-endian load of `bytes ∈ {1,2,4,6,8}` at `region.base+offset`
    /// (1 load instruction + 1 memory access).
    fn load(&mut self, region: MemRegion, offset: u64, bytes: usize) -> Self::Val;

    /// Big-endian store (1 store instruction + 1 memory access).
    fn store(&mut self, region: MemRegion, offset: u64, v: Self::Val, bytes: usize);

    /// Model-only: a fresh symbolic value (panics in concrete mode).
    fn fresh(&mut self, name: &str, w: Width) -> Self::Val;

    /// Cost-free fork on a condition. Data-structure models use this to
    /// split contract cases without perturbing the stateless instruction
    /// trace — the branch's cost is part of the method's manual contract.
    fn fork(&mut self, c: Self::Val) -> bool;

    /// Cost-free `a == b` for model-side constraint building.
    fn eq_free(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;

    /// Cost-free `a <= b` for model-side constraint building.
    fn ule_free(&mut self, a: Self::Val, b: Self::Val) -> Self::Val;

    /// Constrain the current path (symbolic); assert the condition holds
    /// (concrete). Free.
    fn assume(&mut self, c: Self::Val);

    /// Attach a human-readable label to the current path (free). Concrete
    /// mode ignores tags.
    fn tag(&mut self, tag: &'static str);

    /// Record the NF's verdict for this packet/path.
    fn verdict(&mut self, v: NfVerdict);

    /// Whether this is the symbolic interpreter (models use this to guard
    /// mode-specific behaviour in shared helper code).
    fn is_symbolic(&self) -> bool;

    /// The concrete value, if this value is statically known.
    fn concrete_value(&self, v: Self::Val) -> Option<u64>;

    /// The ambient tracer, for instrumented data-structure internals and
    /// model [`bolt_trace::StatefulCall`] events.
    fn tracer(&mut self) -> &mut dyn Tracer;

    // ------------------------------------------------------------------
    // Conveniences (derived forms; no extra cost beyond their parts)
    // ------------------------------------------------------------------

    /// `a == lit(v)`.
    fn eq_imm(&mut self, a: Self::Val, v: u64, w: Width) -> Self::Val {
        let c = self.lit(v, w);
        self.eq(a, c)
    }

    /// `a + lit(v)`.
    fn add_imm(&mut self, a: Self::Val, v: u64, w: Width) -> Self::Val {
        let c = self.lit(v, w);
        self.add(a, c)
    }

    /// Branch on `a == v`.
    fn branch_eq_imm(&mut self, a: Self::Val, v: u64, w: Width) -> bool {
        let c = self.eq_imm(a, v, w);
        self.branch(c)
    }

    /// Logical not of a boolean value.
    fn bool_not(&mut self, a: Self::Val) -> Self::Val {
        let one = self.lit(1, Width::W1);
        self.xor(a, one)
    }
}
