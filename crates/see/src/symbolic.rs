//! Symbolic interpreter for [`NfCtx`] — the "analysis build".
//!
//! Values are [`bolt_expr`] terms. Packet memory is field-granular and
//! lazy: the first read of `(offset, bytes)` in the packet region mints a
//! named input symbol (`pkt@12:2`); stores overwrite the field's term.
//! Branches on symbolic conditions consult the decision schedule installed
//! by the [`Explorer`](crate::Explorer); beyond the schedule, the
//! interpreter takes the true arm unless a quick solver check proves it
//! infeasible (which both prunes dead paths early and guarantees progress
//! for loops whose bounds are symbolic but constrained).
//!
//! Limitations, documented and intentional (same shape as the paper's
//! prototype): load/store offsets must be concrete along any given path,
//! and a field must always be accessed at the same granularity.

use std::collections::HashMap;

use bolt_expr::{BinOp, SymId, TermPool, TermRef, Width};
use bolt_solver::{Solver, SolverCache, SolverCtx, Witness};
use bolt_trace::{AddressSpace, InstrClass, MemRegion, RecordingTracer, TraceEvent, Tracer};

use crate::{NfCtx, NfVerdict};

/// State shared across the runs of one exploration: the solver's
/// feasibility caches and the cross-run symbol registry (the same packet
/// field or model call mints the same symbol in every run, so terms —
/// and therefore cached feasibility verdicts and models — are shared
/// between sibling runs instead of re-interned per run).
#[derive(Debug, Default)]
pub struct ExploreShared {
    /// Feasibility memo, per-atom witness cache, model cache, counters.
    pub cache: SolverCache,
    /// `(symbol name, width bits) → id` for symbols minted by earlier
    /// runs. Width is part of the key so a name reused at a different
    /// width (degenerate, but possible with order-dependent `fresh`
    /// ordinals) gets its own symbol instead of flip-flopping the entry.
    sym_registry: HashMap<(String, u32), SymId>,
}

impl ExploreShared {
    /// Mint (or, when an earlier run already minted it, reuse) the
    /// symbol for `name` in `pool`. Shared by in-run minting
    /// ([`SymbolicCtx`]'s lazy packet fields and model `fresh` calls)
    /// and by the parallel committer, which resolves worker-local
    /// symbols through the same registry while absorbing a private pool
    /// — both paths therefore assign identical ids in identical order.
    pub fn sym_for(&mut self, pool: &mut TermPool, name: &str, w: Width) -> TermRef {
        let key = (name.to_string(), w.bits());
        if let Some(&id) = self.sym_registry.get(&key) {
            return pool.sym_ref(id);
        }
        let t = pool.fresh_sym(name, w);
        if let bolt_expr::Term::Sym { id, .. } = *pool.get(t) {
            self.sym_registry.insert(key, id);
        }
        t
    }
}

/// Shared state: borrowed from the explorer, or owned by a standalone
/// context.
enum SharedRef<'p> {
    Owned(Box<ExploreShared>),
    Borrowed(&'p mut ExploreShared),
}

impl SharedRef<'_> {
    fn get_mut(&mut self) -> &mut ExploreShared {
        match self {
            SharedRef::Owned(s) => s,
            SharedRef::Borrowed(s) => s,
        }
    }
}

/// A lazily-minted symbolic packet field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketField {
    /// Byte offset within the packet region.
    pub offset: u64,
    /// Field size in bytes.
    pub bytes: u8,
    /// The input symbol minted for it.
    pub sym: SymId,
    /// The symbol as a term.
    pub term: TermRef,
}

/// One recorded path constraint, remembering whether it came from a branch
/// (and which one) so the explorer can rebuild constraint prefixes.
#[derive(Clone, Copy, Debug)]
pub struct ConstraintEntry {
    /// The (width-1) constraint term.
    pub term: TermRef,
    /// Index of the symbolic branch that produced it, if any.
    pub branch: Option<usize>,
}

/// Raw per-run record handed to the explorer.
#[derive(Debug, Default)]
pub struct RunRecord {
    /// Every decision taken at a symbolic branch, in order.
    pub decisions: Vec<bool>,
    /// The condition term of each symbolic branch.
    pub branch_conds: Vec<TermRef>,
    /// Ordered constraints (branch-derived and assumed).
    pub entries: Vec<ConstraintEntry>,
    /// Recorded stateless event trace.
    pub events: Vec<TraceEvent>,
    /// Path tags.
    pub tags: Vec<&'static str>,
    /// Verdicts (last one wins).
    pub verdicts: Vec<NfVerdict>,
    /// Lazily-minted input packet fields.
    pub packet_fields: Vec<PacketField>,
    /// Final `(offset, bytes) → term` state of the packet region.
    pub final_packet: Vec<(u64, u8, TermRef)>,
    /// A verified model of the full path constraints, when one fell out
    /// of the run's feasibility checks (seeds the explorer's flip walk).
    pub model: Option<Witness>,
}

/// Symbolic execution context for one run (one candidate path).
///
/// Carries an incrementally-extended [`SolverCtx`] mirroring the path
/// constraints asserted so far, so default-arm feasibility probes at
/// branches assert one atom against saved propagation state instead of
/// replaying the whole conjunction.
pub struct SymbolicCtx<'p> {
    pool: &'p mut TermPool,
    sctx: SolverCtx,
    shared: SharedRef<'p>,
    tracer: RecordingTracer,
    schedule: Vec<bool>,
    decisions: Vec<bool>,
    branch_conds: Vec<TermRef>,
    entries: Vec<ConstraintEntry>,
    mem: HashMap<(u64, u8), TermRef>,
    packet_fields: Vec<PacketField>,
    tags: Vec<&'static str>,
    verdicts: Vec<NfVerdict>,
    fresh_names: HashMap<String, usize>,
    aspace: AddressSpace,
    packet_region: Option<MemRegion>,
}

impl<'p> SymbolicCtx<'p> {
    /// New standalone context that will replay `schedule` and then
    /// default-explore, with private caches.
    pub fn new(pool: &'p mut TermPool, solver: &'p Solver, schedule: Vec<bool>) -> Self {
        Self::build(pool, solver, schedule, SharedRef::Owned(Box::default()))
    }

    /// New context sharing caches and the symbol registry with sibling
    /// runs of one exploration.
    pub fn with_shared(
        pool: &'p mut TermPool,
        solver: &'p Solver,
        schedule: Vec<bool>,
        shared: &'p mut ExploreShared,
    ) -> Self {
        Self::build(pool, solver, schedule, SharedRef::Borrowed(shared))
    }

    fn build(
        pool: &'p mut TermPool,
        solver: &'p Solver,
        schedule: Vec<bool>,
        shared: SharedRef<'p>,
    ) -> Self {
        SymbolicCtx {
            sctx: SolverCtx::new(solver),
            pool,
            shared,
            tracer: RecordingTracer::new(),
            schedule,
            decisions: Vec::new(),
            branch_conds: Vec::new(),
            entries: Vec::new(),
            mem: HashMap::new(),
            packet_fields: Vec::new(),
            tags: Vec::new(),
            verdicts: Vec::new(),
            fresh_names: HashMap::new(),
            aspace: AddressSpace::new(),
            packet_region: None,
        }
    }

    /// Allocate the symbolic packet region (deterministic across runs:
    /// every run allocates from a fresh, identical address space).
    pub fn packet(&mut self, len: u64) -> MemRegion {
        let r = self.aspace.alloc_pages(len.max(64));
        self.packet_region = Some(r);
        r
    }

    /// Allocate an auxiliary simulated region (deterministic across runs
    /// if allocation order is deterministic).
    pub fn alloc_region(&mut self, size: u64) -> MemRegion {
        self.aspace.alloc_table(size)
    }

    /// Direct pool access for advanced callers (class builders, chain
    /// composition live in `bolt-core`).
    pub fn pool(&mut self) -> &mut TermPool {
        self.pool
    }

    /// Current path constraints (terms only).
    pub fn constraints(&self) -> Vec<TermRef> {
        self.entries.iter().map(|e| e.term).collect()
    }

    /// The most recent verdict recorded on this path, if any.
    pub fn last_verdict(&self) -> Option<NfVerdict> {
        self.verdicts.last().copied()
    }

    /// Whole-path feasibility of the constraints asserted so far, decided
    /// on the run's own incremental context (no replay). Classification
    /// is exactly the batch solver's.
    pub fn path_feasible(&mut self) -> bool {
        let shared = self.shared.get_mut();
        self.sctx.current_feasible(self.pool, &mut shared.cache)
    }

    /// Tear down the run and emit its record.
    pub fn finish(self) -> RunRecord {
        let pkt = self.packet_region;
        let mut final_packet: Vec<(u64, u8, TermRef)> = self
            .mem
            .iter()
            .filter_map(|(&(addr, bytes), &term)| {
                let r = pkt?;
                r.contains(addr).then(|| (addr - r.base, bytes, term))
            })
            .collect();
        final_packet.sort_by_key(|&(o, b, _)| (o, b));
        RunRecord {
            decisions: self.decisions,
            branch_conds: self.branch_conds,
            entries: self.entries,
            events: self.tracer.events,
            tags: self.tags,
            verdicts: self.verdicts,
            packet_fields: self.packet_fields,
            final_packet,
            model: self.sctx.model().cloned(),
        }
    }

    fn binop(&mut self, op: BinOp, a: TermRef, b: TermRef, cost: InstrClass) -> TermRef {
        self.tracer.instr(cost, 1);
        self.pool.binop(op, a, b)
    }

    fn unique_name(&mut self, name: &str) -> String {
        let n = self.fresh_names.entry(name.to_string()).or_insert(0);
        let uniq = if *n == 0 {
            name.to_string()
        } else {
            format!("{name}#{n}")
        };
        *n += 1;
        uniq
    }

    /// Mint (or, when a sibling run already minted it, reuse) the symbol
    /// for `name`. Sharing symbols across runs makes the terms of common
    /// decision prefixes identical between siblings, which is what lets
    /// the feasibility memo and model cache hit across runs.
    fn mint_sym(&mut self, name: &str, w: Width) -> TermRef {
        let SymbolicCtx { shared, pool, .. } = self;
        shared.get_mut().sym_for(pool, name, w)
    }

    /// Record a taken decision: remember the branch, append its
    /// constraint, and extend the incremental solver context.
    fn take_decision(&mut self, idx: usize, c: TermRef, taken: bool) {
        self.decisions.push(taken);
        self.branch_conds.push(c);
        let constraint = if taken { c } else { self.pool.not(c) };
        self.entries.push(ConstraintEntry {
            term: constraint,
            branch: Some(idx),
        });
        self.sctx.assert_term(self.pool, constraint);
    }

    /// Decide a symbolic condition: replay the schedule, or default to
    /// the true arm unless a single push/pop probe proves it infeasible.
    fn decide(&mut self, c: TermRef) -> bool {
        let idx = self.decisions.len();
        let taken = if idx < self.schedule.len() {
            self.schedule[idx]
        } else {
            let shared = self.shared.get_mut();
            self.sctx.probe_feasible(self.pool, &mut shared.cache, c)
        };
        self.take_decision(idx, c, taken);
        taken
    }
}

impl NfCtx for SymbolicCtx<'_> {
    type Val = TermRef;

    fn lit(&mut self, v: u64, w: Width) -> TermRef {
        self.pool.constant(v, w)
    }

    fn add(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Add, a, b, InstrClass::Alu)
    }
    fn sub(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Sub, a, b, InstrClass::Alu)
    }
    fn mul(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Mul, a, b, InstrClass::Mul)
    }
    fn and(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::And, a, b, InstrClass::Alu)
    }
    fn or(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Or, a, b, InstrClass::Alu)
    }
    fn xor(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Xor, a, b, InstrClass::Alu)
    }
    fn shl(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Shl, a, b, InstrClass::Alu)
    }
    fn shr(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Shr, a, b, InstrClass::Alu)
    }
    fn eq(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Eq, a, b, InstrClass::Alu)
    }
    fn ne(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Ne, a, b, InstrClass::Alu)
    }
    fn ult(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Ult, a, b, InstrClass::Alu)
    }
    fn ule(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.binop(BinOp::Ule, a, b, InstrClass::Alu)
    }

    fn select(&mut self, c: TermRef, a: TermRef, b: TermRef) -> TermRef {
        self.tracer.instr(InstrClass::Alu, 1);
        self.pool.ite(c, a, b)
    }

    fn zext(&mut self, a: TermRef, w: Width) -> TermRef {
        self.tracer.instr(InstrClass::Alu, 1);
        self.pool.zext(a, w)
    }

    fn trunc(&mut self, a: TermRef, w: Width) -> TermRef {
        self.tracer.instr(InstrClass::Alu, 1);
        self.pool.trunc(a, w)
    }

    fn branch(&mut self, c: TermRef) -> bool {
        self.tracer.instr(InstrClass::Branch, 1);
        if let Some(v) = self.pool.as_const(c) {
            return v != 0;
        }
        // Beyond the schedule, `decide` defaults to the true arm unless a
        // single push/pop probe against the saved propagation state proves
        // it infeasible (guarantees progress for bounded loops).
        self.decide(c)
    }

    fn load(&mut self, region: MemRegion, offset: u64, bytes: usize) -> TermRef {
        let addr = region.addr(offset);
        self.tracer.mem_read(addr, bytes as u8);
        let key = (addr, bytes as u8);
        if let Some(&t) = self.mem.get(&key) {
            return t;
        }
        let w = Width::from_bytes(bytes);
        let is_packet = self
            .packet_region
            .map(|r| r.contains(addr))
            .unwrap_or(false);
        let name = if is_packet {
            format!("pkt@{offset}:{bytes}")
        } else {
            format!("mem@{:#x}:{bytes}", addr)
        };
        let t = self.mint_sym(&name, w);
        self.mem.insert(key, t);
        if is_packet {
            if let bolt_expr::Term::Sym { id, .. } = *self.pool.get(t) {
                self.packet_fields.push(PacketField {
                    offset,
                    bytes: bytes as u8,
                    sym: id,
                    term: t,
                });
            }
        }
        t
    }

    fn store(&mut self, region: MemRegion, offset: u64, v: TermRef, bytes: usize) {
        let addr = region.addr(offset);
        self.tracer.mem_write(addr, bytes as u8);
        self.mem.insert((addr, bytes as u8), v);
    }

    fn fresh(&mut self, name: &str, w: Width) -> TermRef {
        let uniq = self.unique_name(name);
        self.mint_sym(&uniq, w)
    }

    fn fork(&mut self, c: TermRef) -> bool {
        if let Some(v) = self.pool.as_const(c) {
            return v != 0;
        }
        self.decide(c)
    }

    fn eq_free(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.pool.eq(a, b)
    }

    fn ule_free(&mut self, a: TermRef, b: TermRef) -> TermRef {
        self.pool.ule(a, b)
    }

    fn assume(&mut self, c: TermRef) {
        if self.pool.as_const(c) == Some(1) {
            return;
        }
        self.entries.push(ConstraintEntry {
            term: c,
            branch: None,
        });
        self.sctx.assert_term(self.pool, c);
    }

    fn tag(&mut self, tag: &'static str) {
        self.tags.push(tag);
    }

    fn verdict(&mut self, v: NfVerdict) {
        self.verdicts.push(v);
    }

    fn is_symbolic(&self) -> bool {
        true
    }

    fn concrete_value(&self, v: TermRef) -> Option<u64> {
        self.pool.as_const(v)
    }

    fn tracer(&mut self) -> &mut dyn Tracer {
        &mut self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_trace::count_ic_ma;

    fn setup() -> (TermPool, Solver) {
        (TermPool::new(), Solver::default())
    }

    #[test]
    fn lazy_packet_fields_are_memoised() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let pkt = ctx.packet(64);
        let a = ctx.load(pkt, 12, 2);
        let b = ctx.load(pkt, 12, 2);
        assert_eq!(a, b, "same field must return the same symbol");
        let rec = ctx.finish();
        assert_eq!(rec.packet_fields.len(), 1);
        assert_eq!(rec.packet_fields[0].offset, 12);
    }

    #[test]
    fn store_then_load_returns_stored_term() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let pkt = ctx.packet(64);
        let v = ctx.lit(0xBEEF, Width::W16);
        ctx.store(pkt, 20, v, 2);
        let r = ctx.load(pkt, 20, 2);
        assert_eq!(ctx.concrete_value(r), Some(0xBEEF));
    }

    #[test]
    fn concrete_branches_do_not_fork() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let t = ctx.lit(1, Width::W1);
        assert!(ctx.branch(t));
        let rec = ctx.finish();
        assert!(rec.decisions.is_empty());
        assert!(rec.entries.is_empty());
    }

    #[test]
    fn symbolic_branch_records_decision_and_constraint() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let pkt = ctx.packet(64);
        let et = ctx.load(pkt, 12, 2);
        let taken = ctx.branch_eq_imm(et, 0x0800, Width::W16);
        assert!(taken, "default arm is true");
        let rec = ctx.finish();
        assert_eq!(rec.decisions, vec![true]);
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].branch, Some(0));
    }

    #[test]
    fn schedule_is_replayed() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![false]);
        let pkt = ctx.packet(64);
        let et = ctx.load(pkt, 12, 2);
        let taken = ctx.branch_eq_imm(et, 0x0800, Width::W16);
        assert!(!taken, "schedule forces the false arm");
    }

    #[test]
    fn infeasible_true_arm_falls_back_to_false() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let pkt = ctx.packet(64);
        let n = ctx.load(pkt, 0, 1);
        // Assume n < 1, then branch on n >= 1: the true arm is infeasible.
        let one = ctx.lit(1, Width::W8);
        let lt = ctx.ult(n, one);
        ctx.assume(lt);
        let ge = ctx.ule(one, n);
        let taken = ctx.branch(ge);
        assert!(!taken, "solver must steer away from the infeasible arm");
    }

    #[test]
    fn bounded_symbolic_loop_terminates() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let pkt = ctx.packet(64);
        let n = ctx.load(pkt, 0, 1);
        let three = ctx.lit(3, Width::W8);
        let bound = ctx.ule(n, three);
        ctx.assume(bound);
        let mut iters = 0u64;
        loop {
            let i = ctx.lit(iters, Width::W8);
            let more = ctx.ult(i, n);
            if !ctx.branch(more) {
                break;
            }
            iters += 1;
            assert!(iters < 100, "loop must terminate via the solver");
        }
        assert_eq!(iters, 3, "default-true exploration runs to the bound");
    }

    #[test]
    fn cost_stream_counts() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let pkt = ctx.packet(64);
        let x = ctx.load(pkt, 8, 2); // load
        let c = ctx.eq_imm(x, 0, Width::W16); // alu
        ctx.branch(c); // branch
        let rec = ctx.finish();
        let (ic, ma) = count_ic_ma(&rec.events);
        assert_eq!((ic, ma), (3, 1));
    }

    #[test]
    fn fresh_names_are_unique_per_run() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let a = ctx.fresh("m.hit", Width::W1);
        let b = ctx.fresh("m.hit", Width::W1);
        assert_ne!(a, b);
        let rec = ctx.finish();
        drop(rec);
        assert_eq!(pool.sym_name(0), "m.hit");
        assert_eq!(pool.sym_name(1), "m.hit#1");
    }

    #[test]
    fn final_packet_reflects_writes() {
        let (mut pool, solver) = setup();
        let mut ctx = SymbolicCtx::new(&mut pool, &solver, vec![]);
        let pkt = ctx.packet(64);
        let _src = ctx.load(pkt, 26, 4);
        let v = ctx.lit(0x0a000001, Width::W32);
        ctx.store(pkt, 26, v, 4);
        let rec = ctx.finish();
        assert_eq!(rec.final_packet.len(), 1);
        let (off, bytes, term) = rec.final_packet[0];
        assert_eq!((off, bytes), (26, 4));
        assert_eq!(pool.as_const(term), Some(0x0a000001));
    }
}
