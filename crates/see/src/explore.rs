//! Exhaustive path exploration (Algorithm 2, line 3: `GetAllPaths`).
//!
//! The explorer re-runs the NF body deterministically with a worklist of
//! decision prefixes. A run takes the scheduled decisions at its first
//! `prefix.len()` symbolic branches, then defaults (feasibility-guided
//! true-first) beyond. For every *new* decision the run makes, the flipped
//! alternative is enqueued unless the solver proves it infeasible at that
//! point. The result is the full feasible-path tree of the stateless NF
//! code, each path carrying its constraints, stateless instruction trace,
//! stateful-call events, tags, verdict, and packet-field symbol table.
//!
//! Solving is incremental throughout: each run extends one
//! [`SolverCtx`] constraint-by-constraint as it executes, every flip is
//! probed with a single push/pop against the saved propagation state of
//! the walked prefix (replacing the old per-flip constraint rescan and
//! from-scratch solve), and all runs share a [`bolt_solver::SolverCache`]
//! of feasibility verdicts and models. [`ExplorationResult::stats`]
//! reports what answered each request.
//!
//! # Parallel exploration
//!
//! With [`Explorer::threads`] > 1, worklist entries are executed by a
//! fixed-size worker pool ([`std::thread::scope`]) while a sequential
//! *committer* merges their results in exact sequential worklist order.
//! Workers are pure speculation: each runs one decision prefix against a
//! private [`TermPool`] and private solver state (a run's decisions are
//! classification-deterministic, so speculative execution always agrees
//! with what the sequential explorer would have done). The committer
//! then absorbs each private pool into the shared one (deterministic
//! re-interning through [`TermPool::absorb_with`] — the same machinery
//! that makes decoded-store rehydration `TermRef`-identical) and
//! *replays* the run's probe/assert sequence against the shared
//! [`bolt_solver::SolverCache`], so the cache, its counters, and the
//! flip-derived worklist evolve exactly as in a sequential run. The
//! result — pool arena order, path order, decisions, tags, verdicts,
//! metrics, stats, truncation — is bit-identical at any thread count.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

use bolt_expr::{Term, TermPool, TermRef};
use bolt_solver::{Solver, SolverCtx, SolverStats};
use bolt_trace::TraceEvent;

use crate::symbolic::{ConstraintEntry, ExploreShared, PacketField, RunRecord, SymbolicCtx};
use crate::NfVerdict;

/// One explored feasible execution path.
#[derive(Debug)]
pub struct Path {
    /// Path constraints, in assertion order.
    pub constraints: Vec<TermRef>,
    /// Stateless instruction trace (includes `Stateful` call events).
    pub events: Vec<TraceEvent>,
    /// Human-readable labels attached by the NF code on this path.
    pub tags: Vec<&'static str>,
    /// The NF's verdict on this path, if it reached one.
    pub verdict: Option<NfVerdict>,
    /// Input packet fields read along this path.
    pub packet_fields: Vec<PacketField>,
    /// Final symbolic state of the packet (for chain composition).
    pub final_packet: Vec<(u64, u8, TermRef)>,
    /// The branch decisions that select this path (diagnostics).
    pub decisions: Vec<bool>,
}

impl Path {
    /// Find the input symbol term for a packet field, if this path read it.
    pub fn field(&self, offset: u64, bytes: u8) -> Option<TermRef> {
        self.packet_fields
            .iter()
            .find(|f| f.offset == offset && f.bytes == bytes)
            .map(|f| f.term)
    }

    /// Whether the path carries a tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(&tag)
    }
}

/// Counters describing one exploration's solving work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// How feasibility requests were answered (see [`SolverStats`]).
    pub solver: SolverStats,
    /// Number of deterministic re-executions (worklist entries run).
    pub runs: u64,
    /// Distinct terms interned in the pool at the end of exploration.
    pub terms_interned: u64,
    /// Distinct symbols minted (shared across sibling runs).
    pub syms_minted: u64,
}

/// Result of an exploration: the shared term pool plus all feasible paths.
#[derive(Debug)]
pub struct ExplorationResult {
    /// Pool owning every term referenced by the paths.
    pub pool: TermPool,
    /// All feasible paths, in exploration order.
    pub paths: Vec<Path>,
    /// Solver-work counters for this exploration.
    pub stats: ExploreStats,
    /// Whether exploration stopped early because `max_paths` was reached.
    /// Truncated results are incomplete — library callers must check this
    /// instead of relying on a panic.
    pub truncated: bool,
}

impl ExplorationResult {
    /// Paths carrying a given tag.
    pub fn tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Path> + 'a {
        self.paths.iter().filter(move |p| p.has_tag(tag))
    }
}

/// The path explorer.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Solver used for flip pruning and final feasibility checks.
    pub solver: Solver,
    /// Hard cap on explored paths (defence against unbounded NF loops).
    pub max_paths: usize,
    /// Worker threads for [`Explorer::explore_par`]. 1 (the default)
    /// runs the plain sequential worklist; higher counts speculate
    /// worklist entries on a worker pool and commit them sequentially,
    /// with bit-identical output at any value.
    pub threads: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            solver: Solver::default(),
            max_paths: 65536,
            threads: 1,
        }
    }
}

impl Explorer {
    /// New explorer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exhaustively explore `body`, which must run one packet's worth of
    /// NF logic against the provided context (deterministically — the same
    /// decisions must lead to the same operations).
    ///
    /// If the feasible-path tree exceeds `max_paths`, exploration stops
    /// and the result is marked [`ExplorationResult::truncated`] instead
    /// of panicking, so library callers can handle path explosion.
    pub fn explore<F>(&self, mut body: F) -> ExplorationResult
    where
        F: FnMut(&mut SymbolicCtx<'_>),
    {
        let mut pool = TermPool::new();
        let mut shared = ExploreShared::default();
        let mut paths = Vec::new();
        let mut truncated = false;
        let mut runs = 0u64;
        // Worklist of decision prefixes; the final decision of each prefix
        // is the flip that spawned it.
        let mut worklist: Vec<Vec<bool>> = vec![Vec::new()];
        while let Some(prefix) = worklist.pop() {
            if paths.len() >= self.max_paths {
                // Path explosion: stop exploring and report truncation.
                truncated = true;
                break;
            }
            runs += 1;
            let prefix_len = prefix.len();
            let mut ctx = SymbolicCtx::with_shared(&mut pool, &self.solver, prefix, &mut shared);
            body(&mut ctx);
            let feasible = ctx.path_feasible();
            let rec = ctx.finish();

            // Enqueue feasible flips of the decisions made beyond the
            // prefix (the prefix's own decisions were already covered when
            // their parent run enqueued them). One incrementally-extended
            // context walks the entries in assertion order; each flip is
            // one push/pop probe against the walked prefix state — the old
            // code rebuilt the constraint prefix and re-solved from
            // scratch for every flip, O(n²) per run.
            let mut walk = SolverCtx::new(&self.solver);
            if let Some(m) = &rec.model {
                walk.install_model(&pool, m.clone());
            }
            for e in &rec.entries {
                if let Some(i) = e.branch {
                    if i >= prefix_len {
                        let cond = rec.branch_conds[i];
                        let flipped = if rec.decisions[i] {
                            pool.not(cond)
                        } else {
                            cond
                        };
                        if walk.probe_feasible(&pool, &mut shared.cache, flipped) {
                            let mut alt: Vec<bool> = rec.decisions[..i].to_vec();
                            alt.push(!rec.decisions[i]);
                            worklist.push(alt);
                        }
                    }
                }
                walk.assert_term(&pool, e.term);
            }

            if feasible {
                let constraints: Vec<TermRef> = rec.entries.iter().map(|e| e.term).collect();
                paths.push(Path {
                    constraints,
                    events: rec.events,
                    tags: rec.tags,
                    verdict: rec.verdicts.last().copied(),
                    packet_fields: rec.packet_fields,
                    final_packet: rec.final_packet,
                    decisions: rec.decisions,
                });
            }
        }
        let stats = ExploreStats {
            solver: shared.cache.stats,
            runs,
            terms_interned: pool.len() as u64,
            syms_minted: pool.sym_count() as u64,
        };
        ExplorationResult {
            pool,
            paths,
            stats,
            truncated,
        }
    }

    /// Like [`Explorer::explore`], but shareable across threads: with
    /// [`Explorer::threads`] > 1, worklist entries run speculatively on
    /// a worker pool and a deterministic committer orders, merges, and
    /// replays them so the result is bit-identical to the sequential
    /// exploration — same pool arena, same path order, same decisions,
    /// tags, verdicts and metrics, same solver counters, same
    /// truncation behaviour. With `threads <= 1` this *is*
    /// [`Explorer::explore`].
    pub fn explore_par<F>(&self, body: F) -> ExplorationResult
    where
        F: Fn(&mut SymbolicCtx<'_>) + Sync,
    {
        if self.threads <= 1 {
            return self.explore(body);
        }
        // Clamp: an absurd env-driven count (`BOLT_THREADS=100000`)
        // must degrade to oversubscription, not abort the process when
        // the OS refuses a spawn. Output is thread-count-independent,
        // so clamping never changes results.
        let threads = self.threads.min(MAX_WORKERS);
        let sched = Scheduler::default();
        let mut pool = TermPool::new();
        let mut shared = ExploreShared::default();
        let mut paths = Vec::new();
        let mut truncated = false;
        let mut runs = 0u64;
        std::thread::scope(|scope| {
            // Stop the workers however this closure exits: a panic on
            // the committer's thread (an NF-body panic is re-raised
            // here) must not leave workers parked on the condvar, or
            // `thread::scope`'s implicit join would deadlock the unwind.
            let _stop_workers = ShutdownGuard(&sched);
            for _ in 0..threads {
                scope.spawn(|| sched.worker_loop(&self.solver, &body));
            }
            // The committer mirrors the sequential worklist exactly; the
            // scheduler queue is a rear-window copy of it, so workers
            // naturally speculate the entries the committer needs next.
            let mut worklist: Vec<Vec<bool>> = vec![Vec::new()];
            sched.submit(Vec::new());
            while let Some(prefix) = worklist.pop() {
                if paths.len() >= self.max_paths {
                    truncated = true;
                    break;
                }
                runs += 1;
                let spec = sched
                    .take(&prefix)
                    .unwrap_or_else(|| speculate(&self.solver, &body, prefix.clone()));
                let (path, children) = self.commit(&mut pool, &mut shared, prefix.len(), spec);
                for child in children {
                    worklist.push(child.clone());
                    sched.submit(child);
                }
                if let Some(p) = path {
                    paths.push(p);
                }
            }
        });
        let stats = ExploreStats {
            solver: shared.cache.stats,
            runs,
            terms_interned: pool.len() as u64,
            syms_minted: pool.sym_count() as u64,
        };
        ExplorationResult {
            pool,
            paths,
            stats,
            truncated,
        }
    }

    /// Merge one speculative run into the shared state, in sequential
    /// position. Three steps, each mirroring what the sequential loop
    /// would have done at this worklist entry:
    ///
    /// 1. absorb the worker's private pool (deterministic re-intern;
    ///    symbols resolve through the shared cross-run registry), so the
    ///    shared arena gains exactly the nodes a sequential run would
    ///    have interned here, in the same order;
    /// 2. replay the run's solver interaction — the in-run decision
    ///    probes and asserts in assertion order, then the whole-path
    ///    feasibility check — against the shared cache, so memo/model
    ///    state and every counter evolve exactly as sequentially;
    /// 3. walk the flips to enqueue feasible alternatives (the
    ///    worklist-extension walk of the sequential loop, verbatim).
    fn commit(
        &self,
        pool: &mut TermPool,
        shared: &mut ExploreShared,
        prefix_len: usize,
        spec: SpecResult,
    ) -> (Option<Path>, Vec<Vec<bool>>) {
        let SpecResult { pool: lp, rec } = spec;
        let tmap = pool.absorb_with(&lp, |p, name, w| shared.sym_for(p, name, w));
        let remap = |t: TermRef| tmap[t.index()];
        let entries: Vec<ConstraintEntry> = rec
            .entries
            .iter()
            .map(|e| ConstraintEntry {
                term: remap(e.term),
                branch: e.branch,
            })
            .collect();
        let branch_conds: Vec<TermRef> = rec.branch_conds.iter().copied().map(remap).collect();

        // Step 2: replay. Beyond the scheduled prefix, every decision
        // was probed before its constraint was asserted; scheduled
        // decisions and `assume`s assert without probing.
        let mut rctx = SolverCtx::new(&self.solver);
        for e in &entries {
            if let Some(i) = e.branch {
                if i >= prefix_len {
                    let taken = rctx.probe_feasible(pool, &mut shared.cache, branch_conds[i]);
                    // Hard assert (one comparison per decision, free
                    // next to the probe): a divergence means the NF
                    // body is nondeterministic or a solver fast path
                    // stopped being classification-identical, and
                    // committing the speculated constraints against
                    // replayed cache state would silently produce an
                    // inconsistent tree.
                    assert_eq!(
                        taken, rec.decisions[i],
                        "speculative decision diverged from the shared-state replay \
                         (nondeterministic NF body?)"
                    );
                }
            }
            rctx.assert_term(pool, e.term);
        }
        let feasible = rctx.current_feasible(pool, &mut shared.cache);

        // Step 3: the flip walk of the sequential loop.
        let mut walk = SolverCtx::new(&self.solver);
        if let Some(m) = rctx.model() {
            walk.install_model(pool, m.clone());
        }
        let mut children = Vec::new();
        for e in &entries {
            if let Some(i) = e.branch {
                if i >= prefix_len {
                    let cond = branch_conds[i];
                    let flipped = if rec.decisions[i] {
                        pool.not(cond)
                    } else {
                        cond
                    };
                    if walk.probe_feasible(pool, &mut shared.cache, flipped) {
                        let mut alt: Vec<bool> = rec.decisions[..i].to_vec();
                        alt.push(!rec.decisions[i]);
                        children.push(alt);
                    }
                }
            }
            walk.assert_term(pool, e.term);
        }

        let path = feasible.then(|| Path {
            constraints: entries.iter().map(|e| e.term).collect(),
            events: rec.events,
            tags: rec.tags,
            verdict: rec.verdicts.last().copied(),
            packet_fields: rec
                .packet_fields
                .iter()
                .map(|f| {
                    let term = remap(f.term);
                    let sym = match *pool.get(term) {
                        Term::Sym { id, .. } => id,
                        _ => unreachable!("packet-field terms are symbols"),
                    };
                    PacketField {
                        offset: f.offset,
                        bytes: f.bytes,
                        sym,
                        term,
                    }
                })
                .collect(),
            final_packet: rec
                .final_packet
                .iter()
                .map(|&(o, b, t)| (o, b, remap(t)))
                .collect(),
            decisions: rec.decisions,
        });
        (path, children)
    }
}

/// Hard ceiling on spawned speculation workers, whatever
/// [`Explorer::threads`] says (worklist width rarely rewards more, and
/// a runaway `BOLT_THREADS` must not exhaust OS threads).
const MAX_WORKERS: usize = 256;

/// One speculative run: the worker's private pool plus the raw record
/// its execution produced. Everything in the record is expressed in
/// private-pool refs/ids until the committer absorbs it.
struct SpecResult {
    pool: TermPool,
    rec: RunRecord,
}

/// Execute one worklist entry against fresh private state. Valid at any
/// time, in any order: a run's behaviour depends only on its decision
/// prefix (decisions beyond it are classification-deterministic), never
/// on sibling runs.
fn speculate<F>(solver: &Solver, body: &F, prefix: Vec<bool>) -> SpecResult
where
    F: Fn(&mut SymbolicCtx<'_>),
{
    let mut pool = TermPool::new();
    let mut shared = ExploreShared::default();
    let mut ctx = SymbolicCtx::with_shared(&mut pool, solver, prefix, &mut shared);
    body(&mut ctx);
    let rec = ctx.finish();
    SpecResult { pool, rec }
}

/// Work distribution between the committer and the speculation workers.
/// `queue` mirrors the committer's worklist tail (LIFO — the entry the
/// committer pops next is speculated first); `done` holds finished runs
/// until the committer collects them (`None` marks a worker panic; the
/// committer re-runs inline so the panic surfaces on its thread).
#[derive(Default)]
struct SchedState {
    queue: Vec<Vec<bool>>,
    running: HashSet<Vec<bool>>,
    done: HashMap<Vec<bool>, Option<SpecResult>>,
    shutdown: bool,
}

#[derive(Default)]
struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Calls [`Scheduler::shutdown`] on drop, so the worker pool is released
/// on every committer exit path — normal completion, truncation, and
/// panic unwind alike.
struct ShutdownGuard<'a>(&'a Scheduler);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

impl Scheduler {
    /// Make a worklist entry available for speculation.
    fn submit(&self, prefix: Vec<bool>) {
        let mut st = self.state.lock().unwrap();
        st.queue.push(prefix);
        drop(st);
        self.cv.notify_all();
    }

    /// Stop the workers (the committer's worklist is exhausted,
    /// truncated, or unwinding; un-taken speculation is abandoned).
    /// Poison-tolerant: this runs from [`ShutdownGuard`]'s drop during
    /// a panic unwind, where a second panic would abort the process.
    fn shutdown(&self) {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        st.shutdown = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Collect the speculative result for `prefix`: wait if a worker is
    /// on it, steal it from the queue otherwise. `None` means the
    /// committer must execute the entry itself (it was still queued, or
    /// its worker panicked).
    fn take(&self, prefix: &[bool]) -> Option<SpecResult> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(outcome) = st.done.remove(prefix) {
                return outcome;
            }
            if !st.running.contains(prefix) {
                // Still queued (or never reached a worker): claim it and
                // run inline rather than waiting for a free worker.
                if let Some(pos) = st.queue.iter().rposition(|p| p == prefix) {
                    st.queue.remove(pos);
                }
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Worker: repeatedly speculate the most recently queued entry.
    fn worker_loop<F>(&self, solver: &Solver, body: &F)
    where
        F: Fn(&mut SymbolicCtx<'_>) + Sync,
    {
        loop {
            let prefix = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(p) = st.queue.pop() {
                        st.running.insert(p.clone());
                        break p;
                    }
                    st = self.cv.wait(st).unwrap();
                }
            };
            let spec =
                catch_unwind(AssertUnwindSafe(|| speculate(solver, body, prefix.clone()))).ok();
            let mut st = self.state.lock().unwrap();
            st.running.remove(&prefix);
            st.done.insert(prefix, spec);
            drop(st);
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NfCtx;
    use bolt_expr::Width;
    use bolt_trace::count_ic_ma;

    /// Toy LPM-router shape: invalid packets drop; valid packets loop over
    /// a bounded symbolic prefix length.
    fn toy_router(ctx: &mut SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        let et = ctx.load(pkt, 12, 2);
        if ctx.branch_eq_imm(et, 0x0800, Width::W16) {
            ctx.tag("valid");
            let l = ctx.load(pkt, 30, 1);
            let three = ctx.lit(3, Width::W8);
            let bounded = ctx.ule(l, three);
            ctx.assume(bounded);
            let mut i = 0u64;
            loop {
                let iv = ctx.lit(i, Width::W8);
                let more = ctx.ult(iv, l);
                if !ctx.branch(more) {
                    break;
                }
                // Loop body: constant work.
                let a = ctx.lit(1, Width::W32);
                let b = ctx.lit(2, Width::W32);
                let _ = ctx.add(a, b);
                i += 1;
            }
            ctx.verdict(NfVerdict::Forward(0));
        } else {
            ctx.tag("invalid");
            ctx.verdict(NfVerdict::Drop);
        }
    }

    #[test]
    fn explores_all_feasible_paths() {
        let result = Explorer::new().explore(toy_router);
        // invalid + valid with l = 0,1,2,3 → 5 paths.
        assert_eq!(result.paths.len(), 5);
        assert_eq!(result.tagged("invalid").count(), 1);
        assert_eq!(result.tagged("valid").count(), 4);
    }

    #[test]
    fn loop_paths_have_increasing_cost() {
        let result = Explorer::new().explore(toy_router);
        let mut costs: Vec<u64> = result
            .tagged("valid")
            .map(|p| count_ic_ma(&p.events).0)
            .collect();
        costs.sort_unstable();
        for w in costs.windows(2) {
            assert!(w[1] > w[0], "each extra iteration must cost more");
        }
    }

    #[test]
    fn every_path_has_a_witness() {
        let result = Explorer::new().explore(toy_router);
        let solver = Solver::default();
        for p in &result.paths {
            let r = solver.check(&result.pool, &p.constraints);
            let w = r
                .witness()
                .unwrap_or_else(|| panic!("no witness for path {:?} ({:?})", p.decisions, r));
            assert!(w.satisfies(&result.pool, &p.constraints));
        }
    }

    #[test]
    fn verdicts_recorded_per_path() {
        let result = Explorer::new().explore(toy_router);
        for p in &result.paths {
            if p.has_tag("invalid") {
                assert_eq!(p.verdict, Some(NfVerdict::Drop));
            } else {
                assert_eq!(p.verdict, Some(NfVerdict::Forward(0)));
            }
        }
    }

    #[test]
    fn infeasible_combinations_are_pruned() {
        // A branch followed by a contradictory branch: only 2 paths, not 4.
        let result = Explorer::new().explore(|ctx| {
            let pkt = ctx.packet(64);
            let x = ctx.load(pkt, 0, 1);
            let ten = ctx.lit(10, Width::W8);
            let small = ctx.ult(x, ten);
            if ctx.branch(small) {
                // x < 10: branching on x >= 10 must not fork.
                let big = ctx.ule(ten, x);
                assert!(!ctx.branch(big), "contradictory arm must be pruned");
                ctx.tag("small");
            } else {
                ctx.tag("large");
            }
        });
        assert_eq!(result.paths.len(), 2);
    }

    #[test]
    fn field_lookup_on_paths() {
        let result = Explorer::new().explore(toy_router);
        for p in &result.paths {
            assert!(p.field(12, 2).is_some(), "every path reads ether_type");
            assert!(p.field(99, 2).is_none());
        }
    }

    #[test]
    fn deterministic_exploration() {
        let a = Explorer::new().explore(toy_router);
        let b = Explorer::new().explore(toy_router);
        assert_eq!(a.paths.len(), b.paths.len());
        for (pa, pb) in a.paths.iter().zip(&b.paths) {
            assert_eq!(pa.decisions, pb.decisions);
            assert_eq!(count_ic_ma(&pa.events), count_ic_ma(&pb.events));
        }
    }

    #[test]
    fn path_explosion_truncates_instead_of_panicking() {
        let mut ex = Explorer::new();
        ex.max_paths = 2;
        let result = ex.explore(toy_router);
        assert!(result.truncated, "hitting max_paths must set the marker");
        assert!(result.paths.len() <= 2);
        // The untruncated exploration is complete and says so.
        let full = Explorer::new().explore(toy_router);
        assert!(!full.truncated);
        assert_eq!(full.paths.len(), 5);
    }

    #[test]
    fn stats_expose_solver_work() {
        let result = Explorer::new().explore(toy_router);
        let s = result.stats.solver;
        assert_eq!(result.stats.runs as usize, result.paths.len());
        assert!(s.checks_requested > 0, "exploration must issue requests");
        assert!(
            s.solver_queries + s.shortcuts() >= s.checks_requested,
            "every request is either a query or a shortcut"
        );
        assert_eq!(result.stats.terms_interned, result.pool.len() as u64);
    }

    #[test]
    fn parallel_exploration_is_bit_identical() {
        let seq = Explorer::new().explore(toy_router);
        let seq_bytes = crate::codec::encode_result(&seq);
        for threads in [2, 3, 8] {
            let mut ex = Explorer::new();
            ex.threads = threads;
            let par = ex.explore_par(toy_router);
            // The encoded result pins everything: pool arena order,
            // symbol registry, path order, constraints, events, tags,
            // verdicts, stats, truncation.
            assert_eq!(
                crate::codec::encode_result(&par),
                seq_bytes,
                "exploration at {threads} threads diverged from sequential"
            );
        }
    }

    #[test]
    fn parallel_truncation_is_deterministic() {
        let mut seq = Explorer::new();
        seq.max_paths = 2;
        let seq = seq.explore(toy_router);
        assert!(seq.truncated);
        assert_eq!(seq.paths.len(), 2, "truncation stops at exactly max_paths");
        let seq_bytes = crate::codec::encode_result(&seq);
        for threads in [2, 8] {
            let mut ex = Explorer::new();
            ex.max_paths = 2;
            ex.threads = threads;
            let par = ex.explore_par(toy_router);
            assert!(
                par.truncated,
                "truncation marker must survive {threads} threads"
            );
            assert_eq!(par.paths.len(), 2);
            assert_eq!(crate::codec::encode_result(&par), seq_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "nf body panicked")]
    fn parallel_exploration_propagates_body_panics() {
        // A panicking NF body must unwind out of explore_par (workers
        // are shut down by the guard), not deadlock the scope join.
        let mut ex = Explorer::new();
        ex.threads = 2;
        let _ = ex.explore_par(|ctx| {
            let pkt = ctx.packet(64);
            let b = ctx.load(pkt, 0, 1);
            let z = ctx.lit(0, Width::W8);
            let c = ctx.eq(b, z);
            ctx.branch(c);
            panic!("nf body panicked");
        });
    }

    #[test]
    fn explore_par_single_thread_is_the_sequential_explorer() {
        let mut ex = Explorer::new();
        ex.threads = 1;
        let a = ex.explore_par(toy_router);
        let b = Explorer::new().explore(toy_router);
        assert_eq!(
            crate::codec::encode_result(&a),
            crate::codec::encode_result(&b)
        );
    }

    #[test]
    fn sibling_runs_share_symbols_and_terms() {
        // Five runs all load the same fields: the pool must hold one
        // symbol per field, not one per (field, run) pair.
        let result = Explorer::new().explore(toy_router);
        assert_eq!(result.paths.len(), 5);
        let names: Vec<&str> = (0..result.pool.sym_count())
            .map(|i| result.pool.sym_name(i as u32))
            .collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(
            deduped.len(),
            names.len(),
            "cross-run symbol registry must not re-mint symbols: {names:?}"
        );
    }
}
