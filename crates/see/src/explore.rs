//! Exhaustive path exploration (Algorithm 2, line 3: `GetAllPaths`).
//!
//! The explorer re-runs the NF body deterministically with a worklist of
//! decision prefixes. A run takes the scheduled decisions at its first
//! `prefix.len()` symbolic branches, then defaults (feasibility-guided
//! true-first) beyond. For every *new* decision the run makes, the flipped
//! alternative is enqueued unless the solver proves it infeasible at that
//! point. The result is the full feasible-path tree of the stateless NF
//! code, each path carrying its constraints, stateless instruction trace,
//! stateful-call events, tags, verdict, and packet-field symbol table.
//!
//! Solving is incremental throughout: each run extends one
//! [`SolverCtx`] constraint-by-constraint as it executes, every flip is
//! probed with a single push/pop against the saved propagation state of
//! the walked prefix (replacing the old per-flip constraint rescan and
//! from-scratch solve), and all runs share a [`bolt_solver::SolverCache`]
//! of feasibility verdicts and models. [`ExplorationResult::stats`]
//! reports what answered each request.

use bolt_expr::{TermPool, TermRef};
use bolt_solver::{Solver, SolverCtx, SolverStats};
use bolt_trace::TraceEvent;

use crate::symbolic::{ExploreShared, PacketField, SymbolicCtx};
use crate::NfVerdict;

/// One explored feasible execution path.
#[derive(Debug)]
pub struct Path {
    /// Path constraints, in assertion order.
    pub constraints: Vec<TermRef>,
    /// Stateless instruction trace (includes `Stateful` call events).
    pub events: Vec<TraceEvent>,
    /// Human-readable labels attached by the NF code on this path.
    pub tags: Vec<&'static str>,
    /// The NF's verdict on this path, if it reached one.
    pub verdict: Option<NfVerdict>,
    /// Input packet fields read along this path.
    pub packet_fields: Vec<PacketField>,
    /// Final symbolic state of the packet (for chain composition).
    pub final_packet: Vec<(u64, u8, TermRef)>,
    /// The branch decisions that select this path (diagnostics).
    pub decisions: Vec<bool>,
}

impl Path {
    /// Find the input symbol term for a packet field, if this path read it.
    pub fn field(&self, offset: u64, bytes: u8) -> Option<TermRef> {
        self.packet_fields
            .iter()
            .find(|f| f.offset == offset && f.bytes == bytes)
            .map(|f| f.term)
    }

    /// Whether the path carries a tag.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.contains(&tag)
    }
}

/// Counters describing one exploration's solving work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// How feasibility requests were answered (see [`SolverStats`]).
    pub solver: SolverStats,
    /// Number of deterministic re-executions (worklist entries run).
    pub runs: u64,
    /// Distinct terms interned in the pool at the end of exploration.
    pub terms_interned: u64,
    /// Distinct symbols minted (shared across sibling runs).
    pub syms_minted: u64,
}

/// Result of an exploration: the shared term pool plus all feasible paths.
#[derive(Debug)]
pub struct ExplorationResult {
    /// Pool owning every term referenced by the paths.
    pub pool: TermPool,
    /// All feasible paths, in exploration order.
    pub paths: Vec<Path>,
    /// Solver-work counters for this exploration.
    pub stats: ExploreStats,
    /// Whether exploration stopped early because `max_paths` was reached.
    /// Truncated results are incomplete — library callers must check this
    /// instead of relying on a panic.
    pub truncated: bool,
}

impl ExplorationResult {
    /// Paths carrying a given tag.
    pub fn tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a Path> + 'a {
        self.paths.iter().filter(move |p| p.has_tag(tag))
    }
}

/// The path explorer.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Solver used for flip pruning and final feasibility checks.
    pub solver: Solver,
    /// Hard cap on explored paths (defence against unbounded NF loops).
    pub max_paths: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            solver: Solver::default(),
            max_paths: 65536,
        }
    }
}

impl Explorer {
    /// New explorer with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exhaustively explore `body`, which must run one packet's worth of
    /// NF logic against the provided context (deterministically — the same
    /// decisions must lead to the same operations).
    ///
    /// If the feasible-path tree exceeds `max_paths`, exploration stops
    /// and the result is marked [`ExplorationResult::truncated`] instead
    /// of panicking, so library callers can handle path explosion.
    pub fn explore<F>(&self, mut body: F) -> ExplorationResult
    where
        F: FnMut(&mut SymbolicCtx<'_>),
    {
        let mut pool = TermPool::new();
        let mut shared = ExploreShared::default();
        let mut paths = Vec::new();
        let mut truncated = false;
        let mut runs = 0u64;
        // Worklist of decision prefixes; the final decision of each prefix
        // is the flip that spawned it.
        let mut worklist: Vec<Vec<bool>> = vec![Vec::new()];
        while let Some(prefix) = worklist.pop() {
            if paths.len() >= self.max_paths {
                // Path explosion: stop exploring and report truncation.
                truncated = true;
                break;
            }
            runs += 1;
            let prefix_len = prefix.len();
            let mut ctx = SymbolicCtx::with_shared(&mut pool, &self.solver, prefix, &mut shared);
            body(&mut ctx);
            let feasible = ctx.path_feasible();
            let rec = ctx.finish();

            // Enqueue feasible flips of the decisions made beyond the
            // prefix (the prefix's own decisions were already covered when
            // their parent run enqueued them). One incrementally-extended
            // context walks the entries in assertion order; each flip is
            // one push/pop probe against the walked prefix state — the old
            // code rebuilt the constraint prefix and re-solved from
            // scratch for every flip, O(n²) per run.
            let mut walk = SolverCtx::new(&self.solver);
            if let Some(m) = &rec.model {
                walk.install_model(&pool, m.clone());
            }
            for e in &rec.entries {
                if let Some(i) = e.branch {
                    if i >= prefix_len {
                        let cond = rec.branch_conds[i];
                        let flipped = if rec.decisions[i] {
                            pool.not(cond)
                        } else {
                            cond
                        };
                        if walk.probe_feasible(&pool, &mut shared.cache, flipped) {
                            let mut alt: Vec<bool> = rec.decisions[..i].to_vec();
                            alt.push(!rec.decisions[i]);
                            worklist.push(alt);
                        }
                    }
                }
                walk.assert_term(&pool, e.term);
            }

            if feasible {
                let constraints: Vec<TermRef> = rec.entries.iter().map(|e| e.term).collect();
                paths.push(Path {
                    constraints,
                    events: rec.events,
                    tags: rec.tags,
                    verdict: rec.verdicts.last().copied(),
                    packet_fields: rec.packet_fields,
                    final_packet: rec.final_packet,
                    decisions: rec.decisions,
                });
            }
        }
        let stats = ExploreStats {
            solver: shared.cache.stats,
            runs,
            terms_interned: pool.len() as u64,
            syms_minted: pool.sym_count() as u64,
        };
        ExplorationResult {
            pool,
            paths,
            stats,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NfCtx;
    use bolt_expr::Width;
    use bolt_trace::count_ic_ma;

    /// Toy LPM-router shape: invalid packets drop; valid packets loop over
    /// a bounded symbolic prefix length.
    fn toy_router(ctx: &mut SymbolicCtx<'_>) {
        let pkt = ctx.packet(64);
        let et = ctx.load(pkt, 12, 2);
        if ctx.branch_eq_imm(et, 0x0800, Width::W16) {
            ctx.tag("valid");
            let l = ctx.load(pkt, 30, 1);
            let three = ctx.lit(3, Width::W8);
            let bounded = ctx.ule(l, three);
            ctx.assume(bounded);
            let mut i = 0u64;
            loop {
                let iv = ctx.lit(i, Width::W8);
                let more = ctx.ult(iv, l);
                if !ctx.branch(more) {
                    break;
                }
                // Loop body: constant work.
                let a = ctx.lit(1, Width::W32);
                let b = ctx.lit(2, Width::W32);
                let _ = ctx.add(a, b);
                i += 1;
            }
            ctx.verdict(NfVerdict::Forward(0));
        } else {
            ctx.tag("invalid");
            ctx.verdict(NfVerdict::Drop);
        }
    }

    #[test]
    fn explores_all_feasible_paths() {
        let result = Explorer::new().explore(toy_router);
        // invalid + valid with l = 0,1,2,3 → 5 paths.
        assert_eq!(result.paths.len(), 5);
        assert_eq!(result.tagged("invalid").count(), 1);
        assert_eq!(result.tagged("valid").count(), 4);
    }

    #[test]
    fn loop_paths_have_increasing_cost() {
        let result = Explorer::new().explore(toy_router);
        let mut costs: Vec<u64> = result
            .tagged("valid")
            .map(|p| count_ic_ma(&p.events).0)
            .collect();
        costs.sort_unstable();
        for w in costs.windows(2) {
            assert!(w[1] > w[0], "each extra iteration must cost more");
        }
    }

    #[test]
    fn every_path_has_a_witness() {
        let result = Explorer::new().explore(toy_router);
        let solver = Solver::default();
        for p in &result.paths {
            let r = solver.check(&result.pool, &p.constraints);
            let w = r
                .witness()
                .unwrap_or_else(|| panic!("no witness for path {:?} ({:?})", p.decisions, r));
            assert!(w.satisfies(&result.pool, &p.constraints));
        }
    }

    #[test]
    fn verdicts_recorded_per_path() {
        let result = Explorer::new().explore(toy_router);
        for p in &result.paths {
            if p.has_tag("invalid") {
                assert_eq!(p.verdict, Some(NfVerdict::Drop));
            } else {
                assert_eq!(p.verdict, Some(NfVerdict::Forward(0)));
            }
        }
    }

    #[test]
    fn infeasible_combinations_are_pruned() {
        // A branch followed by a contradictory branch: only 2 paths, not 4.
        let result = Explorer::new().explore(|ctx| {
            let pkt = ctx.packet(64);
            let x = ctx.load(pkt, 0, 1);
            let ten = ctx.lit(10, Width::W8);
            let small = ctx.ult(x, ten);
            if ctx.branch(small) {
                // x < 10: branching on x >= 10 must not fork.
                let big = ctx.ule(ten, x);
                assert!(!ctx.branch(big), "contradictory arm must be pruned");
                ctx.tag("small");
            } else {
                ctx.tag("large");
            }
        });
        assert_eq!(result.paths.len(), 2);
    }

    #[test]
    fn field_lookup_on_paths() {
        let result = Explorer::new().explore(toy_router);
        for p in &result.paths {
            assert!(p.field(12, 2).is_some(), "every path reads ether_type");
            assert!(p.field(99, 2).is_none());
        }
    }

    #[test]
    fn deterministic_exploration() {
        let a = Explorer::new().explore(toy_router);
        let b = Explorer::new().explore(toy_router);
        assert_eq!(a.paths.len(), b.paths.len());
        for (pa, pb) in a.paths.iter().zip(&b.paths) {
            assert_eq!(pa.decisions, pb.decisions);
            assert_eq!(count_ic_ma(&pa.events), count_ic_ma(&pb.events));
        }
    }

    #[test]
    fn path_explosion_truncates_instead_of_panicking() {
        let mut ex = Explorer::new();
        ex.max_paths = 2;
        let result = ex.explore(toy_router);
        assert!(result.truncated, "hitting max_paths must set the marker");
        assert!(result.paths.len() <= 2);
        // The untruncated exploration is complete and says so.
        let full = Explorer::new().explore(toy_router);
        assert!(!full.truncated);
        assert_eq!(full.paths.len(), 5);
    }

    #[test]
    fn stats_expose_solver_work() {
        let result = Explorer::new().explore(toy_router);
        let s = result.stats.solver;
        assert_eq!(result.stats.runs as usize, result.paths.len());
        assert!(s.checks_requested > 0, "exploration must issue requests");
        assert!(
            s.solver_queries + s.shortcuts() >= s.checks_requested,
            "every request is either a query or a shortcut"
        );
        assert_eq!(result.stats.terms_interned, result.pool.len() as u64);
    }

    #[test]
    fn sibling_runs_share_symbols_and_terms() {
        // Five runs all load the same fields: the pool must hold one
        // symbol per field, not one per (field, run) pair.
        let result = Explorer::new().explore(toy_router);
        assert_eq!(result.paths.len(), 5);
        let names: Vec<&str> = (0..result.pool.sym_count())
            .map(|i| result.pool.sym_name(i as u32))
            .collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(
            deduped.len(),
            names.len(),
            "cross-run symbol registry must not re-mint symbols: {names:?}"
        );
    }
}
