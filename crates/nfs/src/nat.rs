//! VigNAT-style network address translator (scenarios NAT1–NAT4,
//! Table 6, and the §5.3 developer use cases).
//!
//! State is bundled in [`NatTable`]: a 3-word-keyed flow table (internal
//! 5-tuple → external port), a pluggable port allocator (A or B — the
//! §5.3 comparison), and a direct-indexed reverse map (external port →
//! packed internal endpoint). Expiry releases the expired flows' ports
//! and reverse entries, which is what couples `e` into the NAT's
//! contract the way Table 6 shows.
//!
//! The flow timestamp granularity comes from the [`nf_lib::clock::Clock`] the runner
//! uses — reproducing the §5.3 expiry-batching bug is a one-line change
//! of [`nf_lib::clock::Granularity`].

use bolt_core::nf::{Fingerprinter, NetworkFunction};
use bolt_expr::{PerfExpr, Width};
use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::{AddressSpace, DsId, InstrClass, Metric, StatefulCall};
use dpdk_sim::{headers as h, Mbuf, StackLevel};
use nf_lib::clock::{Clock, ClockModel};
use nf_lib::flow_table::{
    self, FlowTable, FlowTableIds, FlowTableModel, FlowTableOps, FlowTableParams, C_HIT, C_MISS,
    C_STORED, M_EXPIRE, M_GET, M_PUT,
};
use nf_lib::port_alloc::{
    self, AllocatorA, AllocatorB, PortAllocIds, PortAllocOps, PortMap, PortMapIds, PortMapOps,
    C_EXHAUSTED, C_OK, M_ALLOC, M_FREE, M_PM_GET, M_PM_SET,
};
use nf_lib::registry::{CaseContract, DsContract, DsRegistry, MethodContract};

use crate::{decrement_ttl, flow_key, forward_to, in_port};

/// NatTable method indices.
pub const N_EXPIRE: u16 = 0;
/// Internal-key lookup.
pub const N_LOOKUP_INT: u16 = 1;
/// New-flow establishment.
pub const N_NEW_FLOW: u16 = 2;
/// External-port reverse lookup.
pub const N_LOOKUP_EXT: u16 = 3;

/// `new_flow` cases.
pub const C_NF_OK: u16 = 0;
/// No free external ports.
pub const C_NF_PORTS: u16 = 1;
/// Flow table full.
pub const C_NF_FULL: u16 = 2;

/// Which allocator backs the NAT (§5.3's A/B choice).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// Doubly-linked free list.
    A,
    /// Rotating array scan.
    B,
}

/// NAT configuration.
#[derive(Clone, Copy, Debug)]
pub struct NatConfig {
    /// Flow table capacity (power of two).
    pub capacity: usize,
    /// Flow lifetime in nanoseconds.
    pub ttl_ns: u64,
    /// Number of external ports.
    pub n_ports: usize,
    /// First external port.
    pub base_port: u16,
    /// The NAT's external address.
    pub external_ip: u32,
    /// Device port facing the internal network.
    pub lan_port: u16,
    /// Device port facing the external network.
    pub wan_port: u16,
}

impl Default for NatConfig {
    fn default() -> Self {
        NatConfig {
            capacity: 4096,
            ttl_ns: 1_000_000,
            n_ports: 4096,
            base_port: 1024,
            external_ip: 0xC0A8_0101,
            lan_port: 0,
            wan_port: 1,
        }
    }
}

/// Registered-state handle.
#[derive(Clone, Copy, Debug)]
pub struct NatIds {
    /// The composite NAT table.
    pub nat: DsId,
    /// Inner flow table (owner of the bare `e`/`c`/`t`/`o` PCVs).
    pub ft: FlowTableIds,
    /// Inner port allocator (owner of the `p` PCV when kind is B).
    pub pa: PortAllocIds,
    /// Inner reverse map.
    pub pm: PortMapIds,
    /// Which allocator the contract was composed for.
    pub kind: AllocKind,
}

/// Operations of the composite NAT table.
pub trait NatTableOps<C: NfCtx> {
    /// Expire stale flows, releasing their ports. Returns the count.
    fn expire(&mut self, ctx: &mut C, now: C::Val) -> C::Val;
    /// Internal 5-tuple lookup; hit returns the flow's external port
    /// (refreshing its age).
    fn lookup_int(&mut self, ctx: &mut C, key: &[C::Val; 3], now: C::Val) -> Option<C::Val>;
    /// Establish a new flow: allocate a port, insert, and publish the
    /// reverse mapping (`packed` is the internal endpoint).
    fn new_flow(
        &mut self,
        ctx: &mut C,
        key: &[C::Val; 3],
        packed: C::Val,
        now: C::Val,
    ) -> NewFlowOutcome<C::Val>;
    /// Reverse lookup: the packed internal endpoint for an external port
    /// (0 when unmapped).
    fn lookup_ext(&mut self, ctx: &mut C, port: C::Val) -> C::Val;
}

/// Result of [`NatTableOps::new_flow`].
#[derive(Clone, Copy, Debug)]
pub enum NewFlowOutcome<V> {
    /// Flow established on this external port.
    Ok(V),
    /// Port pool exhausted.
    PortsExhausted,
    /// Flow table full.
    TableFull,
}

/// Glue instruction counts of the composite wrappers.
const GLUE_EXPIRE_FIXED: u32 = 3;
const GLUE_EXPIRE_PER_ENTRY: u32 = 3;
const GLUE_LOOKUP_INT: u32 = 4; // call + branch + trunc + ret
const GLUE_NEW_FLOW: u32 = 4;
const GLUE_LOOKUP_EXT: u32 = 2;

/// The concrete composite, generic over the allocator (the §5.3 swap).
pub struct NatTable<PA> {
    #[allow(dead_code)] // kept: instances carry their registry identity
    ids: NatIds,
    /// Internal-key flow table.
    pub ft: FlowTable<3>,
    /// Port allocator.
    pub pa: PA,
    /// Reverse map.
    pub pm: PortMap,
    #[allow(dead_code)] // kept for symmetry with the config it mirrors
    base_port: u16,
}

impl<PA> NatTable<PA> {
    /// Build concrete state around an allocator instance.
    pub fn with_allocator(ids: NatIds, cfg: &NatConfig, pa: PA, aspace: &mut AddressSpace) -> Self {
        let params = FlowTableParams {
            capacity: cfg.capacity,
            ttl_ns: cfg.ttl_ns,
        };
        NatTable {
            ids,
            ft: FlowTable::new(ids.ft, params, aspace),
            pa,
            pm: PortMap::new(ids.pm, cfg.n_ports, cfg.base_port, aspace),
            base_port: cfg.base_port,
        }
    }
}

impl NatTable<AllocatorA> {
    /// Concrete NAT with allocator A.
    pub fn new_a(ids: NatIds, cfg: &NatConfig, aspace: &mut AddressSpace) -> Self {
        let pa = AllocatorA::new(ids.pa, cfg.n_ports, cfg.base_port, aspace);
        Self::with_allocator(ids, cfg, pa, aspace)
    }
}

impl NatTable<AllocatorB> {
    /// Concrete NAT with allocator B.
    pub fn new_b(ids: NatIds, cfg: &NatConfig, aspace: &mut AddressSpace) -> Self {
        let pa = AllocatorB::new(ids.pa, cfg.n_ports, cfg.base_port, aspace);
        Self::with_allocator(ids, cfg, pa, aspace)
    }
}

impl<C: NfCtx, PA: PortAllocOps<C>> NatTableOps<C> for NatTable<PA> {
    fn expire(&mut self, ctx: &mut C, now: C::Val) -> C::Val {
        ctx.tracer().instr(InstrClass::Call, 1);
        let e = self.ft.expire(ctx, now);
        // Release each expired flow's port and reverse entry.
        let expired: Vec<u64> = self.ft.last_expired.clone();
        for port in expired {
            ctx.tracer().alu(2); // loop control + port extraction
            let pv = ctx.lit(port, Width::W16);
            self.pa.free(ctx, pv);
            let zero = ctx.lit(0, Width::W64);
            self.pm.set(ctx, pv, zero);
        }
        ctx.tracer().alu(1);
        ctx.tracer().instr(InstrClass::Ret, 1);
        e
    }

    fn lookup_int(&mut self, ctx: &mut C, key: &[C::Val; 3], now: C::Val) -> Option<C::Val> {
        ctx.tracer().instr(InstrClass::Call, 1);
        let r = self.ft.get(ctx, key, now);
        ctx.tracer().instr(InstrClass::Branch, 1);
        let out = r.map(|v| ctx.trunc(v, Width::W16));
        ctx.tracer().instr(InstrClass::Ret, 1);
        out
    }

    fn new_flow(
        &mut self,
        ctx: &mut C,
        key: &[C::Val; 3],
        packed: C::Val,
        now: C::Val,
    ) -> NewFlowOutcome<C::Val> {
        ctx.tracer().instr(InstrClass::Call, 1);
        let port = match self.pa.alloc(ctx) {
            Some(p) => p,
            None => {
                ctx.tracer().instr(InstrClass::Branch, 1);
                ctx.tracer().instr(InstrClass::Ret, 1);
                return NewFlowOutcome::PortsExhausted;
            }
        };
        ctx.tracer().instr(InstrClass::Branch, 1);
        let port64 = ctx.zext(port, Width::W64);
        let stored = self.ft.put(ctx, key, port64, now);
        ctx.tracer().instr(InstrClass::Branch, 1);
        if !stored {
            self.pa.free(ctx, port);
            ctx.tracer().instr(InstrClass::Ret, 1);
            return NewFlowOutcome::TableFull;
        }
        self.pm.set(ctx, port, packed);
        ctx.tracer().instr(InstrClass::Ret, 1);
        NewFlowOutcome::Ok(port)
    }

    fn lookup_ext(&mut self, ctx: &mut C, port: C::Val) -> C::Val {
        ctx.tracer().instr(InstrClass::Call, 1);
        let v = self.pm.get(ctx, port);
        ctx.tracer().instr(InstrClass::Ret, 1);
        v
    }
}

/// Symbolic model of the composite.
#[derive(Clone, Copy, Debug)]
pub struct NatTableModel {
    ids: NatIds,
    capacity: u64,
}

impl NatTableModel {
    /// Model for a registered instance.
    pub fn new(ids: NatIds, cfg: &NatConfig) -> Self {
        NatTableModel {
            ids,
            capacity: cfg.capacity as u64,
        }
    }

    fn call(&self, ctx: &mut impl NfCtx, method: u16, case: u16) {
        ctx.tracer().stateful(StatefulCall {
            ds: self.ids.nat,
            method,
            case,
        });
    }
}

impl<C: NfCtx> NatTableOps<C> for NatTableModel {
    fn expire(&mut self, ctx: &mut C, _now: C::Val) -> C::Val {
        self.call(ctx, N_EXPIRE, 0);
        let e = ctx.fresh("nat.expired", Width::W64);
        let cap = ctx.lit(self.capacity, Width::W64);
        let bounded = ctx.ule_free(e, cap);
        ctx.assume(bounded);
        e
    }

    fn lookup_int(&mut self, ctx: &mut C, _key: &[C::Val; 3], _now: C::Val) -> Option<C::Val> {
        let hit = ctx.fresh("nat.int.hit", Width::W1);
        if ctx.fork(hit) {
            self.call(ctx, N_LOOKUP_INT, C_HIT);
            Some(ctx.fresh("nat.int.port", Width::W16))
        } else {
            self.call(ctx, N_LOOKUP_INT, C_MISS);
            None
        }
    }

    fn new_flow(
        &mut self,
        ctx: &mut C,
        _key: &[C::Val; 3],
        _packed: C::Val,
        _now: C::Val,
    ) -> NewFlowOutcome<C::Val> {
        let ok = ctx.fresh("nat.new.ok", Width::W1);
        if ctx.fork(ok) {
            self.call(ctx, N_NEW_FLOW, C_NF_OK);
            return NewFlowOutcome::Ok(ctx.fresh("nat.new.port", Width::W16));
        }
        let full = ctx.fresh("nat.new.table_full", Width::W1);
        if ctx.fork(full) {
            self.call(ctx, N_NEW_FLOW, C_NF_FULL);
            NewFlowOutcome::TableFull
        } else {
            self.call(ctx, N_NEW_FLOW, C_NF_PORTS);
            NewFlowOutcome::PortsExhausted
        }
    }

    fn lookup_ext(&mut self, ctx: &mut C, _port: C::Val) -> C::Val {
        self.call(ctx, N_LOOKUP_EXT, 0);
        ctx.fresh("nat.ext.packed", Width::W64)
    }
}

fn case_perf(reg: &DsRegistry, ds: DsId, method: u16, case: u16) -> [PerfExpr; 3] {
    let c = reg.resolve(StatefulCall { ds, method, case });
    [
        c.expr(Metric::Instructions).clone(),
        c.expr(Metric::MemAccesses).clone(),
        c.expr(Metric::Cycles).clone(),
    ]
}

fn sum3(a: &[PerfExpr; 3], b: &[PerfExpr; 3]) -> [PerfExpr; 3] {
    [a[0].add(&b[0]), a[1].add(&b[1]), a[2].add(&b[2])]
}

fn with_glue(base: [PerfExpr; 3], glue_instr: u32) -> [PerfExpr; 3] {
    let [mut ic, ma, mut cy] = base;
    ic.add_const(glue_instr as u64);
    cy.add_const(glue_instr as u64 * 4);
    [ic, ma, cy]
}

/// Register the NAT's stateful parts and compose the NatTable contract.
pub fn register(reg: &mut DsRegistry, cfg: &NatConfig, kind: AllocKind) -> NatIds {
    let params = FlowTableParams {
        capacity: cfg.capacity,
        ttl_ns: cfg.ttl_ns,
    };
    let ft = flow_table::register::<3>(reg, "nat.flows", "", params);
    let pa = match kind {
        AllocKind::A => port_alloc::register_a(reg, "nat.ports_a", cfg.n_ports, cfg.base_port),
        AllocKind::B => port_alloc::register_b(reg, "nat.ports_b", cfg.n_ports, cfg.base_port),
    };
    let pm = port_alloc::register_map(reg, "nat.reverse", cfg.n_ports, cfg.base_port);

    let ft_expire = case_perf(reg, ft.ds, M_EXPIRE, 0);
    let get_hit = case_perf(reg, ft.ds, M_GET, C_HIT);
    let get_miss = case_perf(reg, ft.ds, M_GET, C_MISS);
    let put_stored = case_perf(reg, ft.ds, M_PUT, C_STORED);
    let put_full = case_perf(reg, ft.ds, M_PUT, flow_table::C_FULL);
    let alloc_ok = case_perf(reg, pa.ds, M_ALLOC, C_OK);
    let alloc_exh = case_perf(reg, pa.ds, M_ALLOC, C_EXHAUSTED);
    let pa_free = case_perf(reg, pa.ds, M_FREE, 0);
    let pm_set = case_perf(reg, pm.ds, M_PM_SET, 0);
    let pm_get = case_perf(reg, pm.ds, M_PM_GET, 0);

    // expire = ft.expire + e · (free + pm.set + per-entry glue) + glue.
    let e_var = PerfExpr::var(ft.e, 1);
    let per_entry = with_glue(sum3(&pa_free, &pm_set), GLUE_EXPIRE_PER_ENTRY);
    let expire = with_glue(
        [
            ft_expire[0].add(&per_entry[0].mul(&e_var)),
            ft_expire[1].add(&per_entry[1].mul(&e_var)),
            ft_expire[2].add(&per_entry[2].mul(&e_var)),
        ],
        GLUE_EXPIRE_FIXED,
    );
    let contract = DsContract {
        methods: vec![
            MethodContract {
                name: "expire",
                cases: vec![CaseContract {
                    name: "expired",
                    perf: expire,
                }],
            },
            MethodContract {
                name: "lookup_int",
                cases: vec![
                    CaseContract {
                        name: "known flow",
                        perf: with_glue(get_hit, GLUE_LOOKUP_INT),
                    },
                    CaseContract {
                        name: "unknown flow",
                        perf: with_glue(get_miss, GLUE_LOOKUP_INT),
                    },
                ],
            },
            MethodContract {
                name: "new_flow",
                cases: vec![
                    CaseContract {
                        name: "established",
                        perf: with_glue(
                            sum3(&sum3(&alloc_ok, &put_stored), &pm_set),
                            GLUE_NEW_FLOW,
                        ),
                    },
                    CaseContract {
                        name: "ports exhausted",
                        perf: with_glue(alloc_exh, GLUE_NEW_FLOW),
                    },
                    CaseContract {
                        name: "table full",
                        perf: with_glue(sum3(&sum3(&alloc_ok, &put_full), &pa_free), GLUE_NEW_FLOW),
                    },
                ],
            },
            MethodContract {
                name: "lookup_ext",
                cases: vec![CaseContract {
                    name: "reverse lookup",
                    perf: with_glue(pm_get, GLUE_LOOKUP_EXT),
                }],
            },
        ],
    };
    let nat = reg.register("nat", contract);
    NatIds {
        nat,
        ft,
        pa,
        pm,
        kind,
    }
}

/// The stateless NAT logic (Table 6's five rows are its paths).
pub fn process<C: NfCtx, N: NatTableOps<C>>(
    ctx: &mut C,
    nat: &mut N,
    cfg: &NatConfig,
    now: C::Val,
    mbuf: Mbuf,
) {
    let _e = nat.expire(ctx, now);
    let ether_type = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
    if !ctx.branch_eq_imm(ether_type, h::ETHERTYPE_IPV4 as u64, Width::W16) {
        ctx.tag("invalid");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    let proto = ctx.load(mbuf.region, h::IPV4_PROTO, 1);
    let is_tcp = ctx.eq_imm(proto, h::IPPROTO_TCP as u64, Width::W8);
    let is_udp = ctx.eq_imm(proto, h::IPPROTO_UDP as u64, Width::W8);
    let l4_ok = ctx.or(is_tcp, is_udp);
    if !ctx.branch(l4_ok) {
        ctx.tag("invalid");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    let dir = in_port(ctx, &mbuf);
    if ctx.branch_eq_imm(dir, cfg.lan_port as u64, Width::W16) {
        // Internal → external.
        let src = ctx.load(mbuf.region, h::IPV4_SRC, 4);
        let dst = ctx.load(mbuf.region, h::IPV4_DST, 4);
        let sport = ctx.load(mbuf.region, h::L4_SPORT, 2);
        let dport = ctx.load(mbuf.region, h::L4_DPORT, 2);
        let key = flow_key(ctx, src, dst, sport, dport, proto);
        let port = match nat.lookup_int(ctx, &key, now) {
            Some(port) => {
                ctx.tag("int:known");
                port
            }
            None => {
                // Pack the internal endpoint for the reverse map.
                let src64 = ctx.zext(src, Width::W64);
                let sp64 = ctx.zext(sport, Width::W64);
                let sixteen = ctx.lit(16, Width::W64);
                let hi = ctx.shl(src64, sixteen);
                let packed = ctx.or(hi, sp64);
                match nat.new_flow(ctx, &key, packed, now) {
                    NewFlowOutcome::Ok(port) => {
                        ctx.tag("int:new");
                        port
                    }
                    NewFlowOutcome::PortsExhausted => {
                        ctx.tag("int:exhausted");
                        ctx.verdict(NfVerdict::Drop);
                        return;
                    }
                    NewFlowOutcome::TableFull => {
                        ctx.tag("int:full");
                        ctx.verdict(NfVerdict::Drop);
                        return;
                    }
                }
            }
        };
        // Rewrite: source becomes the NAT's external endpoint.
        let ext_ip = ctx.lit(cfg.external_ip as u64, Width::W32);
        ctx.store(mbuf.region, h::IPV4_SRC, ext_ip, 4);
        ctx.store(mbuf.region, h::L4_SPORT, port, 2);
        decrement_ttl(ctx, &mbuf);
        let wan = ctx.lit(cfg.wan_port as u64, Width::W16);
        forward_to(ctx, wan);
    } else {
        // External → internal: reverse-map the destination port.
        let dport = ctx.load(mbuf.region, h::L4_DPORT, 2);
        let packed = nat.lookup_ext(ctx, dport);
        let zero = ctx.lit(0, Width::W64);
        let mapped = ctx.ne(packed, zero);
        if ctx.branch(mapped) {
            ctx.tag("ext:known");
            let sixteen = ctx.lit(16, Width::W64);
            let ip64 = ctx.shr(packed, sixteen);
            let ip = ctx.trunc(ip64, Width::W32);
            let port = ctx.trunc(packed, Width::W16);
            ctx.store(mbuf.region, h::IPV4_DST, ip, 4);
            ctx.store(mbuf.region, h::L4_DPORT, port, 2);
            decrement_ttl(ctx, &mbuf);
            let lan = ctx.lit(cfg.lan_port as u64, Width::W16);
            forward_to(ctx, lan);
        } else {
            ctx.tag("ext:new");
            ctx.verdict(NfVerdict::Drop);
        }
    }
}

/// Concrete NAT state: the composite table around whichever allocator the
/// descriptor selected (§5.3's runtime A/B choice behind one type).
pub enum NatState {
    /// Backed by allocator A (doubly-linked free list).
    A(NatTable<AllocatorA>),
    /// Backed by allocator B (rotating array scan).
    B(NatTable<AllocatorB>),
}

impl NatState {
    /// The inner flow table.
    pub fn ft(&self) -> &FlowTable<3> {
        match self {
            NatState::A(t) => &t.ft,
            NatState::B(t) => &t.ft,
        }
    }

    /// The inner flow table, mutably.
    pub fn ft_mut(&mut self) -> &mut FlowTable<3> {
        match self {
            NatState::A(t) => &mut t.ft,
            NatState::B(t) => &mut t.ft,
        }
    }

    /// Free external ports remaining.
    pub fn ports_available(&self) -> usize {
        match self {
            NatState::A(t) => t.pa.available(),
            NatState::B(t) => t.pa.available(),
        }
    }

    /// Mark an external port as taken (pathological-state synthesis).
    pub fn raw_take_port(&mut self, port: u16) {
        match self {
            NatState::A(t) => t.pa.raw_take(port),
            NatState::B(t) => t.pa.raw_take(port),
        }
    }
}

impl<C: NfCtx> NatTableOps<C> for NatState {
    fn expire(&mut self, ctx: &mut C, now: C::Val) -> C::Val {
        match self {
            NatState::A(t) => t.expire(ctx, now),
            NatState::B(t) => t.expire(ctx, now),
        }
    }

    fn lookup_int(&mut self, ctx: &mut C, key: &[C::Val; 3], now: C::Val) -> Option<C::Val> {
        match self {
            NatState::A(t) => t.lookup_int(ctx, key, now),
            NatState::B(t) => t.lookup_int(ctx, key, now),
        }
    }

    fn new_flow(
        &mut self,
        ctx: &mut C,
        key: &[C::Val; 3],
        packed: C::Val,
        now: C::Val,
    ) -> NewFlowOutcome<C::Val> {
        match self {
            NatState::A(t) => t.new_flow(ctx, key, packed, now),
            NatState::B(t) => t.new_flow(ctx, key, packed, now),
        }
    }

    fn lookup_ext(&mut self, ctx: &mut C, port: C::Val) -> C::Val {
        match self {
            NatState::A(t) => t.lookup_ext(ctx, port),
            NatState::B(t) => t.lookup_ext(ctx, port),
        }
    }
}

/// The NAT as a [`NetworkFunction`] descriptor.
#[derive(Clone, Copy, Debug)]
pub struct Nat {
    /// Configuration.
    pub cfg: NatConfig,
    /// Which allocator backs the port pool.
    pub kind: AllocKind,
}

impl Default for Nat {
    fn default() -> Self {
        Nat {
            cfg: NatConfig::default(),
            kind: AllocKind::A,
        }
    }
}

impl Nat {
    /// Descriptor with an explicit configuration and allocator.
    pub fn with(cfg: NatConfig, kind: AllocKind) -> Self {
        Nat { cfg, kind }
    }
}

impl NetworkFunction for Nat {
    type Ids = NatIds;
    type State = NatState;

    fn name(&self) -> &'static str {
        "nat"
    }

    fn register(&self, reg: &mut DsRegistry) -> NatIds {
        register(reg, &self.cfg, self.kind)
    }

    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        fp.usize(self.cfg.capacity)
            .u64(self.cfg.ttl_ns)
            .usize(self.cfg.n_ports)
            .u16(self.cfg.base_port)
            .u32(self.cfg.external_ip)
            .u16(self.cfg.lan_port)
            .u16(self.cfg.wan_port)
            .u8(match self.kind {
                AllocKind::A => 0,
                AllocKind::B => 1,
            });
    }

    fn state(&self, ids: NatIds, aspace: &mut AddressSpace) -> NatState {
        match self.kind {
            AllocKind::A => NatState::A(NatTable::new_a(ids, &self.cfg, aspace)),
            AllocKind::B => NatState::B(NatTable::new_b(ids, &self.cfg, aspace)),
        }
    }

    fn process(&self, ctx: &mut ConcreteCtx<'_>, state: &mut NatState, clock: &Clock, mbuf: Mbuf) {
        let now = clock.now(ctx);
        process(ctx, state, &self.cfg, now, mbuf);
    }

    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, ids: NatIds, mbuf: Mbuf) {
        let mut model = NatTableModel::new(ids, &self.cfg);
        let now = ClockModel.now(ctx);
        process(ctx, &mut model, &self.cfg, now, mbuf);
    }
}

/// Run the analysis build.
#[deprecated(
    since = "0.2.0",
    note = "use `Nat::with(cfg, kind).explore(level)` via bolt_core::nf::NetworkFunction"
)]
pub fn explore(
    cfg: &NatConfig,
    kind: AllocKind,
    level: StackLevel,
) -> (DsRegistry, NatIds, bolt_see::ExplorationResult) {
    let e = Nat::with(*cfg, kind).explore(level);
    (e.reg, e.ids, e.result)
}

/// A placeholder needed by generic code: the flow-table model alone (used
/// when a caller wants to explore with a plain flow table instead of the
/// composite — kept for API completeness).
pub type PlainFlowModel = FlowTableModel;

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_see::ConcreteCtx;
    use bolt_trace::CountingTracer;
    use dpdk_sim::DpdkEnv;
    use nf_lib::clock::{Clock, Granularity};

    fn int_frame(src_ip: u32, sport: u16) -> Vec<u8> {
        h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(src_ip, 0x08080808, h::IPPROTO_UDP, 64)
            .udp(sport, 80)
            .build()
    }

    fn ext_frame(dport: u16) -> Vec<u8> {
        h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(0x08080808, 0xC0A80101, h::IPPROTO_UDP, 64)
            .udp(80, dport)
            .build()
    }

    struct Rig {
        env: DpdkEnv,
        nat: NatTable<AllocatorA>,
        cfg: NatConfig,
        clock: Clock,
    }

    fn rig() -> Rig {
        let mut reg = DsRegistry::new();
        let cfg = NatConfig {
            capacity: 64,
            ttl_ns: 1000,
            n_ports: 64,
            ..NatConfig::default()
        };
        let ids = register(&mut reg, &cfg, AllocKind::A);
        let mut aspace = AddressSpace::new();
        Rig {
            env: DpdkEnv::full_stack(),
            nat: NatTable::new_a(ids, &cfg, &mut aspace),
            cfg,
            clock: Clock::new(Granularity::Nanoseconds),
        }
    }

    fn send(rig: &mut Rig, frame: &[u8], port: u16) -> (NfVerdict, Vec<u8>) {
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let mut out = Vec::new();
        let cfg = rig.cfg;
        let clock = rig.clock.clone();
        let nat = &mut rig.nat;
        let v = rig.env.process_packet(&mut ctx, frame, port, |ctx, mbuf| {
            let now = clock.now(ctx);
            process(ctx, nat, &cfg, now, mbuf);
            out = ctx.buffer(mbuf.region).unwrap()[..64].to_vec();
        });
        (v, out)
    }

    #[test]
    fn translates_and_reverses() {
        let mut rig = rig();
        // First internal packet: establishes a flow, rewrites the source.
        let (v, out) = send(&mut rig, &int_frame(0x0A000001, 5555), 0);
        assert_eq!(v, NfVerdict::Forward(1));
        let ext_ip = u32::from_be_bytes([out[26], out[27], out[28], out[29]]);
        assert_eq!(ext_ip, rig.cfg.external_ip);
        let ext_port = u16::from_be_bytes([out[34], out[35]]);
        assert!(ext_port >= rig.cfg.base_port);
        // Same flow again: same port (affinity).
        let (_, out2) = send(&mut rig, &int_frame(0x0A000001, 5555), 0);
        assert_eq!(u16::from_be_bytes([out2[34], out2[35]]), ext_port);
        // Reply from outside to that port: rewritten back to the host.
        let (v, back) = send(&mut rig, &ext_frame(ext_port), 1);
        assert_eq!(v, NfVerdict::Forward(0));
        let dst = u32::from_be_bytes([back[30], back[31], back[32], back[33]]);
        assert_eq!(dst, 0x0A000001);
        assert_eq!(u16::from_be_bytes([back[36], back[37]]), 5555);
    }

    #[test]
    fn unsolicited_external_dropped() {
        let mut rig = rig();
        let (v, _) = send(&mut rig, &ext_frame(2000), 1);
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    fn distinct_flows_get_distinct_ports() {
        let mut rig = rig();
        let (_, a) = send(&mut rig, &int_frame(0x0A000001, 1000), 0);
        let (_, b) = send(&mut rig, &int_frame(0x0A000002, 1000), 0);
        assert_ne!(
            u16::from_be_bytes([a[34], a[35]]),
            u16::from_be_bytes([b[34], b[35]])
        );
    }

    #[test]
    fn expiry_releases_ports_and_reverse_entries() {
        let mut rig = rig();
        let (_, out) = send(&mut rig, &int_frame(0x0A000001, 7777), 0);
        let port = u16::from_be_bytes([out[34], out[35]]);
        assert_eq!(rig.nat.pa.available(), 63);
        // Advance past the TTL; the next packet triggers expiry.
        rig.clock.advance_to(5000);
        let (_, _) = send(&mut rig, &int_frame(0x0B000001, 1), 0);
        // The expired flow's port came back before the new one was taken:
        // net occupancy stays at one flow.
        assert_eq!(rig.nat.pa.available(), 63, "old port freed, new taken");
        // Allocator A recycles FIFO (port-reuse delay), so the freed port
        // goes to the back of the line: its reverse mapping is gone and
        // unsolicited traffic to it drops.
        let (v, _) = send(&mut rig, &ext_frame(port), 1);
        assert_eq!(v, NfVerdict::Drop, "old mapping must be cleared");
    }

    #[test]
    fn non_l4_and_non_ip_dropped() {
        let mut rig = rig();
        let icmp = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 2, 1, 64) // ICMP
            .build();
        assert_eq!(send(&mut rig, &icmp, 0).0, NfVerdict::Drop);
        let v6 = h::PacketBuilder::new().eth(2, 1, h::ETHERTYPE_IPV6).build();
        assert_eq!(send(&mut rig, &v6, 0).0, NfVerdict::Drop);
    }

    #[test]
    fn exploration_covers_table_6_rows() {
        let result = Nat::default().explore(StackLevel::NfOnly).result;
        // Table 6: invalid (×2 shapes), known, new-ok, full, exhausted,
        // ext-known, ext-new.
        assert_eq!(result.tagged("invalid").count(), 2);
        assert_eq!(result.tagged("int:known").count(), 1);
        assert_eq!(result.tagged("int:new").count(), 1);
        assert_eq!(result.tagged("int:full").count(), 1);
        assert_eq!(result.tagged("int:exhausted").count(), 1);
        assert_eq!(result.tagged("ext:known").count(), 1);
        assert_eq!(result.tagged("ext:new").count(), 1);
        assert_eq!(result.paths.len(), 8);
    }

    #[test]
    fn nat_contract_has_table_6_shape() {
        let mut reg = DsRegistry::new();
        let cfg = NatConfig::default();
        let ids = register(&mut reg, &cfg, AllocKind::A);
        // expire: e, e·c, e·t terms present.
        let exp = reg.resolve(StatefulCall {
            ds: ids.nat,
            method: N_EXPIRE,
            case: 0,
        });
        let expr = exp.expr(Metric::Instructions);
        use bolt_expr::Monomial;
        assert!(expr.coeff(&Monomial::var(ids.ft.e)) > 0);
        let et = Monomial::var(ids.ft.e).mul(&Monomial::var(ids.ft.te));
        let ec = Monomial::var(ids.ft.e).mul(&Monomial::var(ids.ft.ce));
        assert!(expr.coeff(&et) > 0);
        assert!(expr.coeff(&ec) > 0);
        // known flow: c and t terms.
        let known = reg.resolve(StatefulCall {
            ds: ids.nat,
            method: N_LOOKUP_INT,
            case: C_HIT,
        });
        assert!(
            known
                .expr(Metric::Instructions)
                .coeff(&Monomial::var(ids.ft.t))
                > 0
        );
    }
}
