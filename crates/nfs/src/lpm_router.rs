//! LPM router on DPDK's DIR-24-8 table (scenarios LPM1, LPM2).
//!
//! Valid IPv4 packets with a live TTL do one DIR-24-8 lookup (one load
//! for ≤24-bit matches, two for longer — the LPM2/LPM1 split), get their
//! TTL decremented and checksum fixed, and are forwarded.

use bolt_core::nf::{Fingerprinter, NetworkFunction};
use bolt_expr::Width;
use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::AddressSpace;
use dpdk_sim::{headers as h, Mbuf, StackLevel};
use nf_lib::clock::Clock;
use nf_lib::lpm_dir24_8::{self, Dir24_8, Dir24_8Ids, Dir24_8Model, Dir24_8Ops};
use nf_lib::registry::DsRegistry;

use crate::{decrement_ttl, forward_to};

/// Router configuration.
#[derive(Clone, Copy, Debug)]
pub struct LpmRouterConfig {
    /// First-level index width (24 on the real table; 16 keeps tests
    /// small).
    pub first_bits: u8,
    /// Maximum number of tbl8 groups.
    pub max_groups: usize,
}

impl Default for LpmRouterConfig {
    fn default() -> Self {
        LpmRouterConfig {
            first_bits: 16,
            max_groups: 256,
        }
    }
}

/// Registered-state handle.
#[derive(Clone, Copy, Debug)]
pub struct LpmRouterIds {
    /// The DIR-24-8 table.
    pub lpm: Dir24_8Ids,
}

/// Register the router's stateful parts.
pub fn register(reg: &mut DsRegistry) -> LpmRouterIds {
    LpmRouterIds {
        lpm: lpm_dir24_8::register(reg, "dir24_8"),
    }
}

/// The stateless router logic.
pub fn process<C: NfCtx, T: Dir24_8Ops<C>>(ctx: &mut C, lpm: &mut T, mbuf: Mbuf) {
    let ether_type = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
    if !ctx.branch_eq_imm(ether_type, h::ETHERTYPE_IPV4 as u64, Width::W16) {
        ctx.tag("invalid");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    let ttl = ctx.load(mbuf.region, h::IPV4_TTL, 1);
    let one = ctx.lit(1, Width::W8);
    let ttl_dead = ctx.ule(ttl, one);
    if ctx.branch(ttl_dead) {
        ctx.tag("ttl-expired");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    ctx.tag("forwarded");
    let dst = ctx.load(mbuf.region, h::IPV4_DST, 4);
    let port = lpm.lookup(ctx, dst);
    decrement_ttl(ctx, &mbuf);
    forward_to(ctx, port);
}

/// Concrete state bundle.
pub struct LpmRouterState {
    /// The instrumented table.
    pub lpm: Dir24_8,
}

impl LpmRouterState {
    /// Build concrete state.
    pub fn new(ids: LpmRouterIds, cfg: &LpmRouterConfig, aspace: &mut AddressSpace) -> Self {
        LpmRouterState {
            lpm: Dir24_8::new(ids.lpm, cfg.first_bits, cfg.max_groups, 0, aspace),
        }
    }
}

/// The DIR-24-8 router as a [`NetworkFunction`] descriptor.
#[derive(Clone, Copy, Debug, Default)]
pub struct LpmRouter {
    /// Configuration.
    pub cfg: LpmRouterConfig,
}

impl LpmRouter {
    /// Descriptor with an explicit configuration.
    pub fn with(cfg: LpmRouterConfig) -> Self {
        LpmRouter { cfg }
    }
}

impl NetworkFunction for LpmRouter {
    type Ids = LpmRouterIds;
    type State = LpmRouterState;

    fn name(&self) -> &'static str {
        "lpm_router"
    }

    fn register(&self, reg: &mut DsRegistry) -> LpmRouterIds {
        register(reg)
    }

    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        fp.u8(self.cfg.first_bits).usize(self.cfg.max_groups);
    }

    fn state(&self, ids: LpmRouterIds, aspace: &mut AddressSpace) -> LpmRouterState {
        LpmRouterState::new(ids, &self.cfg, aspace)
    }

    fn process(
        &self,
        ctx: &mut ConcreteCtx<'_>,
        state: &mut LpmRouterState,
        _clock: &Clock,
        mbuf: Mbuf,
    ) {
        process(ctx, &mut state.lpm, mbuf);
    }

    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, ids: LpmRouterIds, mbuf: Mbuf) {
        let mut model = Dir24_8Model::new(ids.lpm);
        process(ctx, &mut model, mbuf);
    }
}

/// Run the analysis build.
#[deprecated(
    since = "0.2.0",
    note = "use `LpmRouter::default().explore(level)` via bolt_core::nf::NetworkFunction"
)]
pub fn explore(level: StackLevel) -> (DsRegistry, LpmRouterIds, bolt_see::ExplorationResult) {
    let e = LpmRouter::default().explore(level);
    (e.reg, e.ids, e.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_see::ConcreteCtx;
    use bolt_trace::CountingTracer;
    use dpdk_sim::DpdkEnv;

    #[test]
    fn forwards_with_ttl_decrement() {
        let mut reg = DsRegistry::new();
        let ids = register(&mut reg);
        let cfg = LpmRouterConfig::default();
        let mut aspace = AddressSpace::new();
        let mut router = LpmRouterState::new(ids, &cfg, &mut aspace);
        router.lpm.insert(0x0A000000, 8, 7);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let f = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 0x0A112233, h::IPPROTO_UDP, 64)
            .udp(5, 6)
            .build();
        let v = env.process_packet(&mut ctx, &f, 0, |ctx, mbuf| {
            process(ctx, &mut router.lpm, mbuf)
        });
        assert_eq!(v, NfVerdict::Forward(7));
    }

    #[test]
    fn drops_dead_ttl_and_invalid() {
        let mut reg = DsRegistry::new();
        let ids = register(&mut reg);
        let cfg = LpmRouterConfig::default();
        let mut aspace = AddressSpace::new();
        let mut router = LpmRouterState::new(ids, &cfg, &mut aspace);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let dead = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 2, h::IPPROTO_UDP, 1)
            .udp(5, 6)
            .build();
        let v = env.process_packet(&mut ctx, &dead, 0, |ctx, mbuf| {
            process(ctx, &mut router.lpm, mbuf)
        });
        assert_eq!(v, NfVerdict::Drop);
        let v6 = h::PacketBuilder::new().eth(2, 1, h::ETHERTYPE_IPV6).build();
        let v = env.process_packet(&mut ctx, &v6, 0, |ctx, mbuf| {
            process(ctx, &mut router.lpm, mbuf)
        });
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    fn four_paths_emerge() {
        let result = LpmRouter::default().explore(StackLevel::NfOnly).result;
        // invalid, ttl-expired, forwarded×{short,long}.
        assert_eq!(result.paths.len(), 4);
        assert_eq!(result.tagged("forwarded").count(), 2);
        assert_eq!(result.tagged("lpm:long").count(), 1);
        assert_eq!(result.tagged("lpm:short").count(), 1);
    }
}
