//! Learning MAC bridge (scenarios Br1–Br3; §5.2's attack use case).
//!
//! Per packet: expire stale table entries, learn the source MAC (with the
//! rehash defence), then switch on the destination: broadcast frames
//! flood (Br2), known unicast forwards (Br3), unknown unicast floods.
//! Unconstrained traffic (Br1) can hit the mass-expiry worst case.

use bolt_core::nf::{Fingerprinter, NetworkFunction};
use bolt_expr::Width;
use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::AddressSpace;
use dpdk_sim::{headers as h, Mbuf, StackLevel};
use nf_lib::clock::{Clock, ClockModel};
use nf_lib::flow_table::FlowTableParams;
use nf_lib::mac_table::{self, LearnOutcome, MacTable, MacTableIds, MacTableModel, MacTableOps};
use nf_lib::registry::DsRegistry;

use crate::forward_to;

/// Broadcast destination MAC.
pub const BROADCAST_MAC: u64 = 0xFFFF_FFFF_FFFF;

/// Bridge configuration.
#[derive(Clone, Copy, Debug)]
pub struct BridgeConfig {
    /// MAC table capacity (power of two).
    pub capacity: usize,
    /// Entry lifetime in nanoseconds.
    pub ttl_ns: u64,
    /// Probe-length threshold that triggers the defensive rehash.
    pub rehash_threshold: u64,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            capacity: 1024,
            ttl_ns: 1_000_000,
            rehash_threshold: 6,
        }
    }
}

/// Registered-state handle.
#[derive(Clone, Copy, Debug)]
pub struct BridgeIds {
    /// The MAC table.
    pub table: MacTableIds,
}

/// Register the bridge's stateful parts.
pub fn register(reg: &mut DsRegistry, cfg: &BridgeConfig) -> BridgeIds {
    let params = FlowTableParams {
        capacity: cfg.capacity,
        ttl_ns: cfg.ttl_ns,
    };
    BridgeIds {
        table: mac_table::register(reg, "mac_table", params, cfg.rehash_threshold),
    }
}

/// The stateless bridge logic (Vigor-style: all state behind `table`).
pub fn process<C: NfCtx, T: MacTableOps<C>>(ctx: &mut C, table: &mut T, now: C::Val, mbuf: Mbuf) {
    let _e = table.expire(ctx, now);
    let src = ctx.load(mbuf.region, h::ETHER_SRC, 6);
    let dst = ctx.load(mbuf.region, h::ETHER_DST, 6);
    let port = crate::in_port(ctx, &mbuf);
    let port64 = ctx.zext(port, Width::W64);
    match table.learn(ctx, src, port64, now) {
        LearnOutcome::Known => ctx.tag("src:known"),
        LearnOutcome::Unknown => ctx.tag("src:unknown"),
        LearnOutcome::UnknownRehash => ctx.tag("src:rehash"),
    }
    if ctx.branch_eq_imm(dst, BROADCAST_MAC, Width::W48) {
        ctx.tag("dst:broadcast");
        ctx.verdict(NfVerdict::Flood);
        return;
    }
    match table.lookup(ctx, dst) {
        Some(out_port) => {
            ctx.tag("dst:known");
            forward_to(ctx, out_port);
        }
        None => {
            ctx.tag("dst:unknown");
            ctx.verdict(NfVerdict::Flood);
        }
    }
}

/// Concrete bridge state bundle.
pub struct BridgeState {
    /// The instrumented MAC table.
    pub table: MacTable,
}

impl BridgeState {
    /// Build concrete state.
    pub fn new(ids: BridgeIds, cfg: &BridgeConfig, aspace: &mut AddressSpace) -> Self {
        let params = FlowTableParams {
            capacity: cfg.capacity,
            ttl_ns: cfg.ttl_ns,
        };
        BridgeState {
            table: MacTable::new(ids.table, params, cfg.rehash_threshold, aspace),
        }
    }
}

/// The bridge as a [`NetworkFunction`] descriptor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bridge {
    /// Configuration.
    pub cfg: BridgeConfig,
}

impl Bridge {
    /// Descriptor with an explicit configuration.
    pub fn with(cfg: BridgeConfig) -> Self {
        Bridge { cfg }
    }
}

impl NetworkFunction for Bridge {
    type Ids = BridgeIds;
    type State = BridgeState;

    fn name(&self) -> &'static str {
        "bridge"
    }

    fn register(&self, reg: &mut DsRegistry) -> BridgeIds {
        register(reg, &self.cfg)
    }

    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        fp.usize(self.cfg.capacity)
            .u64(self.cfg.ttl_ns)
            .u64(self.cfg.rehash_threshold);
    }

    fn state(&self, ids: BridgeIds, aspace: &mut AddressSpace) -> BridgeState {
        BridgeState::new(ids, &self.cfg, aspace)
    }

    fn process(
        &self,
        ctx: &mut ConcreteCtx<'_>,
        state: &mut BridgeState,
        clock: &Clock,
        mbuf: Mbuf,
    ) {
        let now = clock.now(ctx);
        process(ctx, &mut state.table, now, mbuf);
    }

    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, ids: BridgeIds, mbuf: Mbuf) {
        let params = FlowTableParams {
            capacity: self.cfg.capacity,
            ttl_ns: self.cfg.ttl_ns,
        };
        let mut model = MacTableModel::new(ids.table, params);
        let now = ClockModel.now(ctx);
        process(ctx, &mut model, now, mbuf);
    }
}

/// Run the analysis build: explore all paths of the bridge at the given
/// stack level. Returns the registry (with contracts) and the exploration.
#[deprecated(
    since = "0.2.0",
    note = "use `Bridge::with(cfg).explore(level)` via bolt_core::nf::NetworkFunction"
)]
pub fn explore(
    cfg: &BridgeConfig,
    level: StackLevel,
) -> (DsRegistry, BridgeIds, bolt_see::ExplorationResult) {
    let e = Bridge::with(*cfg).explore(level);
    (e.reg, e.ids, e.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_see::ConcreteCtx;
    use bolt_trace::CountingTracer;
    use dpdk_sim::DpdkEnv;
    use nf_lib::clock::{Clock, Granularity};

    fn frame(dst: u64, src: u64) -> Vec<u8> {
        h::PacketBuilder::new()
            .eth(dst, src, h::ETHERTYPE_IPV4)
            .ipv4(0x0a000001, 0x0a000002, h::IPPROTO_UDP, 64)
            .udp(10, 20)
            .build()
    }

    #[test]
    fn learns_and_forwards() {
        let mut reg = DsRegistry::new();
        let cfg = BridgeConfig::default();
        let ids = register(&mut reg, &cfg);
        let mut aspace = AddressSpace::new();
        let mut bridge = BridgeState::new(ids, &cfg, &mut aspace);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let clock = Clock::new(Granularity::Milliseconds);

        // A talks to B: unknown destination floods, A is learned on port 1.
        let v = env.process_packet(&mut ctx, &frame(0xB, 0xA), 1, |ctx, mbuf| {
            let now = clock.now(ctx);
            process(ctx, &mut bridge.table, now, mbuf);
        });
        assert_eq!(v, NfVerdict::Flood);
        // B replies from port 2: A is known, forward to port 1.
        let v = env.process_packet(&mut ctx, &frame(0xA, 0xB), 2, |ctx, mbuf| {
            let now = clock.now(ctx);
            process(ctx, &mut bridge.table, now, mbuf);
        });
        assert_eq!(v, NfVerdict::Forward(1));
        // A to B again: B now known on port 2.
        let v = env.process_packet(&mut ctx, &frame(0xB, 0xA), 1, |ctx, mbuf| {
            let now = clock.now(ctx);
            process(ctx, &mut bridge.table, now, mbuf);
        });
        assert_eq!(v, NfVerdict::Forward(2));
    }

    #[test]
    fn broadcast_floods() {
        let mut reg = DsRegistry::new();
        let cfg = BridgeConfig::default();
        let ids = register(&mut reg, &cfg);
        let mut aspace = AddressSpace::new();
        let mut bridge = BridgeState::new(ids, &cfg, &mut aspace);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let clock = Clock::new(Granularity::Milliseconds);
        let v = env.process_packet(&mut ctx, &frame(BROADCAST_MAC, 0xC), 0, |ctx, mbuf| {
            let now = clock.now(ctx);
            process(ctx, &mut bridge.table, now, mbuf);
        });
        assert_eq!(v, NfVerdict::Flood);
    }

    #[test]
    fn exploration_covers_all_classes() {
        let result = Bridge::default().explore(StackLevel::FullStack).result;
        // 3 learn outcomes × 3 destination kinds = 9 paths.
        assert_eq!(result.paths.len(), 9);
        for learn in ["src:known", "src:unknown", "src:rehash"] {
            assert_eq!(result.tagged(learn).count(), 3, "{learn}");
        }
        for dst in ["dst:broadcast", "dst:known", "dst:unknown"] {
            assert_eq!(result.tagged(dst).count(), 3, "{dst}");
        }
        // Every path has a verdict and a stateful expire call.
        for p in &result.paths {
            assert!(p.verdict.is_some());
            assert!(p
                .events
                .iter()
                .any(|e| matches!(e, bolt_trace::TraceEvent::Stateful(_))));
        }
    }

    #[test]
    fn nf_only_paths_are_cheaper() {
        let full = Bridge::default().explore(StackLevel::FullStack).result;
        let nf = Bridge::default().explore(StackLevel::NfOnly).result;
        let cost = |r: &bolt_see::ExplorationResult| {
            r.paths
                .iter()
                .map(|p| bolt_trace::count_ic_ma(&p.events).0)
                .max()
                .unwrap()
        };
        assert!(cost(&full) > cost(&nf));
    }
}
