//! Stateless firewall (Table 5a; the upstream half of §5.2's chain).
//!
//! Policy: IPv4 packets without IP options pass through a constant-cost
//! rule scan and are forwarded; packets carrying IP options are dropped
//! immediately (which is what lets the downstream router's expensive
//! option path be masked in the composed contract); non-IPv4 drops too.

use bolt_core::nf::{Fingerprinter, NetworkFunction};
use bolt_expr::Width;
use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::AddressSpace;
use dpdk_sim::{headers as h, Mbuf, StackLevel};
use nf_lib::clock::Clock;
use nf_lib::registry::DsRegistry;

/// Firewall configuration: the static accept rules (dst prefix, dport).
#[derive(Clone, Debug)]
pub struct FirewallConfig {
    /// Rules scanned linearly; a packet is accepted if any matches.
    /// `(dst_prefix, prefix_len, dport or 0 for any)`.
    pub rules: Vec<(u32, u8, u16)>,
}

impl Default for FirewallConfig {
    fn default() -> Self {
        FirewallConfig {
            // Default-accept shape: last rule matches everything, so the
            // scan cost is constant (all rules evaluated en route).
            rules: vec![
                (0x0A000000, 8, 0),
                (0xC0A80000, 16, 443),
                (0x00000000, 0, 0),
            ],
        }
    }
}

/// The stateless firewall logic. No stateful library calls at all — the
/// whole NF is symbolically executed (contract cases are pure paths).
pub fn process<C: NfCtx>(ctx: &mut C, cfg: &FirewallConfig, mbuf: Mbuf) {
    let ether_type = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
    if !ctx.branch_eq_imm(ether_type, h::ETHERTYPE_IPV4 as u64, Width::W16) {
        ctx.tag("invalid");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    let ver_ihl = ctx.load(mbuf.region, h::IPV4_VER_IHL, 1);
    let fifteen = ctx.lit(0x0F, Width::W8);
    let ihl = ctx.and(ver_ihl, fifteen);
    // Any header longer than 5 words carries options: drop (the §5.2
    // policy that masks the router's slow path).
    let five = ctx.lit(5, Width::W8);
    let has_options = ctx.ult(five, ihl);
    if ctx.branch(has_options) {
        ctx.tag("ip-options");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    ctx.tag("no-options");
    // Constant-cost linear rule scan over the 5-tuple. The branchless
    // accept accumulation keeps the path count at one per class.
    let dst = ctx.load(mbuf.region, h::IPV4_DST, 4);
    let dport = ctx.load(mbuf.region, h::L4_DPORT, 2);
    let mut accepted = ctx.lit(0, Width::W1);
    for &(prefix, len, port) in &cfg.rules {
        let mask = if len == 0 { 0 } else { !0u32 << (32 - len) };
        let maskv = ctx.lit(mask as u64, Width::W32);
        let masked = ctx.and(dst, maskv);
        let want = ctx.lit((prefix & mask) as u64, Width::W32);
        let dst_ok = ctx.eq(masked, want);
        let port_ok = if port == 0 {
            ctx.lit(1, Width::W1)
        } else {
            ctx.eq_imm(dport, port as u64, Width::W16)
        };
        let rule_ok = ctx.and(dst_ok, port_ok);
        accepted = ctx.or(accepted, rule_ok);
    }
    if ctx.branch(accepted) {
        ctx.verdict(NfVerdict::Forward(1));
    } else {
        ctx.tag("rule-reject");
        ctx.verdict(NfVerdict::Drop);
    }
}

/// The firewall as a [`NetworkFunction`] descriptor. Stateless: its
/// registered-state handle and concrete state are both `()`.
#[derive(Clone, Debug, Default)]
pub struct Firewall {
    /// Configuration.
    pub cfg: FirewallConfig,
}

impl Firewall {
    /// Descriptor with an explicit configuration.
    pub fn with(cfg: FirewallConfig) -> Self {
        Firewall { cfg }
    }
}

impl NetworkFunction for Firewall {
    type Ids = ();
    type State = ();

    fn name(&self) -> &'static str {
        "firewall"
    }

    fn register(&self, _reg: &mut DsRegistry) {}

    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        fp.usize(self.cfg.rules.len());
        for &(prefix, len, dport) in &self.cfg.rules {
            fp.u32(prefix).u8(len).u16(dport);
        }
    }

    fn state(&self, _ids: (), _aspace: &mut AddressSpace) {}

    fn process(&self, ctx: &mut ConcreteCtx<'_>, _state: &mut (), _clock: &Clock, mbuf: Mbuf) {
        process(ctx, &self.cfg, mbuf);
    }

    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, _ids: (), mbuf: Mbuf) {
        process(ctx, &self.cfg, mbuf);
    }
}

/// Run the analysis build.
#[deprecated(
    since = "0.2.0",
    note = "use `Firewall::with(cfg).explore(level)` via bolt_core::nf::NetworkFunction"
)]
pub fn explore(
    cfg: &FirewallConfig,
    level: StackLevel,
) -> (DsRegistry, bolt_see::ExplorationResult) {
    let e = Firewall::with(cfg.clone()).explore(level);
    (e.reg, e.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_see::ConcreteCtx;
    use bolt_trace::CountingTracer;
    use dpdk_sim::DpdkEnv;

    fn run(cfg: &FirewallConfig, frame: &[u8]) -> NfVerdict {
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        env.process_packet(&mut ctx, frame, 0, |ctx, mbuf| process(ctx, cfg, mbuf))
    }

    #[test]
    fn plain_ipv4_passes() {
        let f = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 2, h::IPPROTO_UDP, 64)
            .udp(5, 6)
            .build();
        assert_eq!(run(&FirewallConfig::default(), &f), NfVerdict::Forward(1));
    }

    #[test]
    fn options_are_dropped() {
        let f = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 2, h::IPPROTO_UDP, 64)
            .ipv4_options(2)
            .udp(5, 6)
            .build();
        assert_eq!(run(&FirewallConfig::default(), &f), NfVerdict::Drop);
    }

    #[test]
    fn non_ipv4_dropped() {
        let f = h::PacketBuilder::new().eth(2, 1, h::ETHERTYPE_IPV6).build();
        assert_eq!(run(&FirewallConfig::default(), &f), NfVerdict::Drop);
    }

    #[test]
    fn restrictive_rules_reject() {
        let cfg = FirewallConfig {
            rules: vec![(0x0A000000, 8, 0)],
        };
        let inside = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 0x0A010101, h::IPPROTO_UDP, 64)
            .udp(5, 6)
            .build();
        assert_eq!(run(&cfg, &inside), NfVerdict::Forward(1));
        let outside = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 0x0B010101, h::IPPROTO_UDP, 64)
            .udp(5, 6)
            .build();
        assert_eq!(run(&cfg, &outside), NfVerdict::Drop);
    }

    #[test]
    fn class_structure_matches_table_5a() {
        let result = Firewall::default().explore(StackLevel::NfOnly).result;
        // invalid / ip-options / no-options(accept) — the default config's
        // catch-all rule makes a reject path infeasible.
        assert!(result.tagged("no-options").count() >= 1);
        assert_eq!(result.tagged("ip-options").count(), 1);
        assert_eq!(result.tagged("invalid").count(), 1);
        // No stateful calls anywhere: the firewall is pure.
        for p in &result.paths {
            assert!(!p
                .events
                .iter()
                .any(|e| matches!(e, bolt_trace::TraceEvent::Stateful(_))));
        }
        // The ip-options class is cheaper than the accept class (Table 5a:
        // 298 vs 477).
        let ic = |tag: &str| {
            result
                .tagged(tag)
                .map(|p| bolt_trace::count_ic_ma(&p.events).0)
                .max()
                .unwrap()
        };
        assert!(ic("ip-options") < ic("no-options"));
    }
}
