//! Maglev-like load balancer (scenarios LB1–LB5).
//!
//! External packets are spread over backends: connection affinity lives
//! in a flow table; new flows consult the Maglev ring (LB2); existing
//! flows go straight to their backend if it is alive (LB4) or are
//! re-homed through the ring if it stopped heartbeating (LB3). Backends
//! announce themselves with heartbeat packets (LB5). Unconstrained
//! traffic (LB1) can hit the mass-expiry worst case.

use bolt_core::nf::{Fingerprinter, NetworkFunction};
use bolt_expr::Width;
use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::AddressSpace;
use dpdk_sim::{headers as h, Mbuf, StackLevel};
use nf_lib::clock::{Clock, ClockModel};
use nf_lib::flow_table::{
    self, FlowTable, FlowTableIds, FlowTableModel, FlowTableOps, FlowTableParams,
};
use nf_lib::maglev::{
    self, BackendPool, BackendPoolIds, BackendPoolModel, BackendPoolOps, MaglevRing, MaglevRingIds,
    MaglevRingModel, MaglevRingOps,
};
use nf_lib::registry::DsRegistry;

use crate::{decrement_ttl, flow_key, forward_to, in_port};

/// Load balancer configuration.
#[derive(Clone, Copy, Debug)]
pub struct LbConfig {
    /// Flow table capacity (power of two).
    pub capacity: usize,
    /// Flow lifetime in nanoseconds.
    pub ttl_ns: u64,
    /// Number of backend servers.
    pub n_backends: u16,
    /// Maglev ring size (prime).
    pub ring_size: u64,
    /// Heartbeat TTL in nanoseconds.
    pub hb_ttl_ns: u64,
    /// Device port facing the backends.
    pub backend_port: u16,
    /// UDP port carrying heartbeats.
    pub hb_udp_port: u16,
}

impl Default for LbConfig {
    fn default() -> Self {
        LbConfig {
            capacity: 4096,
            ttl_ns: 1_000_000,
            n_backends: 8,
            ring_size: 1009,
            hb_ttl_ns: 10_000_000,
            backend_port: 1,
            hb_udp_port: 9999,
        }
    }
}

/// Registered-state handle.
#[derive(Clone, Copy, Debug)]
pub struct LbIds {
    /// Flow affinity table (bare `e`/`c`/`t`/`o` PCVs).
    pub ft: FlowTableIds,
    /// The Maglev ring.
    pub ring: MaglevRingIds,
    /// Backend liveness pool.
    pub pool: BackendPoolIds,
}

/// Register the LB's stateful parts.
pub fn register(reg: &mut DsRegistry, cfg: &LbConfig) -> LbIds {
    let params = FlowTableParams {
        capacity: cfg.capacity,
        ttl_ns: cfg.ttl_ns,
    };
    LbIds {
        ft: flow_table::register::<3>(reg, "lb.flows", "", params),
        ring: maglev::register_ring(reg, "lb.ring", cfg.n_backends, cfg.ring_size),
        pool: maglev::register_pool(reg, "lb.backends", cfg.n_backends, cfg.hb_ttl_ns),
    }
}

/// The stateless LB logic.
#[allow(clippy::too_many_arguments)]
pub fn process<C, FT, R, P>(
    ctx: &mut C,
    ft: &mut FT,
    ring: &mut R,
    pool: &mut P,
    cfg: &LbConfig,
    now: C::Val,
    mbuf: Mbuf,
) where
    C: NfCtx,
    FT: FlowTableOps<C, 3>,
    R: MaglevRingOps<C>,
    P: BackendPoolOps<C>,
{
    let _e = ft.expire(ctx, now);
    let ether_type = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
    if !ctx.branch_eq_imm(ether_type, h::ETHERTYPE_IPV4 as u64, Width::W16) {
        ctx.tag("invalid");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    let dir = in_port(ctx, &mbuf);
    if ctx.branch_eq_imm(dir, cfg.backend_port as u64, Width::W16) {
        // From a backend: heartbeat or return traffic.
        let dport = ctx.load(mbuf.region, h::L4_DPORT, 2);
        if ctx.branch_eq_imm(dport, cfg.hb_udp_port as u64, Width::W16) {
            ctx.tag("heartbeat");
            // Backend id is announced in the low bits of the source.
            let src = ctx.load(mbuf.region, h::IPV4_SRC, 4);
            let backend = ctx.trunc(src, Width::W16);
            pool.heartbeat(ctx, backend, now);
            ctx.verdict(NfVerdict::Drop); // consumed
        } else {
            ctx.tag("return-traffic");
            // Return traffic passes through unchanged.
            decrement_ttl(ctx, &mbuf);
            ctx.verdict(NfVerdict::Forward(0));
        }
        return;
    }
    // External client traffic: look up (or establish) flow affinity.
    let src = ctx.load(mbuf.region, h::IPV4_SRC, 4);
    let dst = ctx.load(mbuf.region, h::IPV4_DST, 4);
    let proto = ctx.load(mbuf.region, h::IPV4_PROTO, 1);
    let sport = ctx.load(mbuf.region, h::L4_SPORT, 2);
    let dport = ctx.load(mbuf.region, h::L4_DPORT, 2);
    let key = flow_key(ctx, src, dst, sport, dport, proto);
    // Flow hash for the ring: fold the key words (cheap mix).
    let x1 = ctx.xor(key[0], key[1]);
    let hash = ctx.xor(x1, key[2]);
    let backend = match ft.get(ctx, &key, now) {
        Some(b64) => {
            let b = ctx.trunc(b64, Width::W16);
            if pool.is_alive(ctx, b, now) {
                ctx.tag("existing:alive");
                b
            } else {
                ctx.tag("existing:dead");
                // Re-home through the ring and update the affinity entry.
                let nb = ring.lookup(ctx, hash);
                let nb64 = ctx.zext(nb, Width::W64);
                let _ = ft.update(ctx, &key, nb64, now);
                nb
            }
        }
        None => {
            let b = ring.lookup(ctx, hash);
            let b64 = ctx.zext(b, Width::W64);
            if ft.put(ctx, &key, b64, now) {
                ctx.tag("new-flow");
            } else {
                ctx.tag("new-flow:table-full");
            }
            b
        }
    };
    // Steer: destination becomes the backend address (10.1.0.0/16 + id).
    let b32 = ctx.zext(backend, Width::W32);
    let base = ctx.lit(0x0A01_0000, Width::W32);
    let baddr = ctx.or(base, b32);
    ctx.store(mbuf.region, h::IPV4_DST, baddr, 4);
    decrement_ttl(ctx, &mbuf);
    let out = ctx.lit(cfg.backend_port as u64, Width::W16);
    forward_to(ctx, out);
}

/// Concrete state bundle.
pub struct Lb {
    /// Flow affinity table.
    pub ft: FlowTable<3>,
    /// The Maglev ring.
    pub ring: MaglevRing,
    /// Backend liveness pool.
    pub pool: BackendPool,
}

impl Lb {
    /// Build concrete state.
    pub fn new(ids: LbIds, cfg: &LbConfig, aspace: &mut AddressSpace) -> Self {
        let params = FlowTableParams {
            capacity: cfg.capacity,
            ttl_ns: cfg.ttl_ns,
        };
        Lb {
            ft: FlowTable::new(ids.ft, params, aspace),
            ring: MaglevRing::new(ids.ring, cfg.n_backends, cfg.ring_size, aspace),
            pool: BackendPool::new(ids.pool, cfg.n_backends, cfg.hb_ttl_ns, aspace),
        }
    }
}

/// The load balancer as a [`NetworkFunction`] descriptor.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadBalancer {
    /// Configuration.
    pub cfg: LbConfig,
}

impl LoadBalancer {
    /// Descriptor with an explicit configuration.
    pub fn with(cfg: LbConfig) -> Self {
        LoadBalancer { cfg }
    }
}

impl NetworkFunction for LoadBalancer {
    type Ids = LbIds;
    type State = Lb;

    fn name(&self) -> &'static str {
        "lb"
    }

    fn register(&self, reg: &mut DsRegistry) -> LbIds {
        register(reg, &self.cfg)
    }

    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        fp.usize(self.cfg.capacity)
            .u64(self.cfg.ttl_ns)
            .u16(self.cfg.n_backends)
            .u64(self.cfg.ring_size)
            .u64(self.cfg.hb_ttl_ns)
            .u16(self.cfg.backend_port)
            .u16(self.cfg.hb_udp_port);
    }

    fn state(&self, ids: LbIds, aspace: &mut AddressSpace) -> Lb {
        Lb::new(ids, &self.cfg, aspace)
    }

    fn process(&self, ctx: &mut ConcreteCtx<'_>, state: &mut Lb, clock: &Clock, mbuf: Mbuf) {
        let now = clock.now(ctx);
        process(
            ctx,
            &mut state.ft,
            &mut state.ring,
            &mut state.pool,
            &self.cfg,
            now,
            mbuf,
        );
    }

    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, ids: LbIds, mbuf: Mbuf) {
        let params = FlowTableParams {
            capacity: self.cfg.capacity,
            ttl_ns: self.cfg.ttl_ns,
        };
        let mut ft = FlowTableModel::new(ids.ft, params);
        let mut ring = MaglevRingModel::new(ids.ring, self.cfg.n_backends);
        let mut pool = BackendPoolModel::new(ids.pool);
        let now = ClockModel.now(ctx);
        process(ctx, &mut ft, &mut ring, &mut pool, &self.cfg, now, mbuf);
    }
}

/// Run the analysis build.
#[deprecated(
    since = "0.2.0",
    note = "use `LoadBalancer::with(cfg).explore(level)` via bolt_core::nf::NetworkFunction"
)]
pub fn explore(
    cfg: &LbConfig,
    level: StackLevel,
) -> (DsRegistry, LbIds, bolt_see::ExplorationResult) {
    let e = LoadBalancer::with(*cfg).explore(level);
    (e.reg, e.ids, e.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_see::ConcreteCtx;
    use bolt_trace::CountingTracer;
    use dpdk_sim::DpdkEnv;
    use nf_lib::clock::{Clock, Granularity};

    fn client_frame(src: u32, sport: u16) -> Vec<u8> {
        h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(src, 0x0A000001, h::IPPROTO_TCP, 64)
            .udp(sport, 443)
            .build()
    }

    fn hb_frame(backend: u16) -> Vec<u8> {
        h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(backend as u32, 0x0A000001, h::IPPROTO_UDP, 64)
            .udp(1, 9999)
            .build()
    }

    struct Rig {
        env: DpdkEnv,
        lb: Lb,
        cfg: LbConfig,
        clock: Clock,
    }

    fn rig() -> Rig {
        let mut reg = DsRegistry::new();
        let cfg = LbConfig {
            capacity: 256,
            ..LbConfig::default()
        };
        let ids = register(&mut reg, &cfg);
        let mut aspace = AddressSpace::new();
        Rig {
            env: DpdkEnv::full_stack(),
            lb: Lb::new(ids, &cfg, &mut aspace),
            cfg,
            clock: Clock::new(Granularity::Nanoseconds),
        }
    }

    fn send(rig: &mut Rig, frame: &[u8], port: u16) -> (NfVerdict, u32) {
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        let cfg = rig.cfg;
        let clock = rig.clock.clone();
        let lb = &mut rig.lb;
        let mut dst = 0u32;
        let v = rig.env.process_packet(&mut ctx, frame, port, |ctx, mbuf| {
            let now = clock.now(ctx);
            process(ctx, &mut lb.ft, &mut lb.ring, &mut lb.pool, &cfg, now, mbuf);
            let b = ctx.buffer(mbuf.region).unwrap();
            dst = u32::from_be_bytes([b[30], b[31], b[32], b[33]]);
        });
        (v, dst)
    }

    fn heartbeat_all(rig: &mut Rig) {
        let (n, port) = (rig.cfg.n_backends, rig.cfg.backend_port);
        for b in 0..n {
            send(rig, &hb_frame(b), port);
        }
    }

    #[test]
    fn flows_stick_to_their_backend() {
        let mut rig = rig();
        heartbeat_all(&mut rig);
        let (v, dst1) = send(&mut rig, &client_frame(0x01020304, 1000), 0);
        assert_eq!(v, NfVerdict::Forward(1));
        assert_eq!(dst1 & 0xFFFF_0000, 0x0A01_0000, "steered to a backend");
        let (_, dst2) = send(&mut rig, &client_frame(0x01020304, 1000), 0);
        assert_eq!(dst1, dst2, "affinity preserved");
        // A different flow may get a different backend but stays in range.
        let (_, dst3) = send(&mut rig, &client_frame(0x05060708, 2000), 0);
        assert_eq!(dst3 & 0xFFFF_0000, 0x0A01_0000);
    }

    #[test]
    fn dead_backend_triggers_rehoming() {
        let mut rig = rig();
        heartbeat_all(&mut rig);
        let (_, dst1) = send(&mut rig, &client_frame(0x01020304, 1000), 0);
        let b1 = (dst1 & 0xFFFF) as u16;
        // Time passes beyond the heartbeat TTL: every backend looks dead;
        // heartbeat only backend (b1+1) mod n.
        let t = rig.cfg.hb_ttl_ns * 2;
        rig.clock.advance_to(t);
        let next = (b1 + 1) % rig.cfg.n_backends;
        let bport = rig.cfg.backend_port;
        send(&mut rig, &hb_frame(next), bport);
        let (_, dst2) = send(&mut rig, &client_frame(0x01020304, 1000), 0);
        // The flow was re-homed somewhere (possibly a still-dead ring pick
        // — the LB does one re-home attempt per packet, like the paper's
        // LB3 class).
        assert_eq!(dst2 & 0xFFFF_0000, 0x0A01_0000);
        // Affinity entry updated: the next packet keeps the new backend.
        let (_, dst3) = send(&mut rig, &client_frame(0x01020304, 1000), 0);
        assert_eq!(dst2, dst3);
    }

    #[test]
    fn heartbeats_are_consumed() {
        let mut rig = rig();
        let bport = rig.cfg.backend_port;
        let (v, _) = send(&mut rig, &hb_frame(3), bport);
        assert_eq!(v, NfVerdict::Drop);
        assert!(rig.lb.pool.raw_is_alive(3, rig.clock.now_raw()));
    }

    #[test]
    fn exploration_covers_lb_classes() {
        let result = LoadBalancer::default().explore(StackLevel::NfOnly).result;
        for tag in [
            "invalid",
            "heartbeat",
            "return-traffic",
            "existing:alive",
            "new-flow",
            "new-flow:table-full",
        ] {
            assert_eq!(result.tagged(tag).count(), 1, "{tag}");
        }
        // The re-homing path appears twice: the flow-table `update`
        // model forks hit/miss, and the engine cannot know the miss arm
        // is unreachable right after a successful `get`. BOLT keeps such
        // over-approximate paths; they are conservative, never unsound.
        assert_eq!(result.tagged("existing:dead").count(), 2);
        assert_eq!(result.paths.len(), 8);
    }
}
