//! Static IP router that processes IP options (Table 5b; the downstream
//! half of §5.2's chain).
//!
//! Routing is a constant-cost read of a 16-entry static next-hop table
//! indexed by the top destination nibble. The interesting part is the
//! RFC 781 timestamp-option loop: every 4-byte option word is loaded,
//! inspected, stamped, and stored back, so the per-packet cost is linear
//! in the option count `n` — Table 5b's `79·n + 646` shape. `n` is a
//! *packet* property, so no stateful model is involved: symbolic
//! execution simply enumerates one path per option count.

use bolt_core::nf::{Fingerprinter, NetworkFunction};
use bolt_expr::Width;
use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::{AddressSpace, MemRegion};
use dpdk_sim::{headers as h, Mbuf, StackLevel};
use nf_lib::clock::Clock;
use nf_lib::registry::DsRegistry;

use crate::{decrement_ttl, forward_to};

/// Static router configuration: next hop per top-nibble of the
/// destination address.
#[derive(Clone, Copy, Debug)]
pub struct StaticRouterConfig {
    /// `next_hop[dst >> 28]` is the output port.
    pub next_hop: [u16; 16],
}

impl Default for StaticRouterConfig {
    fn default() -> Self {
        let mut next_hop = [0u16; 16];
        for (i, nh) in next_hop.iter_mut().enumerate() {
            *nh = (i % 4) as u16;
        }
        StaticRouterConfig { next_hop }
    }
}

/// The router's static table lives in plain simulated memory: it is
/// constant-time, constant-address state, so it needs no library model —
/// the symbolic engine reads it as an opaque memory cell.
#[derive(Clone, Copy, Debug)]
pub struct StaticRouterState {
    /// Simulated region holding 16 × 2-byte next hops.
    pub table: MemRegion,
}

impl StaticRouterState {
    /// Allocate the table region.
    pub fn new(aspace: &mut AddressSpace) -> Self {
        StaticRouterState {
            table: aspace.alloc_table(32),
        }
    }

    /// Install the next-hop bytes into a concrete context.
    pub fn install(&self, ctx: &mut ConcreteCtx<'_>, cfg: &StaticRouterConfig) {
        let mut bytes = Vec::with_capacity(32);
        for nh in cfg.next_hop {
            bytes.extend_from_slice(&nh.to_be_bytes());
        }
        ctx.register_buffer(self.table, bytes);
    }
}

/// The stateless router logic.
pub fn process<C: NfCtx>(ctx: &mut C, router: &StaticRouterState, mbuf: Mbuf) {
    let ether_type = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
    if !ctx.branch_eq_imm(ether_type, h::ETHERTYPE_IPV4 as u64, Width::W16) {
        ctx.tag("invalid");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    let ver_ihl = ctx.load(mbuf.region, h::IPV4_VER_IHL, 1);
    let fifteen = ctx.lit(0x0F, Width::W8);
    let ihl = ctx.and(ver_ihl, fifteen);
    let five = ctx.lit(5, Width::W8);
    let malformed = ctx.ult(ihl, five);
    if ctx.branch(malformed) {
        ctx.tag("malformed");
        ctx.verdict(NfVerdict::Drop);
        return;
    }
    // Process every option word (IHL is 4 bits, so n ≤ 10 and the loop
    // bound is structural).
    let n = ctx.sub(ihl, five);
    let mut i = 0u64;
    loop {
        let iv = ctx.lit(i, Width::W8);
        let more = ctx.ult(iv, n);
        if !ctx.branch(more) {
            break;
        }
        let off = h::IPV4_OPTS + 4 * i;
        // Load the option word, check the type byte, stamp, store back.
        let word = ctx.load(mbuf.region, off, 4);
        let ts_type = ctx.lit(68, Width::W8);
        let ty = {
            let sh = ctx.lit(24, Width::W32);
            let t = ctx.shr(word, sh);
            ctx.trunc(t, Width::W8)
        };
        let is_ts = ctx.eq(ty, ts_type);
        // Branchless stamp (cmov): overwrite the low byte when it is a
        // timestamp option.
        let one = ctx.lit(1, Width::W32);
        let stamped = ctx.or(word, one);
        let out = ctx.select(is_ts, stamped, word);
        ctx.store(mbuf.region, off, out, 4);
        i += 1;
        if i > 10 {
            break;
        }
    }
    if i == 0 {
        ctx.tag("no-options");
    } else {
        ctx.tag("ip-options");
    }
    // Static next hop: one indexed load.
    let dst = ctx.load(mbuf.region, h::IPV4_DST, 4);
    let nibble = {
        let sh = ctx.lit(28, Width::W32);
        let v = ctx.shr(dst, sh);
        ctx.concrete_value(v).unwrap_or(0)
    };
    // The table index depends on the destination; concrete runs use the
    // real nibble, the analysis build reads entry 0 (all entries have
    // identical cost — the table is 32 bytes, one cache line).
    let port = ctx.load(router.table, nibble * 2, 2);
    decrement_ttl(ctx, &mbuf);
    forward_to(ctx, port);
}

/// The static router as a [`NetworkFunction`] descriptor. Its "state" is
/// plain constant memory, so its registered-state handle is `()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticRouter {
    /// Configuration (the next-hop table contents).
    pub cfg: StaticRouterConfig,
}

impl StaticRouter {
    /// Descriptor with an explicit configuration.
    pub fn with(cfg: StaticRouterConfig) -> Self {
        StaticRouter { cfg }
    }
}

impl NetworkFunction for StaticRouter {
    type Ids = ();
    type State = StaticRouterState;

    fn name(&self) -> &'static str {
        "static_router"
    }

    fn register(&self, _reg: &mut DsRegistry) {}

    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        for nh in self.cfg.next_hop {
            fp.u16(nh);
        }
    }

    fn state(&self, _ids: (), aspace: &mut AddressSpace) -> StaticRouterState {
        StaticRouterState::new(aspace)
    }

    fn process(
        &self,
        ctx: &mut ConcreteCtx<'_>,
        state: &mut StaticRouterState,
        _clock: &Clock,
        mbuf: Mbuf,
    ) {
        // Contexts are per-packet; (re)installing the table bytes is a
        // zero-cost bookkeeping operation, not a traced access.
        state.install(ctx, &self.cfg);
        process(ctx, state, mbuf);
    }

    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, _ids: (), mbuf: Mbuf) {
        let router = StaticRouterState {
            table: ctx.alloc_region(32),
        };
        process(ctx, &router, mbuf);
    }

    fn packet_len(&self) -> u64 {
        // Room for a full option-bearing IPv4 header.
        128
    }
}

/// Run the analysis build.
#[deprecated(
    since = "0.2.0",
    note = "use `StaticRouter::default().explore(level)` via bolt_core::nf::NetworkFunction"
)]
pub fn explore(level: StackLevel) -> (DsRegistry, bolt_see::ExplorationResult) {
    let e = StaticRouter::default().explore(level);
    (e.reg, e.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_trace::CountingTracer;
    use dpdk_sim::DpdkEnv;

    fn run(frame: &[u8]) -> (NfVerdict, u64) {
        let cfg = StaticRouterConfig::default();
        let mut aspace = AddressSpace::new();
        let router = StaticRouterState::new(&mut aspace);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        router.install(&mut ctx, &cfg);
        let v = env.process_packet(&mut ctx, frame, 0, |ctx, mbuf| process(ctx, &router, mbuf));
        (v, tracer.instructions)
    }

    #[test]
    fn routes_by_top_nibble() {
        // dst 0x1... → next_hop[1] = 1; dst 0x2... → next_hop[2] = 2.
        for (dst, want) in [(0x10000001u32, 1u16), (0x2ABCDEF0, 2), (0x50000000, 1)] {
            let f = h::PacketBuilder::new()
                .eth(2, 1, h::ETHERTYPE_IPV4)
                .ipv4(1, dst, h::IPPROTO_UDP, 64)
                .udp(5, 6)
                .build();
            let (v, _) = run(&f);
            assert_eq!(v, NfVerdict::Forward(want % 4), "dst {dst:#x}");
        }
    }

    #[test]
    fn option_cost_is_linear_in_n() {
        let cost = |n: u8| {
            let f = h::PacketBuilder::new()
                .eth(2, 1, h::ETHERTYPE_IPV4)
                .ipv4(1, 2, h::IPPROTO_UDP, 64)
                .ipv4_options(n)
                .udp(5, 6)
                .build();
            run(&f).1
        };
        let c0 = cost(0);
        let c1 = cost(1);
        let c4 = cost(4);
        let per = c1 - c0;
        assert!(per > 0);
        assert_eq!(c4 - c0, 4 * per, "per-option cost must be uniform");
    }

    #[test]
    fn ttl_decremented_on_forward() {
        let cfg = StaticRouterConfig::default();
        let mut aspace = AddressSpace::new();
        let router = StaticRouterState::new(&mut aspace);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);
        router.install(&mut ctx, &cfg);
        let f = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(1, 2, h::IPPROTO_UDP, 64)
            .udp(5, 6)
            .build();
        let mut after = 0u8;
        env.process_packet(&mut ctx, &f, 0, |ctx, mbuf| {
            process(ctx, &router, mbuf);
            let ttl = ctx.load(mbuf.region, h::IPV4_TTL, 1);
            after = ctx.concrete_value(ttl).unwrap() as u8;
        });
        assert_eq!(after, 63);
    }

    #[test]
    fn paths_enumerate_option_counts() {
        let result = StaticRouter::default().explore(StackLevel::NfOnly).result;
        // invalid + malformed + one path per option count 0..=10.
        assert_eq!(result.tagged("invalid").count(), 1);
        assert_eq!(result.tagged("malformed").count(), 1);
        assert_eq!(result.tagged("no-options").count(), 1);
        assert_eq!(result.tagged("ip-options").count(), 10);
        // Option paths cost strictly more per extra option.
        let mut costs: Vec<u64> = result
            .tagged("ip-options")
            .map(|p| bolt_trace::count_ic_ma(&p.events).0)
            .collect();
        costs.push(bolt_trace::count_ic_ma(&result.tagged("no-options").next().unwrap().events).0);
        costs.sort_unstable();
        let d1 = costs[1] - costs[0];
        for w in costs.windows(2) {
            assert_eq!(w[1] - w[0], d1, "uniform per-option slope");
        }
    }
}
