//! The network functions under analysis.
//!
//! Everything the paper evaluates (§5.1) plus the NFs its use cases need
//! (§5.2–§5.3), each written once as stateless logic over
//! [`bolt_see::NfCtx`] against the `nf-lib` operation traits, in the
//! Vigor style the paper assumes:
//!
//! | module | NF | paper scenarios |
//! |---|---|---|
//! | [`bridge`] | learning MAC bridge w/ rehash defence | Br1–Br3, Fig 2, Table 4 |
//! | [`nat`] | VigNAT-style NAT (pluggable port allocator) | NAT1–NAT4, Table 6, Figs 4–7 |
//! | [`lb`] | Maglev-like load balancer | LB1–LB5 |
//! | [`lpm_router`] | DIR-24-8 LPM router | LPM1, LPM2 |
//! | [`firewall`] | stateless firewall dropping IP options | Table 5a, Fig 3 |
//! | [`static_router`] | static router processing IP options | Table 5b, Fig 3 |
//! | [`example_router`] | Algorithm 1's trie router | Tables 1 and 2 |
//!
//! Every NF implements [`bolt_core::nf::NetworkFunction`] through a cheap
//! *descriptor* type (`Bridge`, `Nat`, `Firewall`, …) bundling its
//! configuration. The descriptor provides the whole paper workflow:
//!
//! ```ignore
//! let mut contract = Bolt::nf(Bridge::default())
//!     .explore(StackLevel::FullStack)
//!     .contract();
//! ```
//!
//! Each module additionally exposes `register` (contract registration for
//! its stateful parts), a generic `process` function (the stateless
//! logic, shared by both trait methods), and a concrete state bundle for
//! production runs. The pre-trait `explore` free functions remain as
//! deprecated shims for one release.

pub mod bridge;
pub mod example_router;
pub mod firewall;
pub mod lb;
pub mod lpm_router;
pub mod nat;
pub mod static_router;

pub use bridge::Bridge;
pub use example_router::ExampleRouter;
pub use firewall::Firewall;
pub use lb::LoadBalancer;
pub use lpm_router::LpmRouter;
pub use nat::Nat;
pub use static_router::StaticRouter;

use bolt_expr::Width;
use bolt_see::NfCtx;
use dpdk_sim::Mbuf;

/// The packet's input port as a context value: concrete runs read the
/// mbuf metadata; the analysis build makes it a fresh symbol so input
/// classes can constrain traffic direction ("packets arriving from the
/// internal network"). Costs one ALU op (metadata is register-resident).
pub fn in_port<C: NfCtx>(ctx: &mut C, mbuf: &Mbuf) -> C::Val {
    ctx.tracer().alu(1);
    if ctx.is_symbolic() {
        ctx.fresh("pkt.in_port", Width::W16)
    } else {
        ctx.lit(mbuf.port as u64, Width::W16)
    }
}

/// Build the canonical 3-word flow key from the 5-tuple:
/// `[src_ip, dst_ip, proto<<32 | sport<<16 | dport]`, zero-extended to 64
/// bits (the flow table hashes whole words).
pub fn flow_key<C: NfCtx>(
    ctx: &mut C,
    src_ip: C::Val,
    dst_ip: C::Val,
    sport: C::Val,
    dport: C::Val,
    proto: C::Val,
) -> [C::Val; 3] {
    let k0 = ctx.zext(src_ip, Width::W64);
    let k1 = ctx.zext(dst_ip, Width::W64);
    let sp = ctx.zext(sport, Width::W64);
    let dp = ctx.zext(dport, Width::W64);
    let pr = ctx.zext(proto, Width::W64);
    let sixteen = ctx.lit(16, Width::W64);
    let thirty_two = ctx.lit(32, Width::W64);
    let sp16 = ctx.shl(sp, sixteen);
    let pr32 = ctx.shl(pr, thirty_two);
    let lo = ctx.or(sp16, dp);
    let k2 = ctx.or(lo, pr32);
    [k0, k1, k2]
}

/// Decrement the IPv4 TTL and apply the incremental checksum update
/// (RFC 1624-style constant adjustment): one load, arithmetic, two
/// stores.
pub fn decrement_ttl<C: NfCtx>(ctx: &mut C, mbuf: &Mbuf) {
    use dpdk_sim::headers as h;
    let ttl = ctx.load(mbuf.region, h::IPV4_TTL, 1);
    let one = ctx.lit(1, Width::W8);
    let new_ttl = ctx.sub(ttl, one);
    ctx.store(mbuf.region, h::IPV4_TTL, new_ttl, 1);
    let csum = ctx.load(mbuf.region, h::IPV4_CSUM, 2);
    let adj = ctx.lit(0x0100, Width::W16);
    let new_csum = ctx.add(csum, adj);
    ctx.store(mbuf.region, h::IPV4_CSUM, new_csum, 2);
}

/// Forward with the port taken from a context value (concrete runs carry
/// the real number; the analysis build reports port 0 — the verdict's
/// port is measurement metadata, not analysed state).
pub fn forward_to<C: NfCtx>(ctx: &mut C, port: C::Val) {
    let p = ctx.concrete_value(port).map(|v| v as u16).unwrap_or(0);
    ctx.verdict(bolt_see::NfVerdict::Forward(p));
}
