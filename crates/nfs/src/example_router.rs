//! The §2 running example: Algorithm 1's simple LPM router.
//!
//! Invalid (non-IPv4) packets drop at constant cost; valid packets do a
//! trie lookup whose cost is linear in the matched prefix length `l` —
//! the stylised contract of Table 1 (whole router) and Table 2 (the
//! `lpmGet` method).

use bolt_core::nf::{Fingerprinter, NetworkFunction};
use bolt_expr::Width;
use bolt_see::{ConcreteCtx, NfCtx, NfVerdict, SymbolicCtx};
use bolt_trace::AddressSpace;
use dpdk_sim::{headers as h, Mbuf, StackLevel};
use nf_lib::clock::Clock;
use nf_lib::lpm_trie::{self, LpmTrie, LpmTrieIds, LpmTrieModel, LpmTrieOps};
use nf_lib::registry::DsRegistry;

use crate::forward_to;

/// Registered-state handle.
#[derive(Clone, Copy, Debug)]
pub struct ExampleRouterIds {
    /// The trie.
    pub trie: LpmTrieIds,
}

/// Register the router's stateful parts. The trie's PCV uses the bare
/// name `l` as in the paper's tables.
pub fn register(reg: &mut DsRegistry) -> ExampleRouterIds {
    ExampleRouterIds {
        trie: lpm_trie::register(reg, "lpm", ""),
    }
}

/// Algorithm 1, line for line.
pub fn process<C: NfCtx, T: LpmTrieOps<C>>(ctx: &mut C, trie: &mut T, mbuf: Mbuf) {
    let ether_type = ctx.load(mbuf.region, h::ETHER_TYPE, 2);
    if ctx.branch_eq_imm(ether_type, h::ETHERTYPE_IPV4 as u64, Width::W16) {
        ctx.tag("valid");
        let dst = ctx.load(mbuf.region, h::IPV4_DST, 4);
        let port = trie.lookup(ctx, dst);
        forward_to(ctx, port);
    } else {
        ctx.tag("invalid");
        ctx.verdict(NfVerdict::Drop);
    }
}

/// Concrete state bundle.
pub struct ExampleRouterState {
    /// The instrumented trie.
    pub trie: LpmTrie,
}

impl ExampleRouterState {
    /// Build concrete state with room for `max_nodes` trie nodes.
    pub fn new(ids: ExampleRouterIds, max_nodes: usize, aspace: &mut AddressSpace) -> Self {
        ExampleRouterState {
            trie: LpmTrie::new(ids.trie, max_nodes, 0, aspace),
        }
    }
}

/// The §2 running example as a [`NetworkFunction`] descriptor.
#[derive(Clone, Copy, Debug)]
pub struct ExampleRouter {
    /// Trie node capacity for concrete state.
    pub max_nodes: usize,
}

impl Default for ExampleRouter {
    fn default() -> Self {
        ExampleRouter { max_nodes: 4096 }
    }
}

impl NetworkFunction for ExampleRouter {
    type Ids = ExampleRouterIds;
    type State = ExampleRouterState;

    fn name(&self) -> &'static str {
        "example_router"
    }

    fn register(&self, reg: &mut DsRegistry) -> ExampleRouterIds {
        register(reg)
    }

    fn fingerprint_config(&self, fp: &mut Fingerprinter) {
        fp.usize(self.max_nodes);
    }

    fn state(&self, ids: ExampleRouterIds, aspace: &mut AddressSpace) -> ExampleRouterState {
        ExampleRouterState::new(ids, self.max_nodes, aspace)
    }

    fn process(
        &self,
        ctx: &mut ConcreteCtx<'_>,
        state: &mut ExampleRouterState,
        _clock: &Clock,
        mbuf: Mbuf,
    ) {
        process(ctx, &mut state.trie, mbuf);
    }

    fn sym_process(&self, ctx: &mut SymbolicCtx<'_>, ids: ExampleRouterIds, mbuf: Mbuf) {
        let mut model = LpmTrieModel::new(ids.trie);
        process(ctx, &mut model, mbuf);
    }
}

/// Run the analysis build.
#[deprecated(
    since = "0.2.0",
    note = "use `ExampleRouter::default().explore(level)` via bolt_core::nf::NetworkFunction"
)]
pub fn explore(level: StackLevel) -> (DsRegistry, ExampleRouterIds, bolt_see::ExplorationResult) {
    let e = ExampleRouter::default().explore(level);
    (e.reg, e.ids, e.result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bolt_see::ConcreteCtx;
    use bolt_trace::CountingTracer;
    use dpdk_sim::DpdkEnv;

    #[test]
    fn routes_valid_and_drops_invalid() {
        let mut reg = DsRegistry::new();
        let ids = register(&mut reg);
        let mut aspace = AddressSpace::new();
        let mut router = ExampleRouterState::new(ids, 4096, &mut aspace);
        router.trie.insert(0x0A000000, 8, 3);
        let mut env = DpdkEnv::full_stack();
        let mut tracer = CountingTracer::new();
        let mut ctx = ConcreteCtx::new(&mut tracer);

        let valid = h::PacketBuilder::new()
            .eth(2, 1, h::ETHERTYPE_IPV4)
            .ipv4(0x01020304, 0x0A123456, h::IPPROTO_UDP, 64)
            .udp(1, 2)
            .build();
        let v = env.process_packet(&mut ctx, &valid, 0, |ctx, mbuf| {
            process(ctx, &mut router.trie, mbuf)
        });
        assert_eq!(v, NfVerdict::Forward(3));

        let invalid = h::PacketBuilder::new().eth(2, 1, h::ETHERTYPE_IPV6).build();
        let v = env.process_packet(&mut ctx, &invalid, 0, |ctx, mbuf| {
            process(ctx, &mut router.trie, mbuf)
        });
        assert_eq!(v, NfVerdict::Drop);
    }

    #[test]
    fn two_input_classes_emerge() {
        let result = ExampleRouter::default().explore(StackLevel::NfOnly).result;
        assert_eq!(result.paths.len(), 2);
        assert_eq!(result.tagged("valid").count(), 1);
        assert_eq!(result.tagged("invalid").count(), 1);
        // The invalid path is cheaper than the valid one even before the
        // trie contract is added (Table 1's structure).
        let ic = |tag: &str| bolt_trace::count_ic_ma(&result.tagged(tag).next().unwrap().events).0;
        assert!(ic("invalid") < ic("valid") + 50);
    }
}
