//! Shared scenario engine for the reproduction harnesses.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the paper; the scenario plumbing they share lives here:
//!
//! * [`scenarios`] — the fourteen §5.1 input-class scenarios (NAT1–4,
//!   Br1–3, LB1–5, LPM1–2): state preparation, per-class workloads,
//!   predicted-vs-measured collection for all three metrics.
//! * [`table_fmt`] — fixed-width table printing matching the paper's
//!   layout.

pub mod scenarios;
pub mod table_fmt;
