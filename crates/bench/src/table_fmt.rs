//! Fixed-width table rendering for the reproduction harnesses.

/// Print a header + rows with per-column widths derived from content.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(cols) {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// `x.yz` formatting for ratios.
pub fn ratio(pred: u64, measured: u64) -> String {
    if measured == 0 {
        return "-".to_string();
    }
    format!("{:.2}", pred as f64 / measured as f64)
}

/// Percent over-estimation `(pred-meas)/meas`.
pub fn overestimate_pct(pred: u64, measured: u64) -> String {
    if measured == 0 {
        return "-".to_string();
    }
    format!(
        "{:+.2}%",
        (pred as f64 - measured as f64) / measured as f64 * 100.0
    )
}

/// Thousands-separated integer.
pub fn human(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_format() {
        assert_eq!(ratio(900, 300), "3.00");
        assert_eq!(ratio(1, 0), "-");
        assert_eq!(human(1234567), "1,234,567");
        assert_eq!(human(12), "12");
        assert_eq!(overestimate_pct(107, 100), "+7.00%");
    }
}
