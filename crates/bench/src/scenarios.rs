//! The fourteen §5.1 input-class scenarios, plus the adversarial
//! single-chain variant of the pathological state (see EXPERIMENTS.md).
//!
//! Each scenario prepares NF state (synthesizing the pathological states
//! the paper could not build from traffic, §5.1), plays an in-class
//! workload through the production build, and compares the measured
//! worst packet against the contract's class query at the distilled PCV
//! binding — for all three metrics.
//!
//! Everything runs through the fluent pipeline: explore with
//! [`Bolt::nf`], generate with [`bolt_core::nf::Exploration::contract`],
//! build concrete state from the same descriptor, and drive it with
//! [`NfRunner::play_nf`] (or, for the burst scenario, the
//! `process_batch` device loop via [`NfRunner::play_nf_bursts`]).

use bolt_core::nf::{Bolt, Contract, NetworkFunction};
use bolt_core::{ClassSpec, InputClass};
use bolt_distiller::NfRunner;
use bolt_expr::PcvAssignment;
use bolt_nfs::bridge::{Bridge, BridgeConfig};
use bolt_nfs::lb::{LbConfig, LoadBalancer};
use bolt_nfs::lpm_router::LpmRouter;
use bolt_nfs::nat::{AllocKind, Nat, NatConfig};
use bolt_trace::{AddressSpace, Metric};
use bolt_workloads::generators::*;
use bolt_workloads::TimedPacket;
use dpdk_sim::headers as h;
use dpdk_sim::StackLevel;
use nf_lib::clock::Granularity;

/// One scenario's predicted-vs-measured outcome (`[IC, MA, cycles]`).
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario id from the paper (NAT1, Br2, …).
    pub name: &'static str,
    /// Human description.
    pub description: &'static str,
    /// Contract prediction at the distilled PCV binding.
    pub predicted: [u64; 3],
    /// Worst measured packet in the measurement phase.
    pub measured: [u64; 3],
}

impl ScenarioOutcome {
    /// Over-estimation fraction for a metric index.
    pub fn gap(&self, m: usize) -> f64 {
        (self.predicted[m] as f64 - self.measured[m] as f64) / self.predicted[m] as f64
    }
}

fn collect<I>(
    name: &'static str,
    description: &'static str,
    contract: &mut Contract<I>,
    runner: &NfRunner,
    class: &InputClass,
    measure_from: usize,
) -> ScenarioOutcome {
    let env: PcvAssignment = runner.distiller.worst_assignment_from(measure_from as u64);
    let mut q = |m: Metric| {
        contract
            .query(class, m, &env)
            .unwrap_or_else(|| panic!("{name}: no compatible path for class {}", class.name))
            .value
    };
    let predicted = [
        q(Metric::Instructions),
        q(Metric::MemAccesses),
        q(Metric::Cycles),
    ];
    let slice = &runner.samples[measure_from..];
    let measured = [
        slice.iter().map(|s| s.ic).max().unwrap_or(0),
        slice.iter().map(|s| s.ma).max().unwrap_or(0),
        slice.iter().map(|s| s.cycles as u64).max().unwrap_or(0),
    ];
    ScenarioOutcome {
        name,
        description,
        predicted,
        measured,
    }
}

fn int_flow_frame(i: u32) -> (Vec<u8>, [u64; 3]) {
    let src = 0x0A00_0000u32 + i;
    let dst = 0x0808_0808u32;
    let sport = 1024 + (i % 10_000) as u16;
    let dport = 80u16;
    let frame = h::PacketBuilder::new()
        .eth(2, 1, h::ETHERTYPE_IPV4)
        .ipv4(src, dst, h::IPPROTO_UDP, 64)
        .udp(sport, dport)
        .build();
    // The same 3-word key the NF's flow_key helper builds.
    let key = [
        src as u64,
        dst as u64,
        ((h::IPPROTO_UDP as u64) << 32) | ((sport as u64) << 16) | dport as u64,
    ];
    (frame, key)
}

fn distinct_int_flows(n: usize, gap_ns: u64) -> Vec<TimedPacket> {
    (0..n)
        .map(|i| {
            let (frame, _) = int_flow_frame(i as u32);
            TimedPacket {
                t_ns: i as u64 * gap_ns,
                frame,
                port: 0,
            }
        })
        .collect()
}

/// Distinct flows whose table slots do not collide — the paper's typical
/// classes use traffic "that does not encounter hash collisions" (§5.1).
fn collision_free_int_flows(
    bucket_of: impl Fn(&[u64; 3]) -> usize,
    n: usize,
    gap_ns: u64,
) -> Vec<TimedPacket> {
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    let mut i = 0u32;
    while out.len() < n {
        let (frame, key) = int_flow_frame(i);
        i += 1;
        if used.insert(bucket_of(&key)) {
            out.push(TimedPacket {
                t_ns: out.len() as u64 * gap_ns,
                frame,
                port: 0,
            });
        }
        assert!(i < 1_000_000, "could not find {n} collision-free flows");
    }
    out
}

/// Re-time a workload to start at `t0`.
fn retime(mut pkts: Vec<TimedPacket>, t0: u64) -> Vec<TimedPacket> {
    for p in &mut pkts {
        p.t_ns += t0;
    }
    pkts
}

fn ext_probe_flows(n: usize, t0: u64, gap_ns: u64) -> Vec<TimedPacket> {
    (0..n)
        .map(|i| {
            let frame = h::PacketBuilder::new()
                .eth(2, 1, h::ETHERTYPE_IPV4)
                .ipv4(0x0808_0808, 0xC0A8_0101, h::IPPROTO_UDP, 64)
                .udp(80, 50) // below base_port: never mapped
                .build();
            TimedPacket {
                t_ns: t0 + i as u64 * gap_ns,
                frame,
                port: 1,
            }
        })
        .collect()
}

/// One unicast frame from every host in the MAC space, so a bridge prep
/// phase deterministically learns the whole population (random chatter
/// alone leaves coupon-collector holes that would put measurement-phase
/// packets outside the `src:known` class).
fn bridge_host_sweep(mac_space: u64, gap_ns: u64) -> Vec<TimedPacket> {
    (0..mac_space)
        .map(|i| {
            let src = 0x0200_0000_0000 + i;
            let dst = 0x0200_0000_0000 + (i + 1) % mac_space;
            let frame = h::PacketBuilder::new()
                .eth(dst, src, h::ETHERTYPE_IPV4)
                .ipv4(1, 2, h::IPPROTO_UDP, 64)
                .udp(1, 2)
                .build();
            TimedPacket {
                t_ns: i * gap_ns,
                frame,
                port: (i % 2) as u16,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// NAT scenarios
// ---------------------------------------------------------------------

/// NAT2/NAT3/NAT4: typical classes on a quiet table.
pub fn nat_typical() -> Vec<ScenarioOutcome> {
    let nf = Nat::with(
        NatConfig {
            capacity: 4096,
            ttl_ns: u64::MAX / 2,
            n_ports: 4096,
            ..Default::default()
        },
        AllocKind::A,
    );
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut out = Vec::new();

    // NAT2: new internal flows.
    {
        let mut aspace = AddressSpace::new();
        let mut state = nf.state(contract.ids, &mut aspace);
        let flows = collision_free_int_flows(|k| state.ft().bucket_of(k), 512, 10_000);
        let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
        runner.play_nf(&nf, &mut state, &flows);
        out.push(collect(
            "NAT2",
            "new internal flows (forwarded)",
            &mut contract,
            &runner,
            &InputClass::new("new internal", ClassSpec::Tag("int:new")),
            0,
        ));

        // NAT3: the same flows again — all established.
        let prep = runner.samples.len();
        let again = retime(flows.clone(), 512 * 10_000);
        runner.play_nf(&nf, &mut state, &again);
        out.push(collect(
            "NAT3",
            "established flows (forwarded)",
            &mut contract,
            &runner,
            &InputClass::new("established", ClassSpec::Tag("int:known")),
            prep,
        ));

        // NAT4: unsolicited external packets (dropped).
        let prep = runner.samples.len();
        runner.play_nf(
            &nf,
            &mut state,
            &ext_probe_flows(512, 1_100 * 10_000, 10_000),
        );
        out.push(collect(
            "NAT4",
            "unknown external flows (dropped)",
            &mut contract,
            &runner,
            &InputClass::new("external drop", ClassSpec::Tag("ext:new")),
            prep,
        ));
    }
    out
}

/// NAT1: the synthesized pathological state — full table, all entries
/// aged, mass expiry on the next packet. `uniform` selects singleton
/// clusters (tight product-form bound) vs one adversarial probe run
/// (quadratic blow-up; the bound is ≈2× conservative — see
/// EXPERIMENTS.md).
pub fn nat_pathological(capacity: usize, uniform: bool) -> ScenarioOutcome {
    let cfg = NatConfig {
        capacity,
        ttl_ns: 1_000,
        n_ports: capacity,
        ..Default::default()
    };
    let nf = Nat::with(cfg, AllocKind::A);
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    let base = cfg.base_port as u64;
    // Near-full: the handful of empty slots terminates the trigger
    // packet's post-expiry probe quickly, so the lookup's `t` does not
    // conflate into the expiry cross terms.
    let fill = capacity - 8;
    state
        .ft_mut()
        .synthesize_aged(fill, uniform, |i| base + i as u64);
    for i in 0..fill {
        state.raw_take_port(cfg.base_port + i as u16);
    }
    // One packet, far in the future: the entire table expires.
    let mut pkts = distinct_int_flows(1, 0);
    pkts[0].t_ns = 1_000_000_000;
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    runner.play_nf(&nf, &mut state, &pkts);
    collect(
        if uniform { "NAT1" } else { "NAT1adv" },
        if uniform {
            "unconstrained: full aged table, mass expiry"
        } else {
            "unconstrained: adversarial single probe run"
        },
        &mut contract,
        &runner,
        &InputClass::unconstrained(),
        0,
    )
}

// ---------------------------------------------------------------------
// Bridge scenarios
// ---------------------------------------------------------------------

/// Br2 (broadcast) and Br3 (known unicast) on a quiet table.
pub fn bridge_typical() -> Vec<ScenarioOutcome> {
    let nf = Bridge::with(BridgeConfig {
        capacity: 4096,
        ttl_ns: u64::MAX / 2,
        rehash_threshold: 64,
    });
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);

    // Prep: deterministically learn all 256 hosts, then add unicast
    // chatter so the table looks naturally used.
    let mut prep_pkts = bridge_host_sweep(256, 10_000);
    prep_pkts.extend(retime(
        bridge_traffic(31, 256, 256, false, 10_000),
        256 * 10_000,
    ));
    runner.play_nf(&nf, &mut state, &prep_pkts);
    let mut out = Vec::new();

    // Br2: broadcast frames from known sources.
    let prep = runner.samples.len();
    let bc = retime(bridge_traffic(32, 512, 256, true, 10_000), 512 * 10_000);
    runner.play_nf(&nf, &mut state, &bc);
    out.push(collect(
        "Br2",
        "broadcast traffic",
        &mut contract,
        &runner,
        &InputClass::new(
            "broadcast",
            ClassSpec::all([
                ClassSpec::Tag("dst:broadcast"),
                ClassSpec::NotTag("src:rehash"),
            ]),
        ),
        prep,
    ));

    // Br3: unicast between known hosts.
    let prep = runner.samples.len();
    let uc = retime(bridge_traffic(33, 512, 256, false, 10_000), 1024 * 10_000);
    runner.play_nf(&nf, &mut state, &uc);
    out.push(collect(
        "Br3",
        "unicast traffic (known hosts)",
        &mut contract,
        &runner,
        &InputClass::new(
            "unicast known",
            ClassSpec::all([
                ClassSpec::Tag("src:known"),
                ClassSpec::NotTag("dst:broadcast"),
                ClassSpec::NotTag("src:rehash"),
            ]),
        ),
        prep,
    ));
    out
}

/// Br1: synthesized pathological bridge state (full aged MAC table).
pub fn bridge_pathological(capacity: usize, uniform: bool) -> ScenarioOutcome {
    let nf = Bridge::with(BridgeConfig {
        capacity,
        ttl_ns: 1_000,
        rehash_threshold: u64::MAX, // the attack state, not the defence
    });
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    let fill = capacity - 8;
    state
        .table
        .store_mut()
        .synthesize_aged(fill, uniform, |i| (i % 4) as u64);
    let pkts = vec![TimedPacket {
        t_ns: 1_000_000_000,
        frame: h::PacketBuilder::new()
            .eth(0xB, 0xA, h::ETHERTYPE_IPV4)
            .ipv4(1, 2, h::IPPROTO_UDP, 64)
            .udp(1, 2)
            .build(),
        port: 0,
    }];
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    runner.play_nf(&nf, &mut state, &pkts);
    collect(
        "Br1",
        "unconstrained: full aged MAC table, mass expiry",
        &mut contract,
        &runner,
        &InputClass::new("no rehash", ClassSpec::NotTag("src:rehash")),
        0,
    )
}

// ---------------------------------------------------------------------
// Load balancer scenarios
// ---------------------------------------------------------------------

/// LB2–LB5: typical classes.
pub fn lb_typical() -> Vec<ScenarioOutcome> {
    let nf = LoadBalancer::with(LbConfig {
        capacity: 4096,
        ttl_ns: u64::MAX / 2,
        hb_ttl_ns: 50_000_000,
        ..Default::default()
    });
    let cfg = nf.cfg;
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    let mut out = Vec::new();

    // LB5 measurement doubles as liveness prep.
    let hb = heartbeats(
        cfg.n_backends,
        4,
        1_000_000,
        cfg.backend_port,
        cfg.hb_udp_port,
    );
    runner.play_nf(&nf, &mut state, &hb);
    out.push(collect(
        "LB5",
        "heartbeat packets from backends",
        &mut contract,
        &runner,
        &InputClass::new("heartbeats", ClassSpec::Tag("heartbeat")),
        0,
    ));

    // LB2: new flows with live backends.
    let prep = runner.samples.len();
    let t0 = 4 * 1_000_000;
    let flows = collision_free_int_flows(|k| state.ft.bucket_of(k), 512, 10_000);
    let clients = retime(flows.clone(), t0);
    runner.play_nf(&nf, &mut state, &clients);
    out.push(collect(
        "LB2",
        "new flows (live backends)",
        &mut contract,
        &runner,
        &InputClass::new("new flows", ClassSpec::Tag("new-flow")),
        prep,
    ));

    // LB4: the same flows again, backends still alive.
    let prep = runner.samples.len();
    let again = retime(flows.clone(), t0 + 512 * 10_000);
    runner.play_nf(&nf, &mut state, &again);
    out.push(collect(
        "LB4",
        "existing flows, live backend",
        &mut contract,
        &runner,
        &InputClass::new("existing alive", ClassSpec::Tag("existing:alive")),
        prep,
    ));

    // LB3: heartbeats go silent; the same flows hit dead backends.
    let prep = runner.samples.len();
    let later = retime(flows.clone(), t0 + 1024 * 10_000 + cfg.hb_ttl_ns * 2);
    runner.play_nf(&nf, &mut state, &later);
    out.push(collect(
        "LB3",
        "existing flows, unresponsive backend",
        &mut contract,
        &runner,
        &InputClass::new("existing dead", ClassSpec::Tag("existing:dead")),
        prep,
    ));
    out
}

/// LB1: synthesized pathological state.
pub fn lb_pathological(capacity: usize, uniform: bool) -> ScenarioOutcome {
    let nf = LoadBalancer::with(LbConfig {
        capacity,
        ttl_ns: 1_000,
        ..Default::default()
    });
    let cfg = nf.cfg;
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    let n = cfg.n_backends as u64;
    let fill = capacity - 8;
    state.ft.synthesize_aged(fill, uniform, |i| i as u64 % n);
    let mut pkts = distinct_int_flows(1, 0);
    pkts[0].t_ns = 1_000_000_000;
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    runner.play_nf(&nf, &mut state, &pkts);
    collect(
        "LB1",
        "unconstrained: full aged flow table, mass expiry",
        &mut contract,
        &runner,
        &InputClass::unconstrained(),
        0,
    )
}

// ---------------------------------------------------------------------
// LPM scenarios
// ---------------------------------------------------------------------

/// LPM1 (worst: long matches) and LPM2 (short matches). The reproduction
/// runs the table at a 16-bit first level; the class boundary (one load
/// vs two) is identical in shape to the paper's 24-bit table.
pub fn lpm_scenarios() -> Vec<ScenarioOutcome> {
    let nf = LpmRouter::default();
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    state.lpm.insert(0x0A000000, 8, 1); // short
    state.lpm.insert(0x0B0C0000, 24, 2); // long (> 16-bit first level)
    let mut out = Vec::new();

    // LPM1: worst case — every packet takes the two-load path (the
    // CASTAN-substitute adversarial workload).
    {
        let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
        let pkts = lpm_traffic(41, 512, 0x0A000100, 0x0B0C0001, 1.0, 1000);
        runner.play_nf(&nf, &mut state, &pkts);
        out.push(collect(
            "LPM1",
            "unconstrained (worst: matched prefix > first level)",
            &mut contract,
            &runner,
            &InputClass::unconstrained(),
            0,
        ));
    }
    // LPM2: all matches within the first level.
    {
        let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
        let pkts = lpm_traffic(42, 512, 0x0A000100, 0x0B0C0001, 0.0, 1000);
        runner.play_nf(&nf, &mut state, &pkts);
        out.push(collect(
            "LPM2",
            "matched prefix within first level",
            &mut contract,
            &runner,
            &InputClass::new("short matches", ClassSpec::Tag("lpm:short")),
            0,
        ));
    }
    out
}

/// Burst-mode LPM scenario: the same adversarial workload driven through
/// [`NetworkFunction::process_batch`] in device-loop bursts. The
/// per-burst measurement must stay under `burst × per-packet prediction`
/// (the contract is a per-packet bound, so it bounds bursts linearly).
pub fn lpm_burst_scenario(burst: usize) -> ScenarioOutcome {
    let nf = LpmRouter::default();
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    state.lpm.insert(0x0A000000, 8, 1);
    state.lpm.insert(0x0B0C0000, 24, 2);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
    let pkts = lpm_traffic(43, 512, 0x0A000100, 0x0B0C0001, 1.0, 1000);
    runner.play_nf_bursts(&nf, &mut state, &pkts, burst);

    let env = runner.distiller.worst_assignment();
    let mut q = |m: Metric| {
        contract
            .query(&InputClass::unconstrained(), m, &env)
            .expect("unconstrained class always has a path")
            .value
            * burst as u64
    };
    let predicted = [
        q(Metric::Instructions),
        q(Metric::MemAccesses),
        q(Metric::Cycles),
    ];
    let measured = [
        runner.burst_samples.iter().map(|b| b.ic).max().unwrap_or(0),
        runner.burst_samples.iter().map(|b| b.ma).max().unwrap_or(0),
        runner
            .burst_samples
            .iter()
            .map(|b| b.cycles as u64)
            .max()
            .unwrap_or(0),
    ];
    ScenarioOutcome {
        name: "LPM1b",
        description: "adversarial LPM workload, burst device loop",
        predicted,
        measured,
    }
}

/// All Figure 1 / Table 3 scenarios, in the paper's order.
/// `path_capacity` scales the pathological table (the paper uses 65536;
/// the default harness uses 8192 to keep runs minutes-fast — the shape is
/// capacity-independent).
pub fn all_scenarios(path_capacity: usize) -> Vec<ScenarioOutcome> {
    let mut rows = Vec::new();
    rows.push(nat_pathological(path_capacity, true));
    rows.extend(nat_typical());
    rows.push(bridge_pathological(path_capacity, true));
    rows.extend(bridge_typical());
    rows.push(lb_pathological(path_capacity, true));
    rows.extend(lb_typical());
    rows.extend(lpm_scenarios());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_scenarios_are_conservative_and_tight() {
        for s in nat_typical()
            .into_iter()
            .chain(bridge_typical())
            .chain(lpm_scenarios())
        {
            for m in 0..3 {
                assert!(
                    s.predicted[m] >= s.measured[m],
                    "{}: metric {m} bound violated: {} < {}",
                    s.name,
                    s.predicted[m],
                    s.measured[m]
                );
            }
            // IC/MA gaps stay small on typical classes (§5.1: ≤7.6%; we
            // allow a little slack for the coalesced age-list variance).
            assert!(
                s.gap(0) <= 0.12,
                "{}: IC gap {:.1}% too large ({} vs {})",
                s.name,
                s.gap(0) * 100.0,
                s.predicted[0],
                s.measured[0]
            );
        }
    }

    #[test]
    fn pathological_scenarios_blow_up_and_stay_bounded() {
        let p = nat_pathological(1024, true);
        let typical_ic = nat_typical()[0].measured[0];
        assert!(
            p.measured[0] > typical_ic * 100,
            "mass expiry must dominate typical cost: {} vs {typical_ic}",
            p.measured[0]
        );
        for m in 0..3 {
            assert!(p.predicted[m] >= p.measured[m], "{m}");
        }
        // Uniform clusters keep the bound tight (paper: ≤2.4% IC).
        assert!(p.gap(0) <= 0.10, "NAT1 gap {:.2}%", p.gap(0) * 100.0);
    }

    #[test]
    fn burst_scenario_stays_bounded() {
        let s = lpm_burst_scenario(32);
        for m in 0..3 {
            assert!(
                s.predicted[m] >= s.measured[m],
                "LPM1b: metric {m} bound violated: {} < {}",
                s.predicted[m],
                s.measured[m]
            );
        }
        assert!(s.measured[0] > 0);
    }
}
