//! Figures 5, 6, 7: picking the port-allocator implementation (§5.3).
//! Allocator A (free list) has occupancy-independent constants; allocator
//! B (array scan) is cheaper at low occupancy and much slower at high
//! occupancy. The contracts predict the trade-off (Fig 5); the measured
//! latency CDFs confirm it (Figs 6, 7): A wins under low churn (high
//! occupancy, paper ≈33%), B wins under high churn (low occupancy, paper
//! ≈10%).

use bolt_bench::table_fmt::print_table;
use bolt_core::nf::{Bolt, NetworkFunction};
use bolt_core::{ClassSpec, InputClass};
use bolt_distiller::{percentile, NfRunner};
use bolt_nfs::nat;
use bolt_nfs::nat::Nat;
use bolt_see::NfVerdict;
use bolt_trace::{AddressSpace, Metric};
use bolt_workloads::TimedPacket;
use dpdk_sim::headers as h;
use dpdk_sim::StackLevel;
use nf_lib::clock::Granularity;

const CAP: usize = 4096;

fn flow_frame(i: u32) -> Vec<u8> {
    h::PacketBuilder::new()
        .eth(2, 1, h::ETHERTYPE_IPV4)
        .ipv4(0x0A00_0000 + i, 0x0808_0808, h::IPPROTO_UDP, 64)
        .udp(1024 + (i % 10_000) as u16, 80)
        .build()
}

/// Low churn: long-lived flows hold the table at ~90% occupancy with the
/// free ports *scattered* (a random tenth of the original flows expired),
/// so allocator B's first-fit scan pays an occupancy-dependent probe
/// count. High churn: short TTL keeps occupancy low and the scan prefix
/// cache-hot; B's lighter constant wins.
struct Scenario {
    name: &'static str,
    ttl_ns: u64,
    prep: Vec<TimedPacket>,
    measured: Vec<TimedPacket>,
}

const MS: u64 = 1_000_000;

fn low_churn() -> Scenario {
    let mut prep = Vec::new();
    // Fill to 87.5%: scattered empty slots keep probe runs bounded (a
    // table at 100% + tombstones degrades every lookup to a full scan).
    let fill = (CAP * 7) / 8;
    for i in 0..fill as u32 {
        prep.push(TimedPacket {
            t_ns: i as u64 * 1000,
            frame: flow_frame(i),
            port: 0,
        });
    }
    // Refresh all but a scattered quarter at t = 5 ms.
    let mut j = 0u64;
    for i in 0..fill as u32 {
        if i % 4 != 3 {
            prep.push(TimedPacket {
                t_ns: 5 * MS + j * 100,
                frame: flow_frame(i),
                port: 0,
            });
            j += 1;
        }
    }
    // At 14.2 ms (TTL 10 ms) the unrefreshed tenth expires; this flush
    // packet absorbs the mass expiry before measurement.
    prep.push(TimedPacket {
        t_ns: 14_200_000,
        frame: flow_frame(CAP as u32 + 999_000),
        port: 0,
    });
    // Measured: new arrivals at high scattered occupancy. Few enough
    // that the scattered frees do not deplete (first-fit consumes them
    // front to back).
    let measured = (0..64u32)
        .map(|i| TimedPacket {
            t_ns: 14_250_000 + i as u64 * 1000,
            frame: flow_frame(1_000_000 + i),
            port: 0,
        })
        .collect();
    Scenario {
        name: "Low Churn",
        ttl_ns: 10 * MS,
        prep,
        measured,
    }
}

fn high_churn() -> Scenario {
    // Nothing lives long: short random flow lifetimes keep occupancy low
    // and scramble the order ports return to the free list (so allocator
    // A's FIFO chase really is a scattered pointer chase, as it would be
    // under production traffic).
    use bolt_workloads::generators::churn_flows;
    let prep = churn_flows(77, 512, 8, 1, 10_000, 0);
    let mut measured = churn_flows(78, 2000, 8, 1, 10_000, 0);
    for p in &mut measured {
        p.t_ns += 512 * 10_000;
    }
    Scenario {
        name: "High Churn",
        ttl_ns: 400_000,
        prep,
        measured,
    }
}

/// Run one (scenario, allocator) cell; returns (predicted new-flow
/// cycles, measured new-flow cycle samples).
fn run(scenario: &Scenario, kind: nat::AllocKind) -> (u64, Vec<f64>) {
    // The §5.3 swap is one field in the descriptor; both variants stay
    // alive behind the same `NatState`.
    let nf = Nat::with(
        nat::NatConfig {
            capacity: CAP,
            ttl_ns: scenario.ttl_ns,
            n_ports: CAP,
            ..Default::default()
        },
        kind,
    );
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(contract.ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);

    let mut pkts = scenario.prep.clone();
    let prep_count = pkts.len();
    pkts.extend(scenario.measured.iter().cloned());

    runner.play_nf(&nf, &mut state, &pkts);
    let samples: Vec<f64> = runner.samples[prep_count..]
        .iter()
        .filter(|s| matches!(s.verdict, NfVerdict::Forward(_)))
        .map(|s| s.cycles)
        .collect();
    let env = runner.distiller.worst_assignment_from(prep_count as u64);
    let class = InputClass::new("new internal flows", ClassSpec::Tag("int:new"));
    let predicted = contract.query(&class, Metric::Cycles, &env).unwrap().value;
    (predicted, samples)
}

fn main() {
    let mut fig5_rows = Vec::new();
    let mut cdfs: Vec<(&str, &str, Vec<f64>)> = Vec::new();
    for scenario in [&low_churn(), &high_churn()] {
        for (kind, label) in [
            (nat::AllocKind::A, "Allocator A"),
            (nat::AllocKind::B, "Allocator B"),
        ] {
            let (pred, samples) = run(scenario, kind);
            fig5_rows.push(vec![
                scenario.name.to_string(),
                label.to_string(),
                pred.to_string(),
                format!("{:.0}", percentile(&samples, 0.5)),
            ]);
            cdfs.push((scenario.name, label, samples));
        }
    }
    print_table(
        "Figure 5 — predicted new-flow cycles per allocator and scenario (paper: A wins low churn by ~30%, B wins high churn by ~8%)",
        &["scenario", "allocator", "predicted cycles", "measured median"],
        &fig5_rows,
    );

    for (title, which) in [
        (
            "Figure 6 — measured latency CDF, LOW churn (paper: A ~33% faster)",
            "Low Churn",
        ),
        (
            "Figure 7 — measured latency CDF, HIGH churn (paper: B ~10% faster)",
            "High Churn",
        ),
    ] {
        let rows: Vec<Vec<String>> = [0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| {
                let mut row = vec![format!("p{:.0}", q * 100.0)];
                for (s, _, samples) in &cdfs {
                    if *s == which {
                        row.push(format!("{:.0}", percentile(samples, q)));
                    }
                }
                row
            })
            .collect();
        print_table(title, &["quantile", "Allocator A", "Allocator B"], &rows);
    }

    // The paper's trade-off, in predicted and measured form.
    let pred = |s: &str, a: &str| -> f64 {
        fig5_rows.iter().find(|r| r[0] == s && r[1] == a).unwrap()[2]
            .parse()
            .unwrap()
    };
    let med = |s: &str, a: &str| -> f64 {
        fig5_rows.iter().find(|r| r[0] == s && r[1] == a).unwrap()[3]
            .parse()
            .unwrap()
    };
    let low_pred_gap =
        (pred("Low Churn", "Allocator B") / pred("Low Churn", "Allocator A") - 1.0) * 100.0;
    let high_pred_gap =
        (pred("High Churn", "Allocator A") / pred("High Churn", "Allocator B") - 1.0) * 100.0;
    let low_meas_gap =
        (med("Low Churn", "Allocator B") / med("Low Churn", "Allocator A") - 1.0) * 100.0;
    let high_meas_gap =
        (med("High Churn", "Allocator A") / med("High Churn", "Allocator B") - 1.0) * 100.0;
    println!("\nlow churn:  B costs {low_pred_gap:+.0}% predicted, {low_meas_gap:+.0}% measured (paper: +30% predicted, +33% measured)");
    println!("high churn: A costs {high_pred_gap:+.0}% predicted, {high_meas_gap:+.0}% measured (paper: +8% predicted, +10% measured)");
    assert!(low_pred_gap > 3.0, "A must win low churn in prediction");
    assert!(low_meas_gap > 5.0, "A must win low churn measured");
    assert!(high_pred_gap > 0.0, "B must win high churn in prediction");
    println!(
        "\nLow-churn trade-off fully reproduced (prediction and measurement); the high-churn\n\
         prediction favours B as in the paper, but the measured advantage does not materialise\n\
         on the simulated testbed: its warm caches serve allocator A's scattered FIFO nodes at\n\
         L1/L2 latency, where the paper's DRAM-bound testbed made A pay. See EXPERIMENTS.md."
    );
}
