//! Figure 4: CCDF of per-packet latency for VigNAT with second- vs
//! millisecond-granularity flow timestamps (§5.3). Batched expiry makes
//! ~1.5% of packets pay a huge latency tail; the granularity fix removes
//! the tail at the cost of a slightly higher median (more packets do a
//! little expiry work).

use bolt_bench::table_fmt::print_table;
use bolt_distiller::{ccdf_samples, percentile, NfRunner};
use bolt_nfs::nat;
use bolt_trace::AddressSpace;
use bolt_workloads::generators::uniform_udp_flows;
use dpdk_sim::StackLevel;
use nf_lib::clock::Granularity;
use nf_lib::registry::DsRegistry;

const SECOND: u64 = 1 << 30;

fn run(granularity: Granularity) -> Vec<f64> {
    let cfg = nat::NatConfig {
        capacity: 4096,
        ttl_ns: 2 * SECOND,
        n_ports: 4096,
        ..Default::default()
    };
    let mut reg = DsRegistry::new();
    let ids = nat::register(&mut reg, &cfg, nat::AllocKind::A);
    let _ = ids;
    let mut aspace = AddressSpace::new();
    let mut table = nat::NatTable::new_a(ids, &cfg, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, granularity);
    let pkts = uniform_udp_flows(71, 20_000, 256, SECOND / 64, 0);
    runner.play(&pkts, |ctx, mbuf, clock| {
        let now = clock.now(ctx);
        nat::process(ctx, &mut table, &cfg, now, mbuf)
    });
    runner.cycle_samples()
}

fn main() {
    let coarse = run(Granularity::Seconds);
    let fine = run(Granularity::Milliseconds);
    let quantiles = [0.50, 0.90, 0.99, 0.995, 0.999, 1.0];
    let rows: Vec<Vec<String>> = quantiles
        .iter()
        .map(|&q| {
            vec![
                format!("p{:.1}", q * 100.0),
                format!("{:.0}", percentile(&coarse, q)),
                format!("{:.0}", percentile(&fine, q)),
            ]
        })
        .collect();
    print_table(
        "Figure 4 — per-packet latency (testbed cycles): second vs millisecond timestamps",
        &[
            "quantile",
            "second granularity (original)",
            "ms granularity (fixed)",
        ],
        &rows,
    );
    // CCDF tail fractions above a threshold between typical and batch cost.
    let tail = |samples: &[f64], thr: f64| {
        ccdf_samples(samples)
            .iter()
            .rfind(|&&(v, _)| v <= thr)
            .map(|&(_, f)| f)
            .unwrap_or(1.0)
    };
    let thr = percentile(&fine, 1.0) * 2.0;
    println!(
        "\nfraction of packets above {thr:.0} cycles: original {:.3}%, fixed {:.3}%",
        tail(&coarse, thr) * 100.0,
        tail(&fine, thr) * 100.0
    );
    let c_max = percentile(&coarse, 1.0);
    let f_max = percentile(&fine, 1.0);
    let c_med = percentile(&coarse, 0.5);
    let f_med = percentile(&fine, 0.5);
    println!(
        "worst-case latency: original {c_max:.0} vs fixed {f_max:.0} cycles ({:.1}x tail reduction)",
        c_max / f_max
    );
    println!(
        "median latency: original {c_med:.0} vs fixed {f_med:.0} cycles (paper: median rises, tail disappears)"
    );
    assert!(c_max > 4.0 * f_max, "the batching tail must dominate");
    assert!(f_med >= c_med, "the fix trades median for tail");
}
