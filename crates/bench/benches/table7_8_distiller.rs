//! Tables 7 and 8: the Distiller's expired-flow reports that exposed
//! VigNAT's expiry batching (§5.3). With second-granularity timestamps,
//! flows stamped within the same second expire in one batch when the
//! clock ticks (Table 7's spike); millisecond granularity spreads expiry
//! out (Table 8).

use bolt_distiller::NfRunner;
use bolt_nfs::nat;
use bolt_trace::AddressSpace;
use bolt_workloads::generators::uniform_udp_flows;
use dpdk_sim::StackLevel;
use nf_lib::clock::Granularity;
use nf_lib::registry::DsRegistry;

/// One "second" bucket (2^30 ns) of simulated time.
const SECOND: u64 = 1 << 30;

fn run(granularity: Granularity) -> (NfRunner, nat::NatIds) {
    let cfg = nat::NatConfig {
        capacity: 4096,
        ttl_ns: 2 * SECOND,
        n_ports: 4096,
        ..Default::default()
    };
    let mut reg = DsRegistry::new();
    let ids = nat::register(&mut reg, &cfg, nat::AllocKind::A);
    let mut aspace = AddressSpace::new();
    let mut table = nat::NatTable::new_a(ids, &cfg, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, granularity);
    // ~64 packets per second over a 256-flow space: roughly 56 distinct
    // flows get stamped per second bucket.
    let pkts = uniform_udp_flows(71, 20_000, 256, SECOND / 64, 0);
    runner.play(&pkts, |ctx, mbuf, clock| {
        let now = clock.now(ctx);
        nat::process(ctx, &mut table, &cfg, now, mbuf)
    });
    (runner, ids)
}

fn main() {
    let (coarse, ids) = run(Granularity::Seconds);
    println!(
        "\n=== Table 7 — Distiller: expired flows per packet, SECOND-granularity timestamps ==="
    );
    println!("(paper: 98.5% zero, a 0.93% spike at 64 — batching)\n");
    print!(
        "{}",
        coarse.distiller.report(
            &{
                let mut reg = DsRegistry::new();
                let cfg = nat::NatConfig::default();
                let _ = nat::register(&mut reg, &cfg, nat::AllocKind::A);
                reg.pcvs
            },
            ids.ft.e,
            66
        )
    );
    let pdf = coarse.distiller.pdf(ids.ft.e);
    let zero_frac = pdf
        .iter()
        .find(|(v, _)| *v == 0)
        .map(|(_, f)| *f)
        .unwrap_or(0.0);
    let batch_frac: f64 = pdf.iter().filter(|(v, _)| *v >= 16).map(|(_, f)| f).sum();
    println!(
        "\nzero-expiry packets: {:.2}% | batch (e >= 16) packets: {:.3}%",
        zero_frac * 100.0,
        batch_frac * 100.0
    );
    assert!(zero_frac > 0.9, "batching must make expiry rare-but-bursty");
    assert!(batch_frac > 0.001, "bursts must exist");

    let (fine, ids) = run(Granularity::Milliseconds);
    println!("\n=== Table 8 — after the fix: MILLISECOND-granularity timestamps ===");
    println!("(paper: 16.1% zero, 83.6% one, tail gone)\n");
    print!(
        "{}",
        fine.distiller.report(
            &{
                let mut reg = DsRegistry::new();
                let cfg = nat::NatConfig::default();
                let _ = nat::register(&mut reg, &cfg, nat::AllocKind::A);
                reg.pcvs
            },
            ids.ft.e,
            4
        )
    );
    let max_batch = fine.distiller.worst(ids.ft.e);
    println!("\nworst per-packet expiry batch after the fix: {max_batch}");
    assert!(
        max_batch <= 8,
        "millisecond granularity must spread expiry out (got {max_batch})"
    );
    let coarse_max = coarse.distiller.worst(ids.ft.e);
    assert!(
        coarse_max >= 16,
        "second granularity must batch expiry (got {coarse_max})"
    );
}
