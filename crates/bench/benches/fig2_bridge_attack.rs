//! Figure 2: the operator's threshold-picking analysis (§5.2). Under a
//! uniform random workload, the Distiller reports the CCDF of hash-table
//! probe traversals per packet; overlaying the contract's predicted IC as
//! a function of the traversal count lets the operator position the
//! rehash threshold where legitimate traffic never trips it.

use bolt_bench::table_fmt::print_table;
use bolt_core::nf::{Bolt, NetworkFunction};
use bolt_core::{ClassSpec, InputClass};
use bolt_distiller::NfRunner;
use bolt_expr::PcvAssignment;
use bolt_nfs::bridge::{Bridge, BridgeConfig};
use bolt_trace::{AddressSpace, Metric};
use bolt_workloads::generators::bridge_traffic;
use dpdk_sim::StackLevel;
use nf_lib::clock::Granularity;

fn main() {
    let nf = Bridge::with(BridgeConfig {
        capacity: 1024,
        ttl_ns: u64::MAX / 2,
        rehash_threshold: 64, // analysis first, threshold later
    });
    let mut contract = Bolt::nf(nf).explore(StackLevel::FullStack).contract();
    let ids = contract.ids;

    // Uniform random workload at ~35% occupancy — the regime where the
    // paper's operator found fewer than 0.2% of packets beyond 6
    // traversals.
    let mut aspace = AddressSpace::new();
    let mut state = nf.state(ids, &mut aspace);
    let mut runner = NfRunner::new(StackLevel::FullStack, Granularity::Milliseconds);
    let pkts = bridge_traffic(51, 20_000, 360, false, 1_000);
    runner.play_nf(&nf, &mut state, &pkts);

    let ccdf = runner.distiller.ccdf(ids.table.store.t);
    let class = InputClass::new(
        "unknown source, no rehash",
        ClassSpec::all([
            ClassSpec::Tag("src:unknown"),
            ClassSpec::NotTag("src:rehash"),
        ]),
    );
    let mut rows = Vec::new();
    for t in 0..=8u64 {
        let ccdf_at = ccdf
            .iter()
            .rfind(|&&(v, _)| v <= t)
            .map(|&(_, f)| f)
            .unwrap_or(1.0);
        let mut env = PcvAssignment::new();
        env.set(ids.table.store.t, t)
            .set(ids.table.store.c, t.min(2));
        let pred = contract
            .query(&class, Metric::Instructions, &env)
            .unwrap()
            .value;
        rows.push(vec![
            t.to_string(),
            format!("{ccdf_at:.5}"),
            pred.to_string(),
        ]);
    }
    print_table(
        "Figure 2 — CCDF of bucket traversals vs predicted IC (uniform random workload)",
        &["traversals t", "P[T > t]", "predicted IC at t"],
        &rows,
    );
    let p6: f64 = rows[6][1].parse().unwrap();
    println!(
        "\nP[traversals > 6] = {:.4} — the operator sets the threshold at 6 (paper: < 0.2% \
         of legitimate packets trip the rehash there).",
        p6
    );
    assert!(p6 < 0.01, "threshold analysis regime drifted: {p6}");
    let env = PcvAssignment::new();
    let rehash_cost = contract
        .query(
            &InputClass::new("rehash", ClassSpec::Tag("src:rehash")),
            Metric::Instructions,
            &env,
        )
        .unwrap()
        .value;
    println!(
        "predicted rehash-path IC at threshold crossing: {rehash_cost} — the cliff the threshold guards."
    );
}
