//! Table 5 and Figure 3: NF-chain composition (§3.4, §5.2). The firewall
//! drops every packet carrying IP options, so the composed
//! firewall→router contract never pays the router's per-option cost —
//! its bound beats the naive sum of the two NFs' individual worst cases.
//! The measured bars replay mixed traffic through the concrete chain.

use bolt_bench::table_fmt::{human, print_table};
use bolt_core::{naive_add, ClassSpec, Composer, InputClass, Pipeline};
use bolt_distiller::NfRunner;
use bolt_expr::PcvAssignment;
use bolt_nfs::{firewall, static_router, Firewall, StaticRouter};
use bolt_see::NfVerdict;
use bolt_solver::Solver;
use bolt_trace::{AddressSpace, Metric};
use bolt_workloads::generators::{merge, options_traffic, uniform_udp_flows};
use dpdk_sim::StackLevel;
use nf_lib::clock::Granularity;

fn main() {
    // --- contracts, via the Pipeline abstraction (stages explored once,
    // reused for the per-NF tables, the composition, and naive-add) ---
    let chain_nf = Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default());
    let mut stage_contracts = chain_nf.contracts(StackLevel::FullStack);
    let mut rt = stage_contracts.pop().unwrap();
    let mut fw = stage_contracts.pop().unwrap();
    let solver = Solver::default();
    let mut chain = Composer::new(&solver).compose(&fw, &rt);
    let env = PcvAssignment::new();

    let classes = [
        InputClass::new("No IP options", ClassSpec::Tag("no-options")),
        InputClass::new("IP options", ClassSpec::Tag("ip-options")),
    ];
    let render = |c: &mut bolt_core::NfContract, title: &str| {
        let solver = Solver::default();
        let rows: Vec<Vec<String>> = classes
            .iter()
            .filter_map(|cl| {
                let q = c.query(&solver, cl, Metric::Instructions, &env)?;
                Some(vec![cl.name.clone(), q.value.to_string()])
            })
            .collect();
        print_table(title, &["Traffic type", "Instructions"], &rows);
    };
    render(&mut fw, "Table 5a — firewall (paper: 477 / 298)");
    render(&mut rt, "Table 5b — static router (paper: 603 / 79·n+646)");
    render(
        &mut chain,
        "Table 5c — firewall→router chain (paper: 1053 / 298 — options masked)",
    );

    // --- Figure 3: naive-add vs composed, predicted vs measured ---
    let naive_ic = naive_add(&fw, &rt, Metric::Instructions, &env);
    let naive_ma = naive_add(&fw, &rt, Metric::MemAccesses, &env);
    let comp_ic = chain
        .query(
            &solver,
            &InputClass::unconstrained(),
            Metric::Instructions,
            &env,
        )
        .unwrap()
        .value;
    let comp_ma = chain
        .query(
            &solver,
            &InputClass::unconstrained(),
            Metric::MemAccesses,
            &env,
        )
        .unwrap()
        .value;

    // Measured: play mixed traffic through the concrete chain.
    let mut aspace = AddressSpace::new();
    let router = static_router::StaticRouterState::new(&mut aspace);
    let rt_cfg = static_router::StaticRouterConfig::default();
    let fw_cfg = firewall::FirewallConfig::default();
    let mut fw_runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
    let mut rt_runner = NfRunner::new(StackLevel::FullStack, Granularity::Nanoseconds);
    let pkts = merge(vec![
        uniform_udp_flows(61, 1000, 64, 2000, 0),
        options_traffic(500, 5, 4000),
    ]);
    let mut forwarded = Vec::new();
    fw_runner.play(&pkts, |ctx, mbuf, _clock| {
        firewall::process(ctx, &fw_cfg, mbuf);
    });
    for (pkt, sample) in pkts.iter().zip(&fw_runner.samples) {
        if matches!(sample.verdict, NfVerdict::Forward(_)) {
            forwarded.push(pkt.clone());
        }
    }
    rt_runner.play(&forwarded, |ctx, mbuf, _clock| {
        router.install(ctx, &rt_cfg);
        static_router::process(ctx, &router, mbuf);
    });
    // Per-packet combined IC: firewall cost + (router cost if forwarded).
    let mut rt_iter = rt_runner.samples.iter();
    let mut measured_ic = 0u64;
    let mut measured_ma = 0u64;
    for s in &fw_runner.samples {
        let (mut ic, mut ma) = (s.ic, s.ma);
        if matches!(s.verdict, NfVerdict::Forward(_)) {
            let r = rt_iter.next().expect("router sample");
            ic += r.ic;
            ma += r.ma;
        }
        measured_ic = measured_ic.max(ic);
        measured_ma = measured_ma.max(ma);
    }

    print_table(
        "Figure 3 — composite firewall+router: naive addition vs BOLT composition",
        &["quantity", "Naive-Add", "Composite-Bolt", "Measured"],
        &[
            vec![
                "worst-case IC".into(),
                human(naive_ic),
                human(comp_ic),
                human(measured_ic),
            ],
            vec![
                "worst-case MA".into(),
                human(naive_ma),
                human(comp_ma),
                human(measured_ma),
            ],
        ],
    );
    assert!(comp_ic < naive_ic, "composition must beat naive addition");
    assert!(comp_ic >= measured_ic, "composed bound must hold");
    assert!(comp_ma >= measured_ma);
    println!(
        "\ncomposition gap: naive over-predicts by {:.1}% vs the composed contract's {:.1}% (IC).",
        (naive_ic as f64 / measured_ic as f64 - 1.0) * 100.0,
        (comp_ic as f64 / measured_ic as f64 - 1.0) * 100.0
    );
}
