//! Chain-composition micro-benchmark: how fast do composed chain
//! contracts build, and how much solver work does the cross-product
//! actually run?
//!
//! Each scenario composes a [`Pipeline`] through `Pipeline::report`, so
//! the full store-aware fold is measured: stage contracts are
//! get-or-explore records, and every pairwise fold step is a
//! content-addressed composed record. The counters printed here are the
//! machine-independent half of the output; `ms/chain` is wall-clock.
//!
//! Quick mode (`BOLT_BENCH_QUICK=1`, used by the CI smoke job) runs one
//! timing iteration per scenario instead of many.
//!
//! With `BOLT_STORE_DIR` set, the first process populates the store and
//! later processes decode composed records instead of composing. The CI
//! warm-chain smoke runs the harness twice against a temp store with
//! `BOLT_BENCH_EXPECT_ALL_CACHED=1` on the second run, which makes the
//! harness fail unless every chain was served fully warm: zero stage
//! explorations, zero fold steps composed, zero compose solver requests.
//!
//! With `BOLT_THREADS=n` (n > 1) and no store, every scenario runs both
//! sequentially and on `n` compose workers; the harness *asserts* that
//! the composed contract bytes and the compose-side solver counters are
//! identical (the parallel committer replays the sequential schedule),
//! and prints the seq-vs-parallel wall-clock ratio for the trajectory
//! log — the only machine-dependent number in the output.
//!
//! The harness also plans the 3-stage chain (`Pipeline::parallelize`)
//! and records the planned-vs-sequential *predicted* cycle contract —
//! max-of-group + merge against the sequential sum — a fully
//! machine-independent trajectory point. Results land in
//! `BENCH_chain.json` at the workspace root.

use std::io::Write as _;
use std::time::Instant;

use bolt_bench::table_fmt::print_table;
use bolt_core::chain::ChainReport;
use bolt_core::nf::ambient_threads;
use bolt_core::{encode_contract, encode_plan, Pipeline};
use bolt_expr::PcvAssignment;
use bolt_nfs::{Firewall, StaticRouter};
use dpdk_sim::StackLevel;

struct Scenario {
    name: &'static str,
    /// Builds the pipeline fresh (pipelines are cheap descriptor bags)
    /// and runs one store-aware chain composition on the given
    /// worker-thread count.
    run: Box<dyn Fn(usize) -> ChainReport>,
}

fn scenario(
    name: &'static str,
    build: impl Fn() -> Pipeline<'static> + 'static,
    level: StackLevel,
) -> Scenario {
    Scenario {
        name,
        run: Box::new(move |threads| {
            build()
                .threads(threads)
                .report(level)
                .expect("non-empty chain")
        }),
    }
}

fn fw_rt() -> Pipeline<'static> {
    Pipeline::new()
        .push(Firewall::default())
        .push(StaticRouter::default())
}

fn fw_fw_rt() -> Pipeline<'static> {
    Pipeline::new()
        .push(Firewall::default())
        .push(Firewall::default())
        .push(StaticRouter::default())
}

fn main() {
    let quick = std::env::var("BOLT_BENCH_QUICK").is_ok();
    let expect_cached = std::env::var("BOLT_BENCH_EXPECT_ALL_CACHED").is_ok();
    let store_active = std::env::var_os("BOLT_STORE_DIR").is_some();
    let threads = ambient_threads();
    let iters = if quick { 1 } else { 25 };

    let scenarios = vec![
        scenario("fw->rt/nf-only", fw_rt, StackLevel::NfOnly),
        scenario("fw->rt/full-stack", fw_rt, StackLevel::FullStack),
        scenario("fw->fw->rt/nf-only", fw_fw_rt, StackLevel::NfOnly),
        scenario("fw->fw->rt/full-stack", fw_fw_rt, StackLevel::FullStack),
    ];

    let mut rows = Vec::new();
    let mut par_rows = Vec::new();
    let mut scen_json = Vec::new();
    let mut cold_work = 0u64;
    for s in &scenarios {
        // Warm-up + counter collection (counters are identical per run
        // shape; a store flips them from "composed" to "cached").
        let rep = (s.run)(threads);
        if expect_cached && !rep.fully_cached() {
            panic!(
                "{}: BOLT_BENCH_EXPECT_ALL_CACHED is set but the chain did real work \
                 (stages explored: {}, steps composed: {}, solver requests: {})",
                s.name, rep.stages_explored, rep.steps_composed, rep.solver.checks_requested
            );
        }
        cold_work += (rep.stages_explored + rep.steps_composed) as u64;
        if threads > 1 && !store_active {
            // Machine-independent parity gate: the parallel committer
            // replays the sequential solver schedule, so the composed
            // contract bytes and every compose counter must match the
            // sequential run exactly.
            let seq = (s.run)(1);
            assert_eq!(
                encode_contract(&seq.contract),
                encode_contract(&rep.contract),
                "{}: composed contract diverged between 1 and {threads} threads",
                s.name
            );
            assert_eq!(
                seq.solver, rep.solver,
                "{}: compose solver counters diverged between 1 and {threads} threads",
                s.name
            );
            let t0 = Instant::now();
            for _ in 0..iters {
                let _ = (s.run)(1);
            }
            let seq_ms = t0.elapsed().as_secs_f64() / iters as f64 * 1e3;
            let t0 = Instant::now();
            for _ in 0..iters {
                let _ = (s.run)(threads);
            }
            let par_ms = t0.elapsed().as_secs_f64() / iters as f64 * 1e3;
            par_rows.push(vec![
                s.name.to_string(),
                format!("{seq_ms:.2}"),
                format!("{par_ms:.2}"),
                format!("{:.2}x", seq_ms / par_ms.max(1e-9)),
            ]);
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = (s.run)(threads);
        }
        let elapsed = t0.elapsed().as_secs_f64() / iters as f64;
        let source = if rep.fully_cached() {
            "warm"
        } else if store_active {
            "seeded"
        } else {
            "composed"
        };
        let sv = rep.solver;
        let reduction = if sv.checks_requested == 0 {
            "-".to_string()
        } else if sv.solver_queries == 0 {
            "∞".to_string()
        } else {
            format!(
                "{:.1}x",
                sv.checks_requested as f64 / sv.solver_queries as f64
            )
        };
        rows.push(vec![
            s.name.to_string(),
            source.to_string(),
            rep.contract.paths.len().to_string(),
            format!(
                "{}+{}",
                rep.stages_explored + rep.stages_cached,
                rep.steps_composed + rep.steps_cached
            ),
            format!(
                "{}/{}",
                rep.steps_cached,
                rep.steps_composed + rep.steps_cached
            ),
            format!("{:.2}", elapsed * 1e3),
            sv.checks_requested.to_string(),
            sv.solver_queries.to_string(),
            reduction,
        ]);
        scen_json.push(format!(
            "{{\"scenario\": \"{}\", \"source\": \"{source}\", \"paths\": {}, \
             \"ms_per_chain\": {:.3}, \"requests\": {}, \"queries\": {}}}",
            s.name,
            rep.contract.paths.len(),
            elapsed * 1e3,
            sv.checks_requested,
            sv.solver_queries
        ));
    }
    print_table(
        "chain_micro — store-aware parallel chain composition",
        &[
            "scenario",
            "source",
            "paths",
            "stages+steps",
            "warm-steps",
            "ms/chain",
            "requests",
            "queries",
            "reduction",
        ],
        &rows,
    );
    println!(
        "\n`requests` counts pair-compatibility checks of the cross-product;\n\
         `queries` is what the incremental engine still solves from scratch.\n\
         A warm run (second process against the same BOLT_STORE_DIR) decodes\n\
         composed records instead: both columns drop to zero."
    );
    if !par_rows.is_empty() {
        print_table(
            &format!("chain_micro — seq vs {threads} compose workers"),
            &["scenario", "ms/seq", "ms/par", "speedup"],
            &par_rows,
        );
        println!(
            "parallel determinism check passed: composed contract bytes and \
             compose solver counters are identical at 1 and {threads} threads \
             for all {} scenarios; the speedup column is wall-clock only",
            scenarios.len()
        );
    }
    if store_active {
        println!(
            "store: {cold_work} stage explorations + fold compositions ran during \
             warm-up; timed iterations always decode from BOLT_STORE_DIR"
        );
    }
    if expect_cached {
        println!(
            "warm-chain check passed: 0 stage explorations, 0 fold steps composed, \
             0 compose solver queries"
        );
    }

    // Parallelization plan point: the 3-stage chain holds a provably
    // commuting firewall pair, so the planned cycle contract
    // (max-of-group + merge) must beat the sequential sum. Predicted
    // cycles are machine-independent; the plan itself must be identical
    // at any worker count.
    let env = PcvAssignment::new();
    let mut plan_rows = Vec::new();
    let mut plan_json = Vec::new();
    for level in [StackLevel::NfOnly, StackLevel::FullStack] {
        let name = format!("fw->fw->rt/{level:?}");
        let rep = fw_fw_rt()
            .threads(threads)
            .parallelize(level)
            .expect("non-empty chain");
        let plan = rep.plan.as_ref().expect("parallelize attaches a plan");
        if threads > 1 && !store_active {
            let seq = fw_fw_rt().threads(1).parallelize(level).unwrap();
            assert_eq!(
                encode_plan(seq.plan.as_ref().unwrap()),
                encode_plan(plan),
                "{name}: plan diverged between 1 and {threads} threads"
            );
        }
        let seq_cy = plan.sequential_cycles(&env);
        let par_cy = plan.parallel_cycles(&env);
        assert!(
            par_cy < seq_cy,
            "{name}: planned contract ({par_cy}cy) must beat the sequential sum ({seq_cy}cy)"
        );
        plan_rows.push(vec![
            name.clone(),
            plan.groups_display(),
            seq_cy.to_string(),
            par_cy.to_string(),
            format!("{:.2}x", plan.predicted_speedup()),
        ]);
        plan_json.push(format!(
            "{{\"scenario\": \"{name}\", \"groups\": \"{}\", \"sequential_cycles\": {seq_cy}, \
             \"parallel_cycles\": {par_cy}, \"predicted_speedup\": {:.4}}}",
            plan.groups_display(),
            plan.predicted_speedup()
        ));
    }
    print_table(
        "chain_micro — parallelization plan (predicted cycle contract)",
        &["scenario", "plan", "seq cy", "par cy", "speedup"],
        &plan_rows,
    );
    println!(
        "predicted cycles come from the contract (worst path per stage, merge\n\
         from the hardware cost table) — machine-independent, unlike ms/chain"
    );

    let json = format!(
        "{{\n\"threads\": {threads},\n\"scenarios\": [\n  {}\n],\n\"plan\": [\n  {}\n]\n}}\n",
        scen_json.join(",\n  "),
        plan_json.join(",\n  ")
    );
    // Land the trajectory file at the workspace root (cargo runs benches
    // with the package dir as cwd) so successive runs overwrite one spot.
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .join("BENCH_chain.json");
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            f.write_all(json.as_bytes()).unwrap();
            println!("wrote {}", path.display());
        }
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}
